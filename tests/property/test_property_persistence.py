"""Property: replay(snapshot, log) reproduces the live server, always.

Randomized interleavings of register/unregister/couple/lock/unlock/
history/undo — including operations the server answers with errors
(those never reach the journal, so replay skips them identically) and
snapshots taken at arbitrary points — must recover to the live server's
exact state fingerprint.
"""

from hypothesis import given, settings, strategies as st

from repro.net import kinds
from repro.net.clock import SimClock
from repro.net.message import Message
from repro.persist import PersistenceConfig, recover_server
from repro.persist.snapshot import server_fingerprint
from repro.server.couples import gid_to_wire, global_id
from repro.server.server import SERVER_ID, CosoftServer


class _Sink:
    """Minimal transport: the server must be bound to handle messages."""

    local_id = SERVER_ID

    def send(self, message):
        pass

    def drive(self, predicate, timeout=5.0):
        return predicate()

    def close(self):
        pass


INSTANCES = ["a", "b", "c"]
PATHS = ["/app/x", "/app/y"]

register_ops = st.tuples(
    st.just("register"), st.sampled_from(INSTANCES)
)
unregister_ops = st.tuples(
    st.just("unregister"), st.sampled_from(INSTANCES)
)
couple_ops = st.tuples(
    st.just("couple"),
    st.sampled_from(INSTANCES),
    st.sampled_from(PATHS),
    st.sampled_from(INSTANCES),
    st.sampled_from(PATHS),
)
lock_ops = st.tuples(
    st.just("lock"),
    st.sampled_from(INSTANCES),
    st.sampled_from(PATHS),
    st.integers(min_value=1, max_value=3),
)
unlock_ops = st.tuples(
    st.just("unlock"),
    st.sampled_from(INSTANCES),
    st.integers(min_value=1, max_value=3),
)
history_ops = st.tuples(
    st.just("history"),
    st.sampled_from(INSTANCES),
    st.sampled_from(PATHS),
    st.text(alphabet="xyz", max_size=4),
)
undo_ops = st.tuples(
    st.just("undo"), st.sampled_from(INSTANCES), st.sampled_from(PATHS)
)
snapshot_ops = st.tuples(st.just("snapshot"))

ops = st.lists(
    st.one_of(
        register_ops,
        unregister_ops,
        couple_ops,
        lock_ops,
        unlock_ops,
        history_ops,
        undo_ops,
        snapshot_ops,
    ),
    max_size=40,
)


def apply_op(server, persist, op):
    server.clock.advance(0.013)
    kind = op[0]
    if kind == "register":
        message = Message(
            kind=kinds.REGISTER,
            sender=op[1],
            payload={"user": f"user-{op[1]}", "app_type": ""},
        )
    elif kind == "unregister":
        message = Message(kind=kinds.UNREGISTER, sender=op[1], payload={})
    elif kind == "couple":
        message = Message(
            kind=kinds.COUPLE,
            sender=op[1],
            payload={
                "source": gid_to_wire(global_id(op[1], op[2])),
                "target": gid_to_wire(global_id(op[3], op[4])),
            },
        )
    elif kind == "lock":
        message = Message(
            kind=kinds.LOCK_REQUEST,
            sender=op[1],
            payload={
                "source": gid_to_wire(global_id(op[1], op[2])),
                "token": op[3],
            },
        )
    elif kind == "unlock":
        message = Message(
            kind=kinds.UNLOCK, sender=op[1], payload={"token": op[2]}
        )
    elif kind == "history":
        message = Message(
            kind=kinds.HISTORY_PUSH,
            sender=op[1],
            payload={
                "object": gid_to_wire(global_id(op[1], op[2])),
                "state": {"value": op[3]},
                "reason": "copy_to",
            },
        )
    elif kind == "undo":
        message = Message(
            kind=kinds.UNDO_REQUEST,
            sender=op[1],
            payload={"object": gid_to_wire(global_id(op[1], op[2]))},
        )
    else:   # snapshot
        persist.snapshot(server)
        return
    server.handle_message(message)


class TestReplayEquivalence:
    @given(ops=ops)
    @settings(max_examples=60, deadline=None)
    def test_recovered_fingerprint_matches_live(self, ops):
        persist = PersistenceConfig(
            directory=None, snapshot_every=1000
        ).build()
        live = CosoftServer(clock=SimClock(), persistence=persist)
        live.bind(_Sink())
        for op in ops:
            apply_op(live, persist, op)
        recovered = recover_server(persist)
        assert server_fingerprint(recovered) == server_fingerprint(live)

    @given(ops=ops)
    @settings(max_examples=30, deadline=None)
    def test_auto_snapshots_do_not_change_the_answer(self, ops):
        # Snapshot every 3 journaled ops: most recoveries start from a
        # snapshot mid-history instead of an empty server.
        persist = PersistenceConfig(
            directory=None, snapshot_every=3
        ).build()
        live = CosoftServer(clock=SimClock(), persistence=persist)
        live.bind(_Sink())
        for op in ops:
            apply_op(live, persist, op)
        recovered = recover_server(persist)
        assert server_fingerprint(recovered) == server_fingerprint(live)

    @given(ops=ops, data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_time_travel_matches_prefix_execution(self, ops, data):
        persist = PersistenceConfig(
            directory=None, snapshot_every=1000
        ).build()
        live = CosoftServer(clock=SimClock(), persistence=persist)
        live.bind(_Sink())
        for op in ops:
            apply_op(live, persist, op)
        last = persist.log.last_seq
        if last == 0:
            return
        at = data.draw(st.integers(min_value=0, max_value=last))
        past = recover_server(persist, at_seq=at)
        # Re-execute only the prefix on a fresh journal, compare.
        prefix = PersistenceConfig(
            directory=None, snapshot_every=1000
        ).build()
        twin = CosoftServer(clock=SimClock(), persistence=prefix)
        twin.bind(_Sink())
        from repro.persist.recovery import _replay_into

        twin.persistence = None
        _replay_into(twin, twin.clock, persist.log.read(0), at_seq=at)
        assert server_fingerprint(past) == server_fingerprint(twin)
