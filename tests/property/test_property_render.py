"""Property tests: the renderer and builder never crash on random trees."""

from hypothesis import given, settings, strategies as st

from repro.toolkit.builder import build, to_spec, validate_spec
from repro.toolkit.render import render

WIDGET_TYPES = [
    "form", "rowcolumn", "frame", "shell", "pushbutton", "togglebutton",
    "label", "textfield", "textarea", "optionmenu", "listbox", "scale",
    "canvas", "menu", "menuentry",
]


@st.composite
def random_specs(draw, depth=3):
    counter = [0]

    def node(level):
        counter[0] += 1
        name = f"w{counter[0]}"
        type_name = draw(st.sampled_from(WIDGET_TYPES))
        spec = {"type": type_name, "name": name}
        state = {}
        if draw(st.booleans()):
            state["x"] = draw(st.integers(min_value=-5, max_value=90))
            state["y"] = draw(st.integers(min_value=-5, max_value=30))
        if draw(st.booleans()):
            state["width"] = draw(st.integers(min_value=0, max_value=100))
        if draw(st.booleans()):
            state["visible"] = draw(st.booleans())
        if state:
            spec["state"] = state
        if level > 0 and draw(st.booleans()):
            n = draw(st.integers(min_value=0, max_value=3))
            if n:
                spec["children"] = [node(level - 1) for _ in range(n)]
        return spec

    return node(depth)


class TestRobustness:
    @given(spec=random_specs())
    @settings(max_examples=120, deadline=None)
    def test_build_render_never_crashes(self, spec):
        root = build(spec)
        output = render(root, 60, 20)
        assert isinstance(output, str)
        assert len(output.splitlines()) <= 20

    @given(spec=random_specs())
    @settings(max_examples=80, deadline=None)
    def test_spec_roundtrip_is_stable(self, spec):
        root = build(spec)
        once = to_spec(root)
        twice = to_spec(build(once))
        assert once == twice

    @given(spec=random_specs())
    @settings(max_examples=80, deadline=None)
    def test_roundtripped_specs_validate(self, spec):
        validate_spec(to_spec(build(spec)))

    @given(
        spec=random_specs(),
        width=st.integers(min_value=1, max_value=120),
        height=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_render_respects_viewport(self, spec, width, height):
        output = render(build(spec), width, height)
        lines = output.splitlines()
        assert len(lines) <= height
        assert all(len(line) <= width for line in lines)
