"""Property tests for the access-control decision logic."""

from hypothesis import given, settings, strategies as st

from repro.server.couples import global_id
from repro.server.permissions import RIGHTS, AccessControl, PermissionRule

users = st.sampled_from(["alice", "bob", "kim", "*"])
instances = st.sampled_from(["teacher", "student-1", "student-2", "*"])
prefixes = st.sampled_from(["", "/app", "/app/form", "/app/form/name"])
rights = st.sampled_from(list(RIGHTS) + ["*"])

rules = st.builds(
    PermissionRule,
    user=users,
    instance_id=instances,
    path_prefix=prefixes,
    right=rights,
    allow=st.booleans(),
)

objects = st.builds(
    global_id,
    st.sampled_from(["teacher", "student-1", "student-2"]),
    st.sampled_from(["/app", "/app/form", "/app/form/name", "/other"]),
)

concrete_users = st.sampled_from(["alice", "bob", "kim"])
concrete_rights = st.sampled_from(list(RIGHTS))


class TestDecisionProperties:
    @given(
        rule_set=st.lists(rules, max_size=8),
        user=concrete_users,
        obj=objects,
        right=concrete_rights,
        default=st.booleans(),
    )
    @settings(max_examples=200)
    def test_decision_is_deterministic_and_boolean(
        self, rule_set, user, obj, right, default
    ):
        acl = AccessControl(default_allow=default)
        for rule in rule_set:
            acl.add(rule)
        first = acl.check(user, obj, right)
        assert isinstance(first, bool)
        assert acl.check(user, obj, right) == first

    @given(user=concrete_users, obj=objects, right=concrete_rights)
    @settings(max_examples=100)
    def test_no_matching_rule_falls_to_default(self, user, obj, right):
        # Rules scoped to a different user never affect the decision.
        acl = AccessControl(default_allow=False)
        other = {"alice": "bob", "bob": "kim", "kim": "alice"}[user]
        acl.grant(other)
        assert not acl.check(user, obj, right)

    @given(
        rule_set=st.lists(rules, max_size=6),
        user=concrete_users,
        obj=objects,
        right=concrete_rights,
    )
    @settings(max_examples=150)
    def test_exact_deny_always_wins(self, rule_set, user, obj, right):
        """A maximally specific deny can never be overridden."""
        acl = AccessControl(default_allow=True)
        for rule in rule_set:
            acl.add(rule)
        acl.add(PermissionRule(user, obj[0], obj[1], right, allow=False))
        assert not acl.check(user, obj, right)

    @given(
        rule_set=st.lists(rules, max_size=6),
        user=concrete_users,
        obj=objects,
        right=concrete_rights,
    )
    @settings(max_examples=150)
    def test_rule_order_is_irrelevant(self, rule_set, user, obj, right):
        forward = AccessControl()
        backward = AccessControl()
        for rule in rule_set:
            forward.add(rule)
        for rule in reversed(rule_set):
            backward.add(rule)
        assert forward.check(user, obj, right) == backward.check(
            user, obj, right
        )

    @given(obj=objects, right=concrete_rights)
    @settings(max_examples=50)
    def test_wildcard_grant_covers_everything(self, obj, right):
        acl = AccessControl(default_allow=False)
        acl.grant("*")
        assert acl.check("anyone", obj, right)
