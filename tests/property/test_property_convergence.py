"""Property-based end-to-end convergence: random workloads, coupled replicas.

The central invariant of the whole system: after the network quiesces,
every member of a couple group agrees on the relevant attributes — for any
sequence of committed events, any coupling topology, any seed.
"""

import string

from hypothesis import given, settings, strategies as st

from repro.session import LocalSession
from repro.toolkit.widgets import OptionMenu, Scale, Shell, TextField

N_INSTANCES = 3
FIELD = "/ui/field"
MENU = "/ui/menu"
SCALE = "/ui/scale"

ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=N_INSTANCES - 1),  # actor
        st.sampled_from(["field", "menu", "scale"]),           # widget
        st.one_of(
            st.text(alphabet=string.ascii_lowercase, max_size=6),
            st.integers(min_value=0, max_value=100),
        ),
    ),
    max_size=30,
)

topologies = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=N_INSTANCES - 1),
        st.integers(min_value=0, max_value=N_INSTANCES - 1),
        st.sampled_from(["field", "menu", "scale"]),
    ).filter(lambda t: t[0] != t[1]),
    min_size=1,
    max_size=6,
)

PATHS = {"field": FIELD, "menu": MENU, "scale": SCALE}


def build_session(seed):
    session = LocalSession(jitter=0.002, seed=seed)
    trees = []
    for i in range(N_INSTANCES):
        inst = session.create_instance(f"i{i}", user=f"u{i}")
        root = Shell("ui")
        TextField("field", parent=root)
        OptionMenu("menu", parent=root, entries=["a", "b", "c"], selection="a")
        Scale("scale", parent=root, maximum=100)
        inst.add_root(root)
        trees.append(root)
    return session, trees


def perform(tree, widget_kind, value):
    if widget_kind == "field":
        tree.find(FIELD).commit(str(value))
    elif widget_kind == "menu":
        choices = ["a", "b", "c"]
        tree.find(MENU).select(choices[hash(str(value)) % 3])
    else:
        numeric = value if isinstance(value, int) else len(str(value))
        tree.find(SCALE).set_value(numeric)


class TestConvergence:
    @given(
        topology=topologies,
        script=ops,
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_coupled_groups_converge(self, topology, script, seed):
        session, trees = build_session(seed)
        try:
            instances = [session.instances[f"i{i}"] for i in range(N_INSTANCES)]
            for source, target, kind in topology:
                path = PATHS[kind]
                if not session.server.couples.has_link(
                    (f"i{source}", path), (f"i{target}", path)
                ):
                    instances[source].couple(
                        trees[source].find(path), (f"i{target}", path)
                    )
            session.pump()
            for actor, kind, value in script:
                perform(trees[actor], kind, value)
                session.pump()  # serialize: convergence of committed events
            session.pump()
            # Every couple group agrees on the relevant state.
            for group in session.server.couples.groups():
                states = []
                for instance_id, path in group:
                    idx = int(instance_id[1:])
                    states.append(trees[idx].find(path).relevant_state())
                assert all(s == states[0] for s in states)
        finally:
            session.close()

    @given(script=ops, seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_uncoupled_instances_never_interact(self, script, seed):
        session, trees = build_session(seed)
        try:
            base_messages = session.network.stats.messages
            for actor, kind, value in script:
                perform(trees[actor], kind, value)
            session.pump()
            # No coupling -> no traffic beyond registration.
            assert session.network.stats.messages == base_messages
        finally:
            session.close()
