"""Property tests pitting the incremental closure against brute force.

The couple table maintains its transitive closure with a union–find
forest, pair-indexed links and component-confined rebuilds.  These tests
drive it with random scripts over the *full* mutation surface — including
bulk removals (object / subtree / instance) and parallel arcs between the
same pair — and compare every derived view (groups, audience index,
group links) against a from-scratch BFS over the surviving link set.
"""

from hypothesis import given, settings, strategies as st

from repro.errors import NoSuchCoupleError
from repro.server.couples import CoupleLink, CoupleTable, global_id

INSTANCES = ["a", "b", "c"]
PATHS = ["/x", "/x/left", "/x/right", "/y"]

objects = st.tuples(
    st.sampled_from(INSTANCES), st.sampled_from(PATHS)
).map(lambda t: global_id(*t))

link_pairs = st.tuples(objects, objects).filter(lambda p: p[0] != p[1])


@st.composite
def scripts(draw):
    """Random mutation scripts, including bulk removals and dup arcs."""
    ops = []
    for _ in range(draw(st.integers(min_value=0, max_value=30))):
        action = draw(
            st.sampled_from(
                [
                    "add",
                    "add",  # bias toward growth so groups actually form
                    "add_reverse",
                    "remove_link",
                    "remove_object",
                    "remove_subtree",
                    "remove_instance",
                ]
            )
        )
        if action == "remove_instance":
            ops.append((action, draw(st.sampled_from(INSTANCES)), None))
        elif action == "remove_subtree":
            ops.append(
                (
                    action,
                    draw(st.sampled_from(INSTANCES)),
                    draw(st.sampled_from(PATHS)),
                )
            )
        elif action == "remove_object":
            ops.append((action, draw(objects), None))
        else:
            source, target = draw(link_pairs)
            ops.append((action, source, target))
    return ops


def run_script(ops):
    """Apply *ops* to a table and to a plain mirror set of links."""
    table = CoupleTable()
    mirror = set()
    for action, first, second in ops:
        if action == "add":
            table.add_link(CoupleLink(source=first, target=second))
            mirror.add(CoupleLink(source=first, target=second))
        elif action == "add_reverse":
            # A second arc between the same pair, opposite direction.
            table.add_link(CoupleLink(source=second, target=first))
            mirror.add(CoupleLink(source=second, target=first))
        elif action == "remove_link":
            try:
                table.remove_link(first, second)
            except NoSuchCoupleError:
                pass
            mirror -= {
                l
                for l in mirror
                if {l.source, l.target} == {first, second}
            }
        elif action == "remove_object":
            table.remove_object(first)
            mirror -= {l for l in mirror if first in l.endpoints}
        elif action == "remove_subtree":
            prefix = second.rstrip("/") + "/"

            def below(gid):
                return gid[0] == first and (
                    gid[1] == second or gid[1].startswith(prefix)
                )

            table.remove_subtree(first, second)
            mirror -= {
                l for l in mirror if below(l.source) or below(l.target)
            }
        else:  # remove_instance
            table.remove_instance(first)
            mirror -= {
                l
                for l in mirror
                if first in (l.source[0], l.target[0])
            }
    return table, mirror


def bfs_components(links):
    """Connected components of the undirected link graph, from scratch."""
    adjacency = {}
    for link in links:
        adjacency.setdefault(link.source, set()).add(link.target)
        adjacency.setdefault(link.target, set()).add(link.source)
    components, seen = [], set()
    for node in adjacency:
        if node in seen:
            continue
        stack, comp = [node], set()
        while stack:
            current = stack.pop()
            if current in comp:
                continue
            comp.add(current)
            stack.extend(adjacency[current])
        seen |= comp
        components.append(frozenset(comp))
    return components


class TestIncrementalMatchesBruteForce:
    @given(ops=scripts())
    @settings(max_examples=200)
    def test_links_match_mirror(self, ops):
        table, mirror = run_script(ops)
        assert set(table.links()) == mirror
        assert len(table) == len(mirror)

    @given(ops=scripts())
    @settings(max_examples=200)
    def test_groups_match_bfs(self, ops):
        table, mirror = run_script(ops)
        for component in bfs_components(mirror):
            for member in component:
                assert table.group_of(member) == component

    @given(ops=scripts())
    @settings(max_examples=150)
    def test_audience_index_matches_groups(self, ops):
        table, mirror = run_script(ops)
        for component in bfs_components(mirror):
            expected = {}
            for instance_id, pathname in component:
                expected.setdefault(instance_id, []).append(pathname)
            expected = {
                instance_id: tuple(sorted(paths))
                for instance_id, paths in expected.items()
            }
            for member in component:
                assert table.audience_of(member) == expected
                assert table.group_instances(member) == frozenset(expected)

    @given(obj=objects, ops=scripts())
    @settings(max_examples=100)
    def test_uncoupled_audience_is_self(self, obj, ops):
        table, mirror = run_script(ops)
        if any(obj in link.endpoints for link in mirror):
            return
        assert table.audience_of(obj) == {obj[0]: (obj[1],)}
        assert table.links_of_group(obj) == []

    @given(ops=scripts())
    @settings(max_examples=150)
    def test_group_links_are_exactly_internal_links(self, ops):
        table, mirror = run_script(ops)
        for component in bfs_components(mirror):
            expected = {
                l
                for l in mirror
                if l.source in component and l.target in component
            }
            member = next(iter(component))
            group_links = table.links_of_group(member)
            assert set(group_links) == expected
            assert len(group_links) == len(expected)  # deduplicated

    @given(ops=scripts())
    @settings(max_examples=150)
    def test_by_instance_index_consistent(self, ops):
        table, mirror = run_script(ops)
        expected = {}
        for link in mirror:
            for gid in link.endpoints:
                expected.setdefault(gid[0], set()).add(gid)
        for instance_id in INSTANCES:
            assert table.objects_of_instance(instance_id) == expected.get(
                instance_id, set()
            )

    @given(ops=scripts())
    @settings(max_examples=100)
    def test_rebuild_work_is_bounded_by_touched_components(self, ops):
        """Removals never touch more members than ever existed."""
        table, _ = run_script(ops)
        universe = len(INSTANCES) * len(PATHS)
        removals = sum(
            1 for action, *_ in ops if action.startswith("remove")
        )
        assert table.stats["rebuild_members"] <= removals * universe
