"""Property-based tests for structural compatibility (§3.3)."""

import random

from hypothesis import given, settings, strategies as st

from repro.core import compat

LEAF_TYPES = ["textfield", "pushbutton", "label", "scale"]


@st.composite
def tree_specs(draw, depth=3, max_children=3, name_prefix="n"):
    """Random widget-spec trees."""
    counter = [0]

    def node(level):
        counter[0] += 1
        name = f"{name_prefix}{counter[0]}"
        if level == 0 or draw(st.booleans()):
            return {"type": draw(st.sampled_from(LEAF_TYPES)), "name": name}
        n_children = draw(st.integers(min_value=0, max_value=max_children))
        spec = {"type": "form", "name": name}
        if n_children:
            spec["children"] = [node(level - 1) for _ in range(n_children)]
        return spec

    return node(depth)


def shuffle_children(spec, rng):
    """A structurally identical spec with children permuted and renamed."""
    out = {"type": spec["type"], "name": spec["name"] + "x"}
    children = list(spec.get("children", []))
    rng.shuffle(children)
    if children:
        out["children"] = [shuffle_children(c, rng) for c in children]
    return out


def count_nodes(spec):
    return 1 + sum(count_nodes(c) for c in spec.get("children", []))


class TestMatcherProperties:
    @given(spec=tree_specs(), seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=100)
    def test_self_compatibility_exhaustive(self, spec, seed):
        """Every tree is s-compatible with a shuffled copy of itself."""
        shuffled = shuffle_children(spec, random.Random(seed))
        result = compat.structurally_compatible(
            spec, shuffled, strategy=compat.EXHAUSTIVE
        )
        assert result.compatible
        assert len(result.mapping) == count_nodes(spec)

    @given(spec=tree_specs())
    @settings(max_examples=100)
    def test_identity_heuristic(self, spec):
        """The heuristic always solves the identity case."""
        result = compat.structurally_compatible(
            spec, spec, strategy=compat.HEURISTIC
        )
        assert result.compatible
        assert all(a == b for a, b in result.mapping.items())

    @given(spec=tree_specs(), seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=100)
    def test_mapping_is_bijective(self, spec, seed):
        shuffled = shuffle_children(spec, random.Random(seed))
        result = compat.structurally_compatible(spec, shuffled)
        assert result.compatible
        values = list(result.mapping.values())
        assert len(values) == len(set(values))

    @given(spec=tree_specs(), seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=60)
    def test_mapping_type_compatible_per_node(self, spec, seed):
        shuffled = shuffle_children(spec, random.Random(seed))
        result = compat.structurally_compatible(spec, shuffled)
        index_a = compat._index_by_path(spec)
        index_b = compat._index_by_path(shuffled)
        for rel_a, rel_b in result.mapping.items():
            assert index_a[rel_a]["type"] == index_b[rel_b]["type"]

    @given(spec=tree_specs())
    @settings(max_examples=60)
    def test_extra_child_breaks_compatibility(self, spec):
        import copy

        bigger = copy.deepcopy(spec)
        bigger.setdefault("children", []).append(
            {"type": "canvas", "name": "intruder"}
        )
        if bigger["type"] != "form":
            bigger = {"type": "form", "name": "wrap", "children": [bigger]}
            spec = {"type": "form", "name": "wrap2", "children": [spec]}
        result = compat.structurally_compatible(spec, bigger)
        assert not result.compatible

    @given(spec=tree_specs(), seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=60)
    def test_predefined_accepts_discovered_mapping(self, spec, seed):
        """A mapping found by the exhaustive matcher always validates as a
        predefined mapping."""
        shuffled = shuffle_children(spec, random.Random(seed))
        found = compat.structurally_compatible(spec, shuffled).mapping
        result = compat.structurally_compatible(
            spec, shuffled, strategy=compat.PREDEFINED, predefined=found
        )
        assert result.compatible
