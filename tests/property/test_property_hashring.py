"""Property-based tests for the consistent-hash ring.

Two contracts matter for the cluster router:

* **balance** — with enough virtual nodes, no shard owns more than a
  small multiple of its fair share of keys;
* **minimal disruption** — adding or removing one shard remaps only the
  keys that touch that shard's arcs, never keys between two surviving
  shards, and only around the expected ``1/n`` fraction of them.
"""

from hypothesis import given, settings, strategies as st

from repro.cluster.hashring import HashRing

node_counts = st.integers(min_value=2, max_value=8)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def make_keys(seed, count=600):
    return [f"key-{seed}-{i}" for i in range(count)]


def make_ring(n):
    return HashRing([f"shard-{i}" for i in range(n)], vnodes=128)


@settings(max_examples=25, deadline=None)
@given(n=node_counts, seed=seeds)
def test_no_node_exceeds_twice_the_fair_share(n, seed):
    ring = make_ring(n)
    keys = make_keys(seed)
    dist = ring.distribution(keys)
    fair = len(keys) / n
    assert max(dist.values()) <= 2 * fair


@settings(max_examples=25, deadline=None)
@given(n=node_counts, seed=seeds)
def test_adding_a_node_moves_only_keys_to_the_new_node(n, seed):
    ring = make_ring(n)
    keys = make_keys(seed)
    before = {key: ring.node_for(key) for key in keys}
    ring.add_node("newcomer")
    moved = 0
    for key in keys:
        after = ring.node_for(key)
        if after != before[key]:
            # A remapped key may only land on the newcomer.
            assert after == "newcomer"
            moved += 1
    # Expected fraction: 1/(n+1); allow generous slack (3x) since each
    # sample is one finite draw from the ring's arc distribution.
    assert moved <= 3 * len(keys) / (n + 1)
    assert moved > 0  # with 600 keys the newcomer cannot stay empty


@settings(max_examples=25, deadline=None)
@given(n=node_counts, seed=seeds)
def test_removing_a_node_strands_no_surviving_keys(n, seed):
    ring = make_ring(n)
    keys = make_keys(seed)
    before = {key: ring.node_for(key) for key in keys}
    victim = f"shard-{n - 1}"
    ring.remove_node(victim)
    for key in keys:
        after = ring.node_for(key)
        if before[key] == victim:
            assert after != victim  # orphaned keys must be re-homed
        else:
            # Keys on surviving nodes never move on a removal.
            assert after == before[key]


@settings(max_examples=25, deadline=None)
@given(n=node_counts, seed=seeds)
def test_add_then_remove_is_an_identity(n, seed):
    ring = make_ring(n)
    keys = make_keys(seed, count=200)
    before = {key: ring.node_for(key) for key in keys}
    ring.add_node("transient")
    ring.remove_node("transient")
    assert {key: ring.node_for(key) for key in keys} == before
