"""Protocol fuzzing: malformed messages must never crash an endpoint.

A production server cannot die because one client sent garbage; neither
may a client's event loop.  These tests feed randomly shaped payloads of
every message kind into the sans-I/O cores and require that (a) no
exception escapes, and (b) the endpoint keeps serving well-formed traffic
afterwards.
"""

import string

from hypothesis import given, settings, strategies as st

from repro.net import kinds
from repro.net.message import ALL_KINDS, Message
from repro.server.server import SERVER_ID, CosoftServer
from repro.session import LocalSession
from repro.toolkit.widgets import Shell, TextField


class SinkTransport:
    closed = False
    local_id = SERVER_ID

    def __init__(self):
        self.sent = []

    def send(self, message):
        self.sent.append(message)

    def drive(self, predicate, timeout=5.0):
        return predicate()

    def close(self):
        pass


json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.text(max_size=20),
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.dictionaries(st.text(max_size=6), children, max_size=3),
    ),
    max_leaves=10,
)
# Payloads biased toward the field names the handlers actually read, so
# the fuzz reaches deep into each handler rather than failing fast.
field_names = st.sampled_from(
    [
        "source", "target", "object", "token", "event", "targets", "owner",
        "state", "structure", "mode", "command", "data", "rule", "action",
        "user", "roster", "link", "group", "current_state", "redo",
        "release", "want_reply", "origin", "origin_msg_id", "reason",
    ]
    + list(string.ascii_lowercase[:6])
)
payloads = st.dictionaries(field_names, json_values, max_size=6)

messages = st.builds(
    Message,
    kind=st.sampled_from(sorted(ALL_KINDS)),
    sender=st.sampled_from(["a", "b", "ghost", "server", ""]),
    to=st.just(""),
    payload=payloads,
    reply_to=st.one_of(st.none(), st.integers(min_value=0, max_value=100)),
)


class TestServerFuzz:
    @given(batch=st.lists(messages, min_size=1, max_size=20))
    @settings(max_examples=150, deadline=None)
    def test_server_survives_garbage(self, batch):
        server = CosoftServer()
        transport = SinkTransport()
        server.bind(transport)
        # One honest client so handlers with registry lookups get past the
        # registration check and into their payload parsing.
        server.handle_message(
            Message(kind=kinds.REGISTER, sender="a", payload={"user": "u"})
        )
        for message in batch:
            server.handle_message(message)  # must not raise
        # The server still serves well-formed requests afterwards.
        before = len(transport.sent)
        server.handle_message(
            Message(kind=kinds.REGISTER, sender="fresh", payload={"user": "v"})
        )
        replies = transport.sent[before:]
        assert any(m.kind == kinds.REGISTER_ACK for m in replies)

    @given(batch=st.lists(messages, min_size=1, max_size=10))
    @settings(max_examples=80, deadline=None)
    def test_client_survives_garbage(self, batch):
        session = LocalSession()
        try:
            a = session.create_instance("a", user="u1")
            b = session.create_instance("b", user="u2")
            ta = a.add_root(Shell("ui"))
            TextField("f", parent=ta)
            tb = b.add_root(Shell("ui"))
            TextField("f", parent=tb)
            a.couple(ta.find("/ui/f"), ("b", "/ui/f"))
            session.pump()
            for message in batch:
                # Deliver garbage straight into the client core.
                b.handle_message(message)
            # The replica keeps working end to end.
            ta.find("/ui/f").commit("still alive")
            session.pump()
            assert tb.find("/ui/f").value == "still alive"
        finally:
            session.close()
