"""Property-based tests for the couple table's closure invariants."""

from hypothesis import given, settings, strategies as st

from repro.server.couples import CoupleLink, CoupleTable, global_id

# A small universe of objects so links collide and form interesting groups.
objects = st.tuples(
    st.sampled_from(["a", "b", "c", "d"]),
    st.sampled_from(["/x", "/y", "/z"]),
).map(lambda t: global_id(*t))

link_pairs = st.tuples(objects, objects).filter(lambda p: p[0] != p[1])


@st.composite
def link_scripts(draw):
    """A sequence of add/remove operations over the object universe."""
    ops = []
    for _ in range(draw(st.integers(min_value=0, max_value=25))):
        action = draw(st.sampled_from(["add", "remove"]))
        source, target = draw(link_pairs)
        ops.append((action, source, target))
    return ops


def apply_script(ops):
    table = CoupleTable()
    live = set()
    for action, source, target in ops:
        if action == "add":
            table.add_link(CoupleLink(source=source, target=target))
            live.add(frozenset((source, target)))
        else:
            try:
                table.remove_link(source, target)
                live.discard(frozenset((source, target)))
            except Exception:
                pass
    return table, live


def reference_components(live):
    """Brute-force connected components from the surviving link set."""
    adjacency = {}
    for pair in live:
        a, b = tuple(pair)
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)
    components = []
    seen = set()
    for node in adjacency:
        if node in seen:
            continue
        stack, comp = [node], set()
        while stack:
            current = stack.pop()
            if current in comp:
                continue
            comp.add(current)
            stack.extend(adjacency.get(current, ()))
        seen |= comp
        components.append(frozenset(comp))
    return components


class TestClosureProperties:
    @given(ops=link_scripts())
    @settings(max_examples=200)
    def test_group_matches_brute_force_components(self, ops):
        table, live = apply_script(ops)
        expected = reference_components(live)
        for component in expected:
            for member in component:
                assert table.group_of(member) == component

    @given(ops=link_scripts())
    @settings(max_examples=100)
    def test_group_membership_symmetric(self, ops):
        table, _ = apply_script(ops)
        for link in table.links():
            assert table.group_of(link.source) == table.group_of(link.target)

    @given(ops=link_scripts())
    @settings(max_examples=100)
    def test_co_never_contains_self(self, ops):
        table, _ = apply_script(ops)
        for link in table.links():
            for obj in link.endpoints:
                assert obj not in table.coupled_objects(obj)

    @given(ops=link_scripts())
    @settings(max_examples=100)
    def test_groups_partition_coupled_objects(self, ops):
        table, _ = apply_script(ops)
        groups = table.groups()
        seen = set()
        for group in groups:
            assert len(group) >= 2
            assert not (group & seen)
            seen |= group

    @given(ops=link_scripts())
    @settings(max_examples=100)
    def test_remove_instance_leaves_no_trace(self, ops):
        table, _ = apply_script(ops)
        table.remove_instance("a")
        for link in table.links():
            assert "a" not in (link.source[0], link.target[0])
        assert not table.objects_of_instance("a")

    @given(ops=link_scripts())
    @settings(max_examples=100)
    def test_wire_roundtrip_preserves_groups(self, ops):
        table, _ = apply_script(ops)
        rebuilt = CoupleTable()
        for entry in table.to_wire():
            rebuilt.add_link(CoupleLink.from_wire(entry))
        for link in table.links():
            assert rebuilt.group_of(link.source) == table.group_of(link.source)
