"""Stateful (rule-based) property tests for the lock table and history.

Hypothesis drives random operation sequences against the components and
checks the global invariants after every step.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.errors import HistoryError
from repro.server.couples import global_id
from repro.server.history import HistoricalState, HistoryStore
from repro.server.locks import LockOwner, LockTable

OBJECTS = [global_id(i, p) for i in ("a", "b") for p in ("/x", "/y", "/z")]
OWNERS = [LockOwner(i, t) for i in ("inst-1", "inst-2") for t in (1, 2)]


class LockTableMachine(RuleBasedStateMachine):
    """The lock table against a trivial reference model."""

    def __init__(self):
        super().__init__()
        self.table = LockTable()
        self.model = {}  # obj -> owner

    @rule(obj=st.sampled_from(OBJECTS), owner=st.sampled_from(OWNERS))
    def acquire(self, obj, owner):
        ok = self.table.acquire(obj, owner)
        current = self.model.get(obj)
        if current is None or current.instance_id == owner.instance_id:
            assert ok
            self.model[obj] = owner
        else:
            assert not ok

    @rule(obj=st.sampled_from(OBJECTS), owner=st.sampled_from(OWNERS))
    def release(self, obj, owner):
        ok = self.table.release(obj, owner)
        if self.model.get(obj) == owner:
            assert ok
            del self.model[obj]
        else:
            assert not ok

    @rule(
        objs=st.lists(st.sampled_from(OBJECTS), min_size=1, max_size=4,
                      unique=True),
        owner=st.sampled_from(OWNERS),
    )
    def acquire_all(self, objs, owner):
        blocked = any(
            self.model.get(o) is not None
            and self.model[o].instance_id != owner.instance_id
            for o in objs
        )
        granted, conflicts = self.table.acquire_all(objs, owner)
        assert granted == (not blocked)
        if granted:
            for o in objs:
                self.model[o] = owner
        else:
            assert conflicts

    @rule(instance=st.sampled_from(["inst-1", "inst-2"]))
    def release_instance(self, instance):
        self.table.release_instance(instance)
        self.model = {
            o: owner
            for o, owner in self.model.items()
            if owner.instance_id != instance
        }

    @invariant()
    def table_matches_model(self):
        assert len(self.table) == len(self.model)
        for obj, owner in self.model.items():
            assert self.table.holder(obj) == owner


class HistoryMachine(RuleBasedStateMachine):
    """The history store against reference undo/redo stacks."""

    OBJ = global_id("a", "/doc")

    def __init__(self):
        super().__init__()
        self.store = HistoryStore(max_depth=8)
        self.undo_model = []
        self.redo_model = []
        self.counter = 0

    @rule()
    def push(self):
        self.counter += 1
        state = {"v": self.counter}
        self.store.push(HistoricalState(obj=self.OBJ, state=state))
        self.undo_model.append(state)
        if len(self.undo_model) > 8:
            self.undo_model.pop(0)
        self.redo_model.clear()

    @rule()
    def undo(self):
        self.counter += 1
        current = {"v": self.counter}
        if self.undo_model:
            entry = self.store.undo(self.OBJ, current_state=current)
            assert dict(entry.state) == self.undo_model.pop()
            self.redo_model.append(current)
            if len(self.redo_model) > 8:
                self.redo_model.pop(0)
        else:
            try:
                self.store.undo(self.OBJ, current_state=current)
                raise AssertionError("undo should have failed")
            except HistoryError:
                pass

    @rule()
    def redo(self):
        self.counter += 1
        current = {"v": self.counter}
        if self.redo_model:
            entry = self.store.redo(self.OBJ, current_state=current)
            assert dict(entry.state) == self.redo_model.pop()
            self.undo_model.append(current)
            if len(self.undo_model) > 8:
                self.undo_model.pop(0)
        else:
            try:
                self.store.redo(self.OBJ, current_state=current)
                raise AssertionError("redo should have failed")
            except HistoryError:
                pass

    @invariant()
    def depths_match(self):
        assert self.store.depth(self.OBJ) == (
            len(self.undo_model),
            len(self.redo_model),
        )


TestLockTableStateful = LockTableMachine.TestCase
TestLockTableStateful.settings = settings(max_examples=60)
TestHistoryStateful = HistoryMachine.TestCase
TestHistoryStateful.settings = settings(max_examples=60)
