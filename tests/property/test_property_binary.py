"""Property-based parity: the binary codec must agree with JSON.

For arbitrary protocol messages — unicode payloads, trace fields,
interned and non-interned strings, 64-bit floats, big ints — decoding a
binary frame must yield exactly the message JSON decoding yields, and
both must round-trip.  Mixed streams of the two codecs must reassemble
through one :class:`StreamDecoder` regardless of chunk boundaries.
"""

import string

from hypothesis import given, settings, strategies as st

from repro.net.binary import BINARY_CODEC, INTERN_TABLE
from repro.net.codec import JSON_CODEC, StreamDecoder, decode
from repro.net.message import ALL_KINDS, Message

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=40),
    st.sampled_from(INTERN_TABLE),
)

json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=20,
)

payloads = st.dictionaries(
    st.one_of(
        st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=10),
        st.sampled_from(INTERN_TABLE),
        st.text(max_size=6),
    ),
    json_values,
    max_size=5,
)

ids = st.text(alphabet=string.ascii_lowercase + string.digits, max_size=12)

traces = st.one_of(
    st.none(),
    st.tuples(st.text(max_size=32), st.text(max_size=16)),
)

messages = st.builds(
    Message,
    kind=st.sampled_from(sorted(ALL_KINDS)),
    sender=st.text(min_size=1, max_size=12),
    to=st.text(max_size=12),
    payload=payloads,
    reply_to=st.one_of(st.none(), st.integers(min_value=1, max_value=10**9)),
    trace=traces,
)


class TestBinaryJsonParity:
    @given(message=messages)
    def test_binary_roundtrip(self, message):
        assert decode(BINARY_CODEC.encode(message)) == message

    @given(message=messages)
    def test_binary_equals_json(self, message):
        from_binary = decode(BINARY_CODEC.encode(message))
        from_json = decode(JSON_CODEC.encode(message))
        assert from_binary == from_json == message
        assert from_binary.payload == from_json.payload
        assert from_binary.trace == from_json.trace
        assert from_binary.reply_to == from_json.reply_to

    @given(message=messages)
    def test_wire_size_matches_frame_length(self, message):
        assert BINARY_CODEC.wire_size(message) == len(
            BINARY_CODEC.encode(message)
        )
        assert JSON_CODEC.wire_size(message) == len(JSON_CODEC.encode(message))

    @given(
        batch=st.lists(
            st.tuples(messages, st.booleans()), min_size=1, max_size=8
        )
    )
    def test_mixed_codec_stream_reassembles(self, batch):
        blob = b"".join(
            (BINARY_CODEC if use_binary else JSON_CODEC).encode(m)
            for m, use_binary in batch
        )
        decoder = StreamDecoder()
        out = []
        for i in range(0, len(blob), 7):
            out.extend(decoder.feed(blob[i : i + 7]))
        assert out == [m for m, _ in batch]
        assert decoder.pending_bytes == 0
        assert decoder.last_codec == (
            "binary" if batch[-1][1] else "json"
        )

    @given(batch=st.lists(messages, min_size=2, max_size=6), cut=st.data())
    @settings(max_examples=50)
    def test_binary_stream_arbitrary_split(self, batch, cut):
        blob = b"".join(BINARY_CODEC.encode(m) for m in batch)
        point = cut.draw(st.integers(min_value=0, max_value=len(blob)))
        decoder = StreamDecoder()
        out = decoder.feed(blob[:point])
        out += decoder.feed(blob[point:])
        assert out == batch

    @given(payload=payloads)
    @settings(max_examples=100)
    def test_protocol_shaped_payload_parity(self, payload):
        # The E11-style hot-path shape: one payload fanned out to many
        # receivers; decode-side interning must not change values.
        first = Message(kind="event_broadcast", sender="server", to="r0",
                        payload=payload)
        second = Message(kind="event_broadcast", sender="server", to="r1",
                         payload=payload)
        out_first = decode(BINARY_CODEC.encode(first))
        out_second = decode(BINARY_CODEC.encode(second))
        assert out_first.payload == out_second.payload == dict(payload)
