"""Property tests for the delta state sync invariant.

The protocol's core claim: applying every incremental delta (attributes
written since the last capture) in order leaves a replica in exactly the
state a single full snapshot would.  These tests drive a random write
workload through the dirty-attribute clock and check replica equality at
every segment boundary.
"""

from hypothesis import given, settings, strategies as st

from repro.toolkit.tree import (
    apply_subtree_state,
    subtree_state,
    subtree_state_since,
)
from repro.toolkit.widget import state_clock
from repro.toolkit.widgets import Scale, Shell, TextField, ToggleButton

#: (relative path, attribute, value strategy) — coupling-relevant
#: attributes of the fixture tree below.
WRITABLE = [
    ("field", "value", st.text(max_size=8)),
    ("zoom", "value", st.integers(min_value=0, max_value=100)),
    ("flag", "set", st.booleans()),
]


def make_tree(name="app"):
    root = Shell(name, title="delta")
    TextField("field", parent=root)
    Scale("zoom", parent=root, maximum=100)
    ToggleButton("flag", parent=root)
    return root


@st.composite
def write_segments(draw):
    """A workload: segments of writes, one delta capture per segment."""
    segments = []
    for _ in range(draw(st.integers(min_value=1, max_value=5))):
        writes = []
        for _ in range(draw(st.integers(min_value=0, max_value=6))):
            rel, attr, values = draw(st.sampled_from(WRITABLE))
            writes.append((rel, attr, draw(values)))
        segments.append(writes)
    return segments


class TestDeltaEqualsFull:
    @given(segments=write_segments())
    @settings(max_examples=150)
    def test_applied_deltas_converge_to_full_snapshot(self, segments):
        sender = make_tree("s")
        delta_replica = make_tree("d")
        full_replica = make_tree("f")
        # First contact is always a full snapshot.
        apply_subtree_state(delta_replica, subtree_state(sender))
        baseline = state_clock()
        for writes in segments:
            for rel, attr, value in writes:
                sender.find(rel).set(attr, value)
            delta = subtree_state_since(sender, baseline)
            baseline = state_clock()
            apply_subtree_state(delta_replica, delta)
            # Invariant at every segment boundary, not just the end.
            assert subtree_state(delta_replica) == subtree_state(sender)
        apply_subtree_state(full_replica, subtree_state(sender))
        assert subtree_state(delta_replica) == subtree_state(full_replica)

    @given(segments=write_segments())
    @settings(max_examples=100)
    def test_idle_segments_produce_empty_deltas(self, segments):
        sender = make_tree("s")
        for writes in segments:
            for rel, attr, value in writes:
                sender.find(rel).set(attr, value)
        baseline = state_clock()
        assert subtree_state_since(sender, baseline) == {}

    @given(segments=write_segments())
    @settings(max_examples=100)
    def test_delta_contains_only_touched_widgets(self, segments):
        sender = make_tree("s")
        baseline = state_clock()
        touched = set()
        for writes in segments:
            for rel, attr, value in writes:
                sender.find(rel).set(attr, value)
                touched.add(rel)
        delta = subtree_state_since(sender, baseline)
        assert set(delta) <= touched
        for rel, values in delta.items():
            current = sender.find(rel).relevant_state()
            for attr, value in values.items():
                assert current[attr] == value

    @given(segments=write_segments())
    @settings(max_examples=100)
    def test_deltas_are_replayable_out_of_date_replica(self, segments):
        """A replica that missed nothing can apply deltas cumulatively."""
        sender = make_tree("s")
        replica = make_tree("r")
        apply_subtree_state(replica, subtree_state(sender))
        baseline = state_clock()
        cumulative_baseline = baseline
        for writes in segments:
            for rel, attr, value in writes:
                sender.find(rel).set(attr, value)
        # One cumulative delta covering all segments equals the sum of
        # per-segment deltas: versions are monotonic, never reset.
        delta = subtree_state_since(sender, cumulative_baseline)
        apply_subtree_state(replica, delta)
        assert subtree_state(replica) == subtree_state(sender)


class TestAttributeClock:
    @given(values=st.lists(st.text(max_size=5), min_size=1, max_size=6))
    @settings(max_examples=100)
    def test_last_write_wins_in_changed_since(self, values):
        tree = make_tree("s")
        field = tree.find("field")
        baseline = state_clock()
        for value in values:
            field.set("value", value)
        changed = field.changed_since(baseline)
        # set() skips no-op writes, so the attribute is dirty iff some
        # write actually changed the value; when dirty, the recorded value
        # is the current (last effective) one.
        assert field.get("value") == values[-1]
        if "value" in changed:
            assert changed["value"] == values[-1]
        if values[-1] != "":
            assert "value" in changed

    def test_versions_strictly_increase(self):
        tree = make_tree("s")
        field = tree.find("field")
        first = field.attribute_version("value")
        field.set("value", "x")
        second = field.attribute_version("value")
        field.set("value", "y")
        third = field.attribute_version("value")
        assert first < second < third
