"""Property-based tests for the wire codec and message envelope."""

import string

from hypothesis import given, settings, strategies as st

from repro.net.codec import StreamDecoder, decode, encode
from repro.net.message import ALL_KINDS, Message

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=40),
)

json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=20,
)

payloads = st.dictionaries(
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=10),
    json_values,
    max_size=5,
)

messages = st.builds(
    Message,
    kind=st.sampled_from(sorted(ALL_KINDS)),
    sender=st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8),
    to=st.text(alphabet=string.ascii_lowercase, max_size=8),
    payload=payloads,
    reply_to=st.one_of(st.none(), st.integers(min_value=1, max_value=10**6)),
)


class TestCodecProperties:
    @given(message=messages)
    def test_encode_decode_roundtrip(self, message):
        assert decode(encode(message)) == message

    @given(message=messages)
    def test_wire_roundtrip(self, message):
        assert Message.from_wire(message.to_wire()) == message

    @given(batch=st.lists(messages, min_size=1, max_size=10))
    def test_stream_decoder_reassembles_any_batch(self, batch):
        blob = b"".join(encode(m) for m in batch)
        decoder = StreamDecoder()
        out = []
        # Feed in fixed-size chunks that do not align with frames.
        for i in range(0, len(blob), 7):
            out.extend(decoder.feed(blob[i : i + 7]))
        assert out == batch
        assert decoder.pending_bytes == 0

    @given(batch=st.lists(messages, min_size=2, max_size=6), cut=st.data())
    @settings(max_examples=50)
    def test_stream_decoder_arbitrary_split(self, batch, cut):
        blob = b"".join(encode(m) for m in batch)
        point = cut.draw(st.integers(min_value=0, max_value=len(blob)))
        decoder = StreamDecoder()
        out = decoder.feed(blob[:point])
        out += decoder.feed(blob[point:])
        assert out == batch
