"""Property-based tests for destructive merging and flexible matching."""

from hypothesis import given, settings, strategies as st

from repro.core.merging import destructive_merge, flexible_match
from repro.toolkit.builder import build, to_spec
from repro.toolkit.tree import subtree_state

LEAF_TYPES = ["textfield", "pushbutton", "label", "scale", "canvas"]


@st.composite
def tree_specs(draw, depth=3, max_children=3):
    counter = [0]

    def node(level):
        counter[0] += 1
        name = f"w{counter[0]}"
        if level == 0 or draw(st.booleans()):
            return {"type": draw(st.sampled_from(LEAF_TYPES)), "name": name}
        children = [
            node(level - 1)
            for _ in range(draw(st.integers(min_value=0, max_value=max_children)))
        ]
        spec = {"type": "form", "name": name}
        if children:
            spec["children"] = children
        return spec

    return node(depth)


def paths_of(spec, prefix=""):
    yield prefix, spec["type"]
    for child in spec.get("children", []):
        child_prefix = f"{prefix}/{child['name']}" if prefix else child["name"]
        yield from paths_of(child, child_prefix)


class TestDestructiveMergeProperties:
    @given(source=tree_specs(), target=tree_specs())
    @settings(max_examples=80, deadline=None)
    def test_source_structure_always_imposed(self, source, target):
        """After a destructive merge, every source path exists in the
        target with the source's widget type."""
        target_widget = build(target)
        # Roots must agree in name for path comparison; rename the target.
        source = dict(source, name=target_widget.name)
        destructive_merge(target_widget, source)
        target_spec = to_spec(target_widget)
        target_index = dict(paths_of(target_spec))
        for rel, type_name in paths_of(source):
            if rel == "":
                continue  # the root widget itself is never replaced
            assert target_index.get(rel) == type_name

    @given(source=tree_specs())
    @settings(max_examples=60, deadline=None)
    def test_merge_is_idempotent(self, source):
        target = build({"type": "form", "name": source["name"]})
        first = destructive_merge(target, source)
        structure_after_first = to_spec(target)
        second = destructive_merge(target, source)
        assert to_spec(target) == structure_after_first
        assert second.created == []
        assert second.destroyed == []

    @given(source=tree_specs())
    @settings(max_examples=60, deadline=None)
    def test_merge_carries_state(self, source):
        source_widget = build(source)
        state = subtree_state(source_widget)
        target = build({"type": "form", "name": source["name"]})
        destructive_merge(target, to_spec(source_widget), state)
        for rel, values in state.items():
            if rel == "":
                continue
            assert target.find(rel).relevant_state() == values


class TestFlexibleMatchProperties:
    @given(source=tree_specs(), target=tree_specs())
    @settings(max_examples=80, deadline=None)
    def test_never_destroys_target_widgets(self, source, target):
        target_widget = build(target)
        before = [w.pathname for w in target_widget.walk()]
        source = dict(source, name=target_widget.name)
        report = flexible_match(target_widget, source)
        assert report.destroyed == []
        after = {w.pathname for w in target_widget.walk()}
        for pathname in before:
            assert pathname in after

    @given(source=tree_specs())
    @settings(max_examples=60, deadline=None)
    def test_identical_trees_fully_synchronized(self, source):
        source_widget = build(source)
        state = subtree_state(source_widget)
        target = build(source)
        report = flexible_match(target, to_spec(source_widget), state)
        assert subtree_state(target) == state
