"""Tests for the three architecture harnesses and their comparative claims."""

import math

import pytest

from repro.baselines import (
    ALL_ARCHITECTURES,
    FullyReplicatedHarness,
    MultiplexHarness,
    UIReplicatedHarness,
)
from repro.workloads import (
    TEXT_PATH,
    WorkloadConfig,
    editing_session,
)


def small_workload(n_users=3, actions=8, seed=11):
    return editing_session(
        WorkloadConfig(n_users=n_users, actions_per_user=actions, seed=seed)
    )


@pytest.mark.parametrize("harness_cls", ALL_ARCHITECTURES)
class TestCommonBehaviour:
    def test_convergence(self, harness_cls):
        harness = harness_cls(3)
        harness.run(small_workload())
        states = [harness.user_state(u, TEXT_PATH) for u in range(3)]
        assert states[0]["value"] == states[1]["value"] == states[2]["value"]
        harness.close()

    def test_all_actions_timed(self, harness_cls):
        harness = harness_cls(3)
        records = harness.run(small_workload())
        executed = [r for r in records if r.executed]
        assert executed, "some actions must execute"
        for record in executed:
            assert record.t_all is not None
            assert record.t_all >= record.t_issue
        harness.close()

    def test_metrics_shape(self, harness_cls):
        harness = harness_cls(2)
        harness.run(small_workload(n_users=2, actions=4))
        metrics = harness.metrics()
        for key in (
            "architecture",
            "echo_latency_mean",
            "sync_latency_mean",
            "messages_per_action",
            "central_inbound_messages",
        ):
            assert key in metrics
        assert metrics["users"] == 2
        assert not math.isnan(metrics["sync_latency_mean"])
        harness.close()

    def test_rejects_zero_users(self, harness_cls):
        with pytest.raises(ValueError):
            harness_cls(0)


class TestArchitectureSpecifics:
    def test_multiplex_echo_needs_roundtrip(self):
        harness = MultiplexHarness(2, base_latency=0.01)
        records = harness.run(small_workload(n_users=2, actions=5))
        for record in records:
            # Echo cannot be faster than 2 network hops.
            assert record.echo_latency >= 0.02 - 1e-9

    def test_ui_replicated_echo_immediate(self):
        harness = UIReplicatedHarness(2, base_latency=0.01)
        records = harness.run(small_workload(n_users=2, actions=5))
        for record in records:
            assert record.echo_latency == pytest.approx(0.0)

    def test_fully_replicated_echo_immediate(self):
        harness = FullyReplicatedHarness(2, base_latency=0.01)
        records = harness.run(small_workload(n_users=2, actions=5))
        for record in records:
            if record.executed:
                assert record.echo_latency == pytest.approx(0.0)
        harness.close()

    def test_semantic_blocking_hurts_ui_replicated(self):
        """The paper's §2.1 claim: a time-consuming semantic action blocks
        everyone in UI-replicated mode but not in the fully replicated
        architecture."""
        cost = 0.2
        workload = small_workload(n_users=4, actions=6)
        ui_rep = UIReplicatedHarness(4, semantic_cost=cost)
        ui_rep.run(workload)
        ui_sync = ui_rep.metrics()["sync_latency_p95"]
        full = FullyReplicatedHarness(4, semantic_cost=cost)
        full.run(workload)
        full_sync = full.metrics()["sync_latency_p95"]
        full.close()
        assert full_sync < ui_sync

    def test_multiplex_central_load_dominates(self):
        workload = small_workload(n_users=4, actions=6)
        harness = MultiplexHarness(4)
        harness.run(workload)
        metrics = harness.metrics()
        # Every action passes through the central endpoint.
        assert metrics["central_inbound_messages"] == metrics["actions"]

    def test_features_match_paper_table(self):
        assert MultiplexHarness.features["partial_coupling"] is False
        assert MultiplexHarness.features["local_echo"] is False
        assert UIReplicatedHarness.features["heterogeneous_instances"] is False
        assert FullyReplicatedHarness.features["partial_coupling"] is True
        assert FullyReplicatedHarness.features["heterogeneous_instances"] is True
        assert FullyReplicatedHarness.features["dynamic_grouping"] is True

    def test_fully_replicated_denied_actions_possible_under_race(self):
        """Near-simultaneous actions on one group may lose the floor; the
        denied count is reported, never silently dropped."""
        from repro.workloads import contention_burst

        harness = FullyReplicatedHarness(3, base_latency=0.01)
        records = harness.run(
            contention_burst(n_users=3, rounds=4, spacing=0.001)
        )
        metrics = harness.metrics()
        assert metrics["denied"] == sum(1 for r in records if not r.executed)
        harness.close()
