"""Unit tests for the exporters (repro.obs.export)."""

import json

from repro.obs.export import (
    render_json,
    render_prometheus,
    render_span_dump,
    spans_to_dicts,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import CLIENT_EMIT, SERVER_RECEIVE, SpanRecorder


def make_registry():
    reg = MetricsRegistry()
    reg.counter("repro_a_total", "A counter").inc(3)
    fam = reg.counter("repro_kinds_total", "by kind", labelnames=("kind",))
    fam.labels("event").inc(2)
    reg.gauge("repro_g", "A gauge").set(1.5)
    reg.histogram("repro_h_seconds", "h", buckets=(0.5, 2.0)).observe(1.0)
    return reg


def test_prometheus_headers_and_values():
    text = render_prometheus(make_registry().collect())
    lines = text.splitlines()
    assert "# HELP repro_a_total A counter" in lines
    assert "# TYPE repro_a_total counter" in lines
    assert "repro_a_total 3" in lines
    assert 'repro_kinds_total{kind="event"} 2' in lines
    assert "# TYPE repro_g gauge" in lines
    assert "repro_g 1.5" in lines


def test_prometheus_histogram_expansion():
    lines = render_prometheus(make_registry().collect()).splitlines()
    assert 'repro_h_seconds_bucket{le="0.5"} 0' in lines
    assert 'repro_h_seconds_bucket{le="2.0"} 1' in lines
    assert 'repro_h_seconds_bucket{le="+Inf"} 1' in lines
    assert "repro_h_seconds_sum 1.0" in lines
    assert "repro_h_seconds_count 1" in lines


def test_prometheus_one_header_per_family():
    text = render_prometheus(make_registry().collect())
    assert text.count("# TYPE repro_kinds_total") == 1


def test_prometheus_label_escaping():
    reg = MetricsRegistry()
    fam = reg.counter("repro_esc_total", labelnames=("path",))
    fam.labels('a"b\\c').inc()
    text = render_prometheus(reg.collect())
    assert 'repro_esc_total{path="a\\"b\\\\c"} 1' in text


def test_prometheus_label_escaping_newline():
    # The 0.0.4 text format requires \n in label values to be escaped —
    # an unescaped newline would split the sample across two lines.
    reg = MetricsRegistry()
    fam = reg.counter("repro_esc_total", labelnames=("path",))
    fam.labels("line1\nline2").inc()
    text = render_prometheus(reg.collect())
    assert 'repro_esc_total{path="line1\\nline2"} 1' in text
    sample_lines = [
        line for line in text.splitlines() if not line.startswith("#")
    ]
    assert len(sample_lines) == 1  # still one exposition line


def test_prometheus_label_escaping_all_specials_together():
    reg = MetricsRegistry()
    fam = reg.counter("repro_esc_total", labelnames=("path",))
    fam.labels('q"uote\\slash\nnewline').inc()
    text = render_prometheus(reg.collect())
    assert (
        'repro_esc_total{path="q\\"uote\\\\slash\\nnewline"} 1' in text
    )


def test_prometheus_labeled_histogram_conformance():
    # le must merge with the family's own labels, cumulative counts must
    # be monotonic, +Inf must equal _count, and _sum/_count must carry
    # the family labels without an le.
    reg = MetricsRegistry()
    fam = reg.histogram(
        "repro_h_seconds", "h", labelnames=("segment",), buckets=(0.5, 2.0)
    )
    for value in (0.1, 1.0, 9.0):
        fam.labels("e2e").observe(value)
    lines = render_prometheus(reg.collect()).splitlines()
    assert 'repro_h_seconds_bucket{segment="e2e",le="0.5"} 1' in lines
    assert 'repro_h_seconds_bucket{segment="e2e",le="2.0"} 2' in lines
    assert 'repro_h_seconds_bucket{segment="e2e",le="+Inf"} 3' in lines
    assert 'repro_h_seconds_count{segment="e2e"} 3' in lines
    (sum_line,) = [
        line
        for line in lines
        if line.startswith('repro_h_seconds_sum{segment="e2e"}')
    ]
    assert abs(float(sum_line.split()[-1]) - 10.1) < 1e-9
    cumulative = [
        int(line.split()[-1])
        for line in lines
        if line.startswith('repro_h_seconds_bucket{segment="e2e"')
    ]
    assert cumulative == sorted(cumulative)  # cumulative, never dips


def test_render_json_roundtrips():
    rec = SpanRecorder()
    span = rec.start(CLIENT_EMIT, endpoint="a")
    rec.finish(span)
    doc = json.loads(render_json(make_registry().collect(), rec))
    names = {m["name"] for m in doc["metrics"]}
    assert "repro_a_total" in names
    assert doc["span_stats"]["spans"] == 1
    assert doc["spans"][0]["name"] == CLIENT_EMIT
    assert doc["spans"][0]["duration"] is not None


def test_spans_to_dicts():
    rec = SpanRecorder()
    rec.finish(rec.start(CLIENT_EMIT))
    dicts = spans_to_dicts(rec)
    assert len(dicts) == 1
    assert dicts[0]["span_id"] == "s1"


def test_span_dump_indentation():
    rec = SpanRecorder()
    root = rec.start(CLIENT_EMIT, endpoint="a")
    child = rec.start(
        SERVER_RECEIVE,
        trace_id=root.trace_id,
        parent_id=root.span_id,
        endpoint="server",
    )
    rec.finish(child)
    rec.finish(root, outcome="executed")
    dump = render_span_dump(rec)
    lines = dump.splitlines()
    assert lines[0] == "trace t1"
    assert lines[1].startswith("  client.emit [s1@a]")
    assert "outcome=executed" in lines[1]
    assert lines[2].startswith("    server.receive [s2@server]")


def test_empty_renders():
    assert render_prometheus([]) == ""
    assert render_span_dump(SpanRecorder()) == ""
