"""Bounded EventTrace (toolkit.events) and Session.trace_stats()."""

import pytest

from repro.session import Session
from repro.toolkit.events import Event, EventTrace

from conftest import make_demo_tree


def make_event(n):
    return Event(type="key_press", source_path=f"/app/w{n}")


def test_default_capacity():
    trace = EventTrace()
    assert trace.capacity == 100_000
    assert len(trace) == 0


def test_maxlen_bounds_memory():
    trace = EventTrace(maxlen=3)
    for n in range(5):
        trace.record(make_event(n))
    assert len(trace) == 3
    assert trace.dropped == 2
    assert [e.source_path for e in trace.events()] == [
        "/app/w2",
        "/app/w3",
        "/app/w4",
    ]


def test_capacity_and_maxlen_mutually_exclusive():
    with pytest.raises(ValueError):
        EventTrace(10, maxlen=10)


def test_stats_shape():
    trace = EventTrace(maxlen=2)
    trace.record(make_event(0))
    assert trace.stats() == {"events": 1, "capacity": 2, "dropped": 0}


def test_session_trace_stats():
    sess = Session("memory", trace_maxlen=4, observability=False)
    try:
        a = sess.create_instance("a", user="alice")
        b = sess.create_instance("b", user="bob")
        ta, tb = make_demo_tree(), make_demo_tree()
        a.add_root(ta)
        b.add_root(tb)
        a.couple(ta.find("/app/form/name"), ("b", "/app/form/name"))
        sess.pump()
        field = ta.find("/app/form/name")
        for n in range(8):
            field.type_text(f"x{n}")
            sess.pump()
        stats = sess.trace_stats()
        assert set(stats) == {"instances", "spans"}
        assert stats["instances"]["a"]["capacity"] == 4
        assert stats["instances"]["a"]["events"] <= 4
        assert stats["instances"]["a"]["dropped"] > 0
        # Observability explicitly off: the span recorder stays empty.
        assert stats["spans"]["spans"] == 0
    finally:
        sess.close()
