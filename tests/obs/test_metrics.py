"""Unit tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
    Sample,
    log_buckets,
)


def test_counter_inc_and_snapshot():
    reg = MetricsRegistry()
    c = reg.counter("repro_test_total", "A test counter")
    c.inc()
    c.inc(4)
    samples = reg.collect()
    assert samples == [
        Sample("repro_test_total", "counter", "A test counter", (), 5)
    ]


def test_counter_rejects_negative_increment():
    reg = MetricsRegistry()
    c = reg.counter("repro_neg_total", "nope")
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_set_inc_dec():
    reg = MetricsRegistry()
    g = reg.gauge("repro_gauge", "A test gauge")
    g.set(10)
    g.inc(2)
    g.dec(5)
    assert reg.snapshot()["repro_gauge"][""] == 7


def test_labeled_family_children_are_cached():
    reg = MetricsRegistry()
    fam = reg.counter("repro_kinds_total", "by kind", labelnames=("kind",))
    fam.labels("event").inc()
    fam.labels("event").inc()
    fam.labels("unlock").inc()
    by_labels = {s.labels: s.value for s in reg.collect()}
    assert by_labels[(("kind", "event"),)] == 2
    assert by_labels[(("kind", "unlock"),)] == 1


def test_labels_arity_checked():
    reg = MetricsRegistry()
    fam = reg.counter("repro_l_total", "l", labelnames=("a", "b"))
    with pytest.raises(ValueError):
        fam.labels("only-one")


def test_get_or_create_conflicts_rejected():
    reg = MetricsRegistry()
    reg.counter("repro_x_total", "x")
    # Same name + kind is a get, not a create.
    assert reg.counter("repro_x_total", "x") is reg.counter("repro_x_total", "x")
    with pytest.raises(ValueError):
        reg.gauge("repro_x_total", "x")
    with pytest.raises(ValueError):
        reg.counter("repro_x_total", "x", labelnames=("kind",))


def test_histogram_buckets_cumulative():
    reg = MetricsRegistry()
    h = reg.histogram("repro_h_seconds", "h", buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        h.observe(value)
    samples = [s for s in reg.collect() if s.name == "repro_h_seconds"]
    hist = samples[0].value
    assert hist["count"] == 5
    assert hist["sum"] == pytest.approx(56.05)
    buckets = dict(hist["buckets"])
    assert buckets["0.1"] == 1
    assert buckets["1.0"] == 3
    assert buckets["10.0"] == 4
    assert buckets["+Inf"] == 5


def test_log_buckets_shape():
    buckets = log_buckets(start=1e-6, factor=4.0, count=12)
    assert buckets == DEFAULT_LATENCY_BUCKETS
    assert len(buckets) == 12
    assert buckets[0] == pytest.approx(1e-6)
    for lo, hi in zip(buckets, buckets[1:]):
        assert hi == pytest.approx(lo * 4.0)


def test_register_collector_pull_time():
    reg = MetricsRegistry()
    state = {"n": 0}

    def collect():
        yield Sample("repro_pull_total", "counter", "pull", (), state["n"])

    reg.register_collector(collect)
    state["n"] = 7
    assert reg.snapshot()["repro_pull_total"][""] == 7
    state["n"] = 9
    assert reg.snapshot()["repro_pull_total"][""] == 9


def test_collect_is_sorted():
    reg = MetricsRegistry()
    reg.counter("repro_b_total", "b").inc()
    reg.counter("repro_a_total", "a").inc()
    names = [s.name for s in reg.collect()]
    assert names == sorted(names)


def test_null_registry_is_inert():
    NULL_REGISTRY.counter("repro_void_total", "void").inc(100)
    NULL_REGISTRY.gauge("repro_void", "void").set(5)
    NULL_REGISTRY.histogram("repro_void_seconds", "void").observe(1.0)
    assert list(NULL_REGISTRY.collect()) == []
    assert not NULL_REGISTRY.enabled
