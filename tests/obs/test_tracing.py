"""Unit tests for the span recorder (repro.obs.tracing)."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import (
    CLIENT_EMIT,
    REMOTE_APPLY,
    SERVER_BROADCAST,
    SERVER_RECEIVE,
    SpanRecorder,
    observe_latencies,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 0.001
        return self.now


def test_start_finish_duration():
    clock = FakeClock()
    rec = SpanRecorder(clock=clock)
    span = rec.start(CLIENT_EMIT, endpoint="a")
    assert not span.finished and span.duration is None
    rec.finish(span, outcome="executed")
    assert span.finished
    assert span.duration == pytest.approx(0.001)
    assert span.attrs["outcome"] == "executed"


def test_ids_are_deterministic():
    rec = SpanRecorder()
    s1 = rec.start(CLIENT_EMIT)
    s2 = rec.start(SERVER_RECEIVE, trace_id=s1.trace_id, parent_id=s1.span_id)
    assert s1.trace_id == "t1"
    assert (s1.span_id, s2.span_id) == ("s1", "s2")
    rec2 = SpanRecorder()
    assert rec2.start(CLIENT_EMIT).span_id == "s1"


def test_ring_buffer_bound_and_eviction_counter():
    rec = SpanRecorder(maxlen=3)
    spans = [rec.start(CLIENT_EMIT) for _ in range(5)]
    assert len(rec) == 3
    assert rec.evicted == 2
    kept = {s.span_id for s in rec.spans()}
    assert kept == {"s3", "s4", "s5"}
    assert rec.stats()["evicted"] == 2


def test_maxlen_must_be_positive():
    with pytest.raises(ValueError):
        SpanRecorder(maxlen=0)


def test_tree_and_canonical_tree():
    rec = SpanRecorder()
    root = rec.start(CLIENT_EMIT, endpoint="a")
    recv = rec.start(
        SERVER_RECEIVE, trace_id=root.trace_id, parent_id=root.span_id
    )
    bcast = rec.start(
        SERVER_BROADCAST, trace_id=root.trace_id, parent_id=recv.span_id
    )
    apply_ = rec.start(
        REMOTE_APPLY, trace_id=root.trace_id, parent_id=bcast.span_id
    )
    for span in (apply_, bcast, recv, root):
        rec.finish(span)
    trees = rec.tree(root.trace_id)
    assert len(trees) == 1
    assert trees[0]["name"] == CLIENT_EMIT
    assert trees[0]["children"][0]["name"] == SERVER_RECEIVE
    canonical = rec.canonical_tree(root.trace_id)
    assert canonical == (
        (
            CLIENT_EMIT,
            ((SERVER_RECEIVE, ((SERVER_BROADCAST, ((REMOTE_APPLY, ()),)),)),),
        ),
    )


def test_stats_counts_open_spans():
    rec = SpanRecorder()
    a = rec.start(CLIENT_EMIT)
    rec.start(SERVER_RECEIVE, trace_id=a.trace_id, parent_id=a.span_id)
    rec.finish(a)
    stats = rec.stats()
    assert stats == {
        "spans": 2,
        "maxlen": 4096,
        "evicted": 0,
        "open": 1,
        "traces": 1,
    }


def test_observe_latencies_segments():
    clock = FakeClock()
    rec = SpanRecorder(clock=clock)
    root = rec.start(CLIENT_EMIT)
    rec.finish(root)
    open_span = rec.start(SERVER_RECEIVE, trace_id=root.trace_id)
    reg = MetricsRegistry()
    observed = observe_latencies(rec, reg)
    assert observed == 1  # open spans are skipped
    samples = {
        s.labels: s.value
        for s in reg.collect()
        if s.name == "repro_sync_latency_seconds"
    }
    hist = samples[(("segment", "e2e"),)]
    assert hist["count"] == 1
    assert hist["sum"] == pytest.approx(0.001)


def test_clear_resets():
    rec = SpanRecorder(maxlen=1)
    rec.start(CLIENT_EMIT)
    rec.start(CLIENT_EMIT)
    assert rec.evicted == 1
    rec.clear()
    assert len(rec) == 0
    assert rec.evicted == 0
    assert rec.trace_ids() == []
