"""Unit tests for cross-process metric transfer (repro.obs.remote)
and the span recorder's drain/ingest delta shipping."""

from repro.obs.metrics import MetricsRegistry, Sample
from repro.obs.remote import (
    SampleDiffer,
    ShardSampleCache,
    sample_from_wire,
    sample_to_wire,
)
from repro.obs.tracing import SpanRecorder


def make_samples():
    reg = MetricsRegistry()
    reg.counter("repro_a_total", "A").inc(3)
    fam = reg.counter("repro_k_total", "K", labelnames=("kind",))
    fam.labels("event").inc(2)
    reg.histogram("repro_h_seconds", "H", buckets=(0.5, 2.0)).observe(1.0)
    return reg


class TestSampleWire:
    def test_scalar_roundtrip(self):
        sample = Sample(
            "repro_a_total", "counter", "A", (("kind", "event"),), 3
        )
        assert sample_from_wire(sample_to_wire(sample)) == sample

    def test_histogram_roundtrip(self):
        (sample,) = [
            s for s in make_samples().collect()
            if s.name == "repro_h_seconds"
        ]
        back = sample_from_wire(sample_to_wire(sample))
        assert back == sample
        assert back.value["buckets"][-1] == ("+Inf", 1)
        assert back.value["count"] == 1
        assert back.value["sum"] == 1.0

    def test_wire_form_is_json_safe(self):
        import json

        (sample,) = [
            s for s in make_samples().collect()
            if s.name == "repro_h_seconds"
        ]
        # Survives a JSON round trip (what the link codec may do to it).
        wire = json.loads(json.dumps(sample_to_wire(sample)))
        assert sample_from_wire(wire) == sample


class TestSampleDiffer:
    def test_first_pull_is_full(self):
        reg = make_samples()
        differ = SampleDiffer()
        epoch, full, samples = differ.diff(reg.collect(), None)
        assert full
        assert epoch == differ.epoch
        assert len(samples) == len(reg.collect())

    def test_unchanged_pull_ships_nothing(self):
        reg = make_samples()
        differ = SampleDiffer()
        epoch, _, _ = differ.diff(reg.collect(), None)
        _, full, samples = differ.diff(reg.collect(), epoch)
        assert not full
        assert samples == []

    def test_delta_ships_only_changed_samples(self):
        reg = make_samples()
        differ = SampleDiffer()
        epoch, _, _ = differ.diff(reg.collect(), None)
        reg.counter("repro_a_total").inc()
        _, full, samples = differ.diff(reg.collect(), epoch)
        assert not full
        assert [sample_from_wire(s).name for s in samples] == [
            "repro_a_total"
        ]

    def test_epoch_mismatch_forces_full_snapshot(self):
        reg = make_samples()
        differ = SampleDiffer()
        differ.diff(reg.collect(), None)
        # A puller that talked to a previous incarnation supplies a stale
        # epoch and must get everything again.
        _, full, samples = differ.diff(reg.collect(), "stale-epoch")
        assert full
        assert len(samples) == len(reg.collect())

    def test_histogram_observation_marks_sample_changed(self):
        reg = make_samples()
        differ = SampleDiffer()
        epoch, _, _ = differ.diff(reg.collect(), None)
        reg.histogram("repro_h_seconds", buckets=(0.5, 2.0)).observe(3.0)
        _, _, samples = differ.diff(reg.collect(), epoch)
        assert [sample_from_wire(s).name for s in samples] == [
            "repro_h_seconds"
        ]


class TestShardSampleCache:
    def test_collect_adds_shard_label(self):
        cache = ShardSampleCache("shard-3")
        differ = SampleDiffer()
        epoch, full, samples = differ.diff(make_samples().collect(), None)
        cache.apply(epoch, full, samples)
        for sample in cache.collect():
            assert ("shard", "shard-3") in sample.labels

    def test_delta_updates_merge_into_cached_view(self):
        reg = make_samples()
        cache = ShardSampleCache("shard-0")
        differ = SampleDiffer()
        epoch, full, samples = differ.diff(reg.collect(), None)
        cache.apply(epoch, full, samples)
        reg.counter("repro_a_total").inc(7)
        epoch, full, samples = differ.diff(reg.collect(), epoch)
        cache.apply(epoch, full, samples)
        (counter,) = [
            s for s in cache.collect() if s.name == "repro_a_total"
        ]
        assert counter.value == 10
        # The untouched families are still present from the full pull.
        assert {s.name for s in cache.collect()} == {
            "repro_a_total", "repro_k_total", "repro_h_seconds",
        }

    def test_new_epoch_clears_stale_samples(self):
        cache = ShardSampleCache("shard-0")
        old = SampleDiffer(epoch="old-process")
        epoch, full, samples = old.diff(make_samples().collect(), None)
        cache.apply(epoch, full, samples)
        # The worker restarted: a fresh differ with only one family.
        reg = MetricsRegistry()
        reg.counter("repro_a_total", "A").inc(1)
        new = SampleDiffer(epoch="new-process")
        epoch, full, samples = new.diff(reg.collect(), None)
        cache.apply(epoch, full, samples)
        assert {s.name for s in cache.collect()} == {"repro_a_total"}
        assert cache.full_pulls == 2

    def test_registry_collector_integration(self):
        registry = MetricsRegistry()
        cache = ShardSampleCache("shard-1")
        registry.register_collector(cache.collect)
        differ = SampleDiffer()
        epoch, full, samples = differ.diff(make_samples().collect(), None)
        cache.apply(epoch, full, samples)
        names = {s.name for s in registry.collect()}
        assert "repro_a_total" in names


class TestSpanDrainIngest:
    def test_drain_ships_each_finished_span_once(self):
        rec = SpanRecorder()
        rec.finish(rec.start("client.emit"))
        first = rec.drain()
        assert [d["name"] for d in first] == ["client.emit"]
        assert rec.drain() == []

    def test_open_span_reships_once_finished(self):
        rec = SpanRecorder()
        span = rec.start("server.floor_held")
        (shipped,) = rec.drain()
        assert shipped["end"] is None
        assert rec.drain() == []  # still open: nothing new
        rec.finish(span)
        (reshipped,) = rec.drain()
        assert reshipped["span_id"] == shipped["span_id"]
        assert reshipped["end"] is not None

    def test_ingest_appends_and_upserts(self):
        worker = SpanRecorder(id_prefix="shard-0.")
        supervisor = SpanRecorder()
        span = worker.start("worker.apply", trace_id="t1")
        supervisor.ingest(worker.drain())
        assert supervisor.spans()[0].span_id == "shard-0.s1"
        assert not supervisor.spans()[0].finished
        worker.finish(span, did=4)
        supervisor.ingest(worker.drain())
        # Upserted in place, not duplicated.
        assert len(supervisor.spans()) == 1
        merged = supervisor.spans()[0]
        assert merged.finished
        assert merged.attrs["did"] == 4

    def test_id_prefix_keeps_merged_ids_unique(self):
        supervisor = SpanRecorder()
        supervisor.finish(supervisor.start("client.emit"))
        worker = SpanRecorder(id_prefix="shard-1.")
        worker.finish(worker.start("worker.apply", trace_id="t1"))
        supervisor.ingest(worker.drain())
        ids = [s.span_id for s in supervisor.spans()]
        assert len(ids) == len(set(ids)) == 2

    def test_merged_tree_crosses_the_process_boundary(self):
        supervisor = SpanRecorder()
        root = supervisor.start("client.emit")
        forward = supervisor.start(
            "cluster.forward", trace_id=root.trace_id,
            parent_id=root.span_id,
        )
        worker = SpanRecorder(id_prefix="shard-0.")
        apply_span = worker.start(
            "worker.apply", trace_id=root.trace_id,
            parent_id=forward.span_id,
        )
        worker.finish(apply_span)
        supervisor.finish(forward)
        supervisor.finish(root)
        supervisor.ingest(worker.drain())
        assert supervisor.canonical_tree(root.trace_id) == (
            ("client.emit", (("cluster.forward", (("worker.apply", ()),)),)),
        )

    def test_clear_resets_ship_state(self):
        rec = SpanRecorder()
        rec.finish(rec.start("client.emit"))
        rec.drain()
        rec.clear()
        rec.finish(rec.start("client.emit"))
        assert len(rec.drain()) == 1
