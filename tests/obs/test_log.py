"""Unit tests for structured logging (repro.obs.log)."""

import io
import logging

from repro.obs.log import format_event, get_logger, log_event, setup_logging


def test_get_logger_namespacing():
    assert get_logger("net.aio").name == "repro.net.aio"
    assert get_logger("repro.net.tcp").name == "repro.net.tcp"
    assert get_logger("repro").name == "repro"


def test_format_event_key_values():
    assert format_event("drop", client="i2", n=3) == "event=drop client=i2 n=3"


def test_format_event_quotes_awkward_values():
    text = format_event("x", msg="a b", expr="k=v")
    assert text == "event=x msg='a b' expr='k=v'"


def test_log_event_respects_level():
    stream = io.StringIO()
    handler = setup_logging(level=logging.WARNING, stream=stream)
    try:
        log = get_logger("net.test")
        log_event(log, logging.DEBUG, "quiet", n=1)
        log_event(log, logging.WARNING, "loud", n=2)
    finally:
        logging.getLogger("repro").removeHandler(handler)
    output = stream.getvalue()
    assert "event=quiet" not in output
    assert "event=loud n=2" in output


def test_silent_by_default():
    # The namespace root has a NullHandler: emitting with no configured
    # handlers must not raise or warn.
    log = get_logger("net.silent")
    log_event(log, logging.ERROR, "nobody_listens", x=1)


def test_overflow_drop_is_logged():
    """The aio transport's backpressure drop emits a structured record."""
    from repro.net.aio import AioHostTransport, BatchConfig, SendQueue
    from repro.net.message import Message

    stream = io.StringIO()
    handler = setup_logging(level=logging.WARNING, stream=stream)
    transport = AioHostTransport(
        lambda message: None,
        config=BatchConfig(max_queue=1, backpressure="drop"),
    )
    try:
        msg = Message(kind="event", sender="x", to="slow", payload={})
        queue = SendQueue("slow", transport.config)
        # The "drop" overflow path only records stats and logs, so it is
        # safe to exercise directly without going through the loop.
        transport._on_overflow(queue, msg)
    finally:
        transport.close()
        logging.getLogger("repro").removeHandler(handler)
    output = stream.getvalue()
    assert "event=send_queue_overflow" in output
    assert "destination=slow" in output
    assert "policy=drop" in output
