"""Tests for the synthetic workload generators."""

import pytest

from repro.toolkit.builder import build
from repro.toolkit.events import DRAW, KEY_PRESS, VALUE_CHANGED
from repro.workloads import (
    TEXT_PATH,
    UserAction,
    WorkloadConfig,
    assign_ids,
    contention_burst,
    drawing_session,
    editing_session,
    standard_form_spec,
    typing_burst,
)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(n_users=0)
        with pytest.raises(ValueError):
            WorkloadConfig(actions_per_user=0)
        with pytest.raises(ValueError):
            WorkloadConfig(text_commit_ratio=0.9, menu_ratio=0.5)


class TestStandardForm:
    def test_spec_builds_and_paths_resolve(self):
        root = build(standard_form_spec())
        for path in (TEXT_PATH, "/app/form/menu", "/app/form/button",
                     "/app/form/scale", "/app/board/canvas"):
            assert root.find(path) is not None


class TestEditingSession:
    def test_deterministic(self):
        config = WorkloadConfig(seed=3)
        assert editing_session(config) == editing_session(config)

    def test_seed_changes_workload(self):
        a = editing_session(WorkloadConfig(seed=1))
        b = editing_session(WorkloadConfig(seed=2))
        assert a != b

    def test_counts(self):
        config = WorkloadConfig(n_users=3, actions_per_user=7)
        actions = editing_session(config)
        assert len(actions) == 21
        assert {a.user for a in actions} == {0, 1, 2}

    def test_sorted_with_sequential_ids(self):
        actions = editing_session(WorkloadConfig())
        times = [a.at for a in actions]
        assert times == sorted(times)
        assert [a.action_id for a in actions] == list(range(len(actions)))

    def test_event_mix_roughly_follows_ratios(self):
        config = WorkloadConfig(
            n_users=4, actions_per_user=100, text_commit_ratio=0.5,
            menu_ratio=0.3, seed=5,
        )
        actions = editing_session(config)
        text = sum(1 for a in actions if a.event_type == VALUE_CHANGED)
        frac = text / len(actions)
        assert 0.4 < frac < 0.6

    def test_actions_carry_params(self):
        actions = editing_session(WorkloadConfig())
        commits = [a for a in actions if a.event_type == VALUE_CHANGED]
        assert all("value" in a.params for a in commits)


class TestTypingBurst:
    def test_fine_grained_one_event_per_key(self):
        actions = typing_burst(text="abc", fine_grained=True)
        assert len(actions) == 3
        assert all(a.event_type == KEY_PRESS for a in actions)
        assert [a.params["key"] for a in actions] == ["a", "b", "c"]

    def test_coarse_single_commit(self):
        actions = typing_burst(text="abc", fine_grained=False)
        assert len(actions) == 1
        assert actions[0].event_type == VALUE_CHANGED
        assert actions[0].params["value"] == "abc"

    def test_keystroke_spacing(self):
        actions = typing_burst(
            text="ab", keystroke_interval=0.5, start=1.0
        )
        assert actions[0].at == pytest.approx(1.0)
        assert actions[1].at == pytest.approx(1.5)


class TestDrawingSession:
    def test_stroke_structure(self):
        actions = drawing_session(n_users=2, strokes_per_user=3)
        assert len(actions) == 6
        for action in actions:
            assert action.event_type == DRAW
            stroke = action.params["stroke"]
            assert len(stroke["points"]) == 8

    def test_points_within_canvas(self):
        actions = drawing_session(canvas_size=(10, 5), strokes_per_user=10)
        for action in actions:
            for x, y in action.params["stroke"]["points"]:
                assert 0 <= x <= 9 and 0 <= y <= 4


class TestContentionBurst:
    def test_rounds_tightly_spaced(self):
        actions = contention_burst(n_users=3, rounds=2, spacing=0.001)
        assert len(actions) == 6
        first_round = actions[:3]
        spread = max(a.at for a in first_round) - min(a.at for a in first_round)
        assert spread <= 0.002 + 1e-9

    def test_each_round_covers_all_users(self):
        actions = contention_burst(n_users=4, rounds=3)
        for r in range(3):
            chunk = actions[r * 4 : (r + 1) * 4]
            assert {a.user for a in chunk} == {0, 1, 2, 3}


class TestAssignIds:
    def test_orders_by_time(self):
        raw = [
            UserAction(at=2.0, user=0, path="/x", event_type=VALUE_CHANGED),
            UserAction(at=1.0, user=1, path="/x", event_type=VALUE_CHANGED),
        ]
        out = assign_ids(raw)
        assert out[0].user == 1
        assert [a.action_id for a in out] == [0, 1]
