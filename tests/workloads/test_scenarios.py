"""Tests for the composite collaboration scenarios."""


from repro.workloads.scenarios import (
    classroom_lesson,
    design_meeting,
    joint_retrieval,
)


class TestClassroomLesson:
    def test_runs_and_converges(self):
        report = classroom_lesson(n_students=3, exercises=2, seed=5)
        assert report.observations["reference_reached_all"] is True
        assert report.messages > 0

    def test_individual_work_costs_no_traffic(self):
        report = classroom_lesson(n_students=4, exercises=1, seed=9)
        assert report.observations["exercise0_solo_messages"] == 0

    def test_help_requests_buffered(self):
        report = classroom_lesson(n_students=4, exercises=1, seed=9)
        assert report.observations["exercise0_help_queue"] >= 1

    def test_deterministic(self):
        a = classroom_lesson(seed=3)
        b = classroom_lesson(seed=3)
        assert a.messages == b.messages
        assert a.observations == b.observations


class TestJointRetrieval:
    def test_every_query_reexecutes_everywhere(self):
        report = joint_retrieval(n_participants=3, queries=4)
        assert report.observations["queries_per_app"] == [4, 4, 4]

    def test_forms_converge(self):
        report = joint_retrieval(n_participants=3, queries=5)
        assert report.observations["forms_converged"] is True

    def test_scan_cost_scales_with_participants(self):
        small = joint_retrieval(n_participants=2, queries=3, db_rows=200)
        large = joint_retrieval(n_participants=4, queries=3, db_rows=200)
        assert (
            large.observations["total_rows_scanned"]
            == 2 * small.observations["total_rows_scanned"]
        )


class TestDesignMeeting:
    def test_rejoin_catches_up(self):
        report = design_meeting(n_participants=4, strokes_per_phase=5)
        assert report.observations["converged"] is True
        counts = report.observations["stroke_counts"]
        assert len(set(counts.values())) == 1
        # The leaver's snapshot is strictly smaller than the final board.
        assert report.observations["snapshot_while_away"] < max(counts.values())

    def test_phases_recorded(self):
        report = design_meeting()
        assert "one-leaves" in report.phases
        assert "re-join" in report.phases

    def test_deterministic(self):
        assert (
            design_meeting(seed=4).observations
            == design_meeting(seed=4).observations
        )
