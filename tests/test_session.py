"""Tests for the session harnesses (LocalSession / TcpSession)."""

import pytest

from repro.errors import ServerError
from repro.server.server import SERVER_ID
from repro.session import LocalSession, TcpSession
from repro.toolkit.widgets import Shell, TextField


class TestLocalSession:
    def test_server_attached_and_bound(self):
        session = LocalSession()
        assert SERVER_ID in session.network.endpoints()
        session.close()

    def test_create_instance_registers_by_default(self):
        session = LocalSession()
        inst = session.create_instance("x", user="u")
        assert inst.registered
        assert "x" in session.server.registry
        session.close()

    def test_create_instance_without_register(self):
        session = LocalSession()
        inst = session.create_instance("x", user="u", register=False)
        assert not inst.registered
        assert "x" not in session.server.registry
        session.close()

    def test_drop_instance(self):
        session = LocalSession()
        session.create_instance("x", user="u")
        session.drop_instance("x")
        assert "x" not in session.instances
        assert "x" not in session.server.registry
        session.drop_instance("ghost")  # no-op, no raise
        session.close()

    def test_traffic_snapshot(self):
        session = LocalSession()
        session.create_instance("x", user="u")
        traffic = session.traffic()
        assert traffic["messages"] >= 2  # register + ack
        session.close()

    def test_now_tracks_clock(self):
        session = LocalSession(base_latency=0.5)
        session.create_instance("x", user="u")
        assert session.now >= 1.0  # register round trip
        session.close()

    def test_close_unregisters_everyone(self):
        session = LocalSession()
        session.create_instance("x", user="u")
        session.create_instance("y", user="v")
        session.close()
        assert len(session.server.registry) == 0

    def test_ack_release_flag_plumbs_through(self):
        session = LocalSession(ack_release=False)
        assert session.server.ack_release is False
        session.close()

    def test_default_deny_policy(self):
        session = LocalSession(default_allow=False)
        a = session.create_instance("a", user="u1")
        b = session.create_instance("b", user="u2")
        tree_a = a.add_root(Shell("ui"))
        TextField("f", parent=tree_a)
        tree_b = b.add_root(Shell("ui"))
        TextField("f", parent=tree_b)
        with pytest.raises(ServerError):
            a.couple(tree_a.find("/ui/f"), ("b", "/ui/f"))
        session.close()

    def test_seed_controls_determinism(self):
        def run(seed):
            session = LocalSession(jitter=0.01, seed=seed)
            a = session.create_instance("a", user="u1")
            b = session.create_instance("b", user="u2")
            ta = a.add_root(Shell("ui"))
            TextField("f", parent=ta)
            tb = b.add_root(Shell("ui"))
            TextField("f", parent=tb)
            a.couple(ta.find("/ui/f"), ("b", "/ui/f"))
            session.pump()
            for i in range(5):
                ta.find("/ui/f").commit(str(i))
            session.pump()
            result = session.now
            session.close()
            return result

        assert run(1) == run(1)
        assert run(1) != run(2)


class TestTcpSession:
    def test_context_manager_and_roundtrip(self):
        with TcpSession() as session:
            a = session.create_instance("a", user="u1")
            b = session.create_instance("b", user="u2")
            b.on_command("echo", lambda data, sender: data)
            assert a.send_command("echo", "ping", targets=["b"],
                                  want_reply=True) == "ping"

    def test_port_assigned(self):
        with TcpSession() as session:
            assert session.port > 0

    def test_close_tolerates_dead_instances(self):
        session = TcpSession()
        inst = session.create_instance("a", user="u")
        inst.transport.close()  # simulate a crash
        session.close()  # must not raise
