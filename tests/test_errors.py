"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    def test_family_bases(self):
        assert issubclass(errors.UnknownAttributeError, errors.ToolkitError)
        assert issubclass(errors.CodecError, errors.NetworkError)
        assert issubclass(errors.LockDeniedError, errors.ServerError)
        assert issubclass(errors.IncompatibleObjectsError, errors.CouplingError)

    def test_dual_inheritance_for_std_idioms(self):
        # These double as the standard exceptions callers expect.
        assert issubclass(errors.UnknownAttributeError, AttributeError)
        assert issubclass(errors.AttributeValidationError, ValueError)
        assert issubclass(errors.PathError, KeyError)
        assert issubclass(errors.CodecError, ValueError)

    def test_messages_carry_context(self):
        exc = errors.UnknownAttributeError("pushbutton", "bogus")
        assert "pushbutton" in str(exc) and "bogus" in str(exc)
        exc2 = errors.PermissionDeniedError("kim", "teacher:/board", "write")
        assert exc2.user == "kim" and exc2.right == "write"
        exc3 = errors.IncompatibleObjectsError("a", "b", "shape mismatch")
        assert exc3.reason == "shape mismatch"
        exc4 = errors.UnknownCommandError("frobnicate")
        assert exc4.command == "frobnicate"
        exc5 = errors.NotRegisteredError("inst-1")
        assert exc5.instance_id == "inst-1"

    def test_catch_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.AttributeValidationError("x", 1, "nope")
