"""Behavioral tests for the ShardedCosoftCluster front-end router."""


from repro.cluster import ShardedCosoftCluster
from repro.net import kinds
from repro.net.message import Message
from repro.net.transport import TrafficStats, Transport
from repro.session import ClusterSession
from repro.toolkit.widgets import Shell, TextField


class Outbox(Transport):
    """Captures everything the cluster emits toward clients."""

    def __init__(self):
        self.sent = []
        self._closed = False
        self._stats = TrafficStats()

    @property
    def local_id(self):
        return "server"

    @property
    def stats(self):
        return self._stats

    def send(self, message):
        self.sent.append(message)

    def recv(self, message):
        pass  # the cluster is driven directly via handle_message

    def drive(self, predicate, timeout=5.0):
        return bool(predicate())

    def close(self):
        self._closed = True

    @property
    def closed(self):
        return self._closed

    def of_kind(self, kind):
        return [m for m in self.sent if m.kind == kind]


def make_cluster(shards=2, **kwargs):
    cluster = ShardedCosoftCluster(shards, **kwargs)
    outbox = Outbox()
    cluster.bind(outbox)
    return cluster, outbox


def register(cluster, instance_id, user="u"):
    cluster.handle_message(
        Message(kind=kinds.REGISTER, sender=instance_id, payload={"user": user})
    )


class TestRegistration:
    def test_register_fans_out_to_every_shard(self):
        cluster, outbox = make_cluster(shards=3)
        register(cluster, "x")
        for shard in cluster.shards.values():
            assert "x" in shard.registry
        assert "x" in cluster.registry

    def test_exactly_one_ack_reaches_the_client(self):
        cluster, outbox = make_cluster(shards=4)
        register(cluster, "x")
        acks = outbox.of_kind(kinds.REGISTER_ACK)
        assert len(acks) == 1  # the shards' duplicate acks are suppressed
        assert acks[0].to == "x"
        assert acks[0].payload["couples"] == []
        assert [r["instance_id"] for r in acks[0].payload["roster"]] == ["x"]

    def test_roster_broadcast_excludes_the_joiner(self):
        cluster, outbox = make_cluster(shards=2)
        register(cluster, "x")
        register(cluster, "y")
        updates = outbox.of_kind(kinds.INSTANCE_LIST)
        assert [m.to for m in updates] == ["x"]
        assert updates[0].payload["joined"] == "y"

    def test_duplicate_register_rejected(self):
        cluster, outbox = make_cluster()
        register(cluster, "x")
        register(cluster, "x")
        errors = outbox.of_kind(kinds.ERROR)
        assert len(errors) == 1
        assert "already registered" in errors[0].payload["reason"]
        # No shard saw the duplicate as a fresh registration.
        assert all(len(s.registry) == 1 for s in cluster.shards.values())


class TestUnregister:
    def test_unregister_cleans_every_shard(self):
        cluster, outbox = make_cluster(shards=3)
        register(cluster, "x")
        register(cluster, "y")
        cluster.handle_message(Message(kind=kinds.UNREGISTER, sender="x"))
        assert "x" not in cluster.registry
        for shard in cluster.shards.values():
            assert "x" not in shard.registry
            assert "y" in shard.registry
        leaves = [
            m for m in outbox.of_kind(kinds.INSTANCE_LIST)
            if m.payload.get("left") == "x"
        ]
        assert [m.to for m in leaves] == ["y"]

    def test_unknown_unregister_rejected(self):
        cluster, outbox = make_cluster()
        cluster.handle_message(Message(kind=kinds.UNREGISTER, sender="ghost"))
        assert len(outbox.of_kind(kinds.ERROR)) == 1


class TestUnsupportedKind:
    def test_server_only_kind_is_rejected(self):
        cluster, outbox = make_cluster()
        register(cluster, "x")
        cluster.handle_message(
            Message(kind=kinds.LOCK_REPLY, sender="x", payload={})
        )
        errors = outbox.of_kind(kinds.ERROR)
        assert len(errors) == 1
        assert errors[0].payload["reason"] == "unsupported message kind"

    def test_migration_kinds_require_the_router_sender(self):
        cluster, outbox = make_cluster()
        register(cluster, "x")
        # A client must not be able to trigger migration internals even
        # when addressing a shard through the router's routed kinds; the
        # router itself never routes MIGRATE_* from clients.
        cluster.handle_message(
            Message(
                kind=kinds.MIGRATE_EXPORT, sender="x", payload={"objects": []}
            )
        )
        assert len(outbox.of_kind(kinds.ERROR)) == 1


class TestPermissions:
    def test_rule_lands_on_every_shard_with_one_reply(self):
        session = ClusterSession(shards=3)
        a = session.create_instance("a", user="u1")
        from repro.server.permissions import PermissionRule

        a.set_permission(
            PermissionRule(
                user="*", instance_id="a", path_prefix="/", right="couple",
                allow=False,
            )
        )
        session.pump()
        for shard in session.cluster.shards.values():
            assert len(shard.access.rules()) == 1
        session.close()


class TestRoutingAndMigration:
    def test_cross_shard_couple_migrates_the_smaller_group(self):
        session = ClusterSession(shards=2)
        cluster = session.cluster
        # Pick two instance ids whose objects hash to different shards so
        # the couple below is guaranteed to cross them.
        gid = lambda iid: (iid, "/ui/f")
        candidates = [chr(ord("a") + i) for i in range(10)]
        first = candidates[0]
        second = next(
            c for c in candidates[1:]
            if cluster.shard_of(gid(c)) != cluster.shard_of(gid(first))
        )
        x = session.create_instance(first, user="u1")
        y = session.create_instance(second, user="u2")
        tx = x.add_root(Shell("ui"))
        TextField("f", parent=tx)
        ty = y.add_root(Shell("ui"))
        TextField("f", parent=ty)
        winner = cluster.shard_of(gid(first))  # equal sizes: source side wins
        x.couple(tx.find("/ui/f"), (second, "/ui/f"))
        session.pump()
        assert cluster.migrations == 1
        assert cluster.shard_of(gid(first)) == winner
        assert cluster.shard_of(gid(second)) == winner
        assert len(cluster.shards[winner].couples) == 1
        loser = next(s for s in cluster.shard_ids if s != winner)
        assert len(cluster.shards[loser].couples) == 0
        session.close()

    def test_same_shard_couple_does_not_migrate(self):
        session = ClusterSession(shards=2)
        cluster = session.cluster
        gid = lambda iid: (iid, "/ui/f")
        candidates = [chr(ord("a") + i) for i in range(10)]
        first = candidates[0]
        second = next(
            c for c in candidates[1:]
            if cluster.shard_of(gid(c)) == cluster.shard_of(gid(first))
        )
        x = session.create_instance(first, user="u1")
        y = session.create_instance(second, user="u2")
        tx = x.add_root(Shell("ui"))
        TextField("f", parent=tx)
        ty = y.add_root(Shell("ui"))
        TextField("f", parent=ty)
        x.couple(tx.find("/ui/f"), (second, "/ui/f"))
        session.pump()
        assert cluster.migrations == 0
        session.close()

    def test_events_flow_through_the_owning_shard_only(self):
        session = ClusterSession(shards=4)
        cluster = session.cluster
        a = session.create_instance("a", user="u1")
        b = session.create_instance("b", user="u2")
        ta = a.add_root(Shell("ui"))
        TextField("f", parent=ta)
        tb = b.add_root(Shell("ui"))
        TextField("f", parent=tb)
        a.couple(ta.find("/ui/f"), ("b", "/ui/f"))
        session.pump()
        cluster.reset_shard_traffic()
        for i in range(3):
            ta.find("/ui/f").commit(str(i))
        session.pump()
        assert tb.find("/ui/f").value == "2"
        home = cluster.shard_of(("a", "/ui/f"))
        with_events = [
            shard_id
            for shard_id in cluster.shard_ids
            if cluster.shards[shard_id].processed[kinds.EVENT]
        ]
        assert with_events == [home]
        session.close()

    def test_decouple_returns_group_to_ring_placement(self):
        session = ClusterSession(shards=2)
        cluster = session.cluster
        a = session.create_instance("a", user="u1")
        b = session.create_instance("b", user="u2")
        ta = a.add_root(Shell("ui"))
        TextField("f", parent=ta)
        tb = b.add_root(Shell("ui"))
        TextField("f", parent=tb)
        a.couple(ta.find("/ui/f"), ("b", "/ui/f"))
        session.pump()
        a.decouple(ta.find("/ui/f"), ("b", "/ui/f"))
        session.pump()
        assert len(cluster.mirror) == 0
        assert all(len(s.couples) == 0 for s in cluster.shards.values())
        session.close()


class TestFreezeBuffer:
    def test_messages_for_frozen_objects_are_buffered_then_replayed(self):
        cluster, outbox = make_cluster(shards=2)
        register(cluster, "a")
        register(cluster, "b")
        frozen_gid = ("a", "/ui/x")
        cluster._frozen.add(frozen_gid)
        fetch = Message(
            kind=kinds.FETCH_STATE,
            sender="b",
            payload={"object": ["a", "/ui/x"]},
        )
        cluster.handle_message(fetch)
        assert cluster.processed["__buffered__"] == 1
        assert fetch in cluster._migration_buffer
        home = cluster.shard_of(frozen_gid)
        assert cluster.shards[home].processed[kinds.FETCH_STATE] == 0
        # Thaw: the buffer replays into the (new) home shard.
        cluster._frozen.clear()
        cluster._drain_buffer()
        assert cluster._migration_buffer == []
        assert cluster.shards[home].processed[kinds.FETCH_STATE] == 1

    def test_unrelated_messages_pass_while_a_group_is_frozen(self):
        cluster, outbox = make_cluster(shards=2)
        register(cluster, "a")
        register(cluster, "b")
        cluster._frozen.add(("a", "/ui/x"))
        other = Message(
            kind=kinds.FETCH_STATE,
            sender="a",
            payload={"object": ["b", "/ui/y"]},
        )
        cluster.handle_message(other)
        assert cluster.processed["__buffered__"] == 0
        cluster._frozen.clear()


class TestStats:
    def test_shard_traffic_merges_per_shard_transports(self):
        session = ClusterSession(shards=2)
        cluster = session.cluster
        session.create_instance("a", user="u1")
        session.create_instance("b", user="u2")
        session.pump()
        total = cluster.shard_traffic()
        assert total.messages == sum(
            stats.messages for stats in cluster._shard_stats.values()
        )
        assert total.messages > 0
        session.close()

    def test_stats_shape(self):
        cluster, outbox = make_cluster(shards=2)
        register(cluster, "x")
        stats = cluster.stats()
        assert stats["shards"] == 2
        assert stats["registered"] == 1
        assert stats["migrations"] == 0
        assert set(stats["per_shard"]) == set(cluster.shard_ids)
        for shard_stats in stats["per_shard"].values():
            assert shard_stats["processed"][kinds.REGISTER] == 1

    def test_modeled_makespan_shrinks_with_more_shards(self):
        def makespan(shards):
            cluster, outbox = make_cluster(shards=shards, service_time=1.0)
            for i in range(16):
                register(cluster, f"inst-{i}")
            return cluster.modeled_makespan()

        single = makespan(1)
        spread = makespan(4)
        assert single > 0
        # Registration fans out everywhere, so every shard pays for all 16
        # registers; broadcast work cannot parallelize away.
        assert spread == single

    def test_modeled_makespan_shrinks_for_group_scoped_work(self):
        def makespan(shards):
            # Service must dwarf the simulated network latency so queueing
            # (not message timing) dominates the modeled busy periods.
            session = ClusterSession(shards=shards, service_time=1.0)
            cluster = session.cluster
            instances = {}
            for i in range(8):
                iid = f"inst-{i}"
                instances[iid] = session.create_instance(iid, user=f"u{i}")
            trees = {}
            for iid, inst in instances.items():
                tree = inst.add_root(Shell("ui"))
                TextField("f", parent=tree)
                trees[iid] = tree
            # Four disjoint couple pairs: four independent groups.
            ids = list(instances)
            for left, right in zip(ids[0::2], ids[1::2]):
                instances[left].couple(
                    trees[left].find("/ui/f"), (right, "/ui/f")
                )
            session.pump()
            cluster._busy_until.clear()
            for left in ids[0::2]:
                for i in range(5):
                    trees[left].find("/ui/f").commit(f"{left}-{i}")
            session.pump()
            result = cluster.modeled_makespan()
            session.close()
            return result

        assert makespan(4) < makespan(1)
