"""Migration state transfer: export/import round-trips and live moves."""

from repro.net import kinds
from repro.net.message import Message
from repro.net.transport import ROUTER_ID
from repro.server.couples import CoupleLink
from repro.server.history import HistoricalState
from repro.server.locks import LockOwner
from repro.server.server import CosoftServer
from repro.session import ClusterSession
from repro.toolkit.widgets import Shell, TextField


def seeded_server():
    """A server holding one two-object group with a lock and history."""
    server = CosoftServer()
    left = ("a", "/ui/f")
    right = ("b", "/ui/f")
    server.couples.add_link(CoupleLink(source=left, target=right, creator="a"))
    owner = LockOwner(instance_id="a", token=7)
    server.locks.acquire(left, owner)
    server.locks.acquire(right, owner)
    server.history.push(
        HistoricalState(obj=right, state={"value": "old"}, by_user="bob",
                        timestamp=1.0)
    )
    return server, left, right, owner


class TestExportImportRoundTrip:
    def test_export_strips_the_source_server(self):
        server, left, right, owner = seeded_server()
        data = server.export_group([left, right])
        assert len(server.couples) == 0
        assert len(server.locks) == 0
        assert len(server.history) == 0
        assert len(data["links"]) == 1
        assert len(data["locks"]) == 2
        assert len(data["history"]) == 1

    def test_import_restores_everything_on_the_target(self):
        server, left, right, owner = seeded_server()
        data = server.export_group([left, right])
        target = CosoftServer()
        target.import_group(data)
        assert target.couples.has_link(left, right)
        assert target.locks.holder(left) == owner
        assert target.locks.holder(right) == owner
        assert target.history.depth(right) == (1, 0)

    def test_export_is_scoped_to_the_requested_objects(self):
        server, left, right, owner = seeded_server()
        other = ("c", "/ui/z")
        server.history.push(
            HistoricalState(obj=other, state={"value": "keep"}, by_user="c",
                            timestamp=2.0)
        )
        server.export_group([left, right])
        assert server.history.depth(other) == (1, 0)


class TestMigrateMessages:
    def test_shard_answers_the_router_with_its_state(self):
        server, left, right, owner = seeded_server()
        replies = []

        class Capture:
            local_id = "server"
            closed = False

            def send(self, message):
                replies.append(message)

            def drive(self, predicate, timeout=5.0):
                return bool(predicate())

            def close(self):
                pass

        server.bind(Capture())
        server.handle_message(
            Message(
                kind=kinds.MIGRATE_EXPORT,
                sender=ROUTER_ID,
                payload={"objects": [["a", "/ui/f"], ["b", "/ui/f"]]},
            )
        )
        assert replies[-1].kind == kinds.MIGRATE_STATE
        assert len(replies[-1].payload["links"]) == 1

        importer = CosoftServer()
        importer.bind(Capture())
        importer.handle_message(
            Message(
                kind=kinds.MIGRATE_IMPORT,
                sender=ROUTER_ID,
                payload=dict(replies[-1].payload),
            )
        )
        assert replies[-1].kind == kinds.MIGRATE_ACK
        assert importer.couples.has_link(("a", "/ui/f"), ("b", "/ui/f"))

    def test_client_sender_is_refused(self):
        server, *_ = seeded_server()
        replies = []

        class Capture:
            local_id = "server"
            closed = False

            def send(self, message):
                replies.append(message)

            def drive(self, predicate, timeout=5.0):
                return bool(predicate())

            def close(self):
                pass

        server.bind(Capture())
        server.handle_message(
            Message(
                kind=kinds.MIGRATE_EXPORT,
                sender="mallory",
                payload={"objects": [["a", "/ui/f"]]},
            )
        )
        assert replies[-1].kind == kinds.ERROR
        assert len(server.couples) == 1  # nothing was extracted


class TestLiveHistoryMigration:
    def test_undo_history_survives_a_group_move(self):
        """Merging a 2-group into a 3-group moves its history with it."""
        session = ClusterSession(shards=2)
        cluster = session.cluster
        instances = {}
        trees = {}
        for i in range(5):
            iid = f"inst-{i}"
            instances[iid] = session.create_instance(iid, user=f"u{i}")
            tree = instances[iid].add_root(Shell("ui"))
            TextField("f", parent=tree)
            trees[iid] = tree

        def field(iid):
            return trees[iid].find("/ui/f")

        # History for inst-1's field: a copy_from backs up the overwritten
        # state ("one") on inst-1's home shard.
        field("inst-1").commit("one")
        session.pump()
        instances["inst-1"].copy_from(field("inst-1"), ("inst-0", "/ui/f"))
        session.pump()
        start_home = cluster.shard_of(("inst-1", "/ui/f"))
        assert len(cluster.shards[start_home].history) == 1

        # Small group {0,1}; the couple may already move inst-1's object.
        instances["inst-0"].couple(field("inst-0"), ("inst-1", "/ui/f"))
        session.pump()
        small_home = cluster.shard_of(("inst-0", "/ui/f"))
        assert cluster.shard_of(("inst-1", "/ui/f")) == small_home
        assert len(cluster.shards[small_home].history) == 1

        # Big group {2,3,4}.
        instances["inst-2"].couple(field("inst-2"), ("inst-3", "/ui/f"))
        instances["inst-2"].couple(field("inst-2"), ("inst-4", "/ui/f"))
        session.pump()
        big_home = cluster.shard_of(("inst-2", "/ui/f"))

        # Merge: the smaller group {0,1} moves to the bigger group's home,
        # carrying its couple rows and history.
        migrations_before = cluster.migrations
        instances["inst-1"].couple(field("inst-1"), ("inst-2", "/ui/f"))
        session.pump()
        if small_home != big_home:
            assert cluster.migrations == migrations_before + 1
            assert len(cluster.shards[small_home].history) == 0
        for iid in instances:
            assert cluster.shard_of((iid, "/ui/f")) == big_home
        assert len(cluster.shards[big_home].history) == 1
        assert len(cluster.shards[big_home].couples) == 4

        # The moved history still drives undo after two potential moves.
        assert instances["inst-1"].undo(field("inst-1"))
        assert field("inst-1").value == "one"
        session.close()
