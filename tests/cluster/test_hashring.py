"""Unit tests for the consistent-hash ring."""

import pytest

from repro.cluster.hashring import HashRing


class TestMembership:
    def test_initial_nodes(self):
        ring = HashRing(["a", "b"])
        assert ring.nodes() == ("a", "b")
        assert len(ring) == 2
        assert "a" in ring and "c" not in ring

    def test_duplicate_add_rejected(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError):
            ring.add_node("a")

    def test_remove_unknown_rejected(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError):
            ring.remove_node("b")

    def test_remove_node_drops_all_vnodes(self):
        ring = HashRing(["a", "b"], vnodes=16)
        ring.remove_node("a")
        assert ring.nodes() == ("b",)
        assert all(ring.node_for(f"k{i}") == "b" for i in range(50))

    def test_vnodes_must_be_positive(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)


class TestLookup:
    def test_empty_ring_rejected(self):
        with pytest.raises(ValueError):
            HashRing().node_for("key")

    def test_lookup_is_deterministic(self):
        first = HashRing(["a", "b", "c"])
        second = HashRing(["c", "a", "b"])  # insertion order is irrelevant
        for i in range(100):
            assert first.node_for(f"key-{i}") == second.node_for(f"key-{i}")

    def test_single_node_owns_everything(self):
        ring = HashRing(["only"])
        assert all(ring.node_for(f"k{i}") == "only" for i in range(20))

    def test_distribution_counts_every_key(self):
        ring = HashRing(["a", "b", "c"])
        keys = [f"key-{i}" for i in range(300)]
        dist = ring.distribution(keys)
        assert set(dist) == {"a", "b", "c"}
        assert sum(dist.values()) == len(keys)
        assert all(count > 0 for count in dist.values())

    def test_adding_node_only_steals_keys(self):
        ring = HashRing(["a", "b", "c"])
        keys = [f"key-{i}" for i in range(500)]
        before = {key: ring.node_for(key) for key in keys}
        ring.add_node("d")
        for key in keys:
            owner = ring.node_for(key)
            # A key either stayed put or moved to the new node — never
            # between two pre-existing nodes.
            assert owner == before[key] or owner == "d"
