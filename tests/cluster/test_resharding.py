"""Live resharding on the embedded cluster: add/remove shards on a
running ring.

Acceptance bar (docs/CLUSTER.md): ``add_shard`` moves **only** the
stateful groups whose consistent-hash ownership the new node takes over
(asserted via ring ownership diff), ``remove_shard`` drains everything
off the leaving shard, and a workload running across a reshard loses and
reorders nothing.
"""

import pytest

from repro.cluster.hashring import HashRing
from repro.net import kinds
from repro.net.message import Message
from repro.session import Session
from repro.toolkit.widgets import Canvas, Shell, TextField


def build_tree(root="ui"):
    shell = Shell(root)
    Canvas("board", parent=shell, width=20, height=10)
    TextField("title", parent=shell)
    return shell


def make_cluster_session(shards=2, **kwargs):
    return Session(backend="memory", shards=shards, **kwargs)


def seed_groups(session, n_pairs=6):
    """n_pairs coupled pairs across two instances, each pair a group."""
    a = session.create_instance("a", user="amy")
    b = session.create_instance("b", user="ben")
    ta = a.add_root(build_tree())
    tb = b.add_root(build_tree())
    for i in range(n_pairs):
        sa = TextField(f"f{i}", parent=ta.find("/ui"))
        TextField(f"f{i}", parent=tb.find("/ui"))
        a.couple(sa, ("b", f"/ui/f{i}"))
    session.pump()
    return a, b, ta, tb


class TestAddShard:
    def test_moves_only_groups_the_new_node_owns(self):
        session = make_cluster_session(shards=2)
        try:
            cluster = session.cluster
            seed_groups(session)
            old_ring = HashRing(cluster.shard_ids, vnodes=cluster.vnodes)
            new_id = cluster.add_shard()
            session.pump()
            new_ring = cluster.ring
            assert new_ring.nodes() == old_ring.nodes() + (new_id,)
            moved = cluster.last_reshard["moved"]
            # Ring ownership diff: every moved group's key must have
            # changed owner *to the new shard*; no other group may move.
            for group in moved:
                gid = min(tuple(g) for g in group)
                key = f"{gid[0]}:{gid[1]}"
                assert old_ring.node_for(key) != new_id
                assert new_ring.node_for(key) == new_id
            # And everything that moved now actually lives there.
            for group in moved:
                for gid in group:
                    assert cluster.shard_of(tuple(gid)) == new_id
        finally:
            session.close()

    def test_workload_survives_reshard_with_zero_lost_events(self):
        session = make_cluster_session(shards=2)
        try:
            cluster = session.cluster
            a, b, ta, tb = seed_groups(session, n_pairs=2)
            board_a = ta.find("/ui/board")
            board_b = tb.find("/ui/board")
            a.couple(board_a, ("b", "/ui/board"))
            session.pump()
            for i in range(3):
                board_a.draw_stroke([(i, 0), (i, 1)], color="red", user="amy")
                session.pump()
            cluster.add_shard()
            session.pump()
            for i in range(3):
                board_b.draw_stroke([(0, i), (1, i)], color="blue", user="ben")
                session.pump()
            # Zero lost, zero reordered: both replicas hold all 6 strokes
            # in the same order.
            assert len(board_a.strokes) == 6
            assert board_a.strokes == board_b.strokes
        finally:
            session.close()

    def test_duplicate_shard_id_rejected(self):
        session = make_cluster_session(shards=2)
        try:
            with pytest.raises(ValueError):
                session.cluster.add_shard("shard-0")
        finally:
            session.close()

    def test_new_shard_enforces_bootstrapped_acls(self):
        # A rule committed before the reshard must hold on the new shard:
        # the router ships its ACL mirror with SHARD_SYNC at add time.
        from repro.server.permissions import PermissionRule

        session = make_cluster_session(shards=1, default_allow=True)
        try:
            a = session.create_instance("a", user="amy")
            session.create_instance("b", user="ben")
            a.add_root(build_tree())
            a.set_permission(
                PermissionRule(
                    user="ben", instance_id="a", path_prefix="/ui/title",
                    right="couple", allow=False,
                )
            )
            session.pump()
            cluster = session.cluster
            new_id = cluster.add_shard()
            session.pump()
            shard = cluster.shards[new_id]
            assert not shard.access.check("ben", ("a", "/ui/title"), "couple")
        finally:
            session.close()


class TestRemoveShard:
    def test_drains_everything_off_the_leaving_shard(self):
        session = make_cluster_session(shards=3)
        try:
            cluster = session.cluster
            seed_groups(session)
            victim = cluster.shard_ids[0]
            moved = cluster.remove_shard(victim)
            session.pump()
            assert victim not in cluster.shard_ids
            assert victim not in cluster.shards
            # Everything that lived on the victim is homed elsewhere now.
            for group in moved:
                for gid in group:
                    assert cluster.shard_of(tuple(gid)) != victim
            assert not any(
                home == victim for home in cluster._home.values()
            )
        finally:
            session.close()

    def test_traffic_keeps_flowing_after_removal(self):
        session = make_cluster_session(shards=3)
        try:
            cluster = session.cluster
            a, b, ta, tb = seed_groups(session, n_pairs=2)
            cluster.remove_shard(cluster.shard_ids[-1])
            session.pump()
            ta.find("/ui/f0").commit("after-remove")
            session.pump()
            assert tb.find("/ui/f0").value == "after-remove"
        finally:
            session.close()

    def test_last_shard_cannot_be_removed(self):
        from repro.errors import ReproError

        session = make_cluster_session(shards=1)
        try:
            with pytest.raises(ReproError):
                session.cluster.remove_shard("shard-0")
        finally:
            session.close()

    def test_unknown_shard_rejected(self):
        session = make_cluster_session(shards=2)
        try:
            with pytest.raises(ValueError):
                session.cluster.remove_shard("shard-99")
        finally:
            session.close()


class TestLoadPlacement:
    def test_remove_prefers_least_loaded_survivor(self):
        session = make_cluster_session(shards=3, )
        try:
            cluster = session.cluster
            cluster.placement = "load"
            seed_groups(session)
            victim = cluster.shard_ids[0]
            survivors = [s for s in cluster.shard_ids if s != victim]
            loads = cluster.shard_loads()
            coldest = min(survivors, key=lambda s: (loads.get(s, 0), s))
            moved = cluster.remove_shard(victim)
            for group in moved:
                for gid in group:
                    assert cluster.shard_of(tuple(gid)) == coldest
        finally:
            session.close()

    def test_placement_knob_validated(self):
        from repro.cluster import ShardedCosoftCluster

        with pytest.raises(ValueError):
            ShardedCosoftCluster(2, placement="weird")


class TestAdminKinds:
    def test_cluster_status_reply(self):
        session = make_cluster_session(shards=2)
        try:
            cluster = session.cluster
            replies = []
            original = cluster._transport.send
            cluster._transport.send = lambda m: replies.append(m)
            try:
                cluster.handle_message(
                    Message(
                        kind=kinds.CLUSTER_STATUS, sender="ops", payload={}
                    )
                )
            finally:
                cluster._transport.send = original
            (reply,) = [
                m for m in replies
                if m.kind == kinds.CLUSTER_STATUS_REPLY
            ]
            assert reply.payload["shards"] == list(cluster.shard_ids)
            assert reply.payload["placement"] == "hash"
        finally:
            session.close()

    def test_cluster_reshard_add_and_remove(self):
        session = make_cluster_session(shards=2)
        try:
            cluster = session.cluster
            replies = []
            original = cluster._transport.send
            cluster._transport.send = lambda m: replies.append(m)
            try:
                cluster.handle_message(
                    Message(
                        kind=kinds.CLUSTER_RESHARD,
                        sender="ops",
                        payload={"action": "add"},
                    )
                )
                added = replies[-1]
                assert added.kind == kinds.CLUSTER_RESHARD_REPLY
                new_id = added.payload["shard"]
                assert new_id in cluster.shard_ids
                cluster.handle_message(
                    Message(
                        kind=kinds.CLUSTER_RESHARD,
                        sender="ops",
                        payload={"action": "remove", "shard": new_id},
                    )
                )
                removed = replies[-1]
                assert removed.kind == kinds.CLUSTER_RESHARD_REPLY
                assert new_id not in cluster.shard_ids
            finally:
                cluster._transport.send = original
        finally:
            session.close()

    def test_unknown_action_is_an_error_reply(self):
        session = make_cluster_session(shards=2)
        try:
            cluster = session.cluster
            replies = []
            original = cluster._transport.send
            cluster._transport.send = lambda m: replies.append(m)
            try:
                cluster.handle_message(
                    Message(
                        kind=kinds.CLUSTER_RESHARD,
                        sender="ops",
                        payload={"action": "explode"},
                    )
                )
            finally:
                cluster._transport.send = original
            assert replies[-1].kind == kinds.ERROR
        finally:
            session.close()
