"""Multi-process cluster: worker protocol units + supervisor integration.

The unit half exercises :class:`repro.cluster.worker.ShardEndpoint`
in-process (no subprocess): delivery-id dedup, journaled outputs,
suppress filtering, hello/ping. The integration half spawns real worker
processes through :class:`repro.cluster.proc.ProcCluster` and checks
spawn/attach, status, heartbeats, kill/restart and the operator client.
"""

import os
import time

import pytest

from repro.cluster.proc import ProcCluster
from repro.cluster.worker import build_worker
from repro.net import kinds
from repro.net.message import Message
from repro.net.transport import ROUTER_ID


def forward(endpoint, did, inner, suppress=()):
    endpoint.handle_message(
        Message(
            kind=kinds.SHARD_FORWARD,
            sender=ROUTER_ID,
            to=endpoint.shard_id,
            payload={
                "did": did,
                "msg": inner.to_wire(),
                "suppress": list(suppress),
            },
        )
    )


class _Sink:
    """Stands in for the worker's host transport."""

    def __init__(self):
        self.sent = []

    def send(self, message):
        self.sent.append(message)

    def uplinks(self):
        return [m for m in self.sent if m.kind == kinds.SHARD_UPLINK]


@pytest.fixture
def endpoint(tmp_path):
    ep = build_worker(shard_id="shard-0", directory=str(tmp_path))
    sink = _Sink()
    ep.bind(sink)
    ep.sink = sink
    yield ep
    ep.server.persistence.close()


def register(endpoint, did, instance_id="a"):
    forward(
        endpoint,
        did,
        Message(
            kind=kinds.REGISTER,
            sender=instance_id,
            payload={"user": instance_id, "app_type": "editor"},
        ),
    )


class TestShardEndpointProtocol:
    def test_attach_answers_hello_with_max_did(self, endpoint):
        endpoint.handle_message(
            Message(kind=kinds.SHARD_ATTACH, sender=ROUTER_ID, payload={})
        )
        (hello,) = [
            m for m in endpoint.sink.sent if m.kind == kinds.SHARD_HELLO
        ]
        assert hello.payload["max_did"] == 0
        assert hello.payload["shard"] == "shard-0"
        assert hello.to == ROUTER_ID

    def test_forward_executes_and_uplinks_outputs(self, endpoint):
        register(endpoint, 1)
        (uplink,) = endpoint.sink.uplinks()
        assert uplink.payload["did"] == 1
        kinds_out = [o["kind"] for o in uplink.payload["outs"]]
        assert kinds.REGISTER_ACK in kinds_out
        assert "a" in endpoint.server.registry

    def test_duplicate_did_replays_outputs_without_reexecution(self, endpoint):
        register(endpoint, 1)
        first = endpoint.sink.uplinks()[0].payload["outs"]
        processed_before = dict(endpoint.server.processed)
        register(endpoint, 1)  # redelivery of the same did
        assert endpoint.sink.uplinks()[1].payload["outs"] == first
        # Not re-executed: the server never saw the duplicate.
        assert dict(endpoint.server.processed) == processed_before

    def test_journal_entry_carries_did_and_outs(self, endpoint):
        register(endpoint, 7)
        entries = [
            e
            for e in endpoint.server.persistence.entries_after(0)
            if e.get("did") is not None
        ]
        assert entries and entries[-1]["did"] == 7
        assert any(
            o["kind"] == kinds.REGISTER_ACK for o in entries[-1]["outs"]
        )

    def test_recovery_restores_max_did_and_replay_outs(self, endpoint, tmp_path):
        register(endpoint, 1)
        register(endpoint, 2, instance_id="b")
        stored = endpoint.sink.uplinks()[1].payload["outs"]
        endpoint.server.persistence.sync()
        # Cold restart from the same directory: same high-water mark,
        # same stored outputs for the newest delivery.
        reborn = build_worker(shard_id="shard-0", directory=str(tmp_path))
        sink = _Sink()
        reborn.bind(sink)
        try:
            assert reborn.max_did == 2
            assert "a" in reborn.server.registry
            assert "b" in reborn.server.registry
            forward(
                reborn,
                2,
                Message(kind=kinds.REGISTER, sender="b", payload={"user": "b"}),
            )
            assert sink.uplinks()[0].payload["outs"] == stored
        finally:
            reborn.server.persistence.close()

    def test_suppress_filters_everything_but_router_control(self, endpoint):
        register(endpoint, 1)
        endpoint.sink.sent.clear()
        register(endpoint, 2, instance_id="b")
        with_acks = endpoint.sink.uplinks()[0].payload["outs"]
        assert any(o["kind"] == kinds.REGISTER_ACK for o in with_acks)
        endpoint.sink.sent.clear()
        forward(
            endpoint,
            3,
            Message(kind=kinds.REGISTER, sender="c", payload={"user": "c"}),
            suppress=[kinds.REGISTER_ACK, kinds.INSTANCE_LIST],
        )
        outs = endpoint.sink.uplinks()[0].payload["outs"]
        assert not any(
            o["kind"] in (kinds.REGISTER_ACK, kinds.INSTANCE_LIST)
            for o in outs
        )

    def test_failed_handler_still_advances_did_with_error_out(self, endpoint):
        register(endpoint, 1)
        register(endpoint, 2)  # duplicate REGISTER -> rejected by server
        uplink = endpoint.sink.uplinks()[1]
        assert uplink.payload["did"] == 2
        assert any(
            o["kind"] == kinds.ERROR for o in uplink.payload["outs"]
        )
        assert endpoint.max_did == 2

    def test_ping_answers_pong_with_stats(self, endpoint):
        register(endpoint, 1)
        endpoint.handle_message(
            Message(kind=kinds.SHARD_PING, sender=ROUTER_ID, payload={})
        )
        (pong,) = [
            m for m in endpoint.sink.sent if m.kind == kinds.SHARD_PONG
        ]
        assert pong.payload["max_did"] == 1
        assert "registered" in pong.payload["stats"]

    def test_non_router_senders_are_ignored(self, endpoint):
        endpoint.handle_message(
            Message(kind=kinds.SHARD_ATTACH, sender="mallory", payload={})
        )
        assert endpoint.sink.sent == []


class TestProcCluster:
    def test_spawns_ready_workers_with_journals(self, tmp_path):
        cluster = ProcCluster(2, directory=str(tmp_path))
        try:
            assert set(cluster.shard_ids) == {"shard-0", "shard-1"}
            for shard_id, handle in cluster.shards.items():
                assert handle.state == "ready"
                assert handle.process.poll() is None
                assert os.path.isdir(os.path.join(str(tmp_path), shard_id))
            status = cluster.cluster_status()
            assert set(status["processes"]) == {"shard-0", "shard-1"}
        finally:
            cluster.close()

    def test_close_terminates_workers(self, tmp_path):
        cluster = ProcCluster(1, directory=str(tmp_path))
        process = cluster.shards["shard-0"].process
        cluster.close()
        assert process.wait(timeout=10) is not None

    def test_kill_is_detected_and_worker_restarts_with_state(self, tmp_path):
        cluster = ProcCluster(
            1, directory=str(tmp_path), heartbeat_interval=0.1
        )
        sent = []
        cluster.bind(type("T", (), {"send": lambda self, m: sent.append(m)})())
        try:
            cluster.handle_message(
                Message(kind=kinds.REGISTER, sender="a", payload={"user": "a"})
            )
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and not any(
                m.kind == kinds.REGISTER_ACK for m in sent
            ):
                time.sleep(0.02)
            assert any(m.kind == kinds.REGISTER_ACK for m in sent)

            old_pid = cluster.kill_shard("shard-0")
            handle = cluster.shards["shard-0"]
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline and not (
                handle.restarts >= 1 and handle.state == "ready"
            ):
                time.sleep(0.05)
            assert handle.state == "ready"
            assert handle.restarts >= 1
            assert handle.process.pid != old_pid
            # The replacement recovered the journal: the roster survived,
            # so a duplicate REGISTER is rejected.
            before = len(sent)
            cluster.handle_message(
                Message(kind=kinds.REGISTER, sender="a", payload={"user": "a"})
            )
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and len(sent) == before:
                time.sleep(0.02)
            assert any(
                m.kind == kinds.ERROR for m in sent[before:]
            )
        finally:
            cluster.close()

    def test_heartbeats_refresh_liveness_and_cache_stats(self, tmp_path):
        cluster = ProcCluster(
            1, directory=str(tmp_path), heartbeat_interval=0.1
        )
        try:
            handle = cluster.shards["shard-0"]
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and not handle.remote_stats:
                time.sleep(0.02)
            assert handle.last_pong > 0
            assert "registered" in handle.remote_stats
            assert cluster.stats()["per_shard"]["shard-0"]["worker"]
        finally:
            cluster.close()

    def test_persistence_knob_conflict_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ProcCluster(
                1, directory=str(tmp_path), persistence=object()
            )


class TestOperatorCli:
    def test_status_and_reshard_against_a_live_session(self, tmp_path):
        import subprocess
        import sys

        from repro.session import Session
        from repro.tools.cluster import ClusterAdmin

        with Session(
            backend="aio", shards=2, processes=True,
            persistence=str(tmp_path),
        ) as session:
            port = session.port
            # Programmatic client: status + live reshard round-trip.
            with ClusterAdmin(port=port) as admin:
                status = admin.status()
                assert status["shards"] == ["shard-0", "shard-1"]
                assert set(status["processes"]) == {"shard-0", "shard-1"}
                added = admin.add_shard()
                assert added["shard"] == "shard-2"
                removed = admin.remove_shard("shard-2")
                assert removed["shard"] == "shard-2"
            # The installed CLI entry point, as an operator would run it.
            proc = subprocess.run(
                [
                    sys.executable, "-m", "repro.tools.cluster",
                    "--port", str(port), "status",
                ],
                capture_output=True, text=True, timeout=60,
                env={
                    **os.environ,
                    "PYTHONPATH": os.path.dirname(
                        os.path.dirname(
                            os.path.abspath(
                                __import__("repro").__file__
                            )
                        )
                    ),
                },
            )
            assert proc.returncode == 0, proc.stderr
            assert "shard-0" in proc.stdout
            assert "pid=" in proc.stdout


@pytest.fixture
def obs_endpoint(tmp_path):
    ep = build_worker(
        shard_id="shard-0", directory=str(tmp_path), observability=True
    )
    sink = _Sink()
    ep.bind(sink)
    ep.sink = sink
    yield ep
    ep.server.persistence.close()


def obs_pull(endpoint, since=None):
    endpoint.handle_message(
        Message(
            kind=kinds.SHARD_OBS_PULL,
            sender=ROUTER_ID,
            to=endpoint.shard_id,
            payload={"since": since},
        )
    )
    reply = endpoint.sink.sent[-1]
    assert reply.kind == kinds.SHARD_OBS_REPLY
    return reply.payload


def traced_register(endpoint, did, instance_id="a"):
    """A REGISTER forward carrying trace context, as the supervisor's
    cluster.forward span stamps it — makes the worker open spans."""
    inner = Message(
        kind=kinds.REGISTER,
        sender=instance_id,
        payload={"user": instance_id, "app_type": "editor"},
        trace=("t1", "s1"),
    )
    forward(endpoint, did, inner)


class TestShardObservabilityProtocol:
    def test_first_pull_is_a_full_snapshot_with_spans(self, obs_endpoint):
        traced_register(obs_endpoint, 1)
        payload = obs_pull(obs_endpoint)
        assert payload["full"] is True
        names = {sample[0] for sample in payload["samples"]}
        assert "repro_server_processed_total" in names
        # The worker's recorder prefixes its span ids with the shard id
        # so merged supervisor-side buffers stay collision-free.
        assert payload["spans"]
        assert all(
            s["span_id"].startswith("shard-0.") for s in payload["spans"]
        )
        assert payload["trace_stats"]["spans"] == len(payload["spans"])

    def test_second_pull_ships_only_the_delta(self, obs_endpoint):
        register(obs_endpoint, 1)
        first = obs_pull(obs_endpoint)
        # Nothing happened in between: the delta is empty.
        second = obs_pull(obs_endpoint, since=first["epoch"])
        assert second["full"] is False
        assert second["samples"] == []
        assert second["spans"] == []
        # New traffic reappears in the next delta, much smaller than a
        # full snapshot.
        register(obs_endpoint, 2, instance_id="b")
        third = obs_pull(obs_endpoint, since=second["epoch"])
        assert third["full"] is False
        assert 0 < len(third["samples"]) < len(first["samples"])

    def test_stale_epoch_forces_full_snapshot(self, obs_endpoint):
        register(obs_endpoint, 1)
        obs_pull(obs_endpoint)
        payload = obs_pull(obs_endpoint, since="some-dead-process")
        assert payload["full"] is True
        assert payload["samples"]

    def test_disabled_observability_answers_empty(self, endpoint):
        sink = _Sink()
        endpoint.bind(sink)
        endpoint.handle_message(
            Message(
                kind=kinds.SHARD_OBS_PULL,
                sender=ROUTER_ID,
                to=endpoint.shard_id,
                payload={"since": None},
            )
        )
        reply = sink.sent[-1]
        assert reply.kind == kinds.SHARD_OBS_REPLY
        assert reply.payload["samples"] == []
        assert reply.payload["spans"] == []


class TestHeartbeatAge:
    def make_handle(self, tmp_path):
        from repro.cluster.proc import ProcShardHandle

        return ProcShardHandle("shard-0", str(tmp_path))

    def test_never_heard_from_is_infinite(self, tmp_path):
        handle = self.make_handle(tmp_path)
        assert handle.heartbeat_age() == float("inf")

    def test_age_measures_since_last_seen(self, tmp_path):
        handle = self.make_handle(tmp_path)
        handle.spawned_at = 100.0
        handle.last_seen = 130.0
        assert handle.heartbeat_age(now=131.5) == pytest.approx(1.5)

    def test_respawn_resets_the_baseline(self, tmp_path):
        # Regression: after kill -> respawn the handle still carries the
        # pre-crash last_seen.  The age of a worker spawned 2s ago must
        # be ~2s, not the minutes since the dead incarnation's last
        # heartbeat.
        handle = self.make_handle(tmp_path)
        handle.last_seen = 100.0   # old incarnation, long dead
        handle.spawned_at = 400.0  # fresh process
        assert handle.heartbeat_age(now=402.0) == pytest.approx(2.0)
