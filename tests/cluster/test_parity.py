"""Single-server vs. cluster parity: same protocol, same outcome.

The acceptance bar for sharding: two instances coupled across shards must
see *identical event ordering and final UI state* as against a single
server.  Canvas strokes make ordering observable — the stroke list is the
exact sequence of applied DRAW events — so the scenario runs against a
plain ``LocalSession`` and against clusters of several sizes, and every
deployment must produce byte-identical results.
"""

import pytest

from repro.session import ClusterSession, LocalSession
from repro.toolkit.widgets import Canvas, Shell, TextField

DEPLOYMENTS = [
    pytest.param(lambda: LocalSession(), id="single-server"),
    pytest.param(lambda: ClusterSession(shards=1), id="cluster-1"),
    pytest.param(lambda: ClusterSession(shards=2), id="cluster-2"),
    pytest.param(lambda: ClusterSession(shards=4), id="cluster-4"),
    pytest.param(lambda: ClusterSession(shards=8), id="cluster-8"),
]


def build_tree(root="ui"):
    shell = Shell(root)
    Canvas("board", parent=shell, width=20, height=10)
    TextField("title", parent=shell)
    return shell


def run_scenario(make_session):
    """Three users, two merging couple groups, interleaved drawing.

    Returns per-instance observable state: the ordered stroke lists and
    the text field values.
    """
    session = make_session()
    instances = {}
    trees = {}
    for iid, user in (("a", "amy"), ("b", "ben"), ("c", "cat")):
        instances[iid] = session.create_instance(iid, user=user)
        trees[iid] = instances[iid].add_root(build_tree())
    board = lambda iid: trees[iid].find("/ui/board")
    title = lambda iid: trees[iid].find("/ui/title")

    # Stage 1: couple a-b; on a multi-shard cluster this can already
    # migrate one side's object to the other's home shard.
    instances["a"].couple(board("a"), ("b", "/ui/board"))
    instances["a"].couple(title("a"), ("b", "/ui/title"))
    session.pump()
    # Pump between different users' actions: the floor protocol denies a
    # lock while the previous event's acks are outstanding (by design),
    # and a denied fire() rolls back locally instead of retrying.
    board("a").draw_stroke([(0, 0), (1, 1)], color="red", user="amy")
    session.pump()
    board("b").draw_stroke([(2, 2), (3, 3)], color="blue", user="ben")
    session.pump()

    # Stage 2: merge c into the group mid-session (second migration
    # candidate), then interleave events from all three sides.
    instances["b"].couple(board("b"), ("c", "/ui/board"))
    instances["b"].couple(title("b"), ("c", "/ui/title"))
    session.pump()
    for i in range(4):
        board("a").draw_stroke([(i, 0), (i, 1)], color="red", user="amy")
        session.pump()
        board("c").draw_stroke([(0, i), (1, i)], color="green", user="cat")
        session.pump()
        title("b").commit(f"round-{i}")
        session.pump()

    result = {
        iid: {
            "strokes": board(iid).strokes,
            "title": title(iid).value,
        }
        for iid in instances
    }
    migrations = getattr(session, "cluster", None)
    result["_migrations"] = migrations.migrations if migrations else 0
    session.close()
    return result


BASELINE = None


def baseline():
    global BASELINE
    if BASELINE is None:
        BASELINE = run_scenario(lambda: LocalSession())
    return BASELINE


@pytest.mark.parametrize("make_session", DEPLOYMENTS)
def test_deployments_agree_with_the_single_server(make_session):
    expected = baseline()
    result = run_scenario(make_session)
    for iid in ("a", "b", "c"):
        # Identical final UI state...
        assert result[iid]["title"] == expected[iid]["title"]
        # ...and identical event *ordering* (strokes list the exact
        # application sequence of DRAW events).
        assert result[iid]["strokes"] == expected[iid]["strokes"]


@pytest.mark.parametrize("make_session", DEPLOYMENTS)
def test_replicas_converge_within_each_deployment(make_session):
    result = run_scenario(make_session)
    assert result["a"]["strokes"] == result["b"]["strokes"]
    assert len(result["a"]["strokes"]) == 10
    # c joined after stage 1 (coupling replicates future events, not past
    # state — §3.1 separates state sync from coupling), so it holds the
    # 8 stage-2 strokes, in the same order as everyone else's suffix.
    assert result["c"]["strokes"] == result["a"]["strokes"][2:]
    assert result["a"]["title"] == result["c"]["title"] == "round-3"


def test_the_scenario_actually_migrates_on_two_shards():
    result = run_scenario(lambda: ClusterSession(shards=2))
    # a:/ui/board and b:/ui/board hash to different 2-shard homes (stable
    # BLAKE2b placement), so stage 1 must have migrated at least once.
    assert result["_migrations"] >= 1
