"""Tests for the unified Session facade and the deprecated aliases."""

import time

import pytest

from repro.net.aio import BatchConfig
from repro.session import (
    ClusterSession,
    LocalSession,
    Session,
    SessionConfig,
    TcpSession,
)


def wait_until(predicate, timeout=5.0):
    end = time.monotonic() + timeout
    while time.monotonic() < end:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestSessionConfig:
    def test_defaults(self):
        config = SessionConfig()
        assert config.backend == "memory"
        assert config.shards == 0
        assert isinstance(config.batch, BatchConfig)

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            SessionConfig(backend="carrier-pigeon")

    def test_rejects_negative_shards(self):
        with pytest.raises(ValueError):
            SessionConfig(shards=-1)


class TestSessionConstruction:
    def test_default_is_memory(self):
        with Session() as session:
            assert session.backend == "memory"
            assert session.cluster is None

    def test_config_object(self):
        with Session(config=SessionConfig(shards=2)) as session:
            assert session.cluster is not None
            assert len(session.cluster.shards) == 2

    def test_backend_argument_overrides_config(self):
        config = SessionConfig(backend="memory")
        with Session("tcp", config=config) as session:
            assert session.backend == "tcp"
        # The caller's config object is not mutated.
        assert config.backend == "memory"

    def test_config_and_knobs_are_exclusive(self):
        with pytest.raises(TypeError):
            Session(config=SessionConfig(), seed=3)

    def test_batch_knobs_fold_into_batch_config(self):
        with Session(max_batch=7, backpressure="block") as session:
            assert session.config.batch.max_batch == 7
            assert session.config.batch.backpressure == "block"

    def test_unknown_knob_raises(self):
        with pytest.raises(TypeError):
            Session(warp_speed=9)

    def test_getattr_falls_through_to_backend(self):
        with Session() as session:
            assert session.network is session._impl.network
            assert session.clock is session._impl.clock

    def test_getattr_error_names_backend(self):
        with Session() as session:
            with pytest.raises(AttributeError, match="memory"):
                session.runtime  # an aio-only attribute

    def test_repr(self):
        with Session(shards=2) as session:
            assert "memory" in repr(session)
            assert "shards=2" in repr(session)


class TestAioBackend:
    def test_roundtrip_and_stats(self):
        with Session(backend="aio") as session:
            a = session.create_instance("a", user="u1")
            b = session.create_instance("b", user="u2")
            assert wait_until(lambda: "b" in a.roster and "a" in b.roster)
            assert b.send_command("echo", 1, targets=["a"]) is None  # no-op ok
            snapshot = session.traffic()
            assert snapshot["messages"] > 0
            # The unified stats shape: batching fields present everywhere.
            for key in ("batches", "batched_messages", "retries", "drops_by_reason"):
                assert key in snapshot

    def test_runtime_accessible(self):
        with Session(backend="aio") as session:
            assert session.runtime.transport is not None
            assert session.runtime.config.max_batch == session.config.batch.max_batch

    def test_sharded_aio(self):
        with Session(backend="aio", shards=2) as session:
            a = session.create_instance("a", user="u1")
            b = session.create_instance("b", user="u2")
            assert wait_until(lambda: "b" in a.roster and "a" in b.roster)
            assert session.cluster is not None


class TestTrafficShapeParity:
    def test_same_snapshot_keys_on_every_backend(self):
        with Session() as memory_session:
            memory_session.create_instance("a", user="u1")
            memory_session.pump()
            memory_keys = set(memory_session.traffic())
        with Session(backend="aio") as aio_session:
            aio_session.create_instance("a", user="u1")
            aio_session.pump()
            aio_keys = set(aio_session.traffic())
        assert memory_keys == aio_keys


class TestDeprecatedAliases:
    def test_local_session_warns_and_works(self):
        with pytest.warns(FutureWarning, match="LocalSession"):
            session = LocalSession(seed=3)
        try:
            assert session.backend == "memory"
            assert session.config.seed == 3
            a = session.create_instance("a", user="u1")
            session.pump()
            assert "a" in a.roster
        finally:
            session.close()

    def test_cluster_session_warns_and_builds_cluster(self):
        with pytest.warns(FutureWarning, match="ClusterSession"):
            session = ClusterSession(shards=3)
        try:
            assert session.cluster is not None
            assert len(session.cluster.shards) == 3
        finally:
            session.close()

    def test_cluster_session_rejects_zero_shards(self):
        with pytest.warns(FutureWarning):
            with pytest.raises(ValueError):
                ClusterSession(shards=0)

    def test_tcp_session_warns_and_keeps_signature(self):
        with pytest.warns(FutureWarning, match="TcpSession"):
            session = TcpSession("127.0.0.1", 0)
        try:
            assert session.backend == "tcp"
            assert session.port != 0
        finally:
            session.close()

    def test_aliases_are_sessions(self):
        with pytest.warns(FutureWarning):
            session = LocalSession()
        try:
            assert isinstance(session, Session)
        finally:
            session.close()
