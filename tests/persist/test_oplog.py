"""Tests for the append-only op log: framing, rotation, recovery."""

import os

import pytest

from repro.errors import PersistenceError
from repro.persist import MemoryOpLog, OpLog
from repro.persist.oplog import _read_frames, frame_entry


def entry(seq, kind="event"):
    return {"seq": seq, "t": seq * 0.1, "msg": {"kind": kind, "sender": "a"}}


class TestFraming:
    def test_round_trip(self):
        frames = b"".join(frame_entry(entry(i)) for i in range(1, 4))
        entries, problem = _read_frames(frames, tolerate_torn_tail=False)
        assert problem is None
        assert [e["seq"] for e in entries] == [1, 2, 3]

    def test_truncated_tail_reported(self):
        frames = frame_entry(entry(1)) + frame_entry(entry(2))[:-3]
        entries, problem = _read_frames(frames, tolerate_torn_tail=True)
        assert [e["seq"] for e in entries] == [1]
        assert "truncated" in problem

    def test_crc_mismatch_reported(self):
        frame = bytearray(frame_entry(entry(1)))
        frame[-1] ^= 0xFF
        entries, problem = _read_frames(bytes(frame), tolerate_torn_tail=False)
        assert entries == []
        assert "CRC mismatch" in problem


class TestAppendRead:
    def test_append_assigns_sequence(self, tmp_path):
        log = OpLog(str(tmp_path))
        assert log.append({"t": 0.0, "msg": {}}) == 1
        assert log.append({"t": 0.1, "msg": {}}) == 2
        assert log.last_seq == 2
        assert [e["seq"] for e in log.read()] == [1, 2]
        assert [e["seq"] for e in log.read(after_seq=1)] == [2]
        log.close()

    def test_append_entry_rejects_out_of_order(self, tmp_path):
        log = OpLog(str(tmp_path))
        log.append_entry(entry(5))
        with pytest.raises(PersistenceError):
            log.append_entry(entry(5))
        with pytest.raises(PersistenceError):
            log.append_entry(entry(3))
        log.close()

    def test_reopen_resumes_from_last_seq(self, tmp_path):
        log = OpLog(str(tmp_path))
        for _ in range(3):
            log.append({"t": 0.0, "msg": {}})
        log.close()
        reopened = OpLog(str(tmp_path))
        assert reopened.last_seq == 3
        assert reopened.append({"t": 0.3, "msg": {}}) == 4
        assert [e["seq"] for e in reopened.read()] == [1, 2, 3, 4]
        reopened.close()


class TestRotationCompaction:
    def test_small_segments_rotate(self, tmp_path):
        log = OpLog(str(tmp_path), segment_bytes=1)
        for i in range(1, 5):
            log.append(entry(i))
        segments = [n for n in os.listdir(tmp_path) if n.endswith(".log")]
        assert len(segments) == 4
        assert [e["seq"] for e in log.read()] == [1, 2, 3, 4]
        log.close()

    def test_compact_drops_whole_segments_only(self, tmp_path):
        log = OpLog(str(tmp_path), segment_bytes=1)
        for i in range(1, 5):
            log.append(entry(i))
        removed = log.compact(2)
        assert removed == 2
        assert log.first_seq == 3
        assert [e["seq"] for e in log.read()] == [3, 4]
        log.close()

    def test_compact_never_touches_active_segment(self, tmp_path):
        log = OpLog(str(tmp_path))  # everything in one (active) segment
        for i in range(1, 4):
            log.append(entry(i))
        assert log.compact(3) == 0
        assert [e["seq"] for e in log.read()] == [1, 2, 3]
        log.close()


class TestCrashRecovery:
    def test_torn_tail_is_truncated_on_reopen(self, tmp_path):
        log = OpLog(str(tmp_path))
        log.append(entry(1))
        log.append(entry(2))
        log.close()
        (path,) = [
            os.path.join(tmp_path, n)
            for n in os.listdir(tmp_path)
            if n.endswith(".log")
        ]
        with open(path, "ab") as fh:
            fh.write(frame_entry(entry(3))[:-5])  # crash mid-append
        recovered = OpLog(str(tmp_path))
        assert recovered.last_seq == 2
        assert recovered.append({"t": 0.3, "msg": {}}) == 3
        assert [e["seq"] for e in recovered.read()] == [1, 2, 3]
        recovered.close()

    def test_corruption_mid_log_raises_on_read(self, tmp_path):
        log = OpLog(str(tmp_path), segment_bytes=1)
        for i in range(1, 4):
            log.append(entry(i))
        log.close()
        first = sorted(
            n for n in os.listdir(tmp_path) if n.endswith(".log")
        )[0]
        path = os.path.join(tmp_path, first)
        data = bytearray(open(path, "rb").read())
        data[-1] ^= 0xFF
        open(path, "wb").write(bytes(data))
        reopened = OpLog(str(tmp_path))
        with pytest.raises(PersistenceError):
            list(reopened.read())
        report = reopened.verify()
        assert report["corrupt"] == 1
        reopened.close()

    def test_fsync_always_counts(self, tmp_path):
        log = OpLog(str(tmp_path), fsync="always")
        log.append(entry(1))
        log.append(entry(2))
        assert log.fsyncs == 2
        log.close()


class TestVerify:
    def test_clean_report(self, tmp_path):
        log = OpLog(str(tmp_path), segment_bytes=1)
        for i in range(1, 4):
            log.append(entry(i))
        report = log.verify()
        assert report["entries"] == 3
        assert report["corrupt"] == 0
        assert report["first_seq"] == 1
        assert report["last_seq"] == 3
        assert all(s["problem"] is None for s in report["segments"])
        log.close()


class TestMemoryOpLog:
    def test_same_interface(self):
        log = MemoryOpLog()
        assert log.append({"t": 0.0, "msg": {}}) == 1
        assert log.append({"t": 0.1, "msg": {}}) == 2
        assert log.last_seq == 2
        assert [e["seq"] for e in log.read(after_seq=1)] == [2]
        with pytest.raises(PersistenceError):
            log.append_entry(entry(1))
        assert log.verify()["entries"] == 2

    def test_read_returns_copies(self):
        log = MemoryOpLog()
        log.append({"t": 0.0, "msg": {"kind": "event"}})
        first = next(log.read())
        first["msg"]["kind"] = "mutated"
        assert next(log.read())["msg"]["kind"] == "event"
