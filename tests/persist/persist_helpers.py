"""Shared helpers for the persistence suite: a driven sans-I/O server.

Every test here works at the protocol level — build a
:class:`CosoftServer` with a journal attached, feed it wire messages,
kill it, and recover.  The helpers mirror the idiom of
``tests/server/test_server.py``.  (Deliberately not a ``conftest.py``:
pytest imports every conftest under the same module name, and the root
``tests/conftest.py`` is what the rest of the suite imports helpers
from.)
"""

from __future__ import annotations

from repro.net import kinds
from repro.net.clock import SimClock
from repro.net.message import Message
from repro.server.couples import gid_to_wire, global_id
from repro.server.server import SERVER_ID, CosoftServer


class FakeTransport:
    """Collects everything the server sends; no network."""

    def __init__(self):
        self.sent = []
        self.closed = False

    @property
    def local_id(self):
        return SERVER_ID

    def send(self, message):
        self.sent.append(message)

    def drive(self, predicate, timeout=5.0):
        return predicate()

    def close(self):
        self.closed = True

    def take(self):
        out, self.sent = self.sent, []
        return out


def make_server(persistence=None, **kwargs):
    """A bound server on a SimClock, optionally journaling."""
    srv = CosoftServer(clock=SimClock(), persistence=persistence, **kwargs)
    transport = FakeTransport()
    srv.bind(transport)
    return srv, transport


def register(srv, instance_id, user=None, app_type=""):
    srv.clock.advance(0.01)
    srv.handle_message(
        Message(
            kind=kinds.REGISTER,
            sender=instance_id,
            payload={"user": user or instance_id, "app_type": app_type},
        )
    )


def unregister(srv, instance_id):
    srv.clock.advance(0.01)
    srv.handle_message(
        Message(kind=kinds.UNREGISTER, sender=instance_id, payload={})
    )


def couple(srv, source, target):
    srv.clock.advance(0.01)
    srv.handle_message(
        Message(
            kind=kinds.COUPLE,
            sender=source[0],
            payload={
                "source": gid_to_wire(source),
                "target": gid_to_wire(target),
            },
        )
    )


def lock(srv, instance_id, path, token=1):
    srv.clock.advance(0.01)
    srv.handle_message(
        Message(
            kind=kinds.LOCK_REQUEST,
            sender=instance_id,
            payload={
                "source": gid_to_wire(global_id(instance_id, path)),
                "token": token,
            },
        )
    )


def unlock(srv, instance_id, token=1):
    srv.clock.advance(0.01)
    srv.handle_message(
        Message(
            kind=kinds.UNLOCK,
            sender=instance_id,
            payload={"token": token},
        )
    )


def history_push(srv, instance_id, path, state, user=""):
    srv.clock.advance(0.01)
    srv.handle_message(
        Message(
            kind=kinds.HISTORY_PUSH,
            sender=instance_id,
            payload={
                "object": gid_to_wire(global_id(instance_id, path)),
                "state": state,
                "reason": "copy_to",
                "user": user,
            },
        )
    )


def undo(srv, instance_id, path):
    srv.clock.advance(0.01)
    srv.handle_message(
        Message(
            kind=kinds.UNDO_REQUEST,
            sender=instance_id,
            payload={"object": gid_to_wire(global_id(instance_id, path))},
        )
    )


def drive_workload(srv):
    """A small mixed workload touching all four database categories."""
    register(srv, "a", user="alice")
    register(srv, "b", user="bob")
    register(srv, "c", user="carol")
    couple(srv, global_id("a", "/app/x"), global_id("b", "/app/x"))
    couple(srv, global_id("b", "/app/x"), global_id("c", "/app/x"))
    lock(srv, "a", "/app/x", token=7)
    history_push(srv, "b", "/app/x", {"value": "old"}, user="bob")
    history_push(srv, "b", "/app/x", {"value": "older"}, user="bob")
    undo(srv, "b", "/app/x")
    unregister(srv, "c")
