"""Tests for crash recovery, time travel and late-join catch-up."""

from repro.net import kinds
from repro.net.message import Message
from repro.persist import (
    PersistenceConfig,
    apply_catchup,
    recover_cluster,
    recover_server,
)
from repro.persist.snapshot import server_fingerprint

from persist_helpers import (
    FakeTransport,
    couple,
    drive_workload,
    history_push,
    lock,
    make_server,
    register,
)
from repro.server.couples import global_id


def memory_config(**overrides):
    return PersistenceConfig(directory=None, snapshot_every=1000, **overrides)


class TestRecoverServer:
    def test_pure_log_replay_reproduces_fingerprint(self):
        persist = memory_config().build()
        live, _ = make_server(persistence=persist)
        drive_workload(live)
        expected = server_fingerprint(live)
        recovered = recover_server(persist)
        assert server_fingerprint(recovered) == expected
        assert persist.replayed_ops > 0

    def test_snapshot_plus_suffix(self):
        persist = memory_config().build()
        live, _ = make_server(persistence=persist)
        register(live, "a", user="alice")
        couple(live, global_id("a", "/app/x"), global_id("a", "/app/y"))
        persist.snapshot(live)
        snap_seq = persist.log.last_seq
        register(live, "b", user="bob")
        lock(live, "b", "/app/z", token=3)
        expected = server_fingerprint(live)
        persist.replayed_ops = 0
        recovered = recover_server(persist)
        assert server_fingerprint(recovered) == expected
        # Only the suffix replayed; the prefix came from the snapshot.
        assert persist.replayed_ops == persist.log.last_seq - snap_seq

    def test_clock_derived_state_reproduces(self):
        persist = memory_config().build()
        live, _ = make_server(persistence=persist)
        drive_workload(live)
        recovered = recover_server(persist)
        for record in live.registry.records():
            twin = recovered.registry.get(record.instance_id)
            assert twin.registered_at == record.registered_at
        assert recovered.clock.now() <= live.clock.now()

    def test_recovered_server_resumes_journaling(self):
        persist = memory_config().build()
        live, _ = make_server(persistence=persist)
        drive_workload(live)
        last = persist.log.last_seq
        recovered = recover_server(persist)
        assert recovered.persistence is persist
        register(recovered, "d", user="dave")
        assert persist.log.last_seq == last + 1

    def test_at_seq_time_travel(self):
        persist = memory_config().build()
        live, _ = make_server(persistence=persist)
        register(live, "a", user="alice")
        register(live, "b", user="bob")
        register(live, "c", user="carol")
        past = recover_server(persist, at_seq=2)
        assert sorted(r.instance_id for r in past.registry.records()) == [
            "a",
            "b",
        ]
        # Time travel is read-only: the journal stays detached.
        assert past.persistence is None

    def test_replay_does_not_grow_the_log(self):
        persist = memory_config().build()
        live, _ = make_server(persistence=persist)
        drive_workload(live)
        before = persist.log.last_seq
        recover_server(persist)
        assert persist.log.last_seq == before

    def test_file_backed_crash_recovery(self, tmp_path):
        config = PersistenceConfig(
            directory=str(tmp_path), snapshot_every=4
        )
        live, _ = make_server(persistence=config.build())
        drive_workload(live)
        expected = server_fingerprint(live)
        # "Crash": abandon the live server, reopen the directory cold.
        cold = config.build()
        recovered = recover_server(cold)
        assert server_fingerprint(recovered) == expected
        cold.close()


class TestRecoverCluster:
    def _drive(self, cluster):
        transport = FakeTransport()
        cluster.bind(transport)
        for name, user in (("a", "alice"), ("b", "bob"), ("c", "carol")):
            cluster.clock.advance(0.01)
            cluster.handle_message(
                Message(
                    kind=kinds.REGISTER,
                    sender=name,
                    payload={"user": user, "app_type": ""},
                )
            )
        cluster.clock.advance(0.01)
        cluster.handle_message(
            Message(
                kind=kinds.COUPLE,
                sender="a",
                payload={
                    "source": ["a", "/app/x"],
                    "target": ["b", "/app/x"],
                },
            )
        )
        return transport

    def test_shards_recover_to_matching_fingerprints(self, tmp_path):
        from repro.cluster.router import ShardedCosoftCluster

        config = PersistenceConfig(directory=str(tmp_path))
        cluster = ShardedCosoftCluster(shards=2, persistence=config)
        self._drive(cluster)
        expected = {
            sid: server_fingerprint(shard)
            for sid, shard in cluster.shards.items()
        }
        for persist in (s.persistence for s in cluster.shards.values()):
            persist.close()
        recovered = recover_cluster(config, shards=2)
        for sid, shard in recovered.shards.items():
            assert server_fingerprint(shard) == expected[sid]
        assert len(recovered.registry) == 3
        assert len(recovered.mirror) == 1

    def test_router_books_rebuilt(self, tmp_path):
        from repro.cluster.router import ShardedCosoftCluster

        config = PersistenceConfig(directory=str(tmp_path))
        cluster = ShardedCosoftCluster(shards=2, persistence=config)
        self._drive(cluster)
        for persist in (s.persistence for s in cluster.shards.values()):
            persist.close()
        recovered = recover_cluster(config, shards=2)
        gid = ("a", "/app/x")
        assert recovered._home.get(gid) == cluster._home.get(gid)
        assert set(recovered.mirror.group_of(gid)) == set(
            cluster.mirror.group_of(gid)
        )
        # The replay sink was unbound: the caller's bind comes first.
        assert recovered._transport is None


class TestCatchup:
    def test_late_joiner_catches_up_without_push_state(self):
        persist = memory_config().build()
        live, transport = make_server(persistence=persist)
        drive_workload(live)
        transport.take()
        # The joiner asks for everything after its (empty) journal.
        live.handle_message(
            Message(
                kind=kinds.CATCHUP_REQUEST,
                sender="standby",
                payload={"after_seq": 0},
            )
        )
        replies = transport.take()
        assert [m.kind for m in replies] == [kinds.CATCHUP_REPLY]
        payload = replies[0].payload
        standby_persist = memory_config().build()
        standby, _ = make_server(persistence=standby_persist)
        report = apply_catchup(standby, payload)
        assert report["fingerprint_ok"] is True
        assert report["applied"] == len(payload["entries"])
        # The joiner's own journal tracked the position it reached.
        assert standby_persist.log.last_seq == payload["last_seq"]
        # No state transfer was involved, only the log suffix.
        assert live.processed[kinds.PUSH_STATE] == 0
        assert "snapshot" not in payload or payload["snapshot"] is None

    def test_catchup_is_incremental(self):
        persist = memory_config().build()
        live, transport = make_server(persistence=persist)
        register(live, "a", user="alice")
        standby_persist = memory_config().build()
        standby, _ = make_server(persistence=standby_persist)
        apply_catchup(standby, persist.catchup_payload(live, 0))
        first = standby_persist.log.last_seq
        register(live, "b", user="bob")
        history_push(live, "b", "/app/x", {"value": "v"})
        report = apply_catchup(
            standby, persist.catchup_payload(live, first)
        )
        assert report["applied"] == 2
        assert report["fingerprint_ok"] is True

    def test_duplicate_entries_are_skipped_by_seq(self):
        persist = memory_config().build()
        live, _ = make_server(persistence=persist)
        drive_workload(live)
        standby_persist = memory_config().build()
        standby, _ = make_server(persistence=standby_persist)
        payload = persist.catchup_payload(live, 0)
        apply_catchup(standby, payload)
        again = apply_catchup(standby, payload)  # replayed delivery
        assert again["applied"] == 0
        assert again["fingerprint_ok"] is True

    def test_catchup_below_compaction_ships_snapshot(self):
        persist = memory_config().build()
        live, _ = make_server(persistence=persist)
        drive_workload(live)
        persist.snapshot(live)
        persist.log.compact(persist.log.last_seq)
        payload = persist.catchup_payload(live, 0)
        assert payload.get("snapshot") is not None
        standby, _ = make_server(persistence=memory_config().build())
        report = apply_catchup(standby, payload)
        assert report["fingerprint_ok"] is True

    def test_catchup_error_when_persistence_off(self):
        live, transport = make_server()
        register(live, "a", user="alice")
        transport.take()
        live.handle_message(
            Message(
                kind=kinds.CATCHUP_REQUEST,
                sender="standby",
                payload={"after_seq": 0},
            )
        )
        replies = transport.take()
        assert replies and replies[0].kind == kinds.ERROR
