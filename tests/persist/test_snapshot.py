"""Tests for state capture/restore and the snapshot stores."""

import os

import pytest

from repro.errors import PersistenceError
from repro.persist import MemorySnapshotStore, SnapshotStore
from repro.persist.snapshot import (
    build_snapshot,
    capture_state,
    restore_state,
    server_fingerprint,
    state_fingerprint,
)

from persist_helpers import drive_workload, make_server


class TestCaptureRestore:
    def test_round_trip_reproduces_fingerprint(self):
        src, _ = make_server()
        drive_workload(src)
        state = capture_state(src)
        dst, _ = make_server()
        restore_state(dst, state)
        assert server_fingerprint(dst) == server_fingerprint(src)

    def test_restore_covers_all_categories(self):
        src, _ = make_server()
        drive_workload(src)
        dst, _ = make_server()
        restore_state(dst, capture_state(src))
        assert sorted(r.instance_id for r in dst.registry.records()) == [
            "a",
            "b",
        ]
        assert len(dst.couples) == len(src.couples)
        assert dst.locks.locked_objects() == src.locks.locked_objects()
        assert dst.history.depth(("b", "/app/x")) == src.history.depth(
            ("b", "/app/x")
        )
        # Tombstones travel too: "c" unregistered, its history stays dead.
        assert dst.history.forgotten_instances() == ["c"]

    def test_fingerprint_ignores_volatile_counters(self):
        src, _ = make_server()
        drive_workload(src)
        before = server_fingerprint(src)
        src.processed["event"] += 100  # traffic counters are not state
        assert server_fingerprint(src) == before

    def test_fingerprint_changes_with_state(self):
        src, _ = make_server()
        drive_workload(src)
        before = server_fingerprint(src)
        src.history.forget_instance("b")
        assert server_fingerprint(src) != before

    def test_state_is_json_safe(self):
        import json

        src, _ = make_server()
        drive_workload(src)
        state = capture_state(src)
        assert json.loads(json.dumps(state)) == state


class TestBuildSnapshot:
    def test_envelope(self):
        src, _ = make_server()
        drive_workload(src)
        snap = build_snapshot(src, seq=10, epoch=2)
        assert snap["seq"] == 10
        assert snap["epoch"] == 2
        assert snap["clock"] == src.clock.now()
        assert snap["fingerprint"] == state_fingerprint(snap["state"])


class TestSnapshotStore:
    def _snap(self, seq):
        src, _ = make_server()
        drive_workload(src)
        return build_snapshot(src, seq=seq, epoch=0)

    def test_save_load_round_trip(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        snap = self._snap(5)
        store.save(snap)
        assert store.seqs() == [5]
        assert store.load(5) == snap

    def test_corrupt_snapshot_fails_crc(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        store.save(self._snap(5))
        (name,) = os.listdir(tmp_path)
        path = os.path.join(tmp_path, name)
        text = open(path).read().replace('"alice"', '"mallory"', 1)
        open(path, "w").write(text)
        with pytest.raises(PersistenceError):
            store.load(5)

    def test_keep_prunes_old_snapshots(self, tmp_path):
        store = SnapshotStore(str(tmp_path), keep=2)
        for seq in (5, 10, 15):
            store.save(self._snap(seq))
        assert store.seqs() == [10, 15]

    def test_load_latest_respects_max_seq(self, tmp_path):
        store = SnapshotStore(str(tmp_path), keep=0)  # keep everything
        for seq in (5, 10, 15):
            store.save(self._snap(seq))
        assert store.load_latest()["seq"] == 15
        assert store.load_latest(max_seq=12)["seq"] == 10
        assert store.load_latest(max_seq=4) is None


class TestMemorySnapshotStore:
    def test_copies_on_save_and_load(self):
        store = MemorySnapshotStore()
        src, _ = make_server()
        drive_workload(src)
        snap = build_snapshot(src, seq=1, epoch=0)
        store.save(snap)
        loaded = store.load(1)
        loaded["state"]["registry"].clear()
        assert store.load(1)["state"]["registry"]  # untouched

    def test_missing_seq_raises(self):
        with pytest.raises(PersistenceError):
            MemorySnapshotStore().load(42)
