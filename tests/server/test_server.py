"""Protocol-level tests of the sans-I/O central server.

A fake transport collects everything the server sends, so each handler can
be asserted message by message, without a network.
"""

import pytest

from repro.net import kinds
from repro.net.clock import SimClock
from repro.net.message import Message
from repro.server.couples import gid_to_wire, global_id
from repro.server.permissions import AccessControl, PermissionRule
from repro.server.server import SERVER_ID, CosoftServer


class FakeTransport:
    def __init__(self):
        self.sent = []
        self.closed = False

    @property
    def local_id(self):
        return SERVER_ID

    def send(self, message):
        self.sent.append(message)

    def drive(self, predicate, timeout=5.0):
        return predicate()

    def close(self):
        self.closed = True

    def take(self):
        out, self.sent = self.sent, []
        return out


@pytest.fixture
def server():
    srv = CosoftServer(clock=SimClock())
    transport = FakeTransport()
    srv.bind(transport)
    return srv, transport


def register(srv, transport, instance_id, user=None, app_type=""):
    srv.handle_message(
        Message(
            kind=kinds.REGISTER,
            sender=instance_id,
            payload={"user": user or instance_id, "app_type": app_type},
        )
    )
    return transport.take()


A_OBJ = global_id("a", "/app/x")
B_OBJ = global_id("b", "/app/x")
C_OBJ = global_id("c", "/app/x")


def couple(srv, sender, source, target, kind=kinds.COUPLE):
    msg = Message(
        kind=kind,
        sender=sender,
        payload={"source": gid_to_wire(source), "target": gid_to_wire(target)},
    )
    srv.handle_message(msg)
    return msg


class TestRegistration:
    def test_register_ack_contains_roster_and_couples(self, server):
        srv, transport = server
        out = register(srv, transport, "a", user="alice")
        assert out[0].kind == kinds.REGISTER_ACK
        assert out[0].to == "a"
        assert out[0].payload["roster"][0]["user"] == "alice"
        assert out[0].payload["couples"] == []

    def test_second_register_broadcasts_roster(self, server):
        srv, transport = server
        register(srv, transport, "a")
        out = register(srv, transport, "b")
        kinds_to = [(m.kind, m.to) for m in out]
        assert (kinds.REGISTER_ACK, "b") in kinds_to
        assert (kinds.INSTANCE_LIST, "a") in kinds_to

    def test_double_register_errors(self, server):
        srv, transport = server
        register(srv, transport, "a")
        out = register(srv, transport, "a")
        assert out[0].kind == kinds.ERROR

    def test_unregister_cleans_everything(self, server):
        srv, transport = server
        register(srv, transport, "a")
        register(srv, transport, "b")
        couple(srv, "a", A_OBJ, B_OBJ)
        transport.take()
        srv.handle_message(Message(kind=kinds.UNREGISTER, sender="a"))
        out = transport.take()
        # b hears about the removed link and the new roster.
        assert any(
            m.kind == kinds.COUPLE_UPDATE and m.payload["action"] == "remove"
            for m in out
        )
        assert any(m.kind == kinds.INSTANCE_LIST for m in out)
        assert len(srv.registry) == 1
        assert len(srv.couples) == 0

    def test_unregister_unknown_errors(self, server):
        srv, transport = server
        srv.handle_message(Message(kind=kinds.UNREGISTER, sender="ghost"))
        assert transport.take()[0].kind == kinds.ERROR


class TestCoupling:
    def test_couple_broadcasts_to_all(self, server):
        srv, transport = server
        for inst in ("a", "b", "c"):
            register(srv, transport, inst)
        couple(srv, "a", A_OBJ, B_OBJ)
        out = transport.take()
        updates = [m for m in out if m.kind == kinds.COUPLE_UPDATE]
        assert {m.to for m in updates} == {"a", "b", "c"}
        # The requester's copy is a correlated reply.
        requester_copy = [m for m in updates if m.to == "a"][0]
        assert requester_copy.reply_to is not None
        group = requester_copy.payload["group"]
        assert sorted(tuple(g) for g in group) == sorted(
            [tuple(gid_to_wire(A_OBJ)), tuple(gid_to_wire(B_OBJ))]
        )

    def test_couple_to_unregistered_instance_errors(self, server):
        srv, transport = server
        register(srv, transport, "a")
        couple(srv, "a", A_OBJ, global_id("ghost", "/x"))
        assert transport.take()[0].kind == kinds.ERROR
        assert len(srv.couples) == 0

    def test_couple_permission_denied(self, server):
        srv, transport = server
        srv.access = AccessControl(default_allow=False)
        register(srv, transport, "a", user="alice")
        register(srv, transport, "b")
        couple(srv, "a", A_OBJ, B_OBJ)
        out = transport.take()
        assert out[0].kind == kinds.ERROR
        assert "alice" in out[0].payload["reason"]

    def test_remote_couple_by_third_party(self, server):
        srv, transport = server
        for inst in ("a", "b", "c"):
            register(srv, transport, inst)
        couple(srv, "c", A_OBJ, B_OBJ, kind=kinds.REMOTE_COUPLE)
        assert srv.couples.has_link(A_OBJ, B_OBJ)

    def test_decouple_removes_and_broadcasts(self, server):
        srv, transport = server
        register(srv, transport, "a")
        register(srv, transport, "b")
        couple(srv, "a", A_OBJ, B_OBJ)
        transport.take()
        couple(srv, "a", A_OBJ, B_OBJ, kind=kinds.DECOUPLE)
        out = transport.take()
        removals = [
            m
            for m in out
            if m.kind == kinds.COUPLE_UPDATE and m.payload["action"] == "remove"
        ]
        assert {m.to for m in removals} == {"a", "b"}
        assert len(srv.couples) == 0

    def test_decouple_missing_link_errors(self, server):
        srv, transport = server
        register(srv, transport, "a")
        register(srv, transport, "b")
        couple(srv, "a", A_OBJ, B_OBJ, kind=kinds.DECOUPLE)
        assert transport.take()[0].kind == kinds.ERROR

    def test_subtree_decouple_on_destroy(self, server):
        srv, transport = server
        register(srv, transport, "a")
        register(srv, transport, "b")
        inner = global_id("a", "/app/x/deep")
        couple(srv, "a", inner, B_OBJ)
        transport.take()
        srv.handle_message(
            Message(
                kind=kinds.DECOUPLE,
                sender="a",
                payload={"object": gid_to_wire(global_id("a", "/app/x"))},
            )
        )
        assert len(srv.couples) == 0

    def test_subtree_decouple_noop_confirms(self, server):
        srv, transport = server
        register(srv, transport, "a")
        srv.handle_message(
            Message(
                kind=kinds.DECOUPLE,
                sender="a",
                payload={"object": gid_to_wire(A_OBJ)},
            )
        )
        out = transport.take()
        assert out[0].kind == kinds.COUPLE_UPDATE
        assert out[0].payload["action"] == "noop"


class TestFloorControl:
    def _lock(self, srv, sender, obj, token=1):
        srv.handle_message(
            Message(
                kind=kinds.LOCK_REQUEST,
                sender=sender,
                payload={"source": gid_to_wire(obj), "token": token},
            )
        )

    def test_lock_grants_whole_group(self, server):
        srv, transport = server
        for inst in ("a", "b", "c"):
            register(srv, transport, inst)
        couple(srv, "a", A_OBJ, B_OBJ)
        couple(srv, "b", B_OBJ, C_OBJ)
        transport.take()
        self._lock(srv, "a", A_OBJ)
        reply = transport.take()[0]
        assert reply.kind == kinds.LOCK_REPLY
        assert reply.payload["granted"]
        assert len(reply.payload["group"]) == 3
        assert len(srv.locks) == 3

    def test_conflicting_lock_denied_with_conflicts(self, server):
        srv, transport = server
        register(srv, transport, "a")
        register(srv, transport, "b")
        couple(srv, "a", A_OBJ, B_OBJ)
        transport.take()
        self._lock(srv, "a", A_OBJ, token=1)
        transport.take()
        self._lock(srv, "b", B_OBJ, token=1)
        reply = transport.take()[0]
        assert not reply.payload["granted"]
        assert reply.payload["conflicts"]

    def test_unlock_releases_floor(self, server):
        srv, transport = server
        register(srv, transport, "a")
        register(srv, transport, "b")
        couple(srv, "a", A_OBJ, B_OBJ)
        transport.take()
        self._lock(srv, "a", A_OBJ, token=5)
        transport.take()
        srv.handle_message(
            Message(kind=kinds.UNLOCK, sender="a", payload={"token": 5})
        )
        assert len(srv.locks) == 0
        self._lock(srv, "b", B_OBJ)
        assert transport.take()[0].payload["granted"]

    def test_uncoupled_lock_is_singleton_group(self, server):
        srv, transport = server
        register(srv, transport, "a")
        self._lock(srv, "a", A_OBJ)
        reply = transport.take()[0]
        assert reply.payload["granted"]
        assert len(reply.payload["group"]) == 1


class TestEventBroadcast:
    def _setup_group(self, srv, transport):
        for inst in ("a", "b", "c"):
            register(srv, transport, inst)
        couple(srv, "a", A_OBJ, B_OBJ)
        couple(srv, "a", A_OBJ, C_OBJ)
        transport.take()

    def _send_event(self, srv, token=1, release=True):
        event_wire = {
            "type": "value_changed",
            "source_path": "/app/x",
            "params": {"value": "v"},
            "user": "alice",
            "instance_id": "a",
            "seq": 1,
        }
        srv.handle_message(
            Message(
                kind=kinds.EVENT,
                sender="a",
                payload={"event": event_wire, "token": token, "release": release},
            )
        )

    def test_event_broadcast_to_other_members_only(self, server):
        srv, transport = server
        self._setup_group(srv, transport)
        srv.handle_message(
            Message(
                kind=kinds.LOCK_REQUEST,
                sender="a",
                payload={"source": gid_to_wire(A_OBJ), "token": 1},
            )
        )
        transport.take()
        self._send_event(srv, token=1)
        out = transport.take()
        broadcasts = [m for m in out if m.kind == kinds.EVENT_BROADCAST]
        assert {m.to for m in broadcasts} == {"b", "c"}
        assert broadcasts[0].payload["targets"] == ["/app/x"]
        assert broadcasts[0].payload["owner"] == ["a", 1]
        # The floor is held until every receiver acknowledges (§3.2:
        # unlocked "when the processing of this event is completed").
        assert len(srv.locks) == 3
        srv.handle_message(
            Message(kind=kinds.EVENT_ACK, sender="b", payload={"owner": ["a", 1]})
        )
        assert len(srv.locks) == 3
        srv.handle_message(
            Message(kind=kinds.EVENT_ACK, sender="c", payload={"owner": ["a", 1]})
        )
        assert len(srv.locks) == 0

    def test_event_without_lock_uses_current_group(self, server):
        srv, transport = server
        self._setup_group(srv, transport)
        self._send_event(srv, token=99)
        broadcasts = [
            m for m in transport.take() if m.kind == kinds.EVENT_BROADCAST
        ]
        assert {m.to for m in broadcasts} == {"b", "c"}

    def test_event_with_release_false_keeps_locks(self, server):
        srv, transport = server
        self._setup_group(srv, transport)
        srv.handle_message(
            Message(
                kind=kinds.LOCK_REQUEST,
                sender="a",
                payload={"source": gid_to_wire(A_OBJ), "token": 1},
            )
        )
        transport.take()
        self._send_event(srv, token=1, release=False)
        assert len(srv.locks) == 3


class TestStateMediation:
    def test_fetch_state_forwarded_and_reply_routed(self, server):
        srv, transport = server
        register(srv, transport, "a")
        register(srv, transport, "b")
        fetch = Message(
            kind=kinds.FETCH_STATE,
            sender="a",
            payload={"object": gid_to_wire(B_OBJ)},
        )
        srv.handle_message(fetch)
        forwarded = transport.take()[0]
        assert forwarded.kind == kinds.FETCH_STATE
        assert forwarded.to == "b"
        # Owner answers.
        srv.handle_message(
            Message(
                kind=kinds.STATE_REPLY,
                sender="b",
                payload={"state": {"": {"v": 1}}},
                reply_to=forwarded.msg_id,
            )
        )
        routed = transport.take()[0]
        assert routed.kind == kinds.STATE_REPLY
        assert routed.to == "a"
        assert routed.reply_to == fetch.msg_id

    def test_fetch_state_owner_error_routed_back(self, server):
        srv, transport = server
        register(srv, transport, "a")
        register(srv, transport, "b")
        fetch = Message(
            kind=kinds.FETCH_STATE,
            sender="a",
            payload={"object": gid_to_wire(B_OBJ)},
        )
        srv.handle_message(fetch)
        forwarded = transport.take()[0]
        srv.handle_message(
            Message(
                kind=kinds.ERROR,
                sender="b",
                payload={"reason": "no such object"},
                reply_to=forwarded.msg_id,
            )
        )
        routed = transport.take()[0]
        assert routed.kind == kinds.ERROR
        assert routed.to == "a"
        assert routed.reply_to == fetch.msg_id

    def test_pending_fetch_fails_fast_when_owner_leaves(self, server):
        """A forwarded fetch whose owner unregisters is failed back to the
        requester immediately (no leaked route, no requester timeout)."""
        srv, transport = server
        register(srv, transport, "a")
        register(srv, transport, "b")
        fetch = Message(
            kind=kinds.FETCH_STATE,
            sender="a",
            payload={"object": gid_to_wire(B_OBJ)},
        )
        srv.handle_message(fetch)
        transport.take()
        srv.handle_message(Message(kind=kinds.UNREGISTER, sender="b"))
        out = transport.take()
        errors = [m for m in out if m.kind == kinds.ERROR]
        assert errors and errors[0].to == "a"
        assert errors[0].reply_to == fetch.msg_id
        assert srv._pending == {}

    def test_fetch_from_unregistered_owner_errors(self, server):
        srv, transport = server
        register(srv, transport, "a")
        srv.handle_message(
            Message(
                kind=kinds.FETCH_STATE,
                sender="a",
                payload={"object": gid_to_wire(global_id("ghost", "/x"))},
            )
        )
        assert transport.take()[0].kind == kinds.ERROR

    def test_fetch_read_permission_enforced(self, server):
        srv, transport = server
        srv.access = AccessControl(default_allow=False)
        register(srv, transport, "a", user="alice")
        register(srv, transport, "b")
        srv.handle_message(
            Message(
                kind=kinds.FETCH_STATE,
                sender="a",
                payload={"object": gid_to_wire(B_OBJ)},
            )
        )
        assert transport.take()[0].kind == kinds.ERROR

    def test_push_state_forwarded_with_ack(self, server):
        srv, transport = server
        register(srv, transport, "a")
        register(srv, transport, "b")
        push = Message(
            kind=kinds.PUSH_STATE,
            sender="a",
            payload={
                "target": gid_to_wire(B_OBJ),
                "state": {"": {"v": 2}},
                "mode": "strict",
            },
        )
        srv.handle_message(push)
        out = transport.take()
        assert out[0].kind == kinds.PUSH_STATE and out[0].to == "b"
        assert out[1].kind == kinds.STATE_REPLY and out[1].reply_to == push.msg_id

    def test_remote_copy_two_hop_flow(self, server):
        srv, transport = server
        for inst in ("a", "b", "c"):
            register(srv, transport, inst)
        remote = Message(
            kind=kinds.REMOTE_COPY,
            sender="c",
            payload={
                "source": gid_to_wire(A_OBJ),
                "target": gid_to_wire(B_OBJ),
                "mode": "merge",
            },
        )
        srv.handle_message(remote)
        fetch = transport.take()[0]
        assert fetch.kind == kinds.FETCH_STATE and fetch.to == "a"
        srv.handle_message(
            Message(
                kind=kinds.STATE_REPLY,
                sender="a",
                payload={"state": {"": {"v": 1}}, "structure": None},
                reply_to=fetch.msg_id,
            )
        )
        out = transport.take()
        push = [m for m in out if m.kind == kinds.PUSH_STATE][0]
        assert push.to == "b"
        assert push.payload["mode"] == "merge"
        assert push.payload["target"] == gid_to_wire(B_OBJ)
        ack = [m for m in out if m.kind == kinds.STATE_REPLY][0]
        assert ack.to == "c" and ack.reply_to == remote.msg_id


class TestHistoryAndUndo:
    def test_history_push_and_undo(self, server):
        srv, transport = server
        register(srv, transport, "a")
        srv.handle_message(
            Message(
                kind=kinds.HISTORY_PUSH,
                sender="a",
                payload={
                    "object": gid_to_wire(A_OBJ),
                    "state": {"": {"v": "old"}},
                    "reason": "push_state",
                },
            )
        )
        undo = Message(
            kind=kinds.UNDO_REQUEST,
            sender="a",
            payload={
                "object": gid_to_wire(A_OBJ),
                "current_state": {"": {"v": "new"}},
            },
        )
        srv.handle_message(undo)
        reply = transport.take()[0]
        assert reply.kind == kinds.UNDO_REPLY
        assert reply.payload["state"] == {"": {"v": "old"}}

    def test_undo_empty_history_errors(self, server):
        srv, transport = server
        register(srv, transport, "a")
        srv.handle_message(
            Message(
                kind=kinds.UNDO_REQUEST,
                sender="a",
                payload={"object": gid_to_wire(A_OBJ)},
            )
        )
        assert transport.take()[0].kind == kinds.ERROR


class TestCommands:
    def test_command_fanout_excludes_sender(self, server):
        srv, transport = server
        for inst in ("a", "b", "c"):
            register(srv, transport, inst)
        srv.handle_message(
            Message(
                kind=kinds.COMMAND,
                sender="a",
                payload={"command": "ping", "data": 1, "targets": []},
            )
        )
        out = transport.take()
        assert {m.to for m in out} == {"b", "c"}
        assert all(m.payload["origin"] == "a" for m in out)

    def test_command_targeted(self, server):
        srv, transport = server
        for inst in ("a", "b", "c"):
            register(srv, transport, inst)
        srv.handle_message(
            Message(
                kind=kinds.COMMAND,
                sender="a",
                payload={"command": "ping", "data": 1, "targets": ["b"]},
            )
        )
        out = transport.take()
        assert [m.to for m in out] == ["b"]

    def test_command_reply_routed_to_origin(self, server):
        srv, transport = server
        register(srv, transport, "a")
        register(srv, transport, "b")
        srv.handle_message(
            Message(
                kind=kinds.COMMAND_REPLY,
                sender="b",
                payload={"data": 42, "origin": "a", "origin_msg_id": 7},
            )
        )
        out = transport.take()[0]
        assert out.to == "a"
        assert out.reply_to == 7
        assert out.payload["responder"] == "b"

    def test_command_to_unknown_target_errors(self, server):
        srv, transport = server
        register(srv, transport, "a")
        srv.handle_message(
            Message(
                kind=kinds.COMMAND,
                sender="a",
                payload={"command": "ping", "targets": ["ghost"]},
            )
        )
        assert transport.take()[0].kind == kinds.ERROR


class TestPermissionManagement:
    def test_own_instance_rules_allowed(self, server):
        srv, transport = server
        register(srv, transport, "a", user="alice")
        rule = PermissionRule("*", "a", "/app", "read")
        srv.handle_message(
            Message(
                kind=kinds.PERMISSION_SET,
                sender="a",
                payload={"rule": rule.to_wire()},
            )
        )
        assert transport.take()[0].kind == kinds.PERMISSION_REPLY
        assert rule in srv.access.rules()

    def test_foreign_instance_rules_rejected(self, server):
        srv, transport = server
        register(srv, transport, "a", user="alice")
        rule = PermissionRule("*", "b", "/app", "read")
        srv.handle_message(
            Message(
                kind=kinds.PERMISSION_SET,
                sender="a",
                payload={"rule": rule.to_wire()},
            )
        )
        assert transport.take()[0].kind == kinds.ERROR

    def test_admin_may_set_anything(self, server):
        srv, transport = server
        srv.admin_users.add("root")
        register(srv, transport, "a", user="root")
        rule = PermissionRule("*", "b", "/app", "read")
        srv.handle_message(
            Message(
                kind=kinds.PERMISSION_SET,
                sender="a",
                payload={"rule": rule.to_wire()},
            )
        )
        assert transport.take()[0].kind == kinds.PERMISSION_REPLY

    def test_remove_action(self, server):
        srv, transport = server
        register(srv, transport, "a", user="alice")
        rule = PermissionRule("*", "a", "/app", "read")
        srv.access.add(rule)
        srv.handle_message(
            Message(
                kind=kinds.PERMISSION_SET,
                sender="a",
                payload={"rule": rule.to_wire(), "action": "remove"},
            )
        )
        transport.take()
        assert rule not in srv.access.rules()


class TestStats:
    def test_stats_shape(self, server):
        srv, transport = server
        register(srv, transport, "a")
        stats = srv.stats()
        assert stats["registered"] == 1
        assert stats["processed"][kinds.REGISTER] == 1
        assert "lock_stats" in stats
