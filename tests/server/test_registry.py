"""Unit tests for the registration records."""

import pytest

from repro.errors import AlreadyRegisteredError, NotRegisteredError
from repro.server.registry import RegistrationRecord, Registry


def record(instance_id="i1", user="alice", app_type="editor"):
    return RegistrationRecord(
        instance_id=instance_id,
        user=user,
        host="host-1",
        app_type=app_type,
        registered_at=1.5,
    )


class TestRegistry:
    def test_add_get(self):
        reg = Registry()
        reg.add(record())
        assert reg.get("i1").user == "alice"
        assert "i1" in reg
        assert len(reg) == 1

    def test_duplicate_rejected(self):
        reg = Registry()
        reg.add(record())
        with pytest.raises(AlreadyRegisteredError):
            reg.add(record())

    def test_remove_returns_record(self):
        reg = Registry()
        reg.add(record())
        removed = reg.remove("i1")
        assert removed.instance_id == "i1"
        assert "i1" not in reg

    def test_remove_missing_raises(self):
        with pytest.raises(NotRegisteredError):
            Registry().remove("ghost")

    def test_get_missing_raises(self):
        with pytest.raises(NotRegisteredError):
            Registry().get("ghost")

    def test_by_user(self):
        reg = Registry()
        reg.add(record("i1", "alice"))
        reg.add(record("i2", "bob"))
        reg.add(record("i3", "alice"))
        assert {r.instance_id for r in reg.by_user("alice")} == {"i1", "i3"}

    def test_by_app_type(self):
        reg = Registry()
        reg.add(record("i1", app_type="teacher"))
        reg.add(record("i2", app_type="student"))
        reg.add(record("i3", app_type="student"))
        assert len(reg.by_app_type("student")) == 2

    def test_roster_wire_roundtrip(self):
        reg = Registry()
        reg.add(record())
        entry = reg.roster()[0]
        rebuilt = RegistrationRecord.from_wire(entry)
        assert rebuilt == record()

    def test_instance_ids_order(self):
        reg = Registry()
        for name in ("z", "a", "m"):
            reg.add(record(name))
        assert reg.instance_ids() == ("z", "a", "m")
