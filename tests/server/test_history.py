"""Unit tests for the historical-UI-state store (undo/redo)."""

import pytest

from repro.errors import HistoryError
from repro.server.couples import global_id
from repro.server.history import HistoricalState, HistoryStore

OBJ = global_id("a", "/app/form")
OTHER = global_id("b", "/app/form")


def entry(state, reason="copy"):
    return HistoricalState(obj=OBJ, state=state, timestamp=1.0, reason=reason)


class TestUndo:
    def test_push_and_undo_lifo(self):
        store = HistoryStore()
        store.push(entry({"v": 1}))
        store.push(entry({"v": 2}))
        assert store.undo(OBJ).state == {"v": 2}
        assert store.undo(OBJ).state == {"v": 1}

    def test_undo_empty_raises(self):
        with pytest.raises(HistoryError):
            HistoryStore().undo(OBJ)

    def test_depth_reporting(self):
        store = HistoryStore()
        store.push(entry({"v": 1}))
        assert store.depth(OBJ) == (1, 0)
        store.undo(OBJ, current_state={"v": 9})
        assert store.depth(OBJ) == (0, 1)

    def test_peek_does_not_pop(self):
        store = HistoryStore()
        store.push(entry({"v": 1}))
        assert store.peek(OBJ).state == {"v": 1}
        assert store.depth(OBJ) == (1, 0)

    def test_peek_empty_is_none(self):
        assert HistoryStore().peek(OBJ) is None

    def test_bounded_depth_drops_oldest(self):
        store = HistoryStore(max_depth=2)
        for i in range(4):
            store.push(entry({"v": i}))
        assert store.undo(OBJ).state == {"v": 3}
        assert store.undo(OBJ).state == {"v": 2}
        with pytest.raises(HistoryError):
            store.undo(OBJ)

    def test_max_depth_validated(self):
        with pytest.raises(ValueError):
            HistoryStore(max_depth=0)


class TestRedo:
    def test_undo_then_redo(self):
        store = HistoryStore()
        store.push(entry({"v": 1}))
        undone = store.undo(OBJ, current_state={"v": 2})
        assert undone.state == {"v": 1}
        redone = store.redo(OBJ, current_state={"v": 1})
        assert redone.state == {"v": 2}
        # And the redo pushed the pre-redo state back onto undo.
        assert store.undo(OBJ).state == {"v": 1}

    def test_redo_empty_raises(self):
        with pytest.raises(HistoryError):
            HistoryStore().redo(OBJ)

    def test_new_push_clears_redo(self):
        store = HistoryStore()
        store.push(entry({"v": 1}))
        store.undo(OBJ, current_state={"v": 2})
        store.push(entry({"v": 3}))
        with pytest.raises(HistoryError):
            store.redo(OBJ)

    def test_undo_without_current_state_skips_redo(self):
        store = HistoryStore()
        store.push(entry({"v": 1}))
        store.undo(OBJ)
        with pytest.raises(HistoryError):
            store.redo(OBJ)


class TestIsolationAndCleanup:
    def test_objects_are_independent(self):
        store = HistoryStore()
        store.push(entry({"v": 1}))
        store.push(
            HistoricalState(obj=OTHER, state={"w": 9}, timestamp=0.0)
        )
        assert store.undo(OTHER).state == {"w": 9}
        assert store.depth(OBJ) == (1, 0)

    def test_forget_instance(self):
        store = HistoryStore()
        store.push(entry({"v": 1}))
        store.push(HistoricalState(obj=OTHER, state={"w": 1}))
        dropped = store.forget_instance("a")
        assert dropped == 1
        assert store.objects() == [OTHER]

    def test_len_counts_undo_entries(self):
        store = HistoryStore()
        store.push(entry({"v": 1}))
        store.push(entry({"v": 2}))
        assert len(store) == 2

    def test_wire_form(self):
        wire = entry({"v": 1}, reason="copy_from").to_wire()
        assert wire["obj"] == ["a", "/app/form"]
        assert wire["reason"] == "copy_from"


class TestForgetImportAsymmetry:
    """Regression: an export taken before ``forget_instance`` must not
    resurrect the dead instance's history through ``import_object``
    (e.g. a shard migration in flight while the instance terminated)."""

    def test_stale_import_after_forget_is_dropped(self):
        store = HistoryStore()
        store.push(entry({"v": 1}))
        exported = store.export_object(OBJ)   # migration takes the stacks
        store.forget_instance("a")            # ... instance dies meanwhile
        store.import_object(OBJ, exported)    # ... migration lands late
        assert store.depth(OBJ) == (0, 0)
        assert store.objects() == []

    def test_forget_tombstones_even_without_entries(self):
        store = HistoryStore()
        store.forget_instance("a")
        assert store.forgotten_instances() == ["a"]
        store.import_object(OBJ, {"undo": [entry({"v": 1}).to_wire()]})
        assert store.depth(OBJ) == (0, 0)

    def test_revive_lifts_the_tombstone(self):
        store = HistoryStore()
        store.push(entry({"v": 1}))
        exported = store.export_object(OBJ)
        store.forget_instance("a")
        store.revive_instance("a")            # the instance re-registered
        store.import_object(OBJ, exported)
        assert store.depth(OBJ) == (1, 0)

    def test_other_instances_unaffected(self):
        store = HistoryStore()
        store.push(HistoricalState(obj=OTHER, state={"w": 1}))
        exported = store.export_object(OTHER)
        store.forget_instance("a")
        store.import_object(OTHER, exported)
        assert store.depth(OTHER) == (1, 0)

    def test_tombstones_round_trip_through_export_state(self):
        store = HistoryStore()
        store.push(entry({"v": 1}))
        store.forget_instance("a")
        twin = HistoryStore()
        twin.import_state(store.export_state())
        assert twin.forgotten_instances() == ["a"]
        twin.import_object(OBJ, {"undo": [entry({"v": 1}).to_wire()]})
        assert twin.depth(OBJ) == (0, 0)
