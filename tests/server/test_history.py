"""Unit tests for the historical-UI-state store (undo/redo)."""

import pytest

from repro.errors import HistoryError
from repro.server.couples import global_id
from repro.server.history import HistoricalState, HistoryStore

OBJ = global_id("a", "/app/form")
OTHER = global_id("b", "/app/form")


def entry(state, reason="copy"):
    return HistoricalState(obj=OBJ, state=state, timestamp=1.0, reason=reason)


class TestUndo:
    def test_push_and_undo_lifo(self):
        store = HistoryStore()
        store.push(entry({"v": 1}))
        store.push(entry({"v": 2}))
        assert store.undo(OBJ).state == {"v": 2}
        assert store.undo(OBJ).state == {"v": 1}

    def test_undo_empty_raises(self):
        with pytest.raises(HistoryError):
            HistoryStore().undo(OBJ)

    def test_depth_reporting(self):
        store = HistoryStore()
        store.push(entry({"v": 1}))
        assert store.depth(OBJ) == (1, 0)
        store.undo(OBJ, current_state={"v": 9})
        assert store.depth(OBJ) == (0, 1)

    def test_peek_does_not_pop(self):
        store = HistoryStore()
        store.push(entry({"v": 1}))
        assert store.peek(OBJ).state == {"v": 1}
        assert store.depth(OBJ) == (1, 0)

    def test_peek_empty_is_none(self):
        assert HistoryStore().peek(OBJ) is None

    def test_bounded_depth_drops_oldest(self):
        store = HistoryStore(max_depth=2)
        for i in range(4):
            store.push(entry({"v": i}))
        assert store.undo(OBJ).state == {"v": 3}
        assert store.undo(OBJ).state == {"v": 2}
        with pytest.raises(HistoryError):
            store.undo(OBJ)

    def test_max_depth_validated(self):
        with pytest.raises(ValueError):
            HistoryStore(max_depth=0)


class TestRedo:
    def test_undo_then_redo(self):
        store = HistoryStore()
        store.push(entry({"v": 1}))
        undone = store.undo(OBJ, current_state={"v": 2})
        assert undone.state == {"v": 1}
        redone = store.redo(OBJ, current_state={"v": 1})
        assert redone.state == {"v": 2}
        # And the redo pushed the pre-redo state back onto undo.
        assert store.undo(OBJ).state == {"v": 1}

    def test_redo_empty_raises(self):
        with pytest.raises(HistoryError):
            HistoryStore().redo(OBJ)

    def test_new_push_clears_redo(self):
        store = HistoryStore()
        store.push(entry({"v": 1}))
        store.undo(OBJ, current_state={"v": 2})
        store.push(entry({"v": 3}))
        with pytest.raises(HistoryError):
            store.redo(OBJ)

    def test_undo_without_current_state_skips_redo(self):
        store = HistoryStore()
        store.push(entry({"v": 1}))
        store.undo(OBJ)
        with pytest.raises(HistoryError):
            store.redo(OBJ)


class TestIsolationAndCleanup:
    def test_objects_are_independent(self):
        store = HistoryStore()
        store.push(entry({"v": 1}))
        store.push(
            HistoricalState(obj=OTHER, state={"w": 9}, timestamp=0.0)
        )
        assert store.undo(OTHER).state == {"w": 9}
        assert store.depth(OBJ) == (1, 0)

    def test_forget_instance(self):
        store = HistoryStore()
        store.push(entry({"v": 1}))
        store.push(HistoricalState(obj=OTHER, state={"w": 1}))
        dropped = store.forget_instance("a")
        assert dropped == 1
        assert store.objects() == [OTHER]

    def test_len_counts_undo_entries(self):
        store = HistoryStore()
        store.push(entry({"v": 1}))
        store.push(entry({"v": 2}))
        assert len(store) == 2

    def test_wire_form(self):
        wire = entry({"v": 1}, reason="copy_from").to_wire()
        assert wire["obj"] == ["a", "/app/form"]
        assert wire["reason"] == "copy_from"
