"""Unit tests for the floor-control lock table (§3.2)."""

from repro.server.couples import global_id
from repro.server.locks import LockOwner, LockTable

X = global_id("a", "/x")
Y = global_id("b", "/y")
Z = global_id("c", "/z")

ALICE = LockOwner("inst-a", 1)
ALICE2 = LockOwner("inst-a", 2)
BOB = LockOwner("inst-b", 1)


class TestSingleLocks:
    def test_acquire_and_holder(self):
        table = LockTable()
        assert table.acquire(X, ALICE)
        assert table.holder(X) == ALICE
        assert table.is_locked(X)

    def test_reacquire_same_owner_ok(self):
        table = LockTable()
        table.acquire(X, ALICE)
        assert table.acquire(X, ALICE)

    def test_conflicting_owner_denied(self):
        table = LockTable()
        table.acquire(X, ALICE)
        assert not table.acquire(X, BOB)

    def test_same_instance_token_transfer(self):
        # A newer token of the same instance takes the lock over (its own
        # events are FIFO-ordered end to end), and the old owner can no
        # longer release it.
        table = LockTable()
        table.acquire(X, ALICE)
        assert table.acquire(X, ALICE2)
        assert table.holder(X) == ALICE2
        assert not table.release(X, ALICE)
        assert table.release(X, ALICE2)

    def test_group_transfer_rollback_restores_previous_owner(self):
        table = LockTable()
        table.acquire(X, ALICE)   # older token of the same instance
        table.acquire(Z, BOB)     # blocks the group attempt
        granted, conflicts = table.acquire_all([X, Y, Z], ALICE2)
        assert not granted and conflicts == [Z]
        # X went back to the old token, Y was fully released.
        assert table.holder(X) == ALICE
        assert not table.is_locked(Y)

    def test_release_only_by_holder(self):
        table = LockTable()
        table.acquire(X, ALICE)
        assert not table.release(X, BOB)
        assert table.is_locked(X)
        assert table.release(X, ALICE)
        assert not table.is_locked(X)

    def test_release_unlocked_returns_false(self):
        assert not LockTable().release(X, ALICE)


class TestGroupAcquisition:
    def test_all_or_nothing_success(self):
        table = LockTable()
        granted, conflicts = table.acquire_all([X, Y, Z], ALICE)
        assert granted and conflicts == []
        assert len(table) == 3

    def test_partial_failure_rolls_back(self):
        table = LockTable()
        table.acquire(Y, BOB)
        granted, conflicts = table.acquire_all([X, Y, Z], ALICE)
        assert not granted
        assert conflicts == [Y]
        # The paper's "undo locking": X must have been released again.
        assert not table.is_locked(X)
        assert not table.is_locked(Z)
        assert table.holder(Y) == BOB

    def test_rollback_does_not_release_preheld_own_locks(self):
        table = LockTable()
        table.acquire(X, ALICE)  # Alice already holds X from before
        table.acquire(Z, BOB)
        granted, _ = table.acquire_all([X, Y, Z], ALICE)
        assert not granted
        # X stays with Alice (it was not newly taken by this attempt).
        assert table.holder(X) == ALICE
        assert not table.is_locked(Y)

    def test_release_all(self):
        table = LockTable()
        table.acquire_all([X, Y], ALICE)
        released = table.release_all([X, Y, Z], ALICE)
        assert released == 2
        assert len(table) == 0

    def test_stats_counters(self):
        table = LockTable()
        table.acquire_all([X], ALICE)
        table.acquire_all([X], BOB)  # denied
        table.release_all([X], ALICE)
        assert table.stats.acquisitions == 1
        assert table.stats.denials == 1
        assert table.stats.releases == 1
        assert table.stats.denial_rate == 0.5


class TestCleanup:
    def test_release_owner(self):
        table = LockTable()
        table.acquire_all([X, Y], ALICE)
        table.acquire(Z, BOB)
        assert table.release_owner(ALICE) == 2
        assert table.is_locked(Z)

    def test_release_instance_spans_tokens(self):
        table = LockTable()
        table.acquire(X, ALICE)
        table.acquire(Y, ALICE2)  # same instance, another token
        table.acquire(Z, BOB)
        assert table.release_instance("inst-a") == 2
        assert table.locked_objects() == [Z]

    def test_owner_wire_roundtrip(self):
        assert LockOwner.from_wire(ALICE.to_wire()) == ALICE
