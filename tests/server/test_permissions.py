"""Unit tests for the access-permission table (§2.2)."""

import pytest

from repro.server.couples import global_id
from repro.server.permissions import (
    COUPLE,
    READ,
    WRITE,
    AccessControl,
    PermissionRule,
)

BOARD = global_id("teacher", "/teacher/board")
NOTES = global_id("teacher", "/teacher/notes")
EXERCISE = global_id("student-1", "/student/exercise/answer")


class TestRuleMatching:
    def test_exact_match(self):
        rule = PermissionRule("kim", "teacher", "/teacher/board", READ)
        assert rule.matches("kim", BOARD, READ)
        assert not rule.matches("kim", BOARD, WRITE)
        assert not rule.matches("lee", BOARD, READ)

    def test_wildcards(self):
        rule = PermissionRule("*", "*", "", "*")
        assert rule.matches("anyone", EXERCISE, COUPLE)

    def test_path_prefix(self):
        rule = PermissionRule("*", "teacher", "/teacher", READ)
        assert rule.matches("x", BOARD, READ)
        assert rule.matches("x", NOTES, READ)
        assert not rule.matches("x", EXERCISE, READ)

    def test_prefix_does_not_match_lookalike(self):
        rule = PermissionRule("*", "teacher", "/teacher/boar", READ)
        assert not rule.matches("x", BOARD, READ)

    def test_unknown_right_rejected(self):
        with pytest.raises(ValueError):
            PermissionRule("*", "*", "", "fly")

    def test_specificity_ordering(self):
        broad = PermissionRule("*", "*", "", "*")
        narrow = PermissionRule("kim", "teacher", "/teacher/board", READ)
        assert narrow.specificity > broad.specificity

    def test_wire_roundtrip(self):
        rule = PermissionRule("kim", "teacher", "/teacher", READ, allow=False)
        assert PermissionRule.from_wire(rule.to_wire()) == rule


class TestDecisions:
    def test_default_allow(self):
        acl = AccessControl(default_allow=True)
        assert acl.check("anyone", BOARD, WRITE)

    def test_default_deny(self):
        acl = AccessControl(default_allow=False)
        assert not acl.check("anyone", BOARD, WRITE)

    def test_grant_overrides_default_deny(self):
        acl = AccessControl(default_allow=False)
        acl.grant("kim", "teacher", "/teacher", READ)
        assert acl.check("kim", BOARD, READ)
        assert not acl.check("kim", BOARD, WRITE)

    def test_deny_overrides_default_allow(self):
        acl = AccessControl(default_allow=True)
        acl.deny("kim", "teacher", "/teacher/board")
        assert not acl.check("kim", BOARD, WRITE)
        assert acl.check("kim", NOTES, WRITE)

    def test_specific_rule_wins(self):
        acl = AccessControl(default_allow=False)
        acl.grant("*", "teacher", "/teacher", right="*")     # broad allow
        acl.deny("kim", "teacher", "/teacher/board", right=WRITE)  # narrow deny
        assert not acl.check("kim", BOARD, WRITE)
        assert acl.check("kim", BOARD, READ)
        assert acl.check("lee", BOARD, WRITE)

    def test_equal_specificity_ties_deny(self):
        acl = AccessControl()
        acl.grant("kim", "teacher", "/teacher/board", READ)
        acl.deny("kim", "teacher", "/teacher/board", READ)
        assert not acl.check("kim", BOARD, READ)

    def test_duplicate_rules_deduplicated(self):
        acl = AccessControl()
        acl.grant("kim")
        acl.grant("kim")
        assert len(acl) == 1

    def test_remove_rule(self):
        acl = AccessControl(default_allow=False)
        rule = acl.grant("kim")
        assert acl.check("kim", BOARD, READ)
        assert acl.remove(rule)
        assert not acl.check("kim", BOARD, READ)
        assert not acl.remove(rule)

    def test_forget_instance(self):
        acl = AccessControl()
        acl.grant("kim", "teacher")
        acl.grant("kim", "student-1")
        assert acl.forget_instance("teacher") == 1
        assert len(acl) == 1

    def test_classroom_policy_scenario(self):
        """Teacher may touch everything; students only the shared exercise."""
        acl = AccessControl(default_allow=False)
        acl.grant("hoppe")  # the teacher
        acl.grant("*", "student-1", "/student/exercise", right="*")
        acl.grant("*", "teacher", "/teacher/notes", right=READ)
        assert acl.check("hoppe", BOARD, COUPLE)
        assert acl.check("kim", EXERCISE, WRITE)
        assert acl.check("kim", NOTES, READ)
        assert not acl.check("kim", BOARD, COUPLE)
