"""Unit tests for the couple table and its transitive closure."""

import pytest

from repro.errors import NoSuchCoupleError
from repro.server.couples import (
    CoupleLink,
    CoupleTable,
    gid_from_wire,
    gid_to_wire,
    global_id,
)

A1 = global_id("a", "/app/x")
A2 = global_id("a", "/app/y")
B1 = global_id("b", "/app/x")
C1 = global_id("c", "/app/x")


def link(source, target, creator="a"):
    return CoupleLink(source=source, target=target, creator=creator)


class TestGlobalIds:
    def test_wire_roundtrip(self):
        assert gid_from_wire(gid_to_wire(A1)) == A1

    def test_malformed_wire(self):
        with pytest.raises(ValueError):
            gid_from_wire(["only-one"])

    def test_link_wire_roundtrip(self):
        original = link(A1, B1, creator="x")
        assert CoupleLink.from_wire(original.to_wire()) == original


class TestLinkMutation:
    def test_add_and_contains(self):
        table = CoupleTable()
        assert table.add_link(link(A1, B1))
        assert table.has_link(A1, B1)
        assert len(table) == 1

    def test_duplicate_add_returns_false(self):
        table = CoupleTable()
        table.add_link(link(A1, B1))
        assert not table.add_link(link(A1, B1))
        assert len(table) == 1

    def test_self_link_rejected(self):
        with pytest.raises(ValueError):
            CoupleTable().add_link(link(A1, A1))

    def test_remove_directed(self):
        table = CoupleTable()
        table.add_link(link(A1, B1))
        removed = table.remove_link(A1, B1)
        assert removed[0].endpoints == (A1, B1)
        assert len(table) == 0
        assert not table.is_coupled(A1)

    def test_remove_works_in_reverse(self):
        table = CoupleTable()
        table.add_link(link(A1, B1))
        removed = table.remove_link(B1, A1)  # reverse direction
        assert removed[0].endpoints == (A1, B1)

    def test_remove_drops_arcs_in_both_directions(self):
        # Each side coupled to the other: decoupling the pair removes both
        # arcs, so the objects are genuinely decoupled afterwards.
        table = CoupleTable()
        table.add_link(link(A1, B1))
        table.add_link(link(B1, A1))
        removed = table.remove_link(A1, B1)
        assert len(removed) == 2
        assert not table.is_coupled(A1)
        assert not table.is_coupled(B1)

    def test_remove_missing_raises(self):
        with pytest.raises(NoSuchCoupleError):
            CoupleTable().remove_link(A1, B1)

    def test_same_instance_coupling_allowed(self):
        # The paper allows "two objects coupled within the same application
        # instance" (§3.3).
        table = CoupleTable()
        table.add_link(link(A1, A2))
        assert table.group_of(A1) == frozenset({A1, A2})


class TestTransitiveClosure:
    def test_group_of_uncoupled_is_singleton(self):
        assert CoupleTable().group_of(A1) == frozenset({A1})

    def test_chain_closure(self):
        table = CoupleTable()
        table.add_link(link(A1, B1))
        table.add_link(link(B1, C1))
        expected = frozenset({A1, B1, C1})
        assert table.group_of(A1) == expected
        assert table.group_of(C1) == expected

    def test_closure_ignores_direction(self):
        table = CoupleTable()
        table.add_link(link(B1, A1))
        table.add_link(link(B1, C1))
        assert table.group_of(A1) == frozenset({A1, B1, C1})

    def test_coupled_objects_excludes_self(self):
        table = CoupleTable()
        table.add_link(link(A1, B1))
        assert table.coupled_objects(A1) == frozenset({B1})

    def test_removal_splits_group(self):
        table = CoupleTable()
        table.add_link(link(A1, B1))
        table.add_link(link(B1, C1))
        table.remove_link(B1, C1)
        assert table.group_of(A1) == frozenset({A1, B1})
        assert table.group_of(C1) == frozenset({C1})

    def test_removal_keeps_alternate_paths(self):
        table = CoupleTable()
        table.add_link(link(A1, B1))
        table.add_link(link(B1, C1))
        table.add_link(link(A1, C1))
        table.remove_link(B1, C1)
        # Still connected through A1.
        assert table.group_of(C1) == frozenset({A1, B1, C1})

    def test_groups_listing(self):
        table = CoupleTable()
        table.add_link(link(A1, B1))
        table.add_link(link(A2, C1))
        groups = table.groups()
        assert len(groups) == 2
        assert frozenset({A1, B1}) in groups

    def test_cache_invalidated_on_mutation(self):
        table = CoupleTable()
        table.add_link(link(A1, B1))
        assert table.group_of(A1) == frozenset({A1, B1})
        table.add_link(link(B1, C1))
        assert table.group_of(A1) == frozenset({A1, B1, C1})


class TestBulkRemoval:
    def test_remove_object(self):
        table = CoupleTable()
        table.add_link(link(A1, B1))
        table.add_link(link(A1, C1))
        table.add_link(link(A2, B1))
        removed = table.remove_object(A1)
        assert len(removed) == 2
        assert not table.is_coupled(A1)
        assert table.is_coupled(A2)

    def test_remove_instance(self):
        table = CoupleTable()
        table.add_link(link(A1, B1))
        table.add_link(link(A2, C1))
        table.add_link(link(B1, C1))
        removed = table.remove_instance("a")
        assert len(removed) == 2
        assert table.group_of(B1) == frozenset({B1, C1})

    def test_remove_subtree(self):
        table = CoupleTable()
        deep = global_id("a", "/app/x/inner")
        table.add_link(link(deep, B1))
        table.add_link(link(A2, C1))
        removed = table.remove_subtree("a", "/app/x")
        assert len(removed) == 1
        assert table.is_coupled(A2)

    def test_remove_subtree_no_prefix_confusion(self):
        table = CoupleTable()
        similar = global_id("a", "/app/xy")
        table.add_link(link(similar, B1))
        removed = table.remove_subtree("a", "/app/x")
        assert removed == []

    def test_objects_of_instance(self):
        table = CoupleTable()
        table.add_link(link(A1, B1))
        table.add_link(link(A2, C1))
        assert table.objects_of_instance("a") == {A1, A2}

    def test_clear(self):
        table = CoupleTable()
        table.add_link(link(A1, B1))
        table.clear()
        assert len(table) == 0
        assert table.group_of(A1) == frozenset({A1})

    def test_to_wire_lists_all_links(self):
        table = CoupleTable()
        table.add_link(link(A1, B1))
        table.add_link(link(A2, C1))
        wired = table.to_wire()
        assert len(wired) == 2
        rebuilt = CoupleTable()
        for entry in wired:
            rebuilt.add_link(CoupleLink.from_wire(entry))
        assert rebuilt.group_of(A1) == table.group_of(A1)
