"""Tests for the interest-aware routing layer (docs/PERF.md).

Covers the shared broadcast helper, the RoutingStats counters, the
``couple_scope`` server knob (scoped COUPLE_UPDATE delivery with
merged-group link reconciliation) and the RESYNC_REQUEST forward path.
"""

import pytest

from repro.net import kinds
from repro.net.clock import SimClock
from repro.net.message import Message
from repro.server.couples import gid_to_wire, global_id
from repro.server.routing import (
    COUPLE_SCOPES,
    RoutingStats,
    broadcast,
    validate_couple_scope,
)
from repro.server.server import SERVER_ID, CosoftServer


class FakeTransport:
    def __init__(self):
        self.sent = []
        self.closed = False

    @property
    def local_id(self):
        return SERVER_ID

    def send(self, message):
        self.sent.append(message)

    def drive(self, predicate, timeout=5.0):
        return predicate()

    def close(self):
        self.closed = True

    def take(self):
        out, self.sent = self.sent, []
        return out


def make_server(**kwargs):
    srv = CosoftServer(clock=SimClock(), **kwargs)
    transport = FakeTransport()
    srv.bind(transport)
    return srv, transport


def register(srv, transport, instance_id):
    srv.handle_message(
        Message(
            kind=kinds.REGISTER,
            sender=instance_id,
            payload={"user": instance_id},
        )
    )
    return transport.take()


def couple(srv, sender, source, target):
    srv.handle_message(
        Message(
            kind=kinds.COUPLE,
            sender=sender,
            payload={
                "source": gid_to_wire(source),
                "target": gid_to_wire(target),
            },
        )
    )


A = global_id("a", "/app/x")
B = global_id("b", "/app/x")
C = global_id("c", "/app/x")


class TestValidateScope:
    def test_accepts_known_scopes(self):
        for scope in COUPLE_SCOPES:
            assert validate_couple_scope(scope) == scope

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            validate_couple_scope("galaxy")


class TestRoutingStats:
    def test_record_and_snapshot(self):
        stats = RoutingStats()
        stats.record_event(3)
        stats.record_event(1)
        snap = stats.snapshot()
        assert snap["events"] == 2
        assert snap["event_receivers"] == 4

    def test_merge_adds_counters(self):
        one, two = RoutingStats(), RoutingStats()
        one.record_event(2)
        two.record_event(5)
        two.suppressed_messages = 7
        one.merge(two)
        assert one.events == 2
        assert one.event_receivers == 7
        assert one.suppressed_messages == 7

    def test_reset(self):
        stats = RoutingStats()
        stats.record_event(9)
        stats.reset()
        assert stats.snapshot() == RoutingStats().snapshot()


class TestBroadcastHelper:
    def collect(self):
        sent = []
        return sent, sent.append

    def test_full_broadcast_hits_everyone_but_excluded(self):
        sent, send = self.collect()
        stats = RoutingStats()
        count = broadcast(
            send, ["a", "b", "c"], kinds.INSTANCE_LIST, {},
            exclude=("b",), stats=stats,
        )
        assert count == 2
        assert sorted(m.to for m in sent) == ["a", "c"]
        assert stats.broadcasts == 1
        assert stats.broadcast_messages == 2
        assert stats.suppressed_messages == 0

    def test_audience_scopes_and_counts_suppressed(self):
        sent, send = self.collect()
        stats = RoutingStats()
        count = broadcast(
            send, ["a", "b", "c", "d"], kinds.COUPLE_UPDATE, {},
            audience={"a", "c"}, stats=stats,
        )
        assert count == 2
        assert [m.to for m in sent] == ["a", "c"]  # sorted, deterministic
        assert stats.interest_casts == 1
        assert stats.interest_messages == 2
        assert stats.suppressed_messages == 2

    def test_unregistered_audience_members_skipped(self):
        sent, send = self.collect()
        broadcast(
            send, ["a", "b"], kinds.COUPLE_UPDATE, {},
            audience={"a", "ghost"},
        )
        assert [m.to for m in sent] == ["a"]

    def test_exclude_applies_inside_audience(self):
        sent, send = self.collect()
        stats = RoutingStats()
        broadcast(
            send, ["a", "b", "c"], kinds.COUPLE_UPDATE, {},
            audience={"a", "b"}, exclude=("a",), stats=stats,
        )
        assert [m.to for m in sent] == ["b"]
        # Population net of exclude is 2; one delivered, one suppressed.
        assert stats.suppressed_messages == 1


class TestCoupleScopeGroup:
    def test_scoped_update_reaches_only_group_audience(self):
        srv, transport = make_server(couple_scope="group")
        for instance in ("a", "b", "c", "d"):
            register(srv, transport, instance)
        couple(srv, "a", A, B)
        updates = [
            m.to for m in transport.take() if m.kind == kinds.COUPLE_UPDATE
        ]
        assert sorted(updates) == ["a", "b"]
        assert srv.routing.suppressed_messages >= 2

    def test_default_scope_broadcasts_to_all(self):
        srv, transport = make_server()
        for instance in ("a", "b", "c", "d"):
            register(srv, transport, instance)
        couple(srv, "a", A, B)
        updates = [
            m.to for m in transport.take() if m.kind == kinds.COUPLE_UPDATE
        ]
        assert sorted(updates) == ["a", "b", "c", "d"]
        assert srv.routing.suppressed_messages == 0

    def test_scoped_add_carries_merged_group_links(self):
        """A joiner must learn the group's pre-existing internal links."""
        srv, transport = make_server(couple_scope="group")
        for instance in ("a", "b", "c"):
            register(srv, transport, instance)
        couple(srv, "a", A, B)
        transport.take()
        couple(srv, "c", C, A)
        updates = [
            m for m in transport.take() if m.kind == kinds.COUPLE_UPDATE
        ]
        to_c = [m for m in updates if m.to == "c"]
        assert to_c, "joining instance must receive the update"
        wired = to_c[0].payload.get("links", [])
        endpoints = {
            (tuple(l["source"]), tuple(l["target"])) for l in wired
        }
        assert (tuple(A), tuple(B)) in endpoints

    def test_decouple_audience_computed_before_removal(self):
        """Departing members still hear about the link removal."""
        srv, transport = make_server(couple_scope="group")
        for instance in ("a", "b", "c"):
            register(srv, transport, instance)
        couple(srv, "a", A, B)
        couple(srv, "b", B, C)
        transport.take()
        srv.handle_message(
            Message(
                kind=kinds.DECOUPLE,
                sender="a",
                payload={
                    "source": gid_to_wire(A),
                    "target": gid_to_wire(B),
                },
            )
        )
        removals = [
            m.to
            for m in transport.take()
            if m.kind == kinds.COUPLE_UPDATE
            and m.payload.get("action") == "remove"
        ]
        # 'a' leaves the group but is told; 'b' and 'c' remain.
        assert sorted(set(removals)) == ["a", "b", "c"]

    def test_stats_expose_routing_and_closure(self):
        srv, transport = make_server(couple_scope="group")
        register(srv, transport, "a")
        register(srv, transport, "b")
        couple(srv, "a", A, B)
        stats = srv.stats()
        assert "routing" in stats and "closure" in stats
        assert stats["closure"]["unions"] >= 1


class TestEventInterestRouting:
    def _event(self, srv, source, seq=1):
        srv.handle_message(
            Message(
                kind=kinds.EVENT,
                sender=source[0],
                payload={
                    "event": {
                        "seq": seq,
                        "source_path": source[1],
                        "instance_id": source[0],
                        "kind": "value-changed",
                        "params": {"value": "v"},
                        "user": source[0],
                    },
                    "object": gid_to_wire(source),
                },
            )
        )

    def test_event_fans_out_to_group_only(self):
        srv, transport = make_server()
        for instance in ("a", "b", "c", "d"):
            register(srv, transport, instance)
        couple(srv, "a", A, B)
        transport.take()
        self._event(srv, A)
        receivers = [
            m.to for m in transport.take() if m.kind == kinds.EVENT_BROADCAST
        ]
        assert receivers == ["b"]
        assert srv.routing.events == 1
        assert srv.routing.event_receivers == 1

    def test_uncoupled_event_reaches_no_one(self):
        srv, transport = make_server()
        register(srv, transport, "a")
        register(srv, transport, "b")
        self._event(srv, A)
        receivers = [
            m.to for m in transport.take() if m.kind == kinds.EVENT_BROADCAST
        ]
        assert receivers == []


class TestResyncForward:
    def test_forwarded_to_object_owner(self):
        srv, transport = make_server()
        register(srv, transport, "a")
        register(srv, transport, "b")
        srv.handle_message(
            Message(
                kind=kinds.RESYNC_REQUEST,
                sender="b",
                payload={
                    "object": gid_to_wire(A),
                    "target": gid_to_wire(B),
                },
            )
        )
        out = transport.take()
        forwarded = [m for m in out if m.kind == kinds.RESYNC_REQUEST]
        assert len(forwarded) == 1
        assert forwarded[0].to == "a"
        assert forwarded[0].payload["requester"] == "b"

    def test_unknown_owner_rejected(self):
        srv, transport = make_server()
        register(srv, transport, "b")
        srv.handle_message(
            Message(
                kind=kinds.RESYNC_REQUEST,
                sender="b",
                payload={
                    "object": gid_to_wire(A),
                    "target": gid_to_wire(B),
                },
            )
        )
        out = transport.take()
        assert any(m.kind == kinds.ERROR for m in out)

    def test_unregistered_sender_rejected(self):
        srv, transport = make_server()
        register(srv, transport, "a")
        srv.handle_message(
            Message(
                kind=kinds.RESYNC_REQUEST,
                sender="ghost",
                payload={
                    "object": gid_to_wire(A),
                    "target": gid_to_wire(B),
                },
            )
        )
        out = transport.take()
        assert any(m.kind == kinds.ERROR for m in out)
