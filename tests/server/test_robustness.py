"""Explicit malformed-message handling tests (beyond the fuzz)."""

import pytest

from repro.net import kinds
from repro.net.message import Message
from repro.server.server import SERVER_ID, CosoftServer
from repro.session import LocalSession
from repro.toolkit.widgets import Shell, TextField


class SinkTransport:
    closed = False
    local_id = SERVER_ID

    def __init__(self):
        self.sent = []

    def send(self, message):
        self.sent.append(message)

    def drive(self, predicate, timeout=5.0):
        return predicate()

    def close(self):
        pass


@pytest.fixture
def server():
    srv = CosoftServer()
    transport = SinkTransport()
    srv.bind(transport)
    srv.handle_message(
        Message(kind=kinds.REGISTER, sender="a", payload={"user": "u"})
    )
    transport.sent.clear()
    return srv, transport


class TestServerMalformed:
    @pytest.mark.parametrize(
        "kind,payload",
        [
            (kinds.COUPLE, {}),                          # missing endpoints
            (kinds.COUPLE, {"source": "not-a-gid", "target": 3}),
            (kinds.LOCK_REQUEST, {"source": [1]}),       # malformed gid
            (kinds.EVENT, {}),                           # missing event
            (kinds.EVENT, {"event": "not-a-dict"}),
            (kinds.FETCH_STATE, {"object": None}),
            (kinds.PUSH_STATE, {"target": ["only-one"]}),
            (kinds.REMOTE_COPY, {"source": [], "target": []}),
            (kinds.UNDO_REQUEST, {}),
            (kinds.HISTORY_PUSH, {"object": 7}),
            (kinds.PERMISSION_SET, {"rule": {"right": "teleport"}}),
            (kinds.COMMAND, {"targets": "not-a-list"}),
        ],
    )
    def test_garbage_becomes_error_reply(self, server, kind, payload):
        srv, transport = server
        srv.handle_message(Message(kind=kind, sender="a", payload=payload))
        assert transport.sent, f"{kind} with {payload!r} produced no reply"
        assert transport.sent[-1].kind == kinds.ERROR
        assert srv.processed["__rejected__"] >= 1

    def test_server_keeps_working_after_garbage(self, server):
        srv, transport = server
        srv.handle_message(Message(kind=kinds.EVENT, sender="a", payload={}))
        srv.handle_message(
            Message(kind=kinds.REGISTER, sender="b", payload={"user": "v"})
        )
        assert any(m.kind == kinds.REGISTER_ACK for m in transport.sent)
        assert len(srv.registry) == 2


class TestClientMalformed:
    def test_garbage_broadcast_counted_not_fatal(self):
        session = LocalSession()
        try:
            a = session.create_instance("a", user="u1")
            tree = a.add_root(Shell("ui"))
            TextField("f", parent=tree)
            for payload in (
                {},                                 # no event
                {"event": 42},                      # wrong type
                {"event": {"type": "value_changed", "source_path": "/x"},
                 "targets": 5},                     # bad targets
                {"event": {"no": "type"}},
            ):
                a.handle_message(
                    Message(
                        kind=kinds.EVENT_BROADCAST,
                        sender="server",
                        to="a",
                        payload=payload,
                    )
                )
            assert a.stats["malformed_messages"] == 4
            # The instance still works.
            tree.find("/ui/f").commit("fine")
            assert tree.find("/ui/f").value == "fine"
        finally:
            session.close()

    def test_late_reply_after_timeout_is_dropped(self):
        """A reply arriving after its request timed out must not pile up
        in the pending-replies table."""
        session = LocalSession()
        try:
            a = session.create_instance("a", user="u1")
            a.request_timeout = 0.01
            session.network.partition("server")
            request = Message(
                kind=kinds.FETCH_STATE,
                sender="a",
                payload={"object": ["a", "/x"]},
            )
            assert a.request(request) is None  # times out
            session.network.heal("server")
            # The reply limps in late.
            a.handle_message(
                Message(
                    kind=kinds.STATE_REPLY,
                    sender="server",
                    to="a",
                    payload={"state": {}},
                    reply_to=request.msg_id,
                )
            )
            assert request.msg_id not in a._replies
            assert a.stats["late_replies"] == 1
            assert not a._abandoned  # bookkeeping cleaned up
        finally:
            session.close()

    def test_malformed_reply_still_unblocks_requester(self):
        """Even a garbage-shaped reply must release a blocked request()
        (the reply is stashed before payload parsing)."""
        session = LocalSession()
        try:
            a = session.create_instance("a", user="u1")
            request = Message(
                kind=kinds.FETCH_STATE,
                sender="a",
                payload={"object": ["a", "/nowhere"]},
            )
            # Simulate the server answering with a weird payload.
            a.handle_message(
                Message(
                    kind=kinds.STATE_REPLY,
                    sender="server",
                    to="a",
                    payload={"surprise": True},
                    reply_to=request.msg_id,
                )
            )
            assert request.msg_id in a._replies
        finally:
            session.close()
