"""Unit tests for the communicator registry (repro.net.registry)."""

import pytest

from repro.errors import (
    CommunicatorDependencyError,
    NetworkError,
    UnknownCommunicatorError,
)
from repro.net import registry
from repro.net.registry import (
    BACKENDS,
    communicator_names,
    communicator_specs,
    get_communicator,
    has_communicator,
    register_communicator,
    unregister_communicator,
)
from repro.session import Session, SessionConfig


@pytest.fixture
def scratch_name():
    """A registry name that is guaranteed cleaned up after the test."""
    name = "scratch-backend"
    yield name
    unregister_communicator(name)


class TestBuiltins:
    def test_builtin_trio_registered(self):
        names = communicator_names()
        for builtin in ("memory", "tcp", "aio"):
            assert builtin in names

    def test_builtins_resolve_lazily_to_session_backends(self):
        import repro.session as session_mod

        assert get_communicator("memory") is session_mod._MemoryBackend
        assert get_communicator("tcp") is session_mod._TcpBackend
        assert get_communicator("aio") is session_mod._AioBackend

    def test_specs_expose_sources(self):
        by_name = {spec.name: spec for spec in communicator_specs()}
        assert by_name["memory"].source == "builtin"


class TestErrorPaths:
    def test_unknown_backend_is_value_error(self):
        with pytest.raises(UnknownCommunicatorError) as excinfo:
            get_communicator("carrier-pigeon")
        assert isinstance(excinfo.value, ValueError)
        assert isinstance(excinfo.value, NetworkError)
        assert "memory" in str(excinfo.value)

    def test_missing_extra_is_actionable_import_error(self, scratch_name):
        register_communicator(
            scratch_name,
            "definitely_not_installed_pkg.backend:Backend",
            extra="websocket",
        )
        with pytest.raises(CommunicatorDependencyError) as excinfo:
            get_communicator(scratch_name)
        assert isinstance(excinfo.value, ImportError)
        assert 'pip install "repro[websocket]"' in str(excinfo.value)

    def test_missing_module_without_extra_hints_package(self, scratch_name):
        register_communicator(scratch_name, "definitely_not_installed_pkg:B")
        with pytest.raises(CommunicatorDependencyError, match="installed"):
            get_communicator(scratch_name)

    def test_missing_attribute_raises_dependency_error(self, scratch_name):
        register_communicator(scratch_name, "repro.session:_NoSuchBackend")
        with pytest.raises(CommunicatorDependencyError):
            get_communicator(scratch_name)

    def test_malformed_target_rejected_at_resolution(self, scratch_name):
        register_communicator(scratch_name, "no_colon_in_here")
        with pytest.raises(CommunicatorDependencyError, match="module:attr"):
            get_communicator(scratch_name)

    def test_session_config_rejects_unknown_backend(self):
        with pytest.raises(UnknownCommunicatorError):
            SessionConfig(backend="carrier-pigeon")


class TestRegistrationApi:
    def test_register_and_resolve_factory(self, scratch_name):
        factory = object()
        register_communicator(scratch_name, lambda config: factory)
        assert get_communicator(scratch_name)(None) is factory

    def test_decorator_form(self, scratch_name):
        @register_communicator(scratch_name)
        class ScratchBackend:
            def __init__(self, config):
                self.config = config

        assert get_communicator(scratch_name) is ScratchBackend

    def test_duplicate_registration_raises(self, scratch_name):
        register_communicator(scratch_name, lambda config: None)
        with pytest.raises(ValueError, match="already registered"):
            register_communicator(scratch_name, lambda config: None)

    def test_replace_overrides(self, scratch_name):
        register_communicator(scratch_name, lambda config: "first")
        register_communicator(
            scratch_name, lambda config: "second", replace=True
        )
        assert get_communicator(scratch_name)(None) == "second"

    def test_unregister(self, scratch_name):
        register_communicator(scratch_name, lambda config: None)
        assert unregister_communicator(scratch_name)
        assert not has_communicator(scratch_name)
        assert not unregister_communicator(scratch_name)


class TestLiveBackendsView:
    def test_view_reflects_registration_immediately(self, scratch_name):
        assert scratch_name not in BACKENDS
        register_communicator(scratch_name, lambda config: None)
        assert scratch_name in BACKENDS
        assert scratch_name in tuple(BACKENDS)
        unregister_communicator(scratch_name)
        assert scratch_name not in BACKENDS

    def test_session_exports_the_same_view(self):
        import repro.session as session_mod

        assert session_mod.BACKENDS is BACKENDS

    def test_tuple_compat(self):
        assert len(BACKENDS) >= 3
        assert BACKENDS[0] == "memory"
        assert BACKENDS == tuple(BACKENDS)


class _NullBackend:
    """The minimal communicator surface a Session needs."""

    def __init__(self, config):
        self.config = config
        self.instances = {}
        self.server = None
        self.closed = False

    def create_instance(self, instance_id, user, **kwargs):
        raise NotImplementedError

    def pump(self):
        return 0

    def traffic(self):
        return {}

    @property
    def now(self):
        return 0.0

    def close(self):
        self.closed = True


class TestSessionResolution:
    def test_session_builds_third_party_backend(self, scratch_name):
        register_communicator(scratch_name, _NullBackend)
        session = Session(backend=scratch_name)
        try:
            assert session.backend == scratch_name
            assert isinstance(session._impl, _NullBackend)
            assert session.config.backend == scratch_name
        finally:
            session.close()
        assert session._impl.closed

    def test_session_lazy_target_error_is_actionable(self, scratch_name):
        register_communicator(
            scratch_name, "missing_mod.ws:WsBackend", extra="ws"
        )
        with pytest.raises(CommunicatorDependencyError, match="repro\\[ws\\]"):
            Session(backend=scratch_name)


class TestEntryPoints:
    def test_entry_point_scan_registers_new_names(self, monkeypatch):
        class FakeEntryPoint:
            name = "fake-ep-backend"
            value = "fake_mod:Backend"

        def fake_entry_points(group=None):
            assert group == registry.ENTRY_POINT_GROUP
            return [FakeEntryPoint()]

        monkeypatch.setattr(registry, "_ENTRY_POINTS_SCANNED", False)
        import importlib.metadata as ilm

        monkeypatch.setattr(ilm, "entry_points", fake_entry_points)
        try:
            assert has_communicator("fake-ep-backend")
            spec = {s.name: s for s in communicator_specs()}["fake-ep-backend"]
            assert spec.source == "entry-point"
            assert spec.target == "fake_mod:Backend"
        finally:
            unregister_communicator("fake-ep-backend")

    def test_entry_points_never_override_builtins(self, monkeypatch):
        class FakeEntryPoint:
            name = "memory"
            value = "evil_mod:Backend"

        monkeypatch.setattr(registry, "_ENTRY_POINTS_SCANNED", False)
        import importlib.metadata as ilm

        monkeypatch.setattr(
            ilm, "entry_points", lambda group=None: [FakeEntryPoint()]
        )
        spec = {s.name: s for s in communicator_specs()}["memory"]
        assert spec.source == "builtin"

    def test_entry_points_never_override_explicit_registrations(
        self, monkeypatch, scratch_name
    ):
        # An installed package advertising the same name as an explicit
        # register_communicator() call must lose: explicit wins.
        marker = object()
        register_communicator(scratch_name, lambda config: marker)

        class FakeEntryPoint:
            name = scratch_name
            value = "hijack_mod:Backend"

        monkeypatch.setattr(registry, "_ENTRY_POINTS_SCANNED", False)
        import importlib.metadata as ilm

        monkeypatch.setattr(
            ilm, "entry_points", lambda group=None: [FakeEntryPoint()]
        )
        spec = {s.name: s for s in communicator_specs()}[scratch_name]
        assert spec.source == "api"
        assert get_communicator(scratch_name)(None) is marker


class TestErrorPathDetails:
    """The error surfaces the ISSUE pins down, asserted precisely."""

    def test_unknown_name_error_lists_every_registered_name(
        self, scratch_name
    ):
        register_communicator(scratch_name, lambda config: None)
        with pytest.raises(UnknownCommunicatorError) as excinfo:
            get_communicator("carrier-pigeon")
        text = str(excinfo.value)
        assert "carrier-pigeon" in text
        # The listing is live: builtins *and* the just-registered
        # third-party name all appear.
        for name in communicator_names():
            assert name in text

    def test_import_failure_names_the_pip_extra_and_keeps_cause(
        self, scratch_name
    ):
        register_communicator(
            scratch_name,
            "definitely_not_installed_pkg.ws:Backend",
            extra="websocket",
        )
        with pytest.raises(CommunicatorDependencyError) as excinfo:
            get_communicator(scratch_name)
        assert 'pip install "repro[websocket]"' in str(excinfo.value)
        # The original ImportError is chained, not swallowed.
        assert isinstance(excinfo.value.__cause__, ImportError)

    def test_import_failure_without_extra_mentions_no_extra(
        self, scratch_name
    ):
        register_communicator(
            scratch_name, "definitely_not_installed_pkg.ws:Backend"
        )
        with pytest.raises(CommunicatorDependencyError) as excinfo:
            get_communicator(scratch_name)
        assert "pip install \"repro[" not in str(excinfo.value)

    def test_failed_lazy_target_is_not_memoized(self, scratch_name):
        register_communicator(
            scratch_name, "definitely_not_installed_pkg.ws:Backend"
        )
        with pytest.raises(CommunicatorDependencyError):
            get_communicator(scratch_name)
        # Recovery: replacing the broken target takes effect immediately.
        register_communicator(
            scratch_name, lambda config: "fixed", replace=True
        )
        assert get_communicator(scratch_name)(None) == "fixed"

    def test_has_communicator_never_imports_the_target(self, scratch_name):
        register_communicator(
            scratch_name, "definitely_not_installed_pkg.ws:Backend"
        )
        # A broken lazy target is still *registered* — presence checks
        # must not trigger the import.
        assert has_communicator(scratch_name)
