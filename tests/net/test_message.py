"""Unit tests for protocol messages."""

import pytest

from repro.errors import CodecError
from repro.net import kinds
from repro.net.message import ALL_KINDS, Message


class TestConstruction:
    def test_unknown_kind_rejected(self):
        with pytest.raises(CodecError):
            Message(kind="bogus", sender="a")

    def test_payload_must_be_json_safe(self):
        with pytest.raises(CodecError):
            Message(kind=kinds.EVENT, sender="a", payload={"x": object()})

    def test_msg_ids_unique(self):
        m1 = Message(kind=kinds.EVENT, sender="a")
        m2 = Message(kind=kinds.EVENT, sender="a")
        assert m1.msg_id != m2.msg_id

    def test_all_kinds_is_complete(self):
        # Every module-level kind constant is a member of ALL_KINDS.
        constants = {
            value
            for name, value in vars(kinds).items()
            if name.isupper() and isinstance(value, str) and name != "SERVER_ID"
        }
        assert constants <= ALL_KINDS | {"server"}


class TestReplies:
    def test_reply_correlates(self):
        request = Message(kind=kinds.LOCK_REQUEST, sender="a", payload={})
        reply = request.reply(kinds.LOCK_REPLY, "server", granted=True)
        assert reply.reply_to == request.msg_id
        assert reply.to == "a"
        assert reply.payload["granted"] is True

    def test_error_reply_carries_reason_and_kind(self):
        request = Message(kind=kinds.COUPLE, sender="a")
        error = request.error_reply("server", "nope", detail=1)
        assert error.kind == kinds.ERROR
        assert error.payload["reason"] == "nope"
        assert error.payload["failed_kind"] == kinds.COUPLE
        assert error.payload["detail"] == 1


class TestWire:
    def test_roundtrip(self):
        message = Message(
            kind=kinds.EVENT,
            sender="a",
            to="b",
            payload={"event": {"type": "activate"}},
            reply_to=7,
        )
        back = Message.from_wire(message.to_wire())
        assert back == message

    def test_from_wire_missing_fields(self):
        with pytest.raises(CodecError):
            Message.from_wire({"kind": kinds.EVENT})

    def test_from_wire_defaults(self):
        back = Message.from_wire(
            {"kind": kinds.EVENT, "sender": "a", "msg_id": 3}
        )
        assert back.to == ""
        assert back.payload == {}
        assert back.reply_to is None
