"""Tests for the TCP transport (real localhost sockets)."""

import threading
import time

import pytest

from repro.errors import DeliveryError, TransportClosedError
from repro.net import kinds
from repro.net.message import Message
from repro.net.tcp import TcpClientTransport, TcpHostTransport


def msg(sender, to="", **payload):
    return Message(kind=kinds.COMMAND, sender=sender, to=to, payload=payload)


class Collector:
    def __init__(self):
        self.received = []
        self.event = threading.Event()

    def __call__(self, message):
        self.received.append(message)
        self.event.set()


@pytest.fixture
def host():
    inbox = Collector()
    transport = TcpHostTransport(inbox, port=0)
    yield transport, inbox
    transport.close()


class TestTcpTransport:
    def test_client_to_host(self, host):
        transport, inbox = host
        _, port = transport.address
        client = TcpClientTransport("c1", lambda m: None, "127.0.0.1", port)
        try:
            client.send(msg("c1", data="hello"))
            assert inbox.event.wait(5.0)
            assert inbox.received[0].payload == {"data": "hello"}
        finally:
            client.close()

    def test_host_to_client_after_first_message(self, host):
        transport, inbox = host
        _, port = transport.address
        client_inbox = Collector()
        client = TcpClientTransport("c1", client_inbox, "127.0.0.1", port)
        try:
            client.send(msg("c1"))  # associates the connection with "c1"
            assert inbox.event.wait(5.0)
            transport.send(msg("server", to="c1", pong=True))
            assert client_inbox.event.wait(5.0)
            assert client_inbox.received[0].payload == {"pong": True}
        finally:
            client.close()

    def test_send_to_unknown_client_raises(self, host):
        transport, _ = host
        with pytest.raises(DeliveryError):
            transport.send(msg("server", to="ghost"))

    def test_many_messages_preserve_order(self, host):
        transport, inbox = host
        _, port = transport.address
        client = TcpClientTransport("c1", lambda m: None, "127.0.0.1", port)
        try:
            for i in range(200):
                client.send(msg("c1", i=i))
            deadline = time.monotonic() + 5.0
            while len(inbox.received) < 200 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert [m.payload["i"] for m in inbox.received] == list(range(200))
        finally:
            client.close()

    def test_drive_waits_for_predicate(self, host):
        transport, inbox = host
        _, port = transport.address
        client_inbox = Collector()
        client = TcpClientTransport("c1", client_inbox, "127.0.0.1", port)
        try:
            client.send(msg("c1"))
            assert inbox.event.wait(5.0)

            def reply_later():
                time.sleep(0.05)
                transport.send(msg("server", to="c1", late=True))

            threading.Thread(target=reply_later, daemon=True).start()
            assert client.drive(lambda: bool(client_inbox.received), timeout=5.0)
        finally:
            client.close()

    def test_drive_timeout_returns_false(self, host):
        transport, _ = host
        _, port = transport.address
        client = TcpClientTransport("c1", lambda m: None, "127.0.0.1", port)
        try:
            assert not client.drive(lambda: False, timeout=0.1)
        finally:
            client.close()

    def test_send_after_close_raises(self, host):
        transport, _ = host
        _, port = transport.address
        client = TcpClientTransport("c1", lambda m: None, "127.0.0.1", port)
        client.close()
        with pytest.raises(TransportClosedError):
            client.send(msg("c1"))

    def test_two_clients_roundtrip_via_host(self, host):
        transport, inbox = host
        _, port = transport.address
        inbox_a, inbox_b = Collector(), Collector()
        a = TcpClientTransport("a", inbox_a, "127.0.0.1", port)
        b = TcpClientTransport("b", inbox_b, "127.0.0.1", port)
        try:
            a.send(msg("a"))
            b.send(msg("b"))
            deadline = time.monotonic() + 5.0
            while len(inbox.received) < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
            # Host relays a message from a to b.
            transport.send(msg("server", to="b", relayed=True))
            assert inbox_b.event.wait(5.0)
            assert inbox_b.received[0].payload == {"relayed": True}
        finally:
            a.close()
            b.close()

    def test_stats_recorded(self, host):
        transport, inbox = host
        _, port = transport.address
        client = TcpClientTransport("c1", lambda m: None, "127.0.0.1", port)
        try:
            client.send(msg("c1"))
            assert inbox.event.wait(5.0)
            assert client.stats.messages == 1
            assert client.stats.bytes > 0
        finally:
            client.close()


class TestWireBatchingBurst:
    """With ``wire_batching`` on, replies emitted while dispatching one
    inbound read coalesce into a single batch-envelope write."""

    def test_handler_replies_leave_as_one_envelope(self):
        transport = None

        def fan_out(message):
            # Every handler send during this read lands in the burst
            # buffer and flushes once the dispatch loop finishes.
            for i in range(4):
                transport.send(
                    Message(
                        kind=kinds.COMMAND,
                        sender="server",
                        to=message.sender,
                        payload={"seq": i},
                    )
                )

        transport = TcpHostTransport(fan_out, port=0, wire_batching=True)
        client_inbox = Collector()
        client = None
        try:
            _, port = transport.address
            client = TcpClientTransport("c1", client_inbox, "127.0.0.1", port)
            client.send(msg("c1", ping=True))
            deadline = time.monotonic() + 5.0
            while len(client_inbox.received) < 4 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert [m.payload["seq"] for m in client_inbox.received] == [
                0, 1, 2, 3,
            ]
            stats = transport.stats
            assert stats.envelopes == 1
            assert stats.envelope_messages == 4
            assert stats.batches == 1
            assert stats.batched_messages == 4
            assert sum(stats.bytes_by_kind.values()) == stats.bytes
        finally:
            if client is not None:
                client.close()
            transport.close()

    def test_off_by_default_sends_plain_frames(self):
        transport = None

        def echo_twice(message):
            for i in range(2):
                transport.send(
                    Message(
                        kind=kinds.COMMAND,
                        sender="server",
                        to=message.sender,
                        payload={"seq": i},
                    )
                )

        transport = TcpHostTransport(echo_twice, port=0)
        client_inbox = Collector()
        client = None
        try:
            _, port = transport.address
            client = TcpClientTransport("c1", client_inbox, "127.0.0.1", port)
            client.send(msg("c1", ping=True))
            deadline = time.monotonic() + 5.0
            while len(client_inbox.received) < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert len(client_inbox.received) == 2
            assert transport.stats.envelopes == 0
        finally:
            if client is not None:
                client.close()
            transport.close()
