"""Tests for the asyncio host transport: batching, backpressure, retry.

The sans-I/O cores (:class:`SendQueue`, :class:`RetryPolicy`) are driven
with explicit fake times; the socket-level tests run a real
:class:`AioHostTransport` against the plain :class:`TcpClientTransport`.
"""

import threading
import time

import pytest

from repro.errors import TransportClosedError
from repro.net import kinds
from repro.net.aio import AioHostTransport, BatchConfig, RetryPolicy, SendQueue
from repro.net.message import Message
from repro.net.tcp import TcpClientTransport
from repro.net.transport import (
    DROP_BACKPRESSURE,
    DROP_DISCONNECTED,
    DROP_UNDELIVERABLE,
)


def msg(sender="server", to="c1", **payload):
    return Message(kind=kinds.COMMAND, sender=sender, to=to, payload=payload)


def wait_until(predicate, timeout=5.0, interval=0.005):
    end = time.monotonic() + timeout
    while time.monotonic() < end:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class Collector:
    def __init__(self):
        self.received = []
        self.event = threading.Event()

    def __call__(self, message):
        self.received.append(message)
        self.event.set()


# ---------------------------------------------------------------------------
# BatchConfig validation
# ---------------------------------------------------------------------------


class TestBatchConfig:
    def test_defaults_are_valid(self):
        config = BatchConfig()
        assert config.max_batch >= 1
        assert config.backpressure == "drop"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch": 0},
            {"max_queue": 0},
            {"max_delay": -0.1},
            {"backpressure": "explode"},
            {"retry_limit": 0},
            {"retry_backoff": 0.5},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            BatchConfig(**kwargs)


# ---------------------------------------------------------------------------
# RetryPolicy (pure arithmetic, fake attempts)
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_exponential_schedule(self):
        policy = RetryPolicy(
            BatchConfig(
                retry_initial=0.1,
                retry_backoff=2.0,
                retry_limit=5,
                retry_max_delay=10.0,
            )
        )
        assert policy.schedule() == [0.1, 0.2, 0.4, 0.8]

    def test_delay_capped_at_max(self):
        policy = RetryPolicy(
            BatchConfig(
                retry_initial=0.1,
                retry_backoff=10.0,
                retry_limit=6,
                retry_max_delay=0.5,
            )
        )
        assert policy.delay(1) == 0.1
        assert policy.delay(2) == 0.5  # 1.0 capped
        assert policy.delay(5) == 0.5

    def test_budget_exhaustion_returns_none(self):
        policy = RetryPolicy(BatchConfig(retry_limit=3))
        assert policy.delay(2) is not None
        assert policy.delay(3) is None
        assert policy.delay(7) is None


# ---------------------------------------------------------------------------
# SendQueue (sans-I/O, fake clock)
# ---------------------------------------------------------------------------


class TestSendQueue:
    def make(self, **kwargs):
        return SendQueue("c1", BatchConfig(**kwargs))

    def test_push_outcomes(self):
        queue = self.make(max_batch=3, max_queue=4)
        assert queue.push(msg(), now=0.0) == SendQueue.QUEUED
        assert queue.push(msg(), now=0.0) == SendQueue.QUEUED
        assert queue.push(msg(), now=0.0) == SendQueue.FLUSH
        assert queue.push(msg(), now=0.0) == SendQueue.FLUSH
        assert queue.push(msg(), now=0.0) == SendQueue.OVERFLOW
        assert len(queue) == 4  # the overflowing message was not kept

    def test_deadline_tracks_first_enqueue(self):
        queue = self.make(max_batch=100, max_delay=0.5)
        assert queue.deadline() is None
        queue.push(msg(), now=10.0)
        queue.push(msg(), now=10.4)  # later pushes don't move it
        assert queue.deadline() == pytest.approx(10.5)
        assert not queue.due(now=10.49)
        assert queue.due(now=10.5)

    def test_deadline_recomputed_after_partial_pop(self):
        """A partial pop must not leave the tail with the popped head's
        (stale, already-elapsed) deadline — the oldest *remaining* item
        anchors the coalescing window."""
        queue = self.make(max_batch=100, max_queue=10, max_delay=1.0)
        queue.push(msg(seq=0), now=0.0)
        queue.push(msg(seq=1), now=0.5)
        queue.push(msg(seq=2), now=0.8)
        assert queue.deadline() == pytest.approx(1.0)
        items = queue.pop_batch(max_messages=1)
        assert [m.payload["seq"] for m, _ in items] == [0]
        # seq=1 (enqueued at 0.5) is now the oldest remaining item.
        assert queue.deadline() == pytest.approx(1.5)
        assert not queue.due(now=1.2)
        assert queue.due(now=1.5)
        queue.pop_batch(max_messages=1)
        assert queue.deadline() == pytest.approx(1.8)

    def test_due_on_full_batch_regardless_of_deadline(self):
        queue = self.make(max_batch=2, max_delay=999.0)
        queue.push(msg(), now=0.0)
        assert not queue.due(now=0.0)
        queue.push(msg(), now=0.0)
        assert queue.due(now=0.0)

    def test_pop_batch_returns_enqueue_pairs(self):
        queue = self.make(max_batch=10, max_delay=0.5)
        messages = [msg(seq=i) for i in range(3)]
        for i, m in enumerate(messages):
            queue.push(m, now=float(i))
        items = queue.pop_batch()
        assert [m.payload["seq"] for m, _ in items] == [0, 1, 2]
        assert [at for _, at in items] == [0.0, 1.0, 2.0]
        assert len(queue) == 0
        assert queue.deadline() is None

    def test_pop_batch_respects_max_batch(self):
        queue = self.make(max_batch=2, max_queue=10)
        for _ in range(5):
            queue.push(msg(), now=0.0)
        items = queue.pop_batch()
        assert len(items) == 2
        assert len(queue) == 3

    def test_requeue_front_preserves_fifo(self):
        queue = self.make(max_batch=2, max_queue=10)
        messages = [msg(seq=i) for i in range(4)]
        for m in messages:
            queue.push(m, now=0.0)
        items = queue.pop_batch()  # seq 0, 1
        queue.requeue_front(items)
        items2 = queue.pop_batch()
        assert [m.payload["seq"] for m, _ in items2] == [0, 1]
        items3 = queue.pop_batch()
        assert [m.payload["seq"] for m, _ in items3] == [2, 3]

    def test_requeue_front_restores_deadline(self):
        """Requeued items bring their original enqueue times back, so a
        failed write doesn't grant the batch a fresh coalescing window."""
        queue = self.make(max_batch=2, max_queue=10, max_delay=1.0)
        queue.push(msg(seq=0), now=5.0)
        queue.push(msg(seq=1), now=5.2)
        items = queue.pop_batch()
        assert queue.deadline() is None
        queue.requeue_front(items)
        assert queue.deadline() == pytest.approx(6.0)

    def test_drain_all_resets(self):
        queue = self.make(max_batch=2, max_queue=10)
        for _ in range(3):
            queue.push(msg(), now=0.0)
        queue.attempts = 2
        drained = queue.drain_all()
        assert len(drained) == 3
        assert all(isinstance(m, Message) for m in drained)
        assert len(queue) == 0
        assert queue.attempts == 0

    def test_force_push_exceeds_bound(self):
        queue = self.make(max_queue=1, max_batch=10)
        queue.push(msg(), now=0.0)
        assert queue.push(msg(), now=0.0) == SendQueue.OVERFLOW
        queue.force_push(msg(), now=0.0)
        assert len(queue) == 2

    def test_below_resume_level(self):
        queue = self.make(max_queue=4, max_batch=100)
        for _ in range(4):
            queue.push(msg(), now=0.0)
        assert not queue.below_resume_level()
        queue.pop_batch(max_messages=2)
        assert queue.below_resume_level()


# ---------------------------------------------------------------------------
# AioHostTransport over real sockets
# ---------------------------------------------------------------------------


@pytest.fixture
def aio_host(request):
    config = getattr(request, "param", None) or BatchConfig()
    inbox = Collector()
    transport = AioHostTransport(inbox, port=0, config=config)
    yield transport, inbox
    transport.close()


class TestAioHostTransport:
    def test_client_roundtrip(self, aio_host):
        transport, inbox = aio_host
        _, port = transport.address
        client_inbox = Collector()
        client = TcpClientTransport("c1", client_inbox, "127.0.0.1", port)
        try:
            client.send(msg(sender="c1", to="", ping=True))
            assert inbox.event.wait(5.0)
            assert inbox.received[0].payload == {"ping": True}
            transport.send(msg(to="c1", pong=True))
            assert client_inbox.event.wait(5.0)
            assert client_inbox.received[0].payload == {"pong": True}
        finally:
            client.close()

    def test_send_after_close_raises(self):
        transport = AioHostTransport(lambda m: None, port=0)
        transport.close()
        with pytest.raises(TransportClosedError):
            transport.send(msg())

    @pytest.mark.parametrize(
        "aio_host",
        [BatchConfig(max_batch=100, max_delay=0.05)],
        indirect=True,
    )
    def test_deadline_flush_coalesces_burst(self, aio_host):
        """Messages sent within the window leave as one batched write."""
        transport, _ = aio_host
        _, port = transport.address
        client_inbox = Collector()
        client = TcpClientTransport("c1", client_inbox, "127.0.0.1", port)
        try:
            client.send(msg(sender="c1", to="", hello=True))
            assert wait_until(lambda: "c1" in transport.connections())
            for i in range(5):
                transport.send(msg(to="c1", seq=i))
            assert wait_until(lambda: len(client_inbox.received) == 5)
            # FIFO order survives batching.
            assert [m.payload["seq"] for m in client_inbox.received] == list(
                range(5)
            )
            # Accounting lands after the write is drained, a beat after
            # the client can observe delivery — wait for it.
            stats = transport.stats
            assert wait_until(lambda: stats.batched_messages == 5)
            assert stats.batches < 5  # coalesced, not one write per message
        finally:
            client.close()

    @pytest.mark.parametrize(
        "aio_host",
        [BatchConfig(max_batch=2, max_delay=60.0)],
        indirect=True,
    )
    def test_full_batch_flushes_before_deadline(self, aio_host):
        """max_batch fires immediately even with a huge coalescing delay."""
        transport, _ = aio_host
        _, port = transport.address
        client_inbox = Collector()
        client = TcpClientTransport("c1", client_inbox, "127.0.0.1", port)
        try:
            client.send(msg(sender="c1", to="", hello=True))
            assert wait_until(lambda: "c1" in transport.connections())
            transport.send(msg(to="c1", seq=0))
            transport.send(msg(to="c1", seq=1))
            assert wait_until(lambda: len(client_inbox.received) == 2, timeout=5.0)
        finally:
            client.close()

    def test_wire_batching_flushes_as_envelope(self):
        """With wire_batching on, a coalesced burst leaves as one batch
        envelope — counted in the envelope stats — and the legacy client
        decodes it transparently, order intact."""
        inbox = Collector()
        transport = AioHostTransport(
            inbox,
            port=0,
            config=BatchConfig(max_batch=100, max_delay=0.05),
            wire_batching=True,
        )
        client_inbox = Collector()
        client = None
        try:
            _, port = transport.address
            client = TcpClientTransport("c1", client_inbox, "127.0.0.1", port)
            client.send(msg(sender="c1", to="", hello=True))
            assert wait_until(lambda: "c1" in transport.connections())
            for i in range(5):
                transport.send(msg(to="c1", seq=i))
            assert wait_until(lambda: len(client_inbox.received) == 5)
            assert [m.payload["seq"] for m in client_inbox.received] == list(
                range(5)
            )
            stats = transport.stats
            assert stats.envelopes >= 1
            assert stats.envelope_messages >= 2
            assert stats.envelope_bytes > 0
            # Byte accounting is conserved: per-kind totals still sum to
            # the envelope payload bytes actually written.
            assert sum(stats.bytes_by_kind.values()) == stats.bytes
        finally:
            if client is not None:
                client.close()
            transport.close()

    @pytest.mark.parametrize(
        "aio_host",
        [
            BatchConfig(
                max_queue=3,
                backpressure="drop",
                retry_initial=30.0,  # park the writer in backoff
                retry_limit=5,
            )
        ],
        indirect=True,
    )
    def test_backpressure_drop_policy(self, aio_host):
        """Overflowing a ghost destination's queue drops with attribution."""
        transport, _ = aio_host
        for i in range(8):
            transport.send(msg(to="ghost", seq=i))
        assert wait_until(
            lambda: transport.stats.drops_by_reason[DROP_BACKPRESSURE] >= 4
        )
        assert transport.pending("ghost") <= 3

    @pytest.mark.parametrize(
        "aio_host",
        [
            BatchConfig(
                max_queue=3,
                backpressure="disconnect",
                retry_initial=30.0,
                retry_limit=5,
            )
        ],
        indirect=True,
    )
    def test_backpressure_disconnect_policy_evicts(self, aio_host):
        """A slow consumer is evicted and its whole queue dropped."""
        transport, inbox = aio_host
        _, port = transport.address
        client_inbox = Collector()
        client = TcpClientTransport("slow", client_inbox, "127.0.0.1", port)
        try:
            client.send(msg(sender="slow", to="", hello=True))
            assert inbox.event.wait(5.0)
            assert wait_until(lambda: "slow" in transport.connections())
            # Stall the writer by making every flush fail: close the
            # kernel-level socket from the client side first.
            client.close()
            assert wait_until(lambda: "slow" not in transport.connections())
            for i in range(8):
                transport.send(msg(to="slow", seq=i))
            assert wait_until(
                lambda: transport.stats.drops_by_reason[DROP_DISCONNECTED] >= 4
            )
            assert transport.pending("slow") == 0  # queue drained on evict
        finally:
            client.close()

    @pytest.mark.parametrize(
        "aio_host",
        [
            BatchConfig(
                max_queue=2,
                backpressure="block",
                retry_initial=0.02,
                retry_backoff=2.0,
                retry_limit=3,
            )
        ],
        indirect=True,
    )
    def test_backpressure_block_policy_gates_reads_then_recovers(self, aio_host):
        """``block`` pauses intake, keeps the messages, and reopens the
        gate once the stuck batch is dropped as undeliverable."""
        transport, _ = aio_host
        for i in range(5):
            transport.send(msg(to="ghost", seq=i))
        # Intake gate closes while the queue is past its bound...
        assert wait_until(lambda: not transport._read_gate.is_set())
        assert wait_until(lambda: transport.pending("ghost") >= 3)
        # ...and reopens once retries exhaust and the batch is dropped.
        assert wait_until(
            lambda: transport.stats.drops_by_reason[DROP_UNDELIVERABLE] >= 1
        )
        assert wait_until(lambda: transport._read_gate.is_set())

    @pytest.mark.parametrize(
        "aio_host",
        [
            BatchConfig(
                retry_initial=0.01,
                retry_backoff=2.0,
                retry_limit=3,
                retry_max_delay=0.05,
            )
        ],
        indirect=True,
    )
    def test_retry_budget_then_undeliverable(self, aio_host):
        """No connection: per-hop retry backs off, then drops the batch."""
        transport, _ = aio_host
        transport.send(msg(to="ghost", data="x"))
        assert wait_until(
            lambda: transport.stats.drops_by_reason[DROP_UNDELIVERABLE] >= 1
        )
        assert transport.stats.retries >= 2  # retry_limit - 1 backoffs
        assert transport.pending("ghost") == 0

    @pytest.mark.parametrize(
        "aio_host",
        [BatchConfig(retry_initial=0.05, retry_limit=4)],
        indirect=True,
    )
    def test_retry_delivers_to_late_connection(self, aio_host):
        """A message queued before its client connects arrives after."""
        transport, inbox = aio_host
        _, port = transport.address
        transport.send(msg(to="late", data="early-bird"))
        time.sleep(0.08)  # let at least one delivery attempt fail
        client_inbox = Collector()
        client = TcpClientTransport("late", client_inbox, "127.0.0.1", port)
        try:
            client.send(msg(sender="late", to="", hello=True))
            assert inbox.event.wait(5.0)
            assert client_inbox.event.wait(5.0)
            assert client_inbox.received[0].payload == {"data": "early-bird"}
            assert transport.stats.retries >= 1
        finally:
            client.close()
