"""Unit tests for the clock abstractions."""

import pytest

from repro.net.clock import SimClock, WallClock


class TestSimClock:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now() == 0.0

    def test_custom_start(self):
        assert SimClock(10.0).now() == 10.0

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(1.5) == 1.5
        assert clock.now() == 1.5

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(3.0)
        assert clock.now() == 3.0

    def test_advance_to_rejects_backwards(self):
        clock = SimClock(5.0)
        with pytest.raises(ValueError):
            clock.advance_to(4.0)

    def test_advance_to_same_time_ok(self):
        clock = SimClock(5.0)
        clock.advance_to(5.0)
        assert clock.now() == 5.0


class TestWallClock:
    def test_monotonic(self):
        clock = WallClock()
        t1 = clock.now()
        t2 = clock.now()
        assert t2 >= t1
