"""Batch-envelope wire path: encode_batch, envelope framing, decoding.

The batch envelope (docs/PROTOCOL.md) makes the *batch* the unit of wire
work: one frame carries many self-describing codec bodies behind the
0xB6 discriminator.  These tests pin the format's invariants — exact
round-trip equivalence with per-message frames, transparent
:class:`StreamDecoder` splitting under arbitrary fragmentation (byte by
byte, mid-envelope), mixed envelope/legacy streams on one connection —
and the error surface for truncated or alien envelopes.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CodecError
from repro.net import kinds
from repro.net.binary import BINARY_CODEC
from repro.net.codec import (
    ENVELOPE_MAGIC,
    ENVELOPE_VERSION,
    HEADER_SIZE,
    JSON_CODEC,
    StreamDecoder,
    decode,
    decode_batch,
    encode_batch,
    encode_batch_for,
)
from repro.net.message import ALL_KINDS, Message

CODECS = [JSON_CODEC, BINARY_CODEC]


def msg(seq=0, **over):
    over.setdefault("kind", kinds.EVENT)
    over.setdefault("sender", "server")
    over.setdefault("to", f"c{seq % 3}")
    over.setdefault("payload", {"seq": seq, "data": "x" * (seq % 7)})
    return Message(**over)


def fresh(message):
    """The same message without its frame cache (forces a real encode)."""
    return Message(
        kind=message.kind,
        sender=message.sender,
        to=message.to,
        payload=dict(message.payload),
        msg_id=message.msg_id,
        reply_to=message.reply_to,
        trace=message.trace,
    )


def batch():
    return [
        msg(0),
        msg(1, reply_to=7),
        msg(2, trace=("t" * 16, "s" * 8)),
        msg(3, payload={}),
        msg(4, payload={"nested": {"a": [1, 2, None], "b": True}}),
    ]


# ---------------------------------------------------------------------------
# Envelope format
# ---------------------------------------------------------------------------


class TestEnvelopeFormat:
    @pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)
    def test_envelope_magic_and_version(self, codec):
        frame = codec.encode_batch(batch())
        assert frame[HEADER_SIZE] == ENVELOPE_MAGIC
        assert frame[HEADER_SIZE + 1] == ENVELOPE_VERSION

    @pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)
    def test_roundtrip_equals_per_message_decode(self, codec):
        messages = batch()
        decoded = decode_batch(codec.encode_batch(messages))
        reference = [decode(codec.encode(m)) for m in messages]
        assert [m.to_wire() for m in decoded] == [
            m.to_wire() for m in reference
        ]

    @pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)
    def test_single_message_degenerates_to_plain_frame(self, codec):
        m = msg()
        assert codec.encode_batch([m]) == codec.encode(fresh(m))

    @pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)
    def test_empty_batch_rejected(self, codec):
        with pytest.raises(CodecError):
            codec.encode_batch([])

    @pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)
    def test_envelope_smaller_than_concatenated_frames(self, codec):
        messages = batch()
        envelope = codec.encode_batch(messages)
        frames = b"".join(codec.encode(fresh(m)) for m in messages)
        assert len(envelope) < len(frames)

    @pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)
    def test_cached_frames_splice_identically(self, codec):
        """Pre-encoded messages (fan-out cache hits) produce the same
        envelope bytes as cache-cold encodes."""
        messages = batch()
        for m in messages:
            codec.encode(m)  # warm the per-message frame cache
        warm = codec.encode_batch(messages)
        cold = codec.encode_batch([fresh(m) for m in messages])
        assert warm == cold

    def test_encode_batch_for_falls_back_to_frames(self):
        class LegacyCodec:
            name = "legacy"

            def encode(self, message):
                return JSON_CODEC.encode(fresh(message))

        messages = batch()
        payload = encode_batch_for(LegacyCodec(), messages)
        assert payload == b"".join(
            JSON_CODEC.encode(fresh(m)) for m in messages
        )

    def test_module_level_encode_batch_is_json(self):
        messages = batch()
        assert encode_batch(messages) == JSON_CODEC.encode_batch(
            [fresh(m) for m in messages]
        )


# ---------------------------------------------------------------------------
# Error surface
# ---------------------------------------------------------------------------


class TestEnvelopeErrors:
    def envelope(self):
        return JSON_CODEC.encode_batch(batch())

    def test_unsupported_version(self):
        frame = bytearray(self.envelope())
        frame[HEADER_SIZE + 1] = ENVELOPE_VERSION + 1
        with pytest.raises(CodecError, match="version"):
            decode_batch(bytes(frame))

    def test_truncated_member(self):
        frame = self.envelope()
        import struct

        body = frame[HEADER_SIZE:-3]
        with pytest.raises(CodecError, match="truncated|trailing"):
            decode_batch(struct.pack(">I", len(body)) + body)

    def test_trailing_bytes_rejected(self):
        frame = self.envelope()
        import struct

        body = frame[HEADER_SIZE:] + b"\x00"
        with pytest.raises(CodecError, match="trailing|truncated"):
            decode_batch(struct.pack(">I", len(body)) + body)

    def test_decode_single_frame_still_works(self):
        m = msg()
        assert decode_batch(JSON_CODEC.encode(m))[0].to_wire() == m.to_wire()


# ---------------------------------------------------------------------------
# StreamDecoder fragmentation
# ---------------------------------------------------------------------------


class TestStreamDecoderEnvelopes:
    @pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)
    def test_byte_by_byte_feed(self, codec):
        tail = msg(9, to="tail")
        messages = batch() + [tail]
        stream = codec.encode_batch(messages[:-1]) + codec.encode(fresh(tail))
        decoder = StreamDecoder()
        out = []
        for i in range(len(stream)):
            out.extend(decoder.feed(stream[i : i + 1]))
        assert [m.to_wire() for m in out] == [m.to_wire() for m in messages]
        assert decoder.last_codec == codec.name

    @pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)
    def test_split_mid_envelope_across_feeds(self, codec):
        messages = batch()
        stream = codec.encode_batch(messages)
        # Split inside the envelope body — after the count varint but in
        # the middle of a member — and again inside the length header.
        for cut in (2, HEADER_SIZE + 3, len(stream) // 2, len(stream) - 1):
            decoder = StreamDecoder()
            out = list(decoder.feed(stream[:cut]))
            out += list(decoder.feed(stream[cut:]))
            assert [m.to_wire() for m in out] == [
                m.to_wire() for m in messages
            ]

    def test_mixed_envelope_and_legacy_frames_one_stream(self):
        """A peer may interleave envelopes and per-message frames (and
        even codecs) on one connection; the decoder needs no mode bit."""
        stream = (
            JSON_CODEC.encode(msg(0))
            + BINARY_CODEC.encode_batch([msg(1), msg(2)])
            + JSON_CODEC.encode_batch([msg(3), msg(4)])
            + BINARY_CODEC.encode(fresh(msg(5)))
        )
        decoder = StreamDecoder()
        out = list(decoder.feed(stream))
        assert [m.payload["seq"] for m in out] == [0, 1, 2, 3, 4, 5]
        assert decoder.last_codec == "binary"


# ---------------------------------------------------------------------------
# Property: batch round-trip ≡ per-message round-trip
# ---------------------------------------------------------------------------

ids = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_-", min_size=1, max_size=12
)
json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.text(max_size=16),
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.dictionaries(st.text(max_size=6), children, max_size=3),
    ),
    max_leaves=8,
)
messages = st.builds(
    Message,
    kind=st.sampled_from(sorted(ALL_KINDS)),
    sender=ids,
    to=st.one_of(st.just(""), ids),
    payload=st.dictionaries(st.text(max_size=8), json_values, max_size=4),
    msg_id=st.integers(min_value=0, max_value=2**40),
    reply_to=st.one_of(st.none(), st.integers(min_value=0, max_value=2**40)),
    trace=st.one_of(st.none(), st.tuples(ids, ids)),
)


class TestBatchRoundtripProperty:
    @pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)
    @settings(max_examples=60, deadline=None)
    @given(msgs=st.lists(messages, min_size=1, max_size=6))
    def test_batch_roundtrip_matches_per_message(self, codec, msgs):
        decoded = decode_batch(codec.encode_batch(msgs))
        reference = [decode(codec.encode(fresh(m))) for m in msgs]
        assert [m.to_wire() for m in decoded] == [
            m.to_wire() for m in reference
        ]

    @pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)
    @settings(max_examples=30, deadline=None)
    @given(
        msgs=st.lists(messages, min_size=1, max_size=5),
        cut=st.integers(min_value=0, max_value=200),
    )
    def test_stream_decoder_split_anywhere(self, codec, msgs, cut):
        stream = codec.encode_batch(msgs)
        cut = min(cut, len(stream))
        decoder = StreamDecoder()
        out = list(decoder.feed(stream[:cut]))
        out += list(decoder.feed(stream[cut:]))
        assert [m.to_wire() for m in out] == [m.to_wire() for m in msgs]
