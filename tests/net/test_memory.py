"""Unit tests for the deterministic in-memory network."""

import pytest

from repro.errors import DeliveryError, TransportClosedError
from repro.net import kinds
from repro.net.clock import SimClock
from repro.net.memory import MemoryNetwork
from repro.net.message import Message


def msg(sender, to, **payload):
    return Message(kind=kinds.COMMAND, sender=sender, to=to, payload=payload)


class Collector:
    def __init__(self):
        self.received = []

    def __call__(self, message):
        self.received.append(message)


class TestBasicDelivery:
    def test_send_and_pump(self):
        net = MemoryNetwork()
        inbox = Collector()
        a = net.attach("a", lambda m: None)
        net.attach("b", inbox)
        a.send(msg("a", "b", x=1))
        assert net.pending() == 1
        delivered = net.pump()
        assert delivered == 1
        assert inbox.received[0].payload == {"x": 1}

    def test_empty_to_routes_to_server(self):
        net = MemoryNetwork()
        inbox = Collector()
        net.attach("server", inbox)
        a = net.attach("a", lambda m: None)
        a.send(msg("a", ""))
        net.pump()
        assert len(inbox.received) == 1

    def test_clock_advances_by_latency(self):
        clock = SimClock()
        net = MemoryNetwork(clock, base_latency=0.25)
        net.attach("b", lambda m: None)
        a = net.attach("a", lambda m: None)
        a.send(msg("a", "b"))
        net.pump()
        assert clock.now() == pytest.approx(0.25)

    def test_per_byte_latency(self):
        clock = SimClock()
        net = MemoryNetwork(clock, base_latency=0.0, per_byte_latency=0.001)
        net.attach("b", lambda m: None)
        a = net.attach("a", lambda m: None)
        message = msg("a", "b", data="x" * 50)
        a.send(message)
        net.pump()
        from repro.net.codec import wire_size

        assert clock.now() == pytest.approx(0.001 * wire_size(message))

    def test_fifo_per_link(self):
        net = MemoryNetwork(jitter=0.01, seed=1)
        inbox = Collector()
        net.attach("b", inbox)
        a = net.attach("a", lambda m: None)
        for i in range(20):
            a.send(msg("a", "b", i=i))
        net.pump()
        assert [m.payload["i"] for m in inbox.received] == list(range(20))

    def test_handler_cascade(self):
        net = MemoryNetwork()
        inbox = Collector()
        net.attach("c", inbox)
        b = None

        def relay(message):
            b.send(msg("b", "c", hop=2))

        b = net.attach("b", relay)
        a = net.attach("a", lambda m: None)
        a.send(msg("a", "b", hop=1))
        net.pump()
        assert inbox.received[0].payload == {"hop": 2}


class TestAttachDetach:
    def test_duplicate_attach_rejected(self):
        net = MemoryNetwork()
        net.attach("a", lambda m: None)
        with pytest.raises(ValueError):
            net.attach("a", lambda m: None)

    def test_send_after_close_raises(self):
        net = MemoryNetwork()
        net.attach("b", lambda m: None)
        a = net.attach("a", lambda m: None)
        a.close()
        assert a.closed
        with pytest.raises(TransportClosedError):
            a.send(msg("a", "b"))

    def test_message_to_detached_endpoint_dropped(self):
        net = MemoryNetwork()
        b_inbox = Collector()
        b = net.attach("b", b_inbox)
        a = net.attach("a", lambda m: None)
        a.send(msg("a", "b"))
        b.close()
        net.pump()
        assert b_inbox.received == []
        assert net.stats.dropped == 1

    def test_endpoints_listing(self):
        net = MemoryNetwork()
        net.attach("x", lambda m: None)
        net.attach("y", lambda m: None)
        assert set(net.endpoints()) == {"x", "y"}


class TestLossAndPartition:
    def test_loss_rate_drops_messages(self):
        net = MemoryNetwork(loss_rate=0.5, seed=42)
        inbox = Collector()
        net.attach("b", inbox)
        a = net.attach("a", lambda m: None)
        for i in range(100):
            a.send(msg("a", "b", i=i))
        net.pump()
        assert 0 < len(inbox.received) < 100
        assert net.stats.dropped == 100 - len(inbox.received)

    def test_loss_is_deterministic_per_seed(self):
        def run(seed):
            net = MemoryNetwork(loss_rate=0.3, seed=seed)
            inbox = Collector()
            net.attach("b", inbox)
            a = net.attach("a", lambda m: None)
            for i in range(50):
                a.send(msg("a", "b", i=i))
            net.pump()
            return [m.payload["i"] for m in inbox.received]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_invalid_loss_rate(self):
        with pytest.raises(ValueError):
            MemoryNetwork(loss_rate=1.0)

    def test_partition_blocks_both_directions(self):
        net = MemoryNetwork()
        a_inbox, b_inbox = Collector(), Collector()
        a = net.attach("a", a_inbox)
        b = net.attach("b", b_inbox)
        net.partition("b")
        a.send(msg("a", "b"))
        b.send(msg("b", "a"))
        net.pump()
        assert a_inbox.received == [] and b_inbox.received == []
        net.heal("b")
        a.send(msg("a", "b"))
        net.pump()
        assert len(b_inbox.received) == 1


class TestOccupy:
    def test_busy_endpoint_defers_delivery(self):
        clock = SimClock()
        net = MemoryNetwork(clock, base_latency=0.001)
        times = []
        net.attach("b", lambda m: times.append(clock.now()))
        a = net.attach("a", lambda m: None)
        net.occupy("b", 1.0)
        a.send(msg("a", "b"))
        net.pump()
        assert times[0] >= 1.0

    def test_occupy_accumulates(self):
        net = MemoryNetwork()
        end1 = net.occupy("x", 1.0)
        end2 = net.occupy("x", 2.0)
        assert end2 == pytest.approx(end1 + 2.0)
        assert net.busy_until("x") == pytest.approx(3.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            MemoryNetwork().occupy("x", -1)

    def test_occupy_preserves_fifo(self):
        clock = SimClock()
        net = MemoryNetwork(clock, base_latency=0.001)
        inbox = Collector()
        net.attach("b", inbox)
        a = net.attach("a", lambda m: None)
        net.occupy("b", 0.5)
        for i in range(5):
            a.send(msg("a", "b", i=i))
        net.pump()
        assert [m.payload["i"] for m in inbox.received] == list(range(5))


class TestPumpVariants:
    def test_pump_until_predicate(self):
        net = MemoryNetwork()
        inbox = Collector()
        net.attach("b", inbox)
        a = net.attach("a", lambda m: None)
        for i in range(10):
            a.send(msg("a", "b", i=i))
        ok = net.pump_until(lambda: len(inbox.received) >= 3)
        assert ok
        assert len(inbox.received) == 3

    def test_pump_until_timeout_in_sim_time(self):
        clock = SimClock()
        net = MemoryNetwork(clock, base_latency=10.0)
        inbox = Collector()
        net.attach("b", inbox)
        a = net.attach("a", lambda m: None)
        a.send(msg("a", "b"))
        ok = net.pump_until(lambda: bool(inbox.received), timeout=1.0)
        assert not ok  # delivery is at t=10, beyond the deadline
        assert net.pending() == 1

    def test_pump_until_time_injects_at_boundary(self):
        clock = SimClock()
        net = MemoryNetwork(clock, base_latency=0.4)
        inbox = Collector()
        net.attach("b", inbox)
        a = net.attach("a", lambda m: None)
        a.send(msg("a", "b"))
        net.pump_until_time(0.1)
        assert clock.now() == pytest.approx(0.1)
        assert inbox.received == []
        net.pump_until_time(0.5)
        assert len(inbox.received) == 1

    def test_pump_guard_against_message_storm(self):
        net = MemoryNetwork()
        handle = {}

        def echo(message):
            # Endless ping-pong.
            handle["a"].send(msg("a", "b"))

        def echo_back(message):
            handle["b"].send(msg("b", "a"))

        handle["a"] = net.attach("a", echo)
        handle["b"] = net.attach("b", echo_back)
        handle["a"].send(msg("a", "b"))
        with pytest.raises(DeliveryError):
            net.pump(max_steps=100)

    def test_drive_on_transport(self):
        net = MemoryNetwork()
        inbox = Collector()
        net.attach("b", inbox)
        a = net.attach("a", lambda m: None)
        a.send(msg("a", "b"))
        assert a.drive(lambda: bool(inbox.received))


class TestStats:
    def test_counts_by_kind_and_link(self):
        net = MemoryNetwork()
        net.attach("b", lambda m: None)
        a = net.attach("a", lambda m: None)
        a.send(msg("a", "b"))
        a.send(msg("a", "b"))
        snap = net.stats.snapshot()
        assert snap["messages"] == 2
        assert snap["by_kind"][kinds.COMMAND] == 2
        assert snap["by_link"]["a->b"] == 2
        assert snap["bytes"] > 0

    def test_reset(self):
        net = MemoryNetwork()
        net.attach("b", lambda m: None)
        a = net.attach("a", lambda m: None)
        a.send(msg("a", "b"))
        net.stats.reset()
        assert net.stats.messages == 0
