"""Unit tests for the length-prefixed JSON codec."""

import pytest

from repro.errors import CodecError
from repro.net import kinds
from repro.net.codec import (
    HEADER_SIZE,
    StreamDecoder,
    decode,
    encode,
    encode_many,
    wire_size,
)
from repro.net.message import Message


def sample(payload=None):
    return Message(kind=kinds.EVENT, sender="a", to="b", payload=payload or {})


class TestFrame:
    def test_roundtrip(self):
        message = sample({"k": [1, 2, {"x": "y"}]})
        assert decode(encode(message)) == message

    def test_wire_size_matches_encode(self):
        message = sample({"data": "x" * 100})
        assert wire_size(message) == len(encode(message))

    def test_header_is_big_endian_length(self):
        frame = encode(sample())
        length = int.from_bytes(frame[:HEADER_SIZE], "big")
        assert length == len(frame) - HEADER_SIZE

    def test_decode_short_frame(self):
        with pytest.raises(CodecError):
            decode(b"\x00")

    def test_decode_length_mismatch(self):
        frame = encode(sample())
        with pytest.raises(CodecError):
            decode(frame + b"extra")

    def test_decode_garbage_body(self):
        body = b"not json"
        frame = len(body).to_bytes(4, "big") + body
        with pytest.raises(CodecError):
            decode(frame)

    def test_decode_non_object_body(self):
        body = b"[1,2]"
        frame = len(body).to_bytes(4, "big") + body
        with pytest.raises(CodecError):
            decode(frame)

    def test_unicode_payload(self):
        message = sample({"text": "héllo wörld ünïcode"})
        assert decode(encode(message)) == message


class TestStreamDecoder:
    def test_single_feed(self):
        decoder = StreamDecoder()
        message = sample()
        out = decoder.feed(encode(message))
        assert out == [message]
        assert decoder.pending_bytes == 0

    def test_byte_at_a_time(self):
        decoder = StreamDecoder()
        message = sample({"x": 1})
        frame = encode(message)
        results = []
        for i in range(len(frame)):
            results.extend(decoder.feed(frame[i : i + 1]))
        assert results == [message]

    def test_multiple_frames_in_one_feed(self):
        decoder = StreamDecoder()
        messages = [sample({"i": i}) for i in range(3)]
        out = decoder.feed(encode_many(iter(messages)))
        assert out == messages

    def test_split_across_feeds(self):
        decoder = StreamDecoder()
        m1, m2 = sample({"i": 1}), sample({"i": 2})
        blob = encode(m1) + encode(m2)
        cut = len(encode(m1)) + 3
        out = decoder.feed(blob[:cut])
        out += decoder.feed(blob[cut:])
        assert out == [m1, m2]

    def test_pending_bytes_reported(self):
        decoder = StreamDecoder()
        frame = encode(sample())
        decoder.feed(frame[:5])
        assert decoder.pending_bytes == 5

    def test_oversized_header_rejected(self):
        decoder = StreamDecoder()
        huge = (2**31).to_bytes(4, "big")
        with pytest.raises(CodecError):
            decoder.feed(huge + b"x" * 10)
