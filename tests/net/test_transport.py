"""Unit tests for the transport abstractions and traffic accounting."""

import pytest

from repro.net import kinds
from repro.net.memory import MemoryNetwork
from repro.net.message import Message
from repro.net.transport import TrafficStats, resolve_destination


def msg(sender="a", to="b", **payload):
    return Message(kind=kinds.COMMAND, sender=sender, to=to, payload=payload)


class TestResolveDestination:
    def test_explicit_addressee(self):
        assert resolve_destination(msg(to="b")) == "b"

    def test_empty_means_server(self):
        assert resolve_destination(msg(to="")) == "server"


class TestTrafficStats:
    def test_record_accumulates(self):
        stats = TrafficStats()
        stats.record(msg(), 100, "b")
        stats.record(msg(), 50, "b")
        assert stats.messages == 2
        assert stats.bytes == 150
        assert stats.by_kind[kinds.COMMAND] == 2
        assert stats.by_link[("a", "b")] == 2

    def test_drop_counter(self):
        stats = TrafficStats()
        stats.record_drop()
        stats.record_drop()
        assert stats.dropped == 2

    def test_snapshot_keys(self):
        stats = TrafficStats()
        stats.record(msg(), 10, "b")
        snap = stats.snapshot()
        assert snap["by_link"] == {"a->b": 1}
        assert snap["bytes_by_kind"][kinds.COMMAND] == 10

    def test_reset(self):
        stats = TrafficStats()
        stats.record(msg(), 10, "b")
        stats.record_drop()
        stats.reset()
        assert stats.snapshot() == TrafficStats().snapshot()

    def test_repr(self):
        assert "messages=0" in repr(TrafficStats())


class TestGuardDefault:
    def test_memory_transport_guard_is_noop_context(self):
        net = MemoryNetwork()
        transport = net.attach("a", lambda m: None)
        with transport.guard():
            pass  # must be enterable and reentrant-safe
        with transport.guard():
            with transport.guard():
                pass
