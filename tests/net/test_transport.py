"""Unit tests for the transport abstractions and traffic accounting."""


from repro.net import kinds
from repro.net.memory import MemoryNetwork
from repro.net.message import Message
from repro.net.transport import TrafficStats, resolve_destination


def msg(sender="a", to="b", **payload):
    return Message(kind=kinds.COMMAND, sender=sender, to=to, payload=payload)


class TestResolveDestination:
    def test_explicit_addressee(self):
        assert resolve_destination(msg(to="b")) == "b"

    def test_empty_means_server(self):
        assert resolve_destination(msg(to="")) == "server"


class TestTrafficStats:
    def test_record_accumulates(self):
        stats = TrafficStats()
        stats.record(msg(), 100, "b")
        stats.record(msg(), 50, "b")
        assert stats.messages == 2
        assert stats.bytes == 150
        assert stats.by_kind[kinds.COMMAND] == 2
        assert stats.by_link[("a", "b")] == 2

    def test_drop_counter(self):
        stats = TrafficStats()
        stats.record_drop()
        stats.record_drop()
        assert stats.dropped == 2

    def test_drop_attributes_kind_and_bytes(self):
        stats = TrafficStats()
        stats.record_drop(msg(), 80)
        stats.record_drop(msg(), 20)
        stats.record_drop()  # anonymous drop: counted, not attributed
        assert stats.dropped == 3
        assert stats.dropped_bytes == 100
        assert stats.dropped_by_kind[kinds.COMMAND] == 2
        snap = stats.snapshot()
        assert snap["dropped_bytes"] == 100
        assert snap["dropped_by_kind"] == {kinds.COMMAND: 2}

    def test_merge_aggregates_all_counters(self):
        left = TrafficStats()
        right = TrafficStats()
        left.record(msg(), 100, "b")
        right.record(msg(), 50, "b")
        right.record(msg(sender="c", to="d"), 30, "d")
        right.record_drop(msg(), 10)
        result = left.merge(right)
        assert result is left  # merge mutates and returns the target
        assert left.messages == 3
        assert left.bytes == 180
        assert left.by_kind[kinds.COMMAND] == 3
        assert left.by_link[("a", "b")] == 2
        assert left.by_link[("c", "d")] == 1
        assert left.dropped == 1
        assert left.dropped_bytes == 10
        assert left.dropped_by_kind[kinds.COMMAND] == 1
        # The source of the merge is untouched.
        assert right.messages == 2

    def test_merge_is_associative_over_snapshots(self):
        parts = []
        for size in (10, 20, 30):
            stats = TrafficStats()
            stats.record(msg(), size, "b")
            parts.append(stats)
        onto_first = TrafficStats()
        for part in parts:
            onto_first.merge(part)
        pairwise = TrafficStats()
        pairwise.merge(parts[0].merge(parts[1]))
        pairwise.merge(parts[2])
        assert onto_first.snapshot() == pairwise.snapshot()

    def test_snapshot_keys(self):
        stats = TrafficStats()
        stats.record(msg(), 10, "b")
        snap = stats.snapshot()
        assert snap["by_link"] == {"a->b": 1}
        assert snap["bytes_by_kind"][kinds.COMMAND] == 10

    def test_reset(self):
        stats = TrafficStats()
        stats.record(msg(), 10, "b")
        stats.record_drop()
        stats.reset()
        assert stats.snapshot() == TrafficStats().snapshot()

    def test_repr(self):
        assert "messages=0" in repr(TrafficStats())


class TestGuardDefault:
    def test_memory_transport_guard_is_noop_context(self):
        net = MemoryNetwork()
        transport = net.attach("a", lambda m: None)
        with transport.guard():
            pass  # must be enterable and reentrant-safe
        with transport.guard():
            with transport.guard():
                pass
