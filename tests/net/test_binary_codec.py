"""Unit tests for the binary wire codec (repro.net.binary)."""

import struct

import pytest

from repro.errors import CodecError
from repro.net import binary
from repro.net.binary import BINARY_CODEC, INTERN_TABLE, KIND_TABLE, BinaryCodec
from repro.net.codec import (
    JSON_CODEC,
    MAX_FRAME_SIZE,
    StreamDecoder,
    codec_names,
    decode,
    get_codec,
)
from repro.net.message import ALL_KINDS, Message


def msg(**overrides):
    defaults = dict(
        kind="event",
        sender="i-1",
        to="server",
        payload={
            "object": "/app/board/zoom",
            "type": "value_changed",
            "seq": 42,
            "params": {"value": [1, 2.5, None, True, "héllo", -7]},
        },
    )
    defaults.update(overrides)
    return Message(**defaults)


class TestRoundTrip:
    def test_basic(self):
        m = msg()
        assert decode(BINARY_CODEC.encode(m)) == m

    def test_reply_to_and_trace(self):
        m = msg(reply_to=17, trace=("t" * 16, "s" * 8))
        out = decode(BINARY_CODEC.encode(m))
        assert out == m
        assert out.reply_to == 17
        assert out.trace == ("t" * 16, "s" * 8)

    def test_unicode_payload(self):
        m = msg(payload={"msg": "日本語 🎌 ü ", "ключ": ["väl\tue"]})
        assert decode(BINARY_CODEC.encode(m)).payload == m.payload

    def test_empty_payload(self):
        m = msg(payload={})
        assert decode(BINARY_CODEC.encode(m)) == m

    def test_every_kind(self):
        for kind in sorted(ALL_KINDS):
            m = Message(kind=kind, sender="a", to="b", payload={"x": 1})
            assert decode(BINARY_CODEC.encode(m)).kind == kind

    def test_large_ints(self):
        values = [0, 127, 128, -1, -32, -33, 2**40, -(2**40), 2**80, -(2**80)]
        m = msg(payload={"values": values})
        assert decode(BINARY_CODEC.encode(m)).payload["values"] == values

    def test_float_exact(self):
        values = [0.1, -1e300, 5e-324, 3.141592653589793]
        m = msg(payload={"values": values})
        out = decode(BINARY_CODEC.encode(m)).payload["values"]
        assert [struct.pack(">d", v) for v in out] == [
            struct.pack(">d", v) for v in values
        ]

    def test_tuple_decodes_as_list(self):
        # Same normalization JSON applies.
        m = msg(payload={"t": (1, 2)})
        assert decode(BINARY_CODEC.encode(m)).payload["t"] == [1, 2]

    def test_long_strings_and_collections(self):
        m = msg(
            payload={
                "data": "x" * 5000,
                "entries": list(range(100)),
                "state": {f"k{i}": i for i in range(50)},
            }
        )
        assert decode(BINARY_CODEC.encode(m)).payload == m.payload

    def test_nested_int_keys_match_json(self):
        # json.dumps stringifies non-str keys of nested objects; binary
        # must mirror that so binary ≡ JSON holds.
        payload = {"state": {1: "a", True: "b"}}
        m_bin = decode(BINARY_CODEC.encode(msg(payload=payload)))
        m_json = decode(JSON_CODEC.encode(msg(payload=payload)))
        assert m_bin.payload == m_json.payload


class TestWireFormat:
    def test_magic_is_first_body_byte(self):
        frame = BINARY_CODEC.encode(msg())
        assert frame[4] == binary.MAGIC

    def test_magic_cannot_open_json(self):
        # 0xB5 is a UTF-8 continuation byte: no JSON document starts with it.
        with pytest.raises(UnicodeDecodeError):
            bytes([binary.MAGIC]).decode("utf-8")

    def test_kind_table_covers_all_kinds(self):
        assert set(KIND_TABLE) == set(ALL_KINDS)
        assert len(KIND_TABLE) == len(set(KIND_TABLE))

    def test_intern_table_is_unique_and_small(self):
        assert len(INTERN_TABLE) == len(set(INTERN_TABLE))
        assert len(INTERN_TABLE) < 128

    def test_inline_kind_escape(self, monkeypatch):
        # Simulate a kind newer than this build's KIND_TABLE: it ships as
        # an inline string behind the 0xFF escape id.  The encoder's
        # precomputed (kind, flags) prefix table shadows _KIND_IDS, so
        # both must forget the kind.
        monkeypatch.delitem(binary._KIND_IDS, "event")
        for flags in range(4):
            monkeypatch.delitem(binary._BODY_PREFIX, ("event", flags))
        m = msg()
        frame = BinaryCodec().encode(
            Message(
                kind=m.kind, sender=m.sender, to=m.to, payload=dict(m.payload)
            )
        )
        assert frame[6] == binary.KIND_INLINE
        assert decode(frame).kind == "event"

    def test_binary_smaller_than_json_on_protocol_messages(self):
        m = msg(reply_to=3, trace=("a" * 16, "b" * 8))
        assert len(BINARY_CODEC.encode(m)) < len(JSON_CODEC.encode(m))

    def test_wire_size_matches_encode(self):
        m = msg()
        assert BINARY_CODEC.wire_size(m) == len(BINARY_CODEC.encode(m))


class TestCaching:
    def test_frames_keyed_by_codec(self):
        m = msg()
        json_frame = JSON_CODEC.encode(m)
        bin_frame = BINARY_CODEC.encode(m)
        assert json_frame != bin_frame
        assert m._frames == {"json": json_frame, "binary": bin_frame}
        # Cached: same object back.
        assert BINARY_CODEC.encode(m) is bin_frame
        assert JSON_CODEC.encode(m) is json_frame

    def test_fanout_shares_payload_encoding(self):
        payload = {"object": "/a", "seq": 1}
        a = Message(kind="event_broadcast", sender="server", to="a", payload=payload)
        b = Message(kind="event_broadcast", sender="server", to="b", payload=payload)
        BINARY_CODEC.encode(a)
        entry = binary._ENC_MEMO.get(id(payload))
        assert entry is not None and entry[0] is payload
        BINARY_CODEC.encode(b)  # hits the memo; smoke-checked via decode
        assert decode(BINARY_CODEC.encode(b)).payload == payload

    def test_decode_interns_identical_payload_bytes(self):
        payload = {"object": "/a", "seq": 1}
        a = Message(kind="event_broadcast", sender="server", to="a", payload=payload)
        b = Message(kind="event_broadcast", sender="server", to="b", payload=payload)
        out_a = decode(BINARY_CODEC.encode(a))
        out_b = decode(BINARY_CODEC.encode(b))
        assert out_a.payload is out_b.payload


class TestErrors:
    def test_truncated_body(self):
        frame = bytearray(BINARY_CODEC.encode(msg()))
        # Shorten the body but fix up the length header so framing holds.
        body = frame[4:-3]
        struct.pack_into(">I", frame, 0, len(body))
        with pytest.raises(CodecError):
            decode(bytes(frame[:4]) + bytes(body))

    def test_unsupported_version(self):
        frame = bytearray(BINARY_CODEC.encode(msg()))
        frame[5] = 99
        with pytest.raises(CodecError, match="version 99"):
            decode(bytes(frame))

    def test_trailing_bytes_rejected(self):
        frame = bytearray(BINARY_CODEC.encode(msg()))
        frame += b"\x00"
        struct.pack_into(">I", frame, 0, len(frame) - 4)
        with pytest.raises(CodecError):
            decode(bytes(frame))

    def test_unknown_kind_id(self):
        frame = bytearray(BINARY_CODEC.encode(msg()))
        frame[6] = 200  # not a table id, not the inline escape
        with pytest.raises(CodecError, match="kind id"):
            decode(bytes(frame))

    def test_interned_index_out_of_range(self):
        out = bytearray()
        binary._enc_value(out, "x")
        bad = bytes([binary._INTERNED, 127])
        with pytest.raises(CodecError, match="out of range"):
            binary._dec_value(bad, 0)

    def test_oversized_message_rejected(self):
        m = msg(payload={"data": "x" * (MAX_FRAME_SIZE + 16)})
        with pytest.raises(CodecError, match="MAX_FRAME_SIZE"):
            BINARY_CODEC.encode(m)

    def test_unencodable_payload(self):
        payload = {"x": object()}
        # Bypass Message validation to hit the codec's own error path.
        out = bytearray()
        with pytest.raises(CodecError, match="not JSON-representable"):
            binary._enc_value(out, payload)


class TestRegistryIntegration:
    def test_get_codec_by_name(self):
        assert get_codec("binary") is BINARY_CODEC
        assert get_codec(BINARY_CODEC) is BINARY_CODEC

    def test_codec_names(self):
        names = codec_names()
        assert "json" in names and "binary" in names

    def test_unknown_codec_lists_known(self):
        with pytest.raises(CodecError, match="unknown codec"):
            get_codec("carrier-pigeon")


class TestMixedStreams:
    def test_interleaved_codecs_on_one_stream(self):
        m1, m2, m3 = msg(), msg(payload={"seq": 1}), msg(payload={"seq": 2})
        blob = (
            BINARY_CODEC.encode(m1)
            + JSON_CODEC.encode(m2)
            + BINARY_CODEC.encode(m3)
        )
        decoder = StreamDecoder()
        out = []
        for i in range(0, len(blob), 7):
            out.extend(decoder.feed(blob[i : i + 7]))
        assert out == [m1, m2, m3]
        assert decoder.last_codec == "binary"

    def test_last_codec_tracks_most_recent_frame(self):
        decoder = StreamDecoder()
        assert decoder.last_codec is None
        decoder.feed(JSON_CODEC.encode(msg()))
        assert decoder.last_codec == "json"
        decoder.feed(BINARY_CODEC.encode(msg()))
        assert decoder.last_codec == "binary"
