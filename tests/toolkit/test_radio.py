"""Tests for the radio group widget."""

import pytest

from repro.session import LocalSession
from repro.toolkit.events import SELECTION_CHANGED
from repro.toolkit.widgets import RadioButton, RadioGroup, Shell


def build_group(parent=None):
    group = RadioGroup("mode", parent=parent, label="Mode")
    RadioButton("read", parent=group, label="Read only")
    RadioButton("write", parent=group, label="Read/write")
    RadioButton("admin", parent=group, label="Admin")
    return group


class TestExclusiveSelection:
    def test_select_sets_exactly_one(self):
        group = build_group()
        group.select("write")
        assert group.selection == "write"
        flags = [child.get("set") for child in group.children]
        assert flags == [False, True, False]

    def test_reselect_moves_the_mark(self):
        group = build_group()
        group.select("read")
        group.select("admin")
        assert group.child("read").get("set") is False
        assert group.child("admin").get("set") is True

    def test_child_choose_routes_through_group(self):
        group = build_group()
        seen = []
        group.add_callback(SELECTION_CHANGED, lambda w, e: seen.append(
            e.params["selection"]))
        group.child("write").choose()
        assert seen == ["write"]
        assert group.selection == "write"

    def test_unknown_choice_rejected(self):
        group = build_group()
        with pytest.raises(ValueError):
            group.select("ghost")

    def test_chosen_accessor(self):
        group = build_group()
        assert group.chosen is None
        group.select("read")
        assert group.chosen is group.child("read")

    def test_entries(self):
        group = build_group()
        assert group.entries() == ["read", "write", "admin"]

    def test_orphan_radio_button_degrades(self):
        lone = RadioButton("solo")
        lone.choose()
        assert lone.get("set") is True


class TestUndoSemantics:
    def test_rollback_restores_children(self):
        group = build_group()
        group.select("read")
        event = group.fire(SELECTION_CHANGED, selection="admin")
        undo = group.apply_feedback(event)  # re-applies 'admin'
        assert group.child("admin").get("set") is True
        undo.rollback()
        assert group.selection == "admin"  # CAS: value unchanged since write
        # Fresh feedback then rollback: children follow the selection back.
        group.select("read")
        event2 = group.fire(SELECTION_CHANGED, selection="write")
        # The event path applied 'write'; manually roll back via a new
        # feedback application.
        undo2 = group.apply_feedback(
            group.fire(SELECTION_CHANGED, selection="admin")
        )
        undo2.rollback()
        assert group.selection == "admin"

    def test_denied_coupled_selection_rolls_back_cleanly(self):
        session = LocalSession()
        try:
            a = session.create_instance("a", user="u1")
            b = session.create_instance("b", user="u2")
            shell_a = a.add_root(Shell("ui"))
            group_a = build_group(parent=shell_a)
            shell_b = b.add_root(Shell("ui"))
            group_b = build_group(parent=shell_b)
            a.couple(group_a, ("b", "/ui/mode"))
            session.pump()
            group_a.select("write")
            session.pump()
            assert group_b.selection == "write"
            assert group_b.child("write").get("set") is True
            # b races while a holds the floor: denied + rolled back.
            grant = a.acquire_floor(group_a)
            group_b.select("admin")
            assert b.last_execution.lock_denied
            assert group_b.selection == "write"
            assert group_b.child("write").get("set") is True
            assert group_b.child("admin").get("set") is False
            a.release_floor(grant)
        finally:
            session.close()

    def test_coupled_groups_converge(self):
        session = LocalSession()
        try:
            a = session.create_instance("a", user="u1")
            b = session.create_instance("b", user="u2")
            shell_a = a.add_root(Shell("ui"))
            group_a = build_group(parent=shell_a)
            shell_b = b.add_root(Shell("ui"))
            group_b = build_group(parent=shell_b)
            a.couple(group_a, ("b", "/ui/mode"))
            session.pump()
            group_a.select("admin")
            session.pump()
            assert group_b.selection == "admin"
            assert [c.get("set") for c in group_b.children] == [
                False, False, True,
            ]
        finally:
            session.close()
