"""Per-type behaviour tests for the concrete widgets."""

import pytest

from repro.errors import BuilderError
from repro.toolkit.events import (
    ACTIVATE,
    KEY_PRESS,
    POINTER_MOTION,
    VALUE_CHANGED,
)
from repro.toolkit.widgets import (
    Canvas,
    Form,
    Label,
    ListBox,
    Menu,
    MenuEntry,
    OptionMenu,
    PushButton,
    Scale,
    TextArea,
    TextField,
    ToggleButton,
    known_types,
    widget_class,
)


class TestRegistry:
    def test_all_builtins_registered(self):
        expected = {
            "form", "rowcolumn", "frame", "panedwindow", "shell",
            "pushbutton", "togglebutton", "label", "textfield", "textarea",
            "menu", "menuentry", "optionmenu", "listbox", "scale", "canvas",
        }
        assert expected <= set(known_types())

    def test_widget_class_resolution(self):
        assert widget_class("textfield") is TextField

    def test_unknown_type_raises(self):
        with pytest.raises(BuilderError):
            widget_class("flux-capacitor")


class TestPushButton:
    def test_press_fires_activate(self):
        button = PushButton("b", label="Go")
        seen = []
        button.add_callback(ACTIVATE, lambda w, e: seen.append(e.type))
        button.press(user="u")
        assert seen == [ACTIVATE]

    def test_label_is_relevant(self):
        assert "label" in PushButton.ATTRIBUTES.relevant_names()
        assert "armed" not in PushButton.ATTRIBUTES.relevant_names()


class TestToggleButton:
    def test_toggle_flips(self):
        toggle = ToggleButton("t")
        toggle.toggle()
        assert toggle.value is True
        toggle.toggle()
        assert toggle.value is False

    def test_set_value_explicit(self):
        toggle = ToggleButton("t")
        toggle.set_value(True)
        assert toggle.value is True
        toggle.set_value(False)
        assert toggle.value is False


class TestTextField:
    def test_commit_sets_value_and_cursor(self):
        field = TextField("t")
        field.commit("hello")
        assert field.value == "hello"
        assert field.get("cursor") == 5

    def test_typing_inserts_at_cursor(self):
        field = TextField("t")
        field.type_text("ac")
        field.type_key("Left")
        field.type_key("b")
        assert field.value == "abc"

    def test_backspace_and_delete(self):
        field = TextField("t")
        field.type_text("abc")
        field.type_key("BackSpace")
        assert field.value == "ab"
        field.type_key("Home")
        field.type_key("Delete")
        assert field.value == "b"

    def test_home_end_navigation(self):
        field = TextField("t")
        field.type_text("xy")
        field.type_key("Home")
        assert field.get("cursor") == 0
        field.type_key("End")
        assert field.get("cursor") == 2

    def test_cursor_bounds(self):
        field = TextField("t")
        field.type_key("Left")  # at 0 already
        assert field.get("cursor") == 0
        field.type_text("a")
        field.type_key("Right")  # at end already
        assert field.get("cursor") == 1

    def test_backspace_at_start_is_noop(self):
        field = TextField("t")
        field.type_text("a")
        field.type_key("Home")
        field.type_key("BackSpace")
        assert field.value == "a"

    def test_max_length_enforced(self):
        field = TextField("t", max_length=2)
        field.type_text("abcdef")
        assert field.value == "ab"

    def test_emits_lists_fine_and_coarse(self):
        assert VALUE_CHANGED in TextField.EMITS
        assert KEY_PRESS in TextField.EMITS


class TestTextArea:
    def test_commit_multiline(self):
        area = TextArea("a")
        area.commit("one\ntwo")
        assert area.text == "one\ntwo"
        assert area.get("row") == 1

    def test_return_splits_line(self):
        area = TextArea("a")
        for char in "ab":
            area.fire(KEY_PRESS, key=char)
        area.fire(KEY_PRESS, key="Return")
        area.fire(KEY_PRESS, key="c")
        assert area.text == "ab\nc"

    def test_backspace_joins_lines(self):
        area = TextArea("a")
        area.commit("ab\ncd")
        area.set("row", 1)
        area.set("column", 0)
        area.fire(KEY_PRESS, key="BackSpace")
        assert area.text == "abcd"

    def test_empty_commit_keeps_one_line(self):
        area = TextArea("a")
        area.fire(VALUE_CHANGED, lines=[])
        assert area.get("lines") == [""]


class TestMenus:
    def test_menu_entry_choose(self):
        menu = Menu("m", label="File")
        entry = MenuEntry("open", parent=menu, label="Open…")
        seen = []
        entry.add_callback(ACTIVATE, lambda w, e: seen.append(w.name))
        entry.choose()
        assert seen == ["open"]
        assert menu.entry("open") is entry

    def test_menu_entry_accessor_type_checked(self):
        menu = Menu("m")
        Form("weird", parent=menu)
        with pytest.raises(TypeError):
            menu.entry("weird")

    def test_optionmenu_select(self):
        menu = OptionMenu("op", entries=["eq", "like"], selection="eq")
        menu.select("like")
        assert menu.selection == "like"
        assert menu.entries == ["eq", "like"]

    def test_optionmenu_relevant_attrs(self):
        relevant = set(OptionMenu.ATTRIBUTES.relevant_names())
        assert {"selection", "entries", "label"} <= relevant


class TestListBox:
    def test_replace_items_resets_selection(self):
        box = ListBox("l")
        box.replace_items(["a", "b"])
        box.select_indices([1])
        assert box.selected_items == ["b"]
        box.replace_items(["x"])
        assert box.get("selected") == []

    def test_single_selection_policy_truncates(self):
        box = ListBox("l", items=["a", "b", "c"])
        box.select_indices([0, 2])
        assert box.get("selected") == [0]

    def test_multiple_selection_policy(self):
        box = ListBox("l", items=["a", "b", "c"], selection_policy="multiple")
        box.select_indices([0, 2])
        assert box.selected_items == ["a", "c"]

    def test_out_of_range_indices_dropped(self):
        box = ListBox("l", items=["a"])
        box.select_indices([0, 5, -1])
        assert box.get("selected") == [0]

    def test_items_validator(self):
        with pytest.raises(Exception):
            ListBox("l", items=[1, 2])


class TestScale:
    def test_set_value_clamped(self):
        scale = Scale("s", minimum=0, maximum=10)
        scale.set_value(25)
        assert scale.value == 10
        scale.set_value(-5)
        assert scale.value == 0

    def test_drag_is_fine_grained(self):
        scale = Scale("s")
        event = scale.drag_to(4)
        assert event.type == POINTER_MOTION
        assert scale.value == 4

    def test_bool_value_ignored(self):
        scale = Scale("s")
        scale.set_value(3)
        scale.fire(VALUE_CHANGED, value=True)
        assert scale.value == 3


class TestCanvas:
    def test_draw_appends_stroke(self):
        canvas = Canvas("c")
        canvas.draw_stroke([(0, 0), (1, 2)], color="red", width=2)
        assert canvas.stroke_count == 1
        stroke = canvas.strokes[0]
        assert stroke["color"] == "red"
        assert stroke["points"] == [[0.0, 0.0], [1.0, 2.0]]

    def test_clear_replaces_strokes(self):
        canvas = Canvas("c")
        canvas.draw_stroke([(0, 0)])
        canvas.clear()
        assert canvas.stroke_count == 0

    def test_strokes_returns_copies(self):
        canvas = Canvas("c")
        canvas.draw_stroke([(0, 0)])
        canvas.strokes[0]["color"] = "mutated"
        assert canvas.strokes[0]["color"] == "black"

    def test_feedback_undo_restores_strokes(self):
        canvas = Canvas("c")
        event = canvas.draw_stroke([(0, 0)])
        undo = canvas.apply_feedback(event)  # draws a second copy
        assert canvas.stroke_count == 2
        undo.rollback()
        assert canvas.stroke_count == 1

    def test_stroke_undo_removes_only_its_stroke(self):
        """The DRAW undo is an inverse operation, not a snapshot: a stroke
        appended by someone else in between survives the rollback."""
        canvas = Canvas("c")
        event = canvas.draw_stroke([(0, 0)], color="red")
        undo = canvas.apply_feedback(event)  # optimistic echo (2nd copy)
        # A remote stroke lands while the floor decision is pending.
        remote = dict(points=[[9.0, 9.0]], color="blue", width=1)
        canvas.set(
            "strokes", canvas.strokes + [remote], quiet=True
        )
        undo.rollback()
        colors = [s["color"] for s in canvas.strokes]
        assert colors == ["red", "blue"]  # original + remote, echo removed

    def test_stroke_undo_removes_last_occurrence(self):
        canvas = Canvas("c")
        event = canvas.draw_stroke([(1, 1)])
        undo = canvas.apply_feedback(event)
        assert canvas.stroke_count == 2
        undo.rollback()
        assert canvas.stroke_count == 1
        undo.rollback()  # rolling back twice removes at most once more
        assert canvas.stroke_count == 0


class TestLabel:
    def test_text_property(self):
        label = Label("l", text="hello")
        assert label.text == "hello"
        assert "text" in Label.ATTRIBUTES.relevant_names()
