"""Unit tests for the toolkit attribute model."""

import pytest

from repro.errors import AttributeValidationError, UnknownAttributeError
from repro.toolkit.attributes import (
    Attribute,
    AttributeSet,
    any_value,
    diff_states,
    json_safe,
    non_negative,
    of_type,
    one_of,
    positive,
    string_list,
)


class TestJsonSafe:
    def test_scalars(self):
        for value in ("x", 1, 1.5, True, None):
            assert json_safe(value)

    def test_nested_containers(self):
        assert json_safe({"a": [1, {"b": None}], "c": (1, 2)})

    def test_rejects_objects(self):
        assert not json_safe(object())
        assert not json_safe({"a": object()})
        assert not json_safe([1, set()])

    def test_rejects_non_string_dict_keys(self):
        assert not json_safe({1: "x"})


class TestValidators:
    def test_of_type_accepts(self):
        assert of_type(int, float)(3) is None
        assert of_type(str)("x") is None

    def test_of_type_rejects_with_reason(self):
        reason = of_type(int)("x")
        assert "int" in reason and "str" in reason

    def test_one_of(self):
        check = one_of("a", "b")
        assert check("a") is None
        assert check("c") is not None

    def test_non_negative(self):
        assert non_negative(0) is None
        assert non_negative(2.5) is None
        assert non_negative(-1) is not None
        assert non_negative(True) is not None  # bools are not numbers here
        assert non_negative("3") is not None

    def test_positive(self):
        assert positive(1) is None
        assert positive(0) is not None
        assert positive(-2) is not None

    def test_string_list(self):
        assert string_list(["a", "b"]) is None
        assert string_list([]) is None
        assert string_list("ab") is not None
        assert string_list(["a", 1]) is not None

    def test_any_value(self):
        assert any_value(object()) is None


class TestAttribute:
    def test_requires_identifier_name(self):
        with pytest.raises(ValueError):
            Attribute("bad name")
        with pytest.raises(ValueError):
            Attribute("bad/name")

    def test_requires_json_safe_default(self):
        with pytest.raises(ValueError):
            Attribute("x", default=object())

    def test_fresh_default_copies_mutables(self):
        attr = Attribute("items", default=[])
        first = attr.fresh_default()
        first.append(1)
        assert attr.fresh_default() == []

    def test_fresh_default_shares_scalars(self):
        attr = Attribute("n", default=7)
        assert attr.fresh_default() == 7

    def test_validate_rejects_non_json(self):
        attr = Attribute("x")
        with pytest.raises(AttributeValidationError):
            attr.validate(object())

    def test_validate_runs_validator(self):
        attr = Attribute("n", default=0, validator=non_negative)
        attr.validate(3)
        with pytest.raises(AttributeValidationError) as exc:
            attr.validate(-1)
        assert exc.value.attribute == "n"

    def test_repr_mentions_relevance(self):
        assert "relevant" in repr(Attribute("x", relevant=True))
        assert "irrelevant" in repr(Attribute("x"))


class TestAttributeSet:
    def build(self):
        return AttributeSet(
            [
                Attribute("value", "", relevant=True),
                Attribute("width", 10),
                Attribute("items", [], relevant=True),
            ]
        )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            AttributeSet([Attribute("x"), Attribute("x")])

    def test_names_preserve_order(self):
        assert self.build().names() == ("value", "width", "items")

    def test_relevant_names(self):
        assert self.build().relevant_names() == ("value", "items")

    def test_extended_overrides_and_adds(self):
        base = self.build()
        extended = base.extended(
            [Attribute("width", 99), Attribute("extra", 1)]
        )
        assert extended.get("width").default == 99
        assert "extra" in extended
        # base is unchanged (immutability)
        assert base.get("width").default == 10
        assert "extra" not in base

    def test_get_unknown_raises(self):
        with pytest.raises(UnknownAttributeError) as exc:
            self.build().get("nope", "mywidget")
        assert exc.value.widget_type == "mywidget"

    def test_defaults_are_independent(self):
        attrs = self.build()
        d1, d2 = attrs.defaults(), attrs.defaults()
        d1["items"].append(1)
        assert d2["items"] == []

    def test_len_and_iter(self):
        attrs = self.build()
        assert len(attrs) == 3
        assert [a.name for a in attrs] == ["value", "width", "items"]


class TestDiffStates:
    def test_reports_changed_only(self):
        old = {"a": 1, "b": 2}
        new = {"a": 1, "b": 3}
        assert diff_states(old, new) == {"b": 3}

    def test_reports_added_keys(self):
        assert diff_states({}, {"a": 1}) == {"a": 1}

    def test_identical_is_empty(self):
        state = {"a": [1, 2], "b": "x"}
        assert diff_states(state, dict(state)) == {}
