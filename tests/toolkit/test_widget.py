"""Unit tests for the UIObject base class: tree, state, events, destroy."""

import pytest

from repro.errors import (
    AttributeValidationError,
    DestroyedWidgetError,
    DuplicateChildError,
    PathError,
    UnknownAttributeError,
)
from repro.toolkit.events import (
    ACTIVATE,
    ATTRIBUTE_CHANGED,
    CHILD_ADDED,
    CHILD_REMOVED,
    DESTROYED,
)
from repro.toolkit.widget import UIObject
from repro.toolkit.widgets import Form, PushButton, Shell, TextField, ToggleButton


class TestIdentity:
    def test_name_validation(self):
        with pytest.raises(ValueError):
            UIObject("")
        with pytest.raises(ValueError):
            UIObject("a/b")

    def test_pathname_of_root(self):
        assert UIObject("root").pathname == "/root"

    def test_pathname_nested(self):
        shell = Shell("app")
        form = Form("form", parent=shell)
        button = PushButton("ok", parent=form)
        assert button.pathname == "/app/form/ok"

    def test_root_property(self):
        shell = Shell("app")
        form = Form("form", parent=shell)
        button = PushButton("ok", parent=form)
        assert button.root is shell
        assert shell.root is shell


class TestTreeStructure:
    def test_children_in_insertion_order(self):
        shell = Shell("app")
        names = ["c", "a", "b"]
        for name in names:
            Form(name, parent=shell)
        assert [c.name for c in shell.children] == names

    def test_duplicate_child_rejected(self):
        shell = Shell("app")
        Form("x", parent=shell)
        with pytest.raises(DuplicateChildError):
            Form("x", parent=shell)

    def test_reparenting_rejected(self):
        shell = Shell("app")
        form = Form("x", parent=shell)
        other = Shell("other")
        with pytest.raises(ValueError):
            other.add_child(form)

    def test_remove_child_detaches(self):
        shell = Shell("app")
        form = Form("x", parent=shell)
        shell.remove_child(form)
        assert form.parent is None
        assert shell.children == ()
        assert form.pathname == "/x"

    def test_find_absolute_and_relative(self):
        shell = Shell("app")
        form = Form("form", parent=shell)
        button = PushButton("ok", parent=form)
        assert shell.find("/app/form/ok") is button
        assert shell.find("form/ok") is button
        assert form.find("ok") is button
        assert button.find("/app") is shell  # absolute from anywhere

    def test_find_missing_raises_patherror(self):
        shell = Shell("app")
        with pytest.raises(PathError):
            shell.find("/app/nope")
        with pytest.raises(PathError):
            shell.find("/wrongroot")

    def test_child_accessor(self):
        shell = Shell("app")
        form = Form("form", parent=shell)
        assert shell.child("form") is form
        with pytest.raises(PathError):
            shell.child("ghost")

    def test_walk_preorder(self):
        shell = Shell("app")
        f1 = Form("f1", parent=shell)
        PushButton("b1", parent=f1)
        Form("f2", parent=shell)
        names = [w.name for w in shell.walk()]
        assert names == ["app", "f1", "b1", "f2"]

    def test_child_events_fire(self):
        shell = Shell("app")
        seen = []
        shell.add_callback(CHILD_ADDED, lambda w, e: seen.append(("+", e.params["child"])))
        shell.add_callback(CHILD_REMOVED, lambda w, e: seen.append(("-", e.params["child"])))
        form = Form("x", parent=shell)
        shell.remove_child(form)
        assert seen == [("+", "x"), ("-", "x")]


class TestAttributes:
    def test_get_set(self):
        field = TextField("t")
        field.set("value", "hi")
        assert field.get("value") == "hi"

    def test_unknown_attribute(self):
        field = TextField("t")
        with pytest.raises(UnknownAttributeError):
            field.get("bogus")
        with pytest.raises(UnknownAttributeError):
            field.set("bogus", 1)

    def test_validation_enforced_on_set(self):
        field = TextField("t")
        with pytest.raises(AttributeValidationError):
            field.set("value", 42)

    def test_set_fires_attribute_changed(self):
        field = TextField("t")
        seen = []
        field.add_callback(ATTRIBUTE_CHANGED, lambda w, e: seen.append(e.params))
        field.set("value", "x")
        assert seen == [{"attribute": "value", "value": "x"}]

    def test_set_same_value_is_silent(self):
        field = TextField("t")
        seen = []
        field.add_callback(ATTRIBUTE_CHANGED, lambda w, e: seen.append(1))
        field.set("value", "")
        assert seen == []

    def test_quiet_set_is_silent(self):
        field = TextField("t")
        seen = []
        field.add_callback(ATTRIBUTE_CHANGED, lambda w, e: seen.append(1))
        field.set("value", "x", quiet=True)
        assert seen == []

    def test_state_returns_copy(self):
        field = TextField("t")
        state = field.state()
        state["value"] = "mutated"
        assert field.get("value") == ""

    def test_relevant_state_subset(self):
        field = TextField("t", width=33)
        field.set("value", "shared")
        relevant = field.relevant_state()
        assert relevant == {"value": "shared"}
        assert "width" not in relevant

    def test_set_state_bulk(self):
        field = TextField("t")
        field.set_state({"value": "a", "width": 5})
        assert field.get("value") == "a"
        assert field.get("width") == 5

    def test_constructor_attrs(self):
        field = TextField("t", value="init", width=9)
        assert field.get("value") == "init"
        assert field.get("width") == 9


class TestInteractivityAndLocking:
    def test_interactive_by_default(self):
        assert PushButton("b").is_interactive

    def test_insensitive_not_interactive(self):
        button = PushButton("b", sensitive=False)
        assert not button.is_interactive

    def test_floor_lock_disables(self):
        button = PushButton("b")
        button.floor_lock()
        assert button.floor_locked
        assert not button.is_interactive
        button.floor_unlock()
        assert button.is_interactive

    def test_floor_lock_independent_of_sensitive(self):
        button = PushButton("b")
        button.floor_lock()
        assert button.get("sensitive") is True


class TestEventsAndFeedback:
    def test_fire_without_runtime_is_local(self):
        button = PushButton("b")
        calls = []
        button.add_callback(ACTIVATE, lambda w, e: calls.append(e))
        event = button.fire(ACTIVATE, user="u")
        assert calls == [event]
        assert event.user == "u"
        assert event.instance_id == ""

    def test_toggle_feedback_and_undo(self):
        toggle = ToggleButton("t")
        event = toggle.fire(ACTIVATE)
        assert toggle.value is True
        undo = toggle.apply_feedback(event)  # flips again
        assert toggle.value is False
        undo.rollback()
        assert toggle.value is True

    def test_run_callbacks_skips_feedback(self):
        toggle = ToggleButton("t")
        calls = []
        toggle.add_callback(ACTIVATE, lambda w, e: calls.append(1))
        from repro.toolkit.events import Event

        count = toggle.run_callbacks(Event(type=ACTIVATE, source_path="/t"))
        assert count == 1
        assert toggle.value is False  # feedback not applied

    def test_deliver_returns_undo_record(self):
        toggle = ToggleButton("t")
        from repro.toolkit.events import Event

        undo = toggle.deliver(Event(type=ACTIVATE, source_path="/t"))
        assert toggle.value is True
        undo.rollback()
        assert toggle.value is False


class TestDestroy:
    def test_destroy_subtree_bottom_up(self):
        shell = Shell("app")
        form = Form("form", parent=shell)
        button = PushButton("ok", parent=form)
        order = []
        button.add_callback(DESTROYED, lambda w, e: order.append("button"))
        form.add_callback(DESTROYED, lambda w, e: order.append("form"))
        form.destroy()
        assert order == ["button", "form"]
        assert form.destroyed and button.destroyed
        assert shell.children == ()

    def test_destroyed_event_sees_original_pathname(self):
        shell = Shell("app")
        form = Form("form", parent=shell)
        paths = []
        form.add_callback(DESTROYED, lambda w, e: paths.append(e.source_path))
        form.destroy()
        assert paths == ["/app/form"]

    def test_operations_on_destroyed_raise(self):
        button = PushButton("b")
        button.destroy()
        with pytest.raises(DestroyedWidgetError):
            button.set("label", "x")
        with pytest.raises(DestroyedWidgetError):
            button.fire(ACTIVATE)
        with pytest.raises(DestroyedWidgetError):
            Form("f").add_child(button)

    def test_destroy_is_idempotent(self):
        button = PushButton("b")
        button.destroy()
        button.destroy()  # no raise

    def test_get_still_works_after_destroy(self):
        # Reading a destroyed widget's last state is allowed (history needs it).
        button = PushButton("b", label="x")
        button.destroy()
        assert button.get("label") == "x"


class TestRuntimeAttachment:
    def test_attach_runtime_on_non_root_rejected(self):
        shell = Shell("app")
        form = Form("form", parent=shell)
        with pytest.raises(ValueError):
            form.attach_runtime(object())

    def test_runtime_inherited_through_tree(self):
        shell = Shell("app")
        form = Form("form", parent=shell)
        marker = object()
        shell.attach_runtime(marker)
        assert form.runtime is marker


class TestDescribe:
    def test_describe_structure(self):
        shell = Shell("app", title="T")
        form = Form("form", parent=shell)
        TextField("name", parent=form)
        desc = shell.describe()
        assert desc["type"] == "shell"
        assert desc["state"]["title"] == "T"
        assert desc["children"][0]["name"] == "form"
        assert desc["children"][0]["children"][0]["type"] == "textfield"
