"""Unit tests for events, callback registry and the event trace."""

import pytest

from repro.toolkit.events import (
    ACTIVATE,
    FINE_GRAINED_EVENTS,
    KEY_PRESS,
    POINTER_MOTION,
    VALUE_CHANGED,
    CallbackRegistry,
    Event,
    EventTrace,
)


class TestEvent:
    def test_wire_roundtrip(self):
        event = Event(
            type=VALUE_CHANGED,
            source_path="/app/form/name",
            params={"value": "x"},
            user="alice",
            instance_id="a",
        )
        back = Event.from_wire(event.to_wire())
        assert back == event

    def test_seq_is_monotonic(self):
        e1 = Event(type=ACTIVATE, source_path="/a")
        e2 = Event(type=ACTIVATE, source_path="/a")
        assert e2.seq > e1.seq

    def test_params_must_be_json_safe(self):
        with pytest.raises(ValueError):
            Event(type=ACTIVATE, source_path="/a", params={"x": object()})

    def test_fine_grained_classification(self):
        assert Event(type=KEY_PRESS, source_path="/a").is_fine_grained
        assert Event(type=POINTER_MOTION, source_path="/a").is_fine_grained
        assert not Event(type=VALUE_CHANGED, source_path="/a").is_fine_grained
        assert KEY_PRESS in FINE_GRAINED_EVENTS

    def test_global_source(self):
        event = Event(type=ACTIVATE, source_path="/a/b", instance_id="i1")
        assert event.global_source == ("i1", "/a/b")

    def test_retargeted_keeps_payload_changes_location(self):
        event = Event(
            type=VALUE_CHANGED,
            source_path="/a/x",
            params={"value": 1},
            user="u",
            instance_id="i1",
        )
        moved = event.retargeted("/b/y", "i2")
        assert moved.source_path == "/b/y"
        assert moved.instance_id == "i2"
        assert moved.params == {"value": 1}
        assert moved.user == "u"
        assert moved.seq == event.seq  # same logical event

    def test_events_are_immutable(self):
        event = Event(type=ACTIVATE, source_path="/a")
        with pytest.raises(AttributeError):
            event.type = "other"


class TestCallbackRegistry:
    def test_invoke_in_registration_order(self):
        reg = CallbackRegistry()
        calls = []
        reg.add(ACTIVATE, lambda w, e: calls.append("first"))
        reg.add(ACTIVATE, lambda w, e: calls.append("second"))
        count = reg.invoke(None, Event(type=ACTIVATE, source_path="/x"))
        assert count == 2
        assert calls == ["first", "second"]

    def test_invoke_only_matching_type(self):
        reg = CallbackRegistry()
        calls = []
        reg.add(ACTIVATE, lambda w, e: calls.append("a"))
        reg.invoke(None, Event(type=VALUE_CHANGED, source_path="/x"))
        assert calls == []

    def test_remove(self):
        reg = CallbackRegistry()
        cb = lambda w, e: None
        reg.add(ACTIVATE, cb)
        assert reg.remove(ACTIVATE, cb)
        assert not reg.remove(ACTIVATE, cb)
        assert len(reg) == 0

    def test_remove_one_registration_at_a_time(self):
        reg = CallbackRegistry()
        cb = lambda w, e: None
        reg.add(ACTIVATE, cb)
        reg.add(ACTIVATE, cb)
        assert reg.remove(ACTIVATE, cb)
        assert len(reg.get(ACTIVATE)) == 1

    def test_clear_by_type(self):
        reg = CallbackRegistry()
        reg.add(ACTIVATE, lambda w, e: None)
        reg.add(VALUE_CHANGED, lambda w, e: None)
        reg.clear(ACTIVATE)
        assert reg.get(ACTIVATE) == ()
        assert len(reg.get(VALUE_CHANGED)) == 1

    def test_clear_all(self):
        reg = CallbackRegistry()
        reg.add(ACTIVATE, lambda w, e: None)
        reg.clear()
        assert len(reg) == 0

    def test_callback_added_during_invoke_not_run_this_round(self):
        reg = CallbackRegistry()
        calls = []

        def adder(w, e):
            calls.append("adder")
            reg.add(ACTIVATE, lambda w2, e2: calls.append("late"))

        reg.add(ACTIVATE, adder)
        reg.invoke(None, Event(type=ACTIVATE, source_path="/x"))
        assert calls == ["adder"]

    def test_widget_passed_through(self):
        reg = CallbackRegistry()
        seen = []
        sentinel = object()
        reg.add(ACTIVATE, lambda w, e: seen.append(w))
        reg.invoke(sentinel, Event(type=ACTIVATE, source_path="/x"))
        assert seen == [sentinel]

    def test_event_types_listing(self):
        reg = CallbackRegistry()
        reg.add(ACTIVATE, lambda w, e: None)
        reg.add(KEY_PRESS, lambda w, e: None)
        assert set(reg.event_types()) == {ACTIVATE, KEY_PRESS}


class TestEventTrace:
    def test_records_in_order(self):
        trace = EventTrace()
        e1 = Event(type=ACTIVATE, source_path="/a")
        e2 = Event(type=VALUE_CHANGED, source_path="/b")
        trace.record(e1)
        trace.record(e2)
        assert trace.events() == [e1, e2]

    def test_filter_by_type(self):
        trace = EventTrace()
        trace.record(Event(type=ACTIVATE, source_path="/a"))
        trace.record(Event(type=VALUE_CHANGED, source_path="/b"))
        assert len(trace.events(ACTIVATE)) == 1

    def test_capacity_bound_drops_oldest(self):
        trace = EventTrace(capacity=3)
        events = [Event(type=ACTIVATE, source_path=f"/{i}") for i in range(5)]
        for event in events:
            trace.record(event)
        assert len(trace) == 3
        assert trace.dropped == 2
        assert trace.events() == events[2:]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventTrace(capacity=0)

    def test_clear(self):
        trace = EventTrace()
        trace.record(Event(type=ACTIVATE, source_path="/a"))
        trace.clear()
        assert len(trace) == 0
