"""Unit tests for the virtual text renderer."""

import pytest

from repro.toolkit.render import FrameBuffer, render
from repro.toolkit.widgets import (
    Canvas,
    Form,
    Label,
    ListBox,
    OptionMenu,
    PushButton,
    Scale,
    Shell,
    TextArea,
    TextField,
    ToggleButton,
)


class TestFrameBuffer:
    def test_dimensions_validated(self):
        with pytest.raises(ValueError):
            FrameBuffer(0, 5)

    def test_put_and_clip(self):
        fb = FrameBuffer(3, 2)
        fb.put(0, 0, "A")
        fb.put(99, 99, "B")  # silently clipped
        fb.put(-1, 0, "C")
        assert fb.to_string().splitlines()[0] == "A"

    def test_text_clipped_to_max_width(self):
        fb = FrameBuffer(10, 1)
        fb.text(0, 0, "abcdef", max_width=3)
        assert fb.to_string() == "abc"

    def test_box(self):
        fb = FrameBuffer(4, 3)
        fb.box(0, 0, 4, 3)
        lines = fb.to_string().splitlines()
        assert lines[0] == "+--+"
        assert lines[1] == "|  |"
        assert lines[2] == "+--+"

    def test_tiny_box_is_noop(self):
        fb = FrameBuffer(4, 3)
        fb.box(0, 0, 1, 1)
        assert fb.to_string().strip() == ""


class TestRenderWidgets:
    def test_label(self):
        shell = Shell("app")
        Label("l", parent=shell, text="hello", x=0, y=0)
        assert "hello" in render(shell, 20, 2)

    def test_button(self):
        shell = Shell("app")
        PushButton("b", parent=shell, label="OK")
        assert "[OK]" in render(shell, 20, 2)

    def test_toggle_marks_state(self):
        shell = Shell("app")
        toggle = ToggleButton("t", parent=shell, label="flag")
        assert "( ) flag" in render(shell, 20, 2)
        toggle.toggle()
        assert "(x) flag" in render(shell, 20, 2)

    def test_textfield_shows_content(self):
        shell = Shell("app")
        field = TextField("f", parent=shell, width=10)
        field.commit("hi")
        out = render(shell, 20, 2)
        assert "|hi" in out

    def test_textarea_lines(self):
        shell = Shell("app")
        area = TextArea("a", parent=shell, width=20)
        area.commit("one\ntwo")
        out = render(shell, 20, 4)
        assert "one" in out and "two" in out

    def test_optionmenu_selection(self):
        shell = Shell("app")
        OptionMenu(
            "m", parent=shell, label="op", entries=["eq"], selection="eq"
        )
        assert "op <eq>" in render(shell, 20, 2)

    def test_listbox_selection_marker(self):
        shell = Shell("app")
        box = ListBox("l", parent=shell, items=["aa", "bb"], width=10)
        box.select_indices([1])
        out = render(shell, 20, 4)
        assert " aa" in out
        assert ">bb" in out

    def test_scale_knob_moves(self):
        shell = Shell("app")
        scale = Scale("s", parent=shell, width=12, maximum=10)
        before = render(shell, 20, 2)
        scale.set_value(10)
        after = render(shell, 20, 2)
        assert before != after
        assert "#" in after

    def test_canvas_strokes(self):
        shell = Shell("app")
        canvas = Canvas("c", parent=shell, width=10, height=5)
        canvas.draw_stroke([(1, 1), (2, 2)])
        out = render(shell, 20, 8)
        assert "*" in out
        assert "+" in out  # border

    def test_invisible_widget_skipped(self):
        shell = Shell("app")
        Label("l", parent=shell, text="ghost", visible=False)
        assert "ghost" not in render(shell, 20, 2)

    def test_nested_offsets(self):
        shell = Shell("app")
        form = Form("f", parent=shell, x=2, y=1)
        Label("l", parent=form, text="X", x=3, y=0)
        lines = render(shell, 20, 3).splitlines()
        assert len(lines) >= 2
        assert lines[1][5] == "X"  # 2 + 3 columns, row 1
