"""Unit tests for the widget-tree utilities."""

import pytest

from repro.errors import PathError
from repro.toolkit.tree import (
    apply_subtree_state,
    format_tree,
    is_ancestor_path,
    join_path,
    relative_path,
    split_path,
    structure_signature,
    subtree_state,
    subtree_widgets,
    tree_depth,
    tree_size,
)
from repro.toolkit.widgets import Form, Label, PushButton, Shell, TextField


def build_tree():
    shell = Shell("app", title="T")
    form = Form("form", parent=shell)
    TextField("name", parent=form)
    Label("hint", parent=form, text="hi")
    return shell, form


class TestPathAlgebra:
    def test_join_relative(self):
        assert join_path("a", "b/c") == "a/b/c"

    def test_join_absolute(self):
        assert join_path("/a", "b") == "/a/b"

    def test_join_collapses_extra_separators(self):
        assert join_path("/a/", "/b/", "c") == "/a/b/c"

    def test_split(self):
        assert split_path("/a/b/c") == ("a", "b", "c")
        assert split_path("a/b") == ("a", "b")
        assert split_path("/") == ()

    def test_is_ancestor_path(self):
        assert is_ancestor_path("/a/b", "/a/b/c")
        assert is_ancestor_path("/a/b", "/a/b")
        assert not is_ancestor_path("/a/b", "/a/bc")
        assert not is_ancestor_path("/a/b/c", "/a/b")


class TestRelativePaths:
    def test_relative_path(self):
        shell, form = build_tree()
        field = form.child("name")
        assert relative_path(shell, field) == "form/name"
        assert relative_path(form, field) == "name"
        assert relative_path(shell, shell) == ""

    def test_relative_path_outside_raises(self):
        shell, _form = build_tree()
        stranger = Shell("other")
        with pytest.raises(PathError):
            relative_path(shell, stranger)

    def test_subtree_widgets_preorder(self):
        shell, _ = build_tree()
        rels = [rel for rel, _ in subtree_widgets(shell)]
        assert rels == ["", "form", "form/name", "form/hint"]


class TestSubtreeState:
    def test_relevant_only_default(self):
        shell, form = build_tree()
        form.child("name").set("value", "x")
        state = subtree_state(shell)
        assert state["form/name"] == {"value": "x"}
        assert "width" not in state["form/name"]

    def test_full_state(self):
        shell, _ = build_tree()
        state = subtree_state(shell, relevant_only=False)
        assert "width" in state["form/name"]

    def test_apply_roundtrip(self):
        shell_a, form_a = build_tree()
        form_a.child("name").set("value", "copied")
        shell_b, form_b = build_tree()
        applied = apply_subtree_state(shell_b, subtree_state(shell_a))
        assert form_b.child("name").get("value") == "copied"
        assert set(applied) == {"", "form", "form/name", "form/hint"}

    def test_apply_skips_missing_paths(self):
        shell, _ = build_tree()
        applied = apply_subtree_state(shell, {"ghost/path": {"value": "x"}})
        assert applied == []

    def test_apply_strict_raises_on_missing(self):
        shell, _ = build_tree()
        with pytest.raises(PathError):
            apply_subtree_state(
                shell, {"ghost": {"value": "x"}}, strict=True
            )


class TestSignaturesAndMetrics:
    def test_signature_ignores_names(self):
        a = Shell("one")
        Form("x", parent=a)
        b = Shell("two")
        Form("y", parent=b)
        assert structure_signature(a) == structure_signature(b)

    def test_signature_sees_type_difference(self):
        a = Shell("one")
        Form("x", parent=a)
        b = Shell("two")
        PushButton("x", parent=b)
        assert structure_signature(a) != structure_signature(b)

    def test_signature_sees_depth_difference(self):
        a = Shell("one")
        Form("x", parent=a)
        b = Shell("two")
        Form("x", parent=Form("mid", parent=b))
        assert structure_signature(a) != structure_signature(b)

    def test_tree_size_and_depth(self):
        shell, _ = build_tree()
        assert tree_size(shell) == 4
        assert tree_depth(shell) == 3
        assert tree_depth(Shell("leaf")) == 1

    def test_format_tree_lists_all(self):
        shell, _ = build_tree()
        text = format_tree(shell)
        for name in ("app", "form", "name", "hint"):
            assert name in text

    def test_format_tree_with_state(self):
        shell, form = build_tree()
        form.child("name").set("value", "visible-state")
        assert "visible-state" in format_tree(shell, show_state=True)
