"""Unit tests for the declarative UI builder."""

import pytest

from repro.errors import BuilderError
from repro.toolkit.builder import build, clone, to_spec, validate_spec
from repro.toolkit.tree import structure_signature, subtree_state
from repro.toolkit.widgets import Form, Shell, TextField


SPEC = {
    "type": "shell",
    "name": "app",
    "state": {"title": "Demo"},
    "children": [
        {
            "type": "form",
            "name": "form",
            "children": [
                {"type": "textfield", "name": "name", "state": {"width": 12}},
                {"type": "pushbutton", "name": "ok", "state": {"label": "OK"}},
            ],
        }
    ],
}


class TestValidate:
    def test_accepts_good_spec(self):
        validate_spec(SPEC)

    def test_requires_type_and_name(self):
        with pytest.raises(BuilderError):
            validate_spec({"type": "form"})
        with pytest.raises(BuilderError):
            validate_spec({"name": "x"})

    def test_rejects_unknown_keys(self):
        with pytest.raises(BuilderError):
            validate_spec({"type": "form", "name": "x", "bogus": 1})

    def test_rejects_unknown_widget_type(self):
        with pytest.raises(BuilderError):
            validate_spec({"type": "hologram", "name": "x"})

    def test_rejects_duplicate_children(self):
        spec = {
            "type": "form",
            "name": "f",
            "children": [
                {"type": "label", "name": "x"},
                {"type": "label", "name": "x"},
            ],
        }
        with pytest.raises(BuilderError):
            validate_spec(spec)

    def test_rejects_nested_errors_with_path(self):
        spec = {
            "type": "form",
            "name": "f",
            "children": [{"type": "nope", "name": "inner"}],
        }
        with pytest.raises(BuilderError):
            validate_spec(spec)

    def test_rejects_non_mapping_state(self):
        with pytest.raises(BuilderError):
            validate_spec({"type": "form", "name": "f", "state": [1]})

    def test_rejects_non_list_children(self):
        with pytest.raises(BuilderError):
            validate_spec({"type": "form", "name": "f", "children": {}})


class TestBuild:
    def test_builds_structure(self):
        root = build(SPEC)
        assert isinstance(root, Shell)
        assert root.get("title") == "Demo"
        field = root.find("/app/form/name")
        assert isinstance(field, TextField)
        assert field.get("width") == 12

    def test_attach_to_parent(self):
        parent = Form("container")
        child = build({"type": "label", "name": "l"}, parent=parent)
        assert child.parent is parent

    def test_build_validates_first(self):
        with pytest.raises(BuilderError):
            build({"type": "form"})


class TestToSpec:
    def test_roundtrip_structure(self):
        root = build(SPEC)
        rebuilt = build(to_spec(root))
        assert structure_signature(root) == structure_signature(rebuilt)

    def test_roundtrip_state(self):
        root = build(SPEC)
        root.find("/app/form/name").set("value", "typed")
        rebuilt = build(to_spec(root))
        assert subtree_state(rebuilt) == subtree_state(root)

    def test_compact_spec_omits_defaults(self):
        root = build({"type": "textfield", "name": "t"})
        spec = to_spec(root)
        assert "state" not in spec

    def test_full_state_includes_defaults(self):
        root = build({"type": "textfield", "name": "t"})
        spec = to_spec(root, full_state=True)
        assert spec["state"]["width"] == 10


class TestClone:
    def test_clone_is_deep_and_detached(self):
        root = build(SPEC)
        root.find("/app/form/name").set("value", "original")
        copy = clone(root)
        copy.find("/app/form/name").set("value", "changed")
        assert root.find("/app/form/name").get("value") == "original"

    def test_clone_rename(self):
        root = build(SPEC)
        copy = clone(root, name="other")
        assert copy.name == "other"
        assert copy.find("/other/form/name") is not None

    def test_clone_into_parent(self):
        root = build(SPEC)
        container = Form("holder")
        copy = clone(root.find("/app/form"), name="f2", parent=container)
        assert copy.pathname == "/holder/f2"
