"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.session import Session
from repro.toolkit import (
    Canvas,
    Form,
    OptionMenu,
    PushButton,
    Scale,
    Shell,
    TextField,
    ToggleButton,
)


#: Backend the shared ``session`` fixture builds; CI overrides this to
#: run the whole suite against the asyncio runtime (REPRO_BACKEND=aio).
SESSION_BACKEND = os.environ.get("REPRO_BACKEND", "memory")


@pytest.fixture
def session():
    """A fresh deployment (server + network) on the configured backend."""
    sess = Session(backend=SESSION_BACKEND)
    yield sess
    sess.close()


@pytest.fixture
def pair(session):
    """Two registered instances named 'a' and 'b'."""
    a = session.create_instance("a", user="alice")
    b = session.create_instance("b", user="bob")
    return session, a, b


def make_demo_tree(root_name: str = "app") -> Shell:
    """A small mixed widget tree used across tests.

    Layout::

        /<root>
          /form
            /name   (textfield)
            /mode   (optionmenu: eq/like)
            /ok     (pushbutton)
            /flag   (togglebutton)
          /board
            /canvas (canvas)
            /zoom   (scale)
    """
    shell = Shell(root_name, title="demo")
    form = Form("form", parent=shell)
    TextField("name", parent=form, width=20)
    OptionMenu("mode", parent=form, entries=["eq", "like"], selection="eq")
    PushButton("ok", parent=form, label="OK")
    ToggleButton("flag", parent=form, label="Flag")
    board = Form("board", parent=shell)
    Canvas("canvas", parent=board, width=30, height=8)
    Scale("zoom", parent=board, maximum=10)
    return shell


@pytest.fixture
def demo_tree():
    return make_demo_tree()


@pytest.fixture
def coupled_pair(pair):
    """Two instances with identical demo trees, text fields coupled."""
    session, a, b = pair
    tree_a = make_demo_tree()
    tree_b = make_demo_tree()
    a.add_root(tree_a)
    b.add_root(tree_b)
    a.couple(tree_a.find("/app/form/name"), ("b", "/app/form/name"))
    session.pump()
    return session, a, b, tree_a, tree_b
