"""Cross-backend parity: the asyncio runtime must be protocol-transparent.

The same deterministic workload runs once on the sync simulated backend
(the reference) and once under the asyncio runtime (real sockets,
batching on), across 1-, 2- and 4-shard deployments; the final UI state
of every instance — and the order in which each replica executed the
coupled events — must be identical.  A second group injects duplicates
and losses into the simulated network and asserts the idempotent-dedup
and recovery paths land on the same final state as a clean run.
"""

import time

import pytest

from repro.session import Session
from repro.toolkit.events import VALUE_CHANGED

from conftest import make_demo_tree

FIELD = "/app/form/name"
ZOOM = "/app/board/zoom"
FLAG = "/app/form/flag"

N_INSTANCES = 4


def settle(session, predicate, timeout=10.0):
    """Drive *session* until *predicate* holds (pump or wall-clock wait)."""
    if session.backend == "memory":
        session.pump()
        return predicate()
    end = time.monotonic() + timeout
    while time.monotonic() < end:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def ui_snapshot(trees):
    """{instance: {pathname: coupling-relevant state}} for comparison."""
    return {
        instance_id: {
            widget.pathname: widget.relevant_state()
            for widget in tree.walk()
        }
        for instance_id, tree in trees.items()
    }


def field_event_order(instance):
    """The (user, value) sequence of FIELD events this replica executed."""
    return [
        (event.user, event.params.get("value"))
        for event in instance.trace.events(VALUE_CHANGED)
        if event.source_path.endswith("/form/name")
    ]


def run_workload(session):
    """A deterministic multi-writer session: couple, edit, converge.

    Returns (final snapshot, per-instance FIELD event order).
    """
    instances = {}
    trees = {}
    for i in range(N_INSTANCES):
        instance_id = f"i{i}"
        instances[instance_id] = session.create_instance(
            instance_id, user=f"u{i}"
        )
        trees[instance_id] = instances[instance_id].add_root(make_demo_tree())
    assert settle(
        session,
        lambda: all(
            len(inst.roster) == N_INSTANCES for inst in instances.values()
        ),
    )

    # One couple group over FIELD spanning everyone, a pair over ZOOM,
    # and a pair over FLAG.
    for other in ("i1", "i2", "i3"):
        instances["i0"].couple(trees["i0"].find(FIELD), (other, FIELD))
    instances["i1"].couple(trees["i1"].find(ZOOM), ("i0", ZOOM))
    instances["i2"].couple(trees["i2"].find(FLAG), ("i3", FLAG))
    assert settle(
        session,
        lambda: all(
            instances[i].is_coupled(FIELD) for i in instances
        )
        and instances["i0"].is_coupled(ZOOM)
        and instances["i3"].is_coupled(FLAG),
    )

    # Sequential multi-writer edits; each step settles before the next so
    # the global order is deterministic on every backend.
    for writer, value in (
        ("i0", "alpha"),
        ("i1", "bravo"),
        ("i3", "charlie"),
        ("i2", "delta"),
    ):
        trees[writer].find(FIELD).commit(value)
        assert settle(
            session,
            lambda v=value: all(
                trees[i].find(FIELD).value == v for i in trees
            ),
        )

    trees["i1"].find(ZOOM).set_value(3)
    assert settle(session, lambda: trees["i0"].find(ZOOM).value == 3)
    trees["i0"].find(ZOOM).set_value(7)
    assert settle(session, lambda: trees["i1"].find(ZOOM).value == 7)

    trees["i2"].find(FLAG).set_value(True)
    assert settle(session, lambda: trees["i3"].find(FLAG).value is True)

    snapshot = ui_snapshot(trees)
    order = {i: field_event_order(instances[i]) for i in instances}
    return snapshot, order


def run_on(backend, shards):
    with Session(backend=backend, shards=shards) as session:
        return run_workload(session)


@pytest.mark.parametrize("shards", [0, 2, 4], ids=["1-shard", "2-shard", "4-shard"])
class TestBackendParity:
    def test_final_state_and_order_match(self, shards):
        ref_snapshot, ref_order = run_on("memory", shards)
        aio_snapshot, aio_order = run_on("aio", shards)
        assert aio_snapshot == ref_snapshot
        assert aio_order == ref_order

    def test_reference_state_is_nontrivial(self, shards):
        """Guard: the workload actually exercises coupled state."""
        snapshot, order = run_on("memory", shards)
        for instance_id in snapshot:
            assert snapshot[instance_id]["/app/form/name"]["value"] == "delta"
        assert snapshot["i0"]["/app/board/zoom"]["value"] == 7
        assert snapshot["i3"]["/app/form/flag"]["set"] is True
        # Every replica in the FIELD group executed all four edits, in
        # the same global order.
        for instance_id in ("i0", "i1", "i2", "i3"):
            values = [value for _, value in order[instance_id]]
            assert values == ["alpha", "bravo", "charlie", "delta"]


class TestInjectionParity:
    @pytest.mark.parametrize("rate", [0.2, 0.5])
    def test_duplicate_injection_matches_clean_run(self, rate):
        """Duplicated deliveries are deduplicated: same final state."""
        clean_snapshot, clean_order = run_on("memory", 0)
        with Session(backend="memory", duplicate_rate=rate, seed=7) as session:
            dup_snapshot, dup_order = run_workload(session)
        assert dup_snapshot == clean_snapshot
        assert dup_order == clean_order

    def test_loss_recovery_converges_to_reference(self):
        """Edits lost to a partition are rolled back; once the network
        heals, the session converges to the reference final state."""
        clean_snapshot, _ = run_on("memory", 0)
        with Session(backend="memory") as session:
            instances = {}
            trees = {}
            for i in range(N_INSTANCES):
                instance_id = f"i{i}"
                instances[instance_id] = session.create_instance(
                    instance_id, user=f"u{i}", lock_timeout=0.05
                )
                trees[instance_id] = instances[instance_id].add_root(
                    make_demo_tree()
                )
            session.pump()
            for other in ("i1", "i2", "i3"):
                instances["i0"].couple(trees["i0"].find(FIELD), (other, FIELD))
            instances["i1"].couple(trees["i1"].find(ZOOM), ("i0", ZOOM))
            instances["i2"].couple(trees["i2"].find(FLAG), ("i3", FLAG))
            session.pump()

            # These edits die against a partitioned server (lock denied,
            # feedback rolled back locally).
            session.network.partition("server")
            trees["i0"].find(FIELD).commit("lost-edit")
            trees["i1"].find(ZOOM).set_value(9)
            session.pump()
            session.network.heal("server")

            # Now run the reference edit sequence to convergence.
            for writer, value in (
                ("i0", "alpha"),
                ("i1", "bravo"),
                ("i3", "charlie"),
                ("i2", "delta"),
            ):
                trees[writer].find(FIELD).commit(value)
                session.pump()
            trees["i1"].find(ZOOM).set_value(3)
            session.pump()
            trees["i0"].find(ZOOM).set_value(7)
            session.pump()
            trees["i2"].find(FLAG).set_value(True)
            session.pump()
            assert ui_snapshot(trees) == clean_snapshot
