"""Heterogeneous application coupling — the paper's headline feature.

"Collaboration among participants in a CSCW system is usually only
supported for a set of instances of one application. ... it is indeed
desirable to support (partial) synchronization between functionally
different applications." (§2.2)
"""

import pytest

from repro.core.compat import CorrespondenceRegistry
from repro.session import LocalSession
from repro.toolkit.builder import build
from repro.toolkit.widgets import Form, Label, Scale, Shell, TextField


@pytest.fixture
def corr():
    registry = CorrespondenceRegistry()
    registry.declare("label", "textfield", {"text": "value"})
    return registry


@pytest.fixture
def session(corr):
    sess = LocalSession(correspondences=corr)
    yield sess
    sess.close()


def editor_app():
    """Application type 1: a text editor."""
    root = Shell("editor", title="Editor")
    Form("main", parent=root)
    TextField("body", parent=root.find("main"), width=40)
    return root


def monitor_app():
    """Application type 2: a read-only monitor showing labels."""
    root = Shell("monitor", title="Monitor")
    Form("view", parent=root)
    Label("display", parent=root.find("view"))
    return root


class TestCrossApplicationCoupling:
    def test_same_type_different_apps(self, session):
        editor = session.create_instance("ed", user="u1", app_type="editor")
        monitor = session.create_instance("mon", user="u2", app_type="monitor")
        ed_tree = editor.add_root(editor_app())
        mon_tree = monitor.add_root(Shell("monitor"))
        TextField("mirror", parent=mon_tree)
        editor.couple(ed_tree.find("main/body"), ("mon", "/monitor/mirror"))
        session.pump()
        ed_tree.find("main/body").commit("typed in the editor")
        session.pump()
        assert mon_tree.find("/monitor/mirror").value == "typed in the editor"

    def test_cross_type_state_copy_with_correspondence(self, session):
        editor = session.create_instance("ed", user="u1", app_type="editor")
        monitor = session.create_instance("mon", user="u2", app_type="monitor")
        ed_tree = editor.add_root(editor_app())
        mon_tree = monitor.add_root(monitor_app())
        ed_tree.find("main/body").commit("status: ready")
        # Pull the editor's field into the monitor's label.
        monitor.copy_from(
            mon_tree.find("view/display"), ("ed", "/editor/main/body")
        )
        assert mon_tree.find("view/display").get("text") == "status: ready"

    def test_cross_type_copy_without_correspondence_fails(self):
        session = LocalSession()  # no correspondences declared
        try:
            editor = session.create_instance("ed", user="u1")
            monitor = session.create_instance("mon", user="u2")
            ed_tree = editor.add_root(editor_app())
            mon_tree = monitor.add_root(monitor_app())
            from repro.errors import IncompatibleObjectsError

            with pytest.raises(IncompatibleObjectsError):
                monitor.copy_from(
                    mon_tree.find("view/display"),
                    ("ed", "/editor/main/body"),
                )
        finally:
            session.close()

    def test_complex_heterogeneous_copy(self, session):
        """Whole forms with different component types, via correspondence."""
        a = session.create_instance("a", user="u1", app_type="teacher")
        b = session.create_instance("b", user="u2", app_type="student")
        src = a.add_root(
            build(
                {
                    "type": "shell",
                    "name": "t",
                    "children": [
                        {
                            "type": "form",
                            "name": "panel",
                            "children": [
                                {"type": "label", "name": "msg",
                                 "state": {"text": "watch me"}},
                                {"type": "scale", "name": "level",
                                 "state": {"value": 4}},
                            ],
                        }
                    ],
                }
            )
        )
        dst = b.add_root(
            build(
                {
                    "type": "shell",
                    "name": "s",
                    "children": [
                        {
                            "type": "form",
                            "name": "panel",
                            "children": [
                                {"type": "textfield", "name": "msg"},
                                {"type": "scale", "name": "level"},
                            ],
                        }
                    ],
                }
            )
        )
        b.copy_from(dst.find("panel"), ("a", "/t/panel"))
        assert dst.find("panel/msg").value == "watch me"
        assert dst.find("panel/level").value == 4

    def test_merge_mode_across_structures(self, session):
        """Destructive merging imposes the dominating structure (§3.3)."""
        a = session.create_instance("a", user="u1")
        b = session.create_instance("b", user="u2")
        src = a.add_root(editor_app())
        src.find("main/body").commit("dominating content")
        dst = b.add_root(Shell("editor"))  # empty shell, same root name
        b.copy_from(dst, ("a", "/editor"), mode="merge")
        assert dst.find("main/body").value == "dominating content"

    def test_flexible_mode_conserves_local_extras(self, session):
        a = session.create_instance("a", user="u1")
        b = session.create_instance("b", user="u2")
        src = a.add_root(editor_app())
        src.find("main/body").commit("shared part")
        dst = b.add_root(editor_app())
        private = Scale("private", parent=dst.find("main"))
        private.set("value", 9)
        b.copy_from(dst, ("a", "/editor"), mode="flexible")
        assert dst.find("main/body").value == "shared part"
        assert dst.find("main/private").get("value") == 9
