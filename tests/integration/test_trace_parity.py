"""Trace parity: identical span trees across backends and shard counts.

The trace of one deterministic workload is a *semantic* artifact: the
same user action must traverse the same causal hops — lock wait, floor,
receive, broadcast, remote apply — whether the deployment runs on the
in-memory simulator, blocking TCP threads or the asyncio runtime, and
however many shards the cluster has.  Canonical trees
(:meth:`SpanRecorder.canonical_tree`) strip timestamps and endpoints,
keeping only names and causal structure, so they must compare equal.
"""

import time

import pytest

from repro.obs.tracing import CLUSTER_ROUTE
from repro.session import Session

from conftest import make_demo_tree

FIELD = "/app/form/name"

BACKENDS = ("memory", "tcp", "aio")
SHARD_COUNTS = (1, 2, 4)

N_EDITS = 3


def settle_spans(sess, timeout=15.0):
    end = time.monotonic() + timeout
    while time.monotonic() < end:
        sess.pump()
        stats = sess.obs.spans.stats()
        if stats["spans"] and stats["open"] == 0:
            return True
        if sess.backend != "memory":
            time.sleep(0.01)
    stats = sess.obs.spans.stats()
    return stats["spans"] and stats["open"] == 0


def run_workload(backend, shards):
    """One coupled field, three writer edits; returns canonical trees."""
    sess = Session(backend, shards=shards, observability=True)
    try:
        a = sess.create_instance("a", user="alice")
        b = sess.create_instance("b", user="bob")
        ta, tb = make_demo_tree(), make_demo_tree()
        a.add_root(ta)
        b.add_root(tb)
        a.couple(ta.find(FIELD), ("b", FIELD))
        sess.pump()
        field = ta.find(FIELD)
        for n in range(N_EDITS):
            # One character per edit: type_text fires one key_press (and
            # so one trace) per keystroke.
            field.type_text(str(n))
            assert settle_spans(sess), f"spans did not settle ({backend})"
        recorder = sess.obs.spans
        trees = [
            recorder.canonical_tree(trace_id)
            for trace_id in recorder.trace_ids()
        ]
        return trees
    finally:
        sess.close()


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_span_trees_identical_across_backends(shards):
    reference = run_workload("memory", shards)
    assert len(reference) == N_EDITS
    for backend in BACKENDS[1:]:
        trees = run_workload(backend, shards)
        assert trees == reference, (
            f"{backend}/{shards} shards diverged from memory/{shards}"
        )


def test_span_trees_identical_across_shard_counts():
    per_count = {n: run_workload("memory", n) for n in SHARD_COUNTS}
    reference = per_count[SHARD_COUNTS[0]]
    for shards, trees in per_count.items():
        assert trees == reference, f"{shards} shards diverged"


def test_edits_have_same_tree_and_distinct_traces():
    trees = run_workload("memory", 2)
    assert len(set(trees)) == 1  # every edit takes the same causal path
    flat = str(trees[0])
    assert CLUSTER_ROUTE in flat  # router hop present in sharded runs
