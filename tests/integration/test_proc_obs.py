"""Cluster-wide observability plane (ISSUE acceptance scenarios).

With ``Session(backend="aio", shards=4, processes=True,
observability=True)`` every shard worker runs its own registry and span
recorder; the supervisor scrapes them over the admin links (delta pulls)
and merges the result, so one ``metrics_text()`` covers the whole fleet
with ``shard=<id>`` labels and one ``span_dump()`` shows the complete
cross-process causal trees.  The parity gate: the multi-process span
tree equals the single-process tree modulo the two new hop segments
(``cluster.forward``, ``worker.apply``) introduced by the process
boundary.
"""

import time
import urllib.request

import pytest

from repro.obs.tracing import CLUSTER_FORWARD, WORKER_APPLY
from repro.session import Session

from conftest import make_demo_tree

pytestmark = pytest.mark.proc_chaos

FIELD = "/app/form/name"
N_EDITS = 2
SHARDS = 4


def settle_spans(sess, timeout=30.0):
    """Pump (and, for clusters, re-scrape) until every span is finished.

    Remote spans arrive via the export-time refresher, so the loop calls
    ``obs.refresh()`` each iteration — open worker spans re-ship once
    finished and the merged buffer converges.
    """
    end = time.monotonic() + timeout
    while time.monotonic() < end:
        sess.pump()
        sess.obs.refresh()
        stats = sess.obs.spans.stats()
        if stats["spans"] and stats["open"] == 0:
            return True
        time.sleep(0.02)
    return False


def run_workload(make_session):
    """One coupled field, N_EDITS single-keystroke edits."""
    sess = make_session()
    try:
        a = sess.create_instance("a", user="alice")
        b = sess.create_instance("b", user="bob")
        ta, tb = make_demo_tree(), make_demo_tree()
        a.add_root(ta)
        b.add_root(tb)
        a.couple(ta.find(FIELD), ("b", FIELD))
        sess.pump()
        field = ta.find(FIELD)
        for n in range(N_EDITS):
            field.type_text(str(n))
            assert settle_spans(sess), "spans did not settle"
        recorder = sess.obs.spans
        trees = [
            recorder.canonical_tree(trace_id)
            for trace_id in recorder.trace_ids()
        ]
        return trees, sess.metrics_text()
    finally:
        sess.close()


def splice_cluster_hops(tree):
    """Remove ``cluster.forward``/``worker.apply`` nodes, hoisting their
    children — the single-process shape of a multi-process trace."""
    drop = {CLUSTER_FORWARD, WORKER_APPLY}

    def walk(node):
        name, children = node
        hoisted = []
        for child in children:
            hoisted.extend(walk(child))
        if name in drop:
            return hoisted
        return [(name, tuple(sorted(hoisted)))]

    return tuple(sorted(n for root in tree for n in walk(root)))


class TestClusterWideScrape:
    def test_metrics_cover_every_worker_with_shard_labels(self, tmp_path):
        _, text = run_workload(
            lambda: Session(
                backend="aio", shards=SHARDS, processes=True,
                observability=True, persistence=str(tmp_path),
            )
        )
        for n in range(SHARDS):
            shard = f"shard-{n}"
            # Supervisor-side liveness gauge...
            assert f'repro_cluster_shard_up{{shard="{shard}"}} 1' in text
            # ...and families scraped out of the worker process itself,
            # re-labeled with the owning shard.
            assert (
                f'repro_server_registered_instances{{shard="{shard}"}}'
                in text
            )
            assert (
                f'repro_server_processed_total{{kind="register",'
                f'shard="{shard}"}}' in text
            )

    def test_merged_latency_histogram_has_cluster_segments(self, tmp_path):
        _, text = run_workload(
            lambda: Session(
                backend="aio", shards=SHARDS, processes=True,
                observability=True, persistence=str(tmp_path),
            )
        )
        for segment in ("e2e", "forward", "worker_apply"):
            assert (
                f'repro_sync_latency_seconds_count{{segment="{segment}"}}'
                in text
            )


class TestCrossProcessTraceParity:
    def test_proc_tree_matches_single_process_modulo_cluster_hops(
        self, tmp_path
    ):
        reference, _ = run_workload(
            lambda: Session(
                backend="memory", shards=SHARDS, observability=True
            )
        )
        proc_trees, _ = run_workload(
            lambda: Session(
                backend="aio", shards=SHARDS, processes=True,
                observability=True, persistence=str(tmp_path),
            )
        )
        assert len(proc_trees) == len(reference) == N_EDITS
        # The raw multi-process tree really does carry the new hops...
        flat = str(proc_trees[0])
        assert CLUSTER_FORWARD in flat and WORKER_APPLY in flat
        # ...and collapsing them yields exactly the in-process shape.
        assert [splice_cluster_hops(t) for t in proc_trees] == reference


class TestMetricsEndpoint:
    def test_http_scrape_serves_the_merged_registry(self, tmp_path):
        with Session(
            backend="aio", shards=2, processes=True, observability=True,
            persistence=str(tmp_path), metrics_port=0,
        ) as sess:
            host, port = sess.metrics_address
            base = f"http://{host}:{port}"
            with urllib.request.urlopen(f"{base}/metrics", timeout=10) as r:
                assert r.status == 200
                assert "text/plain" in r.headers["Content-Type"]
                body = r.read().decode()
            assert 'repro_cluster_shard_up{shard="shard-0"} 1' in body
            assert 'repro_cluster_shard_up{shard="shard-1"} 1' in body
            with urllib.request.urlopen(f"{base}/healthz", timeout=10) as r:
                assert r.read() == b"ok\n"

    def test_endpoint_is_off_by_default(self):
        with Session(backend="memory", observability=True) as sess:
            assert sess.metrics_address is None
