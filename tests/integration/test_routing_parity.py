"""Interest-aware routing and delta sync must be semantically invisible.

The optimizations cut *traffic*, never *meaning*: the same deterministic
workload — coupling churn, multi-writer coupled edits, repeated CopyTo
transfers — must land on the identical final UI state and per-replica
event order whether routing is scope-"all" broadcast or interest-scoped,
delta sync on or off, across memory/tcp/aio backends and 1/2/4 shards.
"""

import time

import pytest

from repro.session import Session
from repro.toolkit.events import VALUE_CHANGED

from conftest import make_demo_tree

FIELD = "/app/form/name"
ZOOM = "/app/board/zoom"
ROOT = "/app"

N_INSTANCES = 4


def settle(session, predicate, timeout=30.0):
    if session.backend == "memory":
        session.pump()
        return predicate()
    end = time.monotonic() + timeout
    while time.monotonic() < end:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def ui_snapshot(trees):
    return {
        instance_id: {
            widget.pathname: widget.relevant_state()
            for widget in tree.walk()
        }
        for instance_id, tree in trees.items()
    }


def field_event_order(instance):
    return [
        (event.user, event.params.get("value"))
        for event in instance.trace.events(VALUE_CHANGED)
        if event.source_path.endswith("/form/name")
    ]


def run_workload(session):
    """Coupling churn + coupled edits + repeated CopyTo, deterministic."""
    instances, trees = {}, {}
    for i in range(N_INSTANCES):
        instance_id = f"i{i}"
        instances[instance_id] = session.create_instance(
            instance_id, user=f"u{i}"
        )
        trees[instance_id] = instances[instance_id].add_root(make_demo_tree())
    assert settle(
        session,
        lambda: all(
            len(inst.roster) == N_INSTANCES for inst in instances.values()
        ),
    )

    # Sparse coupling: FIELD couples i0-i1-i2 (i3 stays out), ZOOM couples
    # only i2-i3.  Interest-scoped updates must still keep every replica
    # correct.
    instances["i0"].couple(trees["i0"].find(FIELD), ("i1", FIELD))
    instances["i0"].couple(trees["i0"].find(FIELD), ("i2", FIELD))
    instances["i2"].couple(trees["i2"].find(ZOOM), ("i3", ZOOM))
    assert settle(
        session,
        lambda: all(instances[i].is_coupled(FIELD) for i in ("i0", "i1", "i2"))
        and instances["i3"].is_coupled(ZOOM),
    )

    for writer, value in (("i0", "alpha"), ("i2", "bravo"), ("i1", "charlie")):
        trees[writer].find(FIELD).commit(value)
        assert settle(
            session,
            lambda v=value: all(
                trees[i].find(FIELD).value == v for i in ("i0", "i1", "i2")
            ),
        )

    trees["i2"].find(ZOOM).set_value(5)
    assert settle(session, lambda: trees["i3"].find(ZOOM).value == 5)

    # Coupling churn: i1 leaves the FIELD group, edits no longer reach it.
    instances["i1"].decouple_object(trees["i1"].find(FIELD))
    assert settle(session, lambda: not instances["i1"].is_coupled(FIELD))
    trees["i0"].find(FIELD).commit("post-churn")
    assert settle(
        session,
        lambda: trees["i2"].find(FIELD).value == "post-churn"
        and trees["i1"].find(FIELD).value == "charlie",
    )

    # Repeated CopyTo i0 -> i3: exercises full-then-delta on every
    # backend (a no-op under delta_sync=False).
    trees["i0"].find("/app/form/flag").set_value(True)
    instances["i0"].copy_to(ROOT, ("i3", ROOT))
    trees["i0"].find("/app/board/zoom").set_value(9)
    instances["i0"].copy_to(ROOT, ("i3", ROOT))
    assert settle(
        session,
        lambda: trees["i3"].find("/app/form/flag").get("set") is True
        and trees["i3"].find(ZOOM).value == 9,
    )

    snapshot = ui_snapshot(trees)
    order = {i: field_event_order(instances[i]) for i in instances}
    return snapshot, order


def run_on(backend, shards, **knobs):
    with Session(backend=backend, shards=shards, **knobs) as session:
        result = run_workload(session)
        stats = session.server.stats()
    return result, stats


#: The pre-change semantics: full broadcast, no delta encoding.
def reference():
    return run_on("memory", 0, couple_scope="all", delta_sync=False)


@pytest.mark.parametrize(
    "shards", [0, 2, 4], ids=["1-shard", "2-shard", "4-shard"]
)
class TestScopedRoutingParity:
    def test_memory_scoped_matches_broadcast_reference(self, shards):
        ref, _ = reference()
        scoped, stats = run_on(
            "memory", shards, couple_scope="group", delta_sync=True
        )
        assert scoped == ref
        assert stats["routing"]["suppressed_messages"] > 0

    def test_memory_scoped_no_delta_matches_too(self, shards):
        ref, _ = reference()
        scoped, _ = run_on(
            "memory", shards, couple_scope="group", delta_sync=False
        )
        assert scoped == ref


class TestCrossBackendParity:
    @pytest.mark.parametrize(
        "backend,shards",
        [("tcp", 0), ("tcp", 2), ("aio", 0), ("aio", 4)],
        ids=["tcp-1shard", "tcp-2shard", "aio-1shard", "aio-4shard"],
    )
    def test_socket_backends_match_reference(self, backend, shards):
        ref, _ = reference()
        result, _ = run_on(
            backend, shards, couple_scope="group", delta_sync=True
        )
        assert result == ref

    def test_reference_is_nontrivial(self):
        (snapshot, order), _ = reference()
        assert snapshot["i2"]["/app/form/name"]["value"] == "post-churn"
        assert snapshot["i1"]["/app/form/name"]["value"] == "charlie"
        assert snapshot["i3"]["/app/board/zoom"]["value"] == 9
        assert snapshot["i3"]["/app/form/flag"]["set"] is True
        for member in ("i0", "i2"):
            assert [v for _, v in order[member]] == [
                "alpha",
                "bravo",
                "charlie",
                "post-churn",
            ]
        assert [v for _, v in order["i1"]] == ["alpha", "bravo", "charlie"]
