"""Regression tests for the ack-based floor release protocol.

The paper (§3.2): locked objects are "unlocked when the processing of this
event is completed".  The server therefore holds the floor until every
receiving instance acknowledges the broadcast; a same-instance burst may
transfer its own floor (its events are FIFO end to end), while other
instances are refused until the acks drain.
"""

import pytest

from repro.net import kinds
from repro.session import LocalSession
from repro.toolkit.widgets import Shell, TextField, ToggleButton

from conftest import make_demo_tree

FIELD = "/app/form/name"
FLAG = "/app/form/flag"


@pytest.fixture
def duo():
    session = LocalSession()
    a = session.create_instance("a", user="u1")
    b = session.create_instance("b", user="u2")
    ta = a.add_root(make_demo_tree())
    tb = b.add_root(make_demo_tree())
    a.couple(ta.find(FIELD), ("b", FIELD))
    session.pump()
    yield session, a, b, ta, tb
    session.close()


class TestAckBasedRelease:
    def test_floor_held_until_receiver_acks(self, duo):
        session, a, b, ta, tb = duo
        ta.find(FIELD).commit("first")
        # The EVENT reached the server only after we pump; step the network
        # just far enough that the broadcast is in flight but unprocessed.
        session.network.pump_until(
            lambda: session.server.processed[kinds.EVENT] == 1
        )
        assert len(session.server.locks) > 0  # floor still held
        session.pump()  # broadcast delivered, ack returned
        assert len(session.server.locks) == 0

    def test_rapid_same_user_burst_not_denied(self, duo):
        session, a, b, ta, tb = duo
        for i in range(10):
            ta.find(FIELD).commit(f"v{i}")
            assert not a.last_execution.lock_denied
        session.pump()
        assert tb.find(FIELD).value == "v9"

    def test_other_instance_denied_while_ack_pending(self, duo):
        session, a, b, ta, tb = duo
        ta.find(FIELD).commit("holder")
        # b fires before pumping: a's broadcast has not been processed by
        # b, so the floor is still held and b must be refused.
        tb.find(FIELD).commit("contender")
        assert b.last_execution.lock_denied
        session.pump()
        assert ta.find(FIELD).value == "holder"
        assert tb.find(FIELD).value == "holder"

    def test_denied_rollback_preserves_newer_remote_value(self, duo):
        """The conditional-rollback fix: if the remote event lands between
        b's optimistic feedback and its denial, the rollback must keep the
        remote value instead of restoring b's stale snapshot."""
        session, a, b, ta, tb = duo
        ta.find(FIELD).commit("remote-wins")
        tb.find(FIELD).commit("loser")
        session.pump()
        assert tb.find(FIELD).value == "remote-wins"
        assert ta.find(FIELD).value == "remote-wins"

    def test_departed_receiver_cannot_wedge_floor(self, duo):
        session, a, b, ta, tb = duo
        ta.find(FIELD).commit("x")
        # b leaves before processing the broadcast: its pending ack must be
        # dropped so the floor drains.
        b.close()
        session.pump()
        assert len(session.server.locks) == 0

    def test_lease_expiry_reclaims_stuck_floor(self):
        session = LocalSession()
        try:
            session.server.floor_lease = 1.0
            a = session.create_instance("a", user="u1", lock_timeout=0.05)
            b = session.create_instance("b", user="u2")
            ta = a.add_root(make_demo_tree())
            tb = b.add_root(make_demo_tree())
            a.couple(ta.find(FIELD), ("b", FIELD))
            session.pump()
            # Partition b: a's event broadcast is dropped, the ack never
            # arrives, the floor is stuck.
            session.network.partition("b")
            ta.find(FIELD).commit("stranded")
            session.pump()
            assert len(session.server.locks) > 0
            # Long after the lease, with the partition healed, the next
            # action reclaims the stale floor and completes normally.
            session.clock.advance(2.0)
            session.network.heal("b")
            ta.find(FIELD).commit("recovered")
            assert not a.last_execution.lock_denied
            session.pump()
            assert len(session.server.locks) == 0
            assert tb.find(FIELD).value == "recovered"
        finally:
            session.close()


class TestSameInstanceExecution:
    def test_same_instance_couple_executes_once(self, session):
        """Two objects coupled within one instance: the event must apply to
        the partner exactly once (client-side re-execution only; the server
        must not also broadcast back to the sender)."""
        a = session.create_instance("a", user="u1")
        tree = a.add_root(make_demo_tree())
        mirror = Shell("mirror")
        flag = ToggleButton("flag", parent=mirror)
        a.add_root(mirror)
        a.couple(tree.find(FLAG), ("a", "/mirror/flag"))
        session.pump()
        tree.find(FLAG).toggle()
        session.pump()
        # A double execution would flip the mirror toggle twice (back to
        # False); exactly-once leaves both True.
        assert tree.find(FLAG).value is True
        assert flag.value is True

    def test_conditional_rollback_unit(self):
        """UndoRecord leaves attributes alone once a newer write landed."""
        field = TextField("t")
        event = field.commit("optimistic")
        undo = field.apply_feedback(event)
        # A remote event overwrites the value before the rollback.
        field.set("value", "remote", quiet=True)
        undo.rollback()
        assert field.value == "remote"

    def test_unconditional_rollback_when_untouched(self):
        field = TextField("t")
        field.commit("before")
        event = field.commit("optimistic")
        undo = field.apply_feedback(event)
        undo.rollback()
        assert field.value == "optimistic"  # back to pre-feedback state
