"""Kill-and-recover: a journaled deployment survives losing its server.

The acceptance check of the event-sourced database: run a real
collaboration through the Session facade with persistence on, kill the
server (abandon it mid-flight, or close it cleanly), rebuild from the
journal alone, and assert the recovered database carries the exact
state — fingerprint, roster, couple table, histories — the lost server
held.  Runs on the in-memory network and on the asyncio runtime, on a
single server and on a 2-shard cluster.
"""

import pytest

from repro.persist import PersistenceConfig, recover_cluster, recover_server
from repro.persist.snapshot import server_fingerprint
from repro.session import Session

from conftest import make_demo_tree

FIELD = "/app/form/name"


def collaborate(session):
    """Two users couple a field, edit it, and build some history."""
    a = session.create_instance("a", user="alice")
    b = session.create_instance("b", user="bob")
    ta = a.add_root(make_demo_tree())
    tb = b.add_root(make_demo_tree())
    a.couple(ta.find(FIELD), ("b", FIELD))
    session.pump()
    for round_no in range(3):
        ta.find(FIELD).commit(f"alice-{round_no}")
        session.pump()
        tb.find(FIELD).commit(f"bob-{round_no}")
        session.pump()
    return a, b, ta, tb


class TestSingleServer:
    def test_crash_recovery_on_memory_backend(self, tmp_path):
        session = Session(persistence=str(tmp_path))
        collaborate(session)
        live = session.server
        expected = server_fingerprint(live)
        roster = sorted(r.instance_id for r in live.registry.records())
        links = len(live.couples)
        # Kill: no close, no final sync — exactly what a crash leaves.
        cold = PersistenceConfig(directory=str(tmp_path)).build()
        try:
            recovered = recover_server(cold)
            assert server_fingerprint(recovered) == expected
            assert (
                sorted(r.instance_id for r in recovered.registry.records())
                == roster
            )
            assert len(recovered.couples) == links
        finally:
            cold.close()
            session.close()

    def test_clean_shutdown_recovery_on_aio_backend(self, tmp_path):
        session = Session(backend="aio", persistence=str(tmp_path))
        collaborate(session)
        live = session.server
        session.close()  # unregisters are journaled like everything else
        expected = server_fingerprint(live)
        cold = PersistenceConfig(directory=str(tmp_path)).build()
        try:
            recovered = recover_server(cold)
            assert server_fingerprint(recovered) == expected
        finally:
            cold.close()

    def test_recovered_server_resumes_where_the_dead_one_stopped(
        self, tmp_path
    ):
        session = Session(persistence=str(tmp_path))
        collaborate(session)
        last_seq = session.server.persistence.log.last_seq
        cold = PersistenceConfig(directory=str(tmp_path)).build()
        try:
            recovered = recover_server(cold)
            assert recovered.persistence is cold
            assert cold.log.last_seq == last_seq
            assert cold.replayed_ops > 0
        finally:
            cold.close()
            session.close()


class TestCluster:
    @pytest.mark.parametrize("shards", [1, 2])
    def test_crash_recovery_per_shard(self, tmp_path, shards):
        session = Session(shards=shards, persistence=str(tmp_path))
        collaborate(session)
        cluster = session.cluster
        expected = {
            sid: server_fingerprint(shard)
            for sid, shard in cluster.shards.items()
        }
        config = PersistenceConfig(directory=str(tmp_path))
        recovered = recover_cluster(config, shards=shards)
        try:
            for sid, shard in recovered.shards.items():
                assert server_fingerprint(shard) == expected[sid]
            assert len(recovered.registry) == len(cluster.registry)
            assert len(recovered.mirror) == len(cluster.mirror)
            assert recovered._home == cluster._home
        finally:
            for shard in recovered.shards.values():
                if shard.persistence is not None:
                    shard.persistence.close()
            session.close()


class TestLateJoin:
    def test_standby_catches_up_without_push_state(self, tmp_path):
        from repro.net import kinds
        from repro.persist import apply_catchup
        from repro.server.server import CosoftServer

        session = Session(persistence=str(tmp_path))
        collaborate(session)
        live = session.server
        persist = live.persistence
        pushes_before = live.processed[kinds.PUSH_STATE]
        payload = persist.catchup_payload(live, 0)
        standby = CosoftServer(
            persistence=PersistenceConfig(directory=None).build()
        )
        report = apply_catchup(standby, payload)
        assert report["fingerprint_ok"] is True
        assert report["applied"] == len(payload["entries"]) > 0
        # Catch-up is log shipping: the authority pushed no state.
        assert live.processed[kinds.PUSH_STATE] == pushes_before
        assert live.persistence.last_suffix_length == len(
            payload["entries"]
        )
        session.close()
