"""End-to-end coupling over real TCP sockets (the star topology of §2.2)."""

import time

import pytest

from repro.session import TcpSession

from conftest import make_demo_tree

FIELD = "/app/form/name"


@pytest.fixture
def tcp():
    with TcpSession() as session:
        yield session


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestTcpEndToEnd:
    def test_register_roster(self, tcp):
        a = tcp.create_instance("a", user="u1")
        b = tcp.create_instance("b", user="u2")
        assert wait_until(lambda: "b" in a.roster)
        assert set(b.roster) == {"a", "b"}

    def test_coupled_event_over_sockets(self, tcp):
        a = tcp.create_instance("a", user="u1")
        b = tcp.create_instance("b", user="u2")
        ta = a.add_root(make_demo_tree())
        tb = b.add_root(make_demo_tree())
        a.couple(ta.find(FIELD), ("b", FIELD))
        assert wait_until(lambda: b.is_coupled(FIELD))
        ta.find(FIELD).commit("over tcp")
        assert wait_until(lambda: tb.find(FIELD).value == "over tcp")

    def test_copy_from_over_sockets(self, tcp):
        a = tcp.create_instance("a", user="u1")
        b = tcp.create_instance("b", user="u2")
        ta = a.add_root(make_demo_tree())
        tb = b.add_root(make_demo_tree())
        tb.find(FIELD).commit("remote content")
        a.copy_from(ta.find("/app/form"), ("b", "/app/form"))
        assert ta.find(FIELD).value == "remote content"

    def test_command_roundtrip_over_sockets(self, tcp):
        a = tcp.create_instance("a", user="u1")
        b = tcp.create_instance("b", user="u2")
        b.on_command("double", lambda data, sender: data * 2)
        assert a.send_command("double", 21, targets=["b"], want_reply=True) == 42

    def test_unregister_decouples_over_sockets(self, tcp):
        a = tcp.create_instance("a", user="u1")
        b = tcp.create_instance("b", user="u2")
        ta = a.add_root(make_demo_tree())
        b.add_root(make_demo_tree())
        a.couple(ta.find(FIELD), ("b", FIELD))
        assert wait_until(lambda: b.is_coupled(FIELD))
        a.close()
        assert wait_until(lambda: not b.is_coupled(FIELD))

    def test_many_events_converge(self, tcp):
        a = tcp.create_instance("a", user="u1")
        b = tcp.create_instance("b", user="u2")
        ta = a.add_root(make_demo_tree())
        tb = b.add_root(make_demo_tree())
        a.couple(ta.find(FIELD), ("b", FIELD))
        assert wait_until(lambda: b.is_coupled(FIELD))
        for i in range(30):
            ta.find(FIELD).commit(f"v{i}")
        assert wait_until(lambda: tb.find(FIELD).value == "v29")
