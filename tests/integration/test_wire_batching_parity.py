"""Wire batching must be semantically invisible.

Batch envelopes (docs/PROTOCOL.md) change how flushed messages are
*framed*, never what they mean: the deterministic routing-parity
workload must land on the identical final UI state and per-replica
event order with ``wire_batching`` on or off, across memory/tcp/aio
backends and 1/2/4 shards.  Mixed fleets need no handshake either — a
peer that wraps every frame in a batch envelope and a legacy peer that
speaks per-message frames interoperate on the same port.
"""

import struct

import pytest

from repro.core.instance import ApplicationInstance
from repro.net.codec import (
    ENVELOPE_MAGIC,
    ENVELOPE_VERSION,
    HEADER_SIZE,
    _write_uvarint,
)
from repro.net.tcp import TcpClientTransport
from repro.session import Session

from conftest import make_demo_tree
from test_codec_interop import wait_until
from test_routing_parity import run_on

FIELD = "/app/form/name"

_reference_cache = {}


def reference():
    """Per-message frames on the deterministic memory backend."""
    if "ref" not in _reference_cache:
        _reference_cache["ref"] = run_on("memory", 0, wire_batching=False)[0]
    return _reference_cache["ref"]


# ---------------------------------------------------------------------------
# Parity across backends and shard counts
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "shards", [0, 2, 4], ids=["1-shard", "2-shard", "4-shard"]
)
class TestMemoryParity:
    def test_batching_matches_per_message_reference(self, shards):
        result, _ = run_on("memory", shards, wire_batching=True)
        assert result == reference()


class TestSocketParity:
    @pytest.mark.parametrize(
        "backend,shards",
        [("tcp", 0), ("tcp", 2), ("aio", 0), ("aio", 4)],
        ids=["tcp-1shard", "tcp-2shard", "aio-1shard", "aio-4shard"],
    )
    def test_socket_backends_match_reference(self, backend, shards):
        result, _ = run_on(backend, shards, wire_batching=True)
        assert result == reference()


# ---------------------------------------------------------------------------
# Mixed fleet: envelope speaker + legacy per-message peer, one port
# ---------------------------------------------------------------------------


class EnvelopeSpeakingClient(TcpClientTransport):
    """A client that wraps *every* outbound frame in a batch envelope.

    ``encode_batch`` deliberately degenerates single-message batches to
    plain frames, so this builds the count=1 envelope by hand — proving
    the server splits envelopes from any peer with no handshake and no
    mode bit, even interleaved with legacy peers on the same port.
    """

    def _send_on(self, sock, message, codec=None):
        frame = (codec if codec is not None else self._codec).encode(message)
        inner = bytearray((ENVELOPE_MAGIC, ENVELOPE_VERSION))
        _write_uvarint(inner, 1)
        _write_uvarint(inner, len(frame) - HEADER_SIZE)
        inner += frame[HEADER_SIZE:]
        payload = struct.pack(">I", len(inner)) + bytes(inner)
        sock.sendall(payload)
        return len(payload)


@pytest.mark.parametrize("backend", ["tcp", "aio"])
@pytest.mark.parametrize("peer_codec", ["json", "binary"])
def test_envelope_and_legacy_peers_share_a_port(backend, peer_codec):
    with Session(backend=backend, wire_batching=True) as session:
        # Peer "a": a stock session-managed client, per-message frames.
        a = session.create_instance("a", user="u1")
        tree_a = a.add_root(make_demo_tree())

        # Peer "b": every frame arrives inside a batch envelope.
        b = ApplicationInstance("b", "u2")
        b.bind(
            EnvelopeSpeakingClient(
                "b", b.handle_message, session.host, session.port,
                codec=peer_codec,
            )
        )
        b.register()
        tree_b = b.add_root(make_demo_tree())
        try:
            assert wait_until(lambda: "b" in a.roster and "a" in b.roster)

            a.couple(tree_a.find(FIELD), ("b", FIELD))
            assert wait_until(lambda: b.is_coupled(FIELD))

            tree_a.find(FIELD).commit("from-legacy")
            assert wait_until(lambda: tree_b.find(FIELD).value == "from-legacy")

            tree_b.find(FIELD).commit("from-envelope")
            assert wait_until(lambda: tree_a.find(FIELD).value == "from-envelope")
        finally:
            b.close()


def test_envelope_peer_negotiates_codec():
    """The decoder reports the envelope's member codec, so a binary
    envelope speaker is answered in binary like any binary peer."""
    with Session(backend="tcp", codec="json", wire_batching=True) as session:
        b = ApplicationInstance("b", "u2")
        b.bind(
            EnvelopeSpeakingClient(
                "b", b.handle_message, session.host, session.port,
                codec="binary",
            )
        )
        b.register()
        try:
            host = session._impl._host_transport
            assert wait_until(
                lambda: host._peer_codecs.get("b") is not None
            )
            assert host._peer_codecs["b"].name == "binary"
        finally:
            b.close()


# ---------------------------------------------------------------------------
# Memory-backend byte accounting
# ---------------------------------------------------------------------------


def test_memory_batching_accounts_fewer_bytes():
    """The simulator prices envelope framing: amortized headers cost
    fewer bytes than one 4-byte header per message."""

    def run(wire_batching):
        with Session(wire_batching=wire_batching) as session:
            a = session.create_instance("a", user="u1")
            b = session.create_instance("b", user="u2")
            tree_a = a.add_root(make_demo_tree())
            b.add_root(make_demo_tree())
            session.pump()
            a.couple(tree_a.find(FIELD), ("b", FIELD))
            session.pump()
            tree_a.find(FIELD).commit("payload-bytes")
            session.pump()
            return session.traffic()["bytes"]

    assert run(True) < run(False)
