"""Failure injection: message loss, partitions, and timeouts."""

import pytest

from repro.session import LocalSession

from conftest import make_demo_tree

FIELD = "/app/form/name"


class TestLossyNetwork:
    def test_lock_reply_loss_causes_denial_and_rollback(self):
        """If the lock reply never arrives, the client treats the event as
        denied and undoes the feedback — the UI never wedges."""
        session = LocalSession()
        try:
            a = session.create_instance("a", user="u1", lock_timeout=0.05)
            b = session.create_instance("b", user="u2")
            ta = a.add_root(make_demo_tree())
            tb = b.add_root(make_demo_tree())
            a.couple(ta.find(FIELD), ("b", FIELD))
            session.pump()
            # Partition the server so the lock request dies.
            session.network.partition("server")
            ta.find(FIELD).commit("lost")
            assert a.last_execution.lock_denied
            assert ta.find(FIELD).value == ""  # rolled back
            session.network.heal("server")
        finally:
            session.close()

    def test_recovery_after_partition_heals(self):
        session = LocalSession()
        try:
            a = session.create_instance("a", user="u1", lock_timeout=0.05)
            b = session.create_instance("b", user="u2")
            ta = a.add_root(make_demo_tree())
            tb = b.add_root(make_demo_tree())
            a.couple(ta.find(FIELD), ("b", FIELD))
            session.pump()
            session.network.partition("server")
            ta.find(FIELD).commit("dropped")
            session.network.heal("server")
            ta.find(FIELD).commit("delivered")
            session.pump()
            assert tb.find(FIELD).value == "delivered"
        finally:
            session.close()

    def test_stale_lock_released_when_holder_unregisters(self):
        session = LocalSession()
        try:
            a = session.create_instance("a", user="u1")
            b = session.create_instance("b", user="u2")
            ta = a.add_root(make_demo_tree())
            tb = b.add_root(make_demo_tree())
            a.couple(ta.find(FIELD), ("b", FIELD))
            session.pump()
            grant = a.acquire_floor(ta.find(FIELD))
            assert grant is not None
            # a crashes while holding the floor.
            a.close()
            session.pump()
            assert len(session.server.locks) == 0
            tb.find(FIELD).commit("free again")
            assert not b.last_execution.lock_denied
        finally:
            session.close()

    def test_copy_from_timeout_raises_cleanly(self):
        session = LocalSession()
        try:
            a = session.create_instance("a", user="u1")
            b = session.create_instance("b", user="u2")
            a.request_timeout = 0.05
            ta = a.add_root(make_demo_tree())
            b.add_root(make_demo_tree())
            session.network.partition("b")  # owner unreachable
            from repro.errors import ServerError

            with pytest.raises(ServerError):
                a.copy_from(ta.find("/app/form"), ("b", "/app/form"))
        finally:
            session.close()

    def test_event_to_departed_instance_dropped_silently(self):
        session = LocalSession()
        try:
            a = session.create_instance("a", user="u1")
            b = session.create_instance("b", user="u2")
            ta = a.add_root(make_demo_tree())
            tb = b.add_root(make_demo_tree())
            a.couple(ta.find(FIELD), ("b", FIELD))
            session.pump()
            # b's widget disappears locally but the broadcast is in flight.
            ta.find(FIELD).commit("racing")
            tb.find(FIELD).destroy()
            session.pump()  # no exception: the miss is tolerated
        finally:
            session.close()


class TestJitterAndLoad:
    def test_convergence_under_jitter(self):
        """Per-link FIFO keeps replicas convergent despite jitter."""
        session = LocalSession(jitter=0.01, seed=99)
        try:
            a = session.create_instance("a", user="u1")
            b = session.create_instance("b", user="u2")
            ta = a.add_root(make_demo_tree())
            tb = b.add_root(make_demo_tree())
            a.couple(ta.find(FIELD), ("b", FIELD))
            session.pump()
            for i in range(25):
                ta.find(FIELD).commit(f"tick-{i}")
            session.pump()
            assert tb.find(FIELD).value == "tick-24"
        finally:
            session.close()

    def test_deterministic_replay(self):
        """Same seed, same workload -> byte-identical traffic counts."""

        def run(seed):
            session = LocalSession(jitter=0.005, seed=seed)
            try:
                a = session.create_instance("a", user="u1")
                b = session.create_instance("b", user="u2")
                ta = a.add_root(make_demo_tree())
                b.add_root(make_demo_tree())
                a.couple(ta.find(FIELD), ("b", FIELD))
                session.pump()
                for i in range(10):
                    ta.find(FIELD).commit(f"v{i}")
                session.pump()
                return (session.network.stats.messages, session.now)
            finally:
                session.close()

        assert run(5) == run(5)
