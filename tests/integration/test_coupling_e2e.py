"""End-to-end scenarios exercising the full coupling life cycle."""

import pytest

from repro.session import LocalSession
from repro.toolkit.events import VALUE_CHANGED
from repro.toolkit.widgets import Shell, TextField

from conftest import make_demo_tree


@pytest.fixture
def trio():
    session = LocalSession()
    instances = []
    trees = []
    for name in ("a", "b", "c"):
        inst = session.create_instance(name, user=f"user-{name}")
        tree = inst.add_root(make_demo_tree())
        instances.append(inst)
        trees.append(tree)
    yield session, instances, trees
    session.close()


FIELD = "/app/form/name"


class TestGroupDynamics:
    def test_chain_coupling_creates_one_group(self, trio):
        session, (a, b, c), (ta, tb, tc) = trio
        a.couple(ta.find(FIELD), ("b", FIELD))
        b.couple(tb.find(FIELD), ("c", FIELD))
        session.pump()
        ta.find(FIELD).commit("everyone")
        session.pump()
        assert tb.find(FIELD).value == "everyone"
        assert tc.find(FIELD).value == "everyone"
        # Replicated coupling info agrees at all sites.
        for inst in (a, b, c):
            assert len(inst.coupled_objects(FIELD)) == 2

    def test_event_from_middle_of_chain(self, trio):
        session, (a, b, c), (ta, tb, tc) = trio
        a.couple(ta.find(FIELD), ("b", FIELD))
        b.couple(tb.find(FIELD), ("c", FIELD))
        session.pump()
        tb.find(FIELD).commit("from b")
        session.pump()
        assert ta.find(FIELD).value == "from b"
        assert tc.find(FIELD).value == "from b"

    def test_late_joiner_state_then_action(self, trio):
        """The §3.1 protocol: copy state first, then couple for actions."""
        session, (a, b, c), (ta, tb, tc) = trio
        a.couple(ta.find(FIELD), ("b", FIELD))
        session.pump()
        ta.find(FIELD).commit("history")
        session.pump()
        # c joins late: synchronize by state, then couple.
        c.copy_from(tc.find(FIELD), ("a", FIELD))
        c.couple(tc.find(FIELD), ("a", FIELD))
        session.pump()
        assert tc.find(FIELD).value == "history"
        tb.find(FIELD).commit("now live")
        session.pump()
        assert tc.find(FIELD).value == "now live"

    def test_decoupling_splits_group(self, trio):
        session, (a, b, c), (ta, tb, tc) = trio
        a.couple(ta.find(FIELD), ("b", FIELD))
        b.couple(tb.find(FIELD), ("c", FIELD))
        session.pump()
        b.decouple(tb.find(FIELD), ("c", FIELD))
        session.pump()
        ta.find(FIELD).commit("ab only")
        session.pump()
        assert tb.find(FIELD).value == "ab only"
        assert tc.find(FIELD).value == ""

    def test_decoupled_object_survives(self, trio):
        """Unlike shared-window systems, a decoupled object keeps existing
        and keeps its content (§2.2)."""
        session, (a, b, c), (ta, tb, _) = trio
        a.couple(ta.find(FIELD), ("b", FIELD))
        session.pump()
        ta.find(FIELD).commit("keep me")
        session.pump()
        a.decouple(ta.find(FIELD), ("b", FIELD))
        session.pump()
        assert tb.find(FIELD).value == "keep me"
        assert not tb.find(FIELD).destroyed

    def test_instance_departure_decouples_automatically(self, trio):
        session, (a, b, c), (ta, tb, tc) = trio
        a.couple(ta.find(FIELD), ("b", FIELD))
        b.couple(tb.find(FIELD), ("c", FIELD))
        session.pump()
        b.close()
        session.pump()
        # b's links vanished; a-c were only connected through b.
        assert not a.is_coupled(FIELD)
        assert not c.is_coupled(FIELD)

    def test_multiple_groups_are_independent(self, trio):
        session, (a, b, c), (ta, tb, tc) = trio
        a.couple(ta.find(FIELD), ("b", FIELD))
        a.couple(ta.find("/app/board/zoom"), ("c", "/app/board/zoom"))
        session.pump()
        ta.find(FIELD).commit("text group")
        ta.find("/app/board/zoom").set_value(7)
        session.pump()
        assert tb.find(FIELD).value == "text group"
        assert tc.find(FIELD).value == ""
        assert tc.find("/app/board/zoom").value == 7
        assert tb.find("/app/board/zoom").value == 0


class TestOrderingGuarantees:
    def test_events_apply_in_origin_order(self, trio):
        session, (a, b, _), (ta, tb, _) = trio
        a.couple(ta.find(FIELD), ("b", FIELD))
        session.pump()
        for i in range(10):
            ta.find(FIELD).commit(f"v{i}")
        session.pump()
        assert tb.find(FIELD).value == "v9"
        values = [
            e.params["value"] for e in b.trace.events(VALUE_CHANGED)
        ]
        assert values == [f"v{i}" for i in range(10)]

    def test_alternating_writers_converge(self, trio):
        session, (a, b, _), (ta, tb, _) = trio
        a.couple(ta.find(FIELD), ("b", FIELD))
        session.pump()
        for i in range(6):
            writer_tree = ta if i % 2 == 0 else tb
            writer_tree.find(FIELD).commit(f"turn{i}")
            session.pump()
        assert ta.find(FIELD).value == "turn5"
        assert tb.find(FIELD).value == "turn5"


class TestHeterogeneousTreeShapes:
    def test_coupling_different_pathnames(self, trio):
        session, (a, b, _), (ta, _, _) = trio
        other = Shell("different")
        TextField("entry", parent=other)
        b.add_root(other)
        a.couple(ta.find(FIELD), ("b", "/different/entry"))
        session.pump()
        ta.find(FIELD).commit("cross-shape")
        session.pump()
        assert other.find("/different/entry").value == "cross-shape"

    def test_reverse_direction_too(self, trio):
        session, (a, b, _), (ta, _, _) = trio
        other = Shell("different")
        TextField("entry", parent=other)
        b.add_root(other)
        a.couple(ta.find(FIELD), ("b", "/different/entry"))
        session.pump()
        other.find("/different/entry").commit("upstream")
        session.pump()
        assert ta.find(FIELD).value == "upstream"
