"""At-least-once delivery tolerance: duplicated broadcasts must be benign.

A duplicated EVENT_BROADCAST re-executing a *non-idempotent* feedback
(toggle flip, stroke append) would corrupt replicas; the per-origin event
sequence dedup prevents it, while the duplicate's ack keeps floors from
wedging.
"""

import pytest

from repro.net import kinds
from repro.net.message import Message
from repro.session import LocalSession
from repro.toolkit.events import Event
from repro.toolkit.widgets import Canvas, Shell, TextField, ToggleButton

FLAG = "/ui/flag"
CANVAS = "/ui/canvas"
FIELD = "/ui/field"


def build_tree():
    root = Shell("ui")
    ToggleButton("flag", parent=root)
    Canvas("canvas", parent=root, width=20, height=5)
    TextField("field", parent=root)
    return root


@pytest.fixture
def duo():
    session = LocalSession(duplicate_rate=0.0)
    a = session.create_instance("a", user="u1")
    b = session.create_instance("b", user="u2")
    ta = a.add_root(build_tree())
    tb = b.add_root(build_tree())
    for path in (FLAG, CANVAS, FIELD):
        a.couple(ta.find(path), ("b", path))
    session.pump()
    yield session, a, b, ta, tb
    session.close()


class TestExplicitDuplicates:
    def _duplicate_broadcast(self, b, event, targets):
        payload = {
            "event": event.to_wire(),
            "targets": targets,
            "owner": ["a", 1],
        }
        message = Message(
            kind=kinds.EVENT_BROADCAST, sender="server", to="b",
            payload=payload,
        )
        b.handle_message(message)
        b.handle_message(message)  # the duplicate

    def test_duplicate_toggle_applies_once(self, duo):
        session, a, b, ta, tb = duo
        event = Event(
            type="activate", source_path=FLAG, instance_id="a", user="u1"
        )
        self._duplicate_broadcast(b, event, [FLAG])
        assert tb.find(FLAG).value is True  # flipped once, not twice
        assert b.stats["duplicate_events"] == 1

    def test_duplicate_stroke_applies_once(self, duo):
        session, a, b, ta, tb = duo
        event = Event(
            type="draw",
            source_path=CANVAS,
            params={"stroke": {"points": [[1, 1]], "color": "black",
                               "width": 1}},
            instance_id="a",
        )
        self._duplicate_broadcast(b, event, [CANVAS])
        assert tb.find(CANVAS).stroke_count == 1

    def test_duplicate_still_acked(self, duo):
        session, a, b, ta, tb = duo
        event = Event(type="activate", source_path=FLAG, instance_id="a")
        before = session.network.stats.by_kind.get(kinds.EVENT_ACK, 0)
        self._duplicate_broadcast(b, event, [FLAG])
        acks = session.network.stats.by_kind.get(kinds.EVENT_ACK, 0) - before
        assert acks == 2  # one per delivery: floors cannot wedge


class TestDuplicatingNetwork:
    def test_convergence_under_random_duplication(self):
        session = LocalSession(duplicate_rate=0.3, seed=11)
        try:
            a = session.create_instance("a", user="u1")
            b = session.create_instance("b", user="u2")
            ta = a.add_root(build_tree())
            tb = b.add_root(build_tree())
            a.couple(ta.find(FLAG), ("b", FLAG))
            a.couple(ta.find(FIELD), ("b", FIELD))
            session.pump()
            for i in range(15):
                ta.find(FLAG).toggle()
                ta.find(FIELD).commit(f"v{i}")
                session.pump()
            # 15 flips -> True; duplicates must not add extra flips.
            assert ta.find(FLAG).value is True
            assert tb.find(FLAG).value is True
            assert tb.find(FIELD).value == "v14"
            assert b.stats.get("duplicate_events", 0) > 0
            assert len(session.server.locks) == 0
        finally:
            session.close()

    def test_duplicate_rate_validated(self):
        from repro.net.memory import MemoryNetwork

        with pytest.raises(ValueError):
            MemoryNetwork(duplicate_rate=1.0)
