"""Acceptance: one enabled Session run yields complete metrics + traces.

Criteria (ISSUE 5): a Prometheus-text dump covering the routing /
traffic / lock / compat families, and at least one complete multi-hop
span tree — client emit → server receive → lock wait → broadcast →
remote apply — with per-segment durations, on both the memory and aio
backends.
"""

import time

import pytest

from repro.obs.tracing import (
    CLIENT_EMIT,
    CLIENT_LOCK_WAIT,
    REMOTE_APPLY,
    SERVER_BROADCAST,
    SERVER_FLOOR,
    SERVER_LOCK,
    SERVER_RECEIVE,
)
from repro.session import Session

from conftest import make_demo_tree

FIELD = "/app/form/name"

BACKENDS = ("memory", "aio")


def settle_spans(sess, timeout=10.0):
    """Wait until every buffered span has finished (acks drained)."""
    end = time.monotonic() + timeout
    while time.monotonic() < end:
        sess.pump()
        stats = sess.obs.spans.stats()
        if stats["spans"] and stats["open"] == 0:
            return True
        if sess.backend != "memory":
            time.sleep(0.01)
    stats = sess.obs.spans.stats()
    return stats["spans"] and stats["open"] == 0


def run_coupled_edit(backend, **knobs):
    sess = Session(backend, observability=True, **knobs)
    a = sess.create_instance("a", user="alice")
    b = sess.create_instance("b", user="bob")
    ta, tb = make_demo_tree(), make_demo_tree()
    a.add_root(ta)
    b.add_root(tb)
    a.couple(ta.find(FIELD), ("b", FIELD))
    sess.pump()
    ta.find(FIELD).type_text("hello")
    assert settle_spans(sess)
    return sess, tb


@pytest.mark.parametrize("backend", BACKENDS)
def test_prometheus_dump_covers_all_families(backend):
    sess, _ = run_coupled_edit(backend)
    try:
        sess.obs.observe_span_latencies()
        text = sess.metrics_text()
    finally:
        sess.close()
    for family in (
        "repro_routing_events_total",
        "repro_routing_broadcast_messages_total",
        "repro_traffic_messages_total",
        "repro_traffic_bytes_total",
        "repro_locks_acquisitions_total",
        "repro_compat_matches_total",
        "repro_server_processed_total",
        "repro_sync_latency_seconds_bucket",
    ):
        assert family in text, f"{family} missing from dump ({backend})"


@pytest.mark.parametrize("backend", BACKENDS)
def test_complete_multi_hop_span_tree(backend):
    sess, tb = run_coupled_edit(backend)
    try:
        # The edit really synchronized.
        assert tb.find(FIELD).get("value") == "hello"
        spans = sess.obs.spans.spans()
        by_name = {}
        for span in spans:
            by_name.setdefault(span.name, []).append(span)
        for name in (
            CLIENT_EMIT,
            CLIENT_LOCK_WAIT,
            SERVER_LOCK,
            SERVER_FLOOR,
            SERVER_RECEIVE,
            SERVER_BROADCAST,
            REMOTE_APPLY,
        ):
            assert name in by_name, f"missing hop {name} ({backend})"
            assert all(s.finished for s in by_name[name])
            assert all(s.duration >= 0 for s in by_name[name])
        # Causal chain: every hop of one trace links back to the root.
        root = by_name[CLIENT_EMIT][0]
        trace = {s.span_id: s for s in spans if s.trace_id == root.trace_id}
        apply_span = next(
            s for s in trace.values() if s.name == REMOTE_APPLY
        )
        hops = []
        cursor = apply_span
        while cursor is not None:
            hops.append(cursor.name)
            cursor = trace.get(cursor.parent_id)
        assert hops == [
            REMOTE_APPLY,
            SERVER_BROADCAST,
            SERVER_RECEIVE,
            CLIENT_EMIT,
        ]
        # Per-segment durations decompose the root latency.
        dump = sess.span_dump()
        assert "client.emit" in dump and "ms" in dump
    finally:
        sess.close()


@pytest.mark.parametrize("backend", BACKENDS)
def test_disabled_by_default_records_nothing(backend, monkeypatch):
    # Neutralize the CI override: this test asserts the out-of-the-box
    # default, which is observability off.
    monkeypatch.delenv("REPRO_OBSERVABILITY", raising=False)
    sess = Session(backend)
    try:
        a = sess.create_instance("a", user="alice")
        b = sess.create_instance("b", user="bob")
        ta, tb = make_demo_tree(), make_demo_tree()
        a.add_root(ta)
        b.add_root(tb)
        a.couple(ta.find(FIELD), ("b", FIELD))
        sess.pump()
        ta.find(FIELD).type_text("quiet")
        if sess.backend == "memory":
            sess.pump()
        else:
            end = time.monotonic() + 5.0
            while time.monotonic() < end:
                if tb.find(FIELD).get("value") == "quiet":
                    break
                time.sleep(0.01)
        assert tb.find(FIELD).get("value") == "quiet"
        assert not sess.obs.enabled
        assert len(sess.obs.spans) == 0
        assert sess.metrics_text() == ""
    finally:
        sess.close()


def test_json_export_includes_spans():
    import json

    sess, _ = run_coupled_edit("memory")
    try:
        doc = json.loads(sess.metrics_json(include_spans=True))
        assert doc["span_stats"]["spans"] > 0
        names = {m["name"] for m in doc["metrics"]}
        assert "repro_traffic_messages_total" in names
    finally:
        sess.close()


def test_sharded_cluster_adds_route_hops():
    from repro.obs.tracing import CLUSTER_ROUTE

    sess, _ = run_coupled_edit("memory", shards=2)
    try:
        names = {s.name for s in sess.obs.spans.spans()}
        assert CLUSTER_ROUTE in names
        text = sess.metrics_text()
        assert 'shard="shard-0"' in text
    finally:
        sess.close()
