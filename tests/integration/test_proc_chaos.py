"""Chaos gate for the multi-process cluster (ISSUE acceptance scenario).

A ``Session(backend="aio", shards=4, processes=True)`` runs each shard
as a real OS process with its own fsync'd journal.  The gate: ``kill
-9`` one shard mid-workload, let the supervisor restart it from the
journal, finish the workload, and the final UI state must match the
single-process parity baseline byte for byte — the exactly-once
delivery protocol (delivery ids + journaled outputs) makes the crash
invisible to clients.  A second gate resizes the ring under load and
asserts zero lost and zero reordered events.

CI runs this file in the ``tests-cluster-proc`` job and uploads the
per-shard journals and ``worker.log`` files as artifacts on failure —
keep all cluster state under ``tmp_path``.
"""

import time

import pytest

from repro.session import Session
from repro.toolkit.widgets import Canvas, Shell, TextField

pytestmark = pytest.mark.proc_chaos


def build_tree(root="ui"):
    shell = Shell(root)
    Canvas("board", parent=shell, width=20, height=10)
    TextField("title", parent=shell)
    return shell


def wait_for_restart(cluster, shard_id, min_restarts=1, timeout=30.0):
    handle = cluster.shards[shard_id]
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if handle.restarts >= min_restarts and handle.state == "ready":
            return handle
        time.sleep(0.05)
    raise AssertionError(
        f"{shard_id} never came back: state={handle.state!r} "
        f"restarts={handle.restarts}"
    )


def run_scenario(make_session, *, mid_workload=None):
    """Two coupled users draw and type in a fixed interleaving.

    ``mid_workload(session)`` runs between the two halves — the chaos
    hook.  Returns the observable per-instance state.
    """
    session = make_session()
    try:
        a = session.create_instance("a", user="amy")
        b = session.create_instance("b", user="ben")
        ta = a.add_root(build_tree())
        tb = b.add_root(build_tree())
        a.couple(ta.find("/ui/board"), ("b", "/ui/board"))
        a.couple(ta.find("/ui/title"), ("b", "/ui/title"))
        session.pump()

        board = {"a": ta.find("/ui/board"), "b": tb.find("/ui/board")}
        title = {"a": ta.find("/ui/title"), "b": tb.find("/ui/title")}
        for i in range(3):
            board["a"].draw_stroke([(i, 0), (i, 1)], color="red", user="amy")
            session.pump()
            board["b"].draw_stroke([(0, i), (1, i)], color="blue", user="ben")
            session.pump()

        if mid_workload is not None:
            mid_workload(session)

        for i in range(3):
            board["a"].draw_stroke(
                [(i, 5), (i, 6)], color="green", user="amy"
            )
            session.pump()
            title["b"].commit(f"round-{i}")
            session.pump()

        try:
            session.pump(timeout=5.0)  # long settle on socket backends
        except TypeError:
            session.pump()  # the memory backend drains synchronously
        return {
            iid: {"strokes": board[iid].strokes, "title": title[iid].value}
            for iid in ("a", "b")
        }
    finally:
        session.close()


BASELINE = None


def baseline():
    """Single-process parity baseline (memory backend, same scenario)."""
    global BASELINE
    if BASELINE is None:
        BASELINE = run_scenario(lambda: Session(backend="memory"))
    return BASELINE


class TestKillNineMidWorkload:
    def test_recovers_from_journal_and_matches_parity_baseline(
        self, tmp_path
    ):
        killed = {}

        def chaos(session):
            cluster = session.cluster
            # Kill the shard that homes the coupled board group so the
            # crash lands on live state, not an idle worker.
            victim = cluster.shard_of(("a", "/ui/board"))
            killed["pid"] = cluster.kill_shard(victim)
            killed["shard"] = victim
            wait_for_restart(cluster, victim)

        result = run_scenario(
            lambda: Session(
                backend="aio",
                shards=4,
                processes=True,
                persistence=str(tmp_path),
            ),
            mid_workload=chaos,
        )
        assert killed["pid"] > 0
        expected = baseline()
        for iid in ("a", "b"):
            assert result[iid]["title"] == expected[iid]["title"]
            assert result[iid]["strokes"] == expected[iid]["strokes"]

    def test_restarted_worker_reports_journal_high_water_mark(
        self, tmp_path
    ):
        with Session(
            backend="aio", shards=2, processes=True,
            persistence=str(tmp_path),
        ) as session:
            a = session.create_instance("a", user="amy")
            ta = a.add_root(build_tree())
            ta.find("/ui/title").commit("before-crash")
            session.pump()
            cluster = session.cluster
            victim = cluster.shard_of(("a", "/ui/title"))
            dids_before = cluster.shards[victim]._did
            cluster.kill_shard(victim)
            handle = wait_for_restart(cluster, victim)
            # The replacement recovered its oplog: its HELLO advertised
            # every delivery the dead worker had acknowledged.
            assert handle.remote_max_did == dids_before
            ta.find("/ui/title").commit("after-crash")
            session.pump()
            assert ta.find("/ui/title").value == "after-crash"


class TestLiveReshardUnderLoad:
    def test_grow_and_shrink_lose_and_reorder_nothing(self, tmp_path):
        reshard = {}

        def resize(session):
            cluster = session.cluster
            old_ids = list(cluster.shard_ids)
            new_id = cluster.add_shard()
            session.pump()
            moved = cluster.last_reshard["moved"]
            # Minimal remap: only groups the new node's ring positions
            # claim may move, and they now live there.
            for group in moved:
                for gid in group:
                    assert cluster.shard_of(tuple(gid)) == new_id
            reshard.update(new=new_id, moved=len(moved), old=old_ids)

        result = run_scenario(
            lambda: Session(
                backend="aio", shards=2, processes=True,
                persistence=str(tmp_path),
            ),
            mid_workload=resize,
        )
        assert reshard["new"] == "shard-2"
        expected = baseline()
        for iid in ("a", "b"):
            assert result[iid]["strokes"] == expected[iid]["strokes"]
            assert result[iid]["title"] == expected[iid]["title"]

    def test_remove_shard_drains_live_workers(self, tmp_path):
        with Session(
            backend="aio", shards=3, processes=True,
            persistence=str(tmp_path),
        ) as session:
            a = session.create_instance("a", user="amy")
            b = session.create_instance("b", user="ben")
            ta = a.add_root(build_tree())
            tb = b.add_root(build_tree())
            a.couple(ta.find("/ui/title"), ("b", "/ui/title"))
            session.pump()
            cluster = session.cluster
            victim = cluster.shard_of(("a", "/ui/title"))
            cluster.remove_shard(victim)
            session.pump()
            assert victim not in cluster.shard_ids
            # The worker process is gone, its journal directory is kept
            # for post-mortems.
            ta.find("/ui/title").commit("after-drain")
            session.pump()
            assert tb.find("/ui/title").value == "after-drain"


class TestFlightRecorder:
    def test_kill_nine_dumps_the_shards_last_spans(self, tmp_path):
        """The acceptance gate: kill -9 a worker and the supervisor
        writes a flight-recorder dump to the journal dir containing the
        supervision event ring and that shard's last pulled spans."""
        import json
        import os

        with Session(
            backend="aio", shards=4, processes=True, observability=True,
            persistence=str(tmp_path),
        ) as session:
            a = session.create_instance("a", user="amy")
            b = session.create_instance("b", user="ben")
            ta = a.add_root(build_tree())
            b.add_root(build_tree())
            # Coupled traffic takes the traced multiple-execution path,
            # so the victim worker records worker.apply/server.* spans.
            a.couple(ta.find("/ui/title"), ("b", "/ui/title"))
            session.pump()
            victim = session.cluster.shard_of(("a", "/ui/title"))
            ta.find("/ui/title").type_text("abc")
            session.pump()
            # Give the monitor a few heartbeat ticks: each PING
            # piggybacks an OBS pull, so the supervisor's span view of
            # the victim is at most one tick stale when it dies.
            deadline = time.monotonic() + 10.0
            handle = session.cluster.shards[victim]
            while not handle.last_spans and time.monotonic() < deadline:
                time.sleep(0.1)
            assert handle.last_spans, "no spans pulled before the crash"

            session.cluster.kill_shard(victim)
            wait_for_restart(session.cluster, victim)

            dump_path = os.path.join(str(tmp_path), victim, "flight-1.json")
            assert os.path.exists(dump_path)
            with open(dump_path) as fh:
                dump = json.load(fh)
            assert dump["shard"] == victim
            assert dump["reason"] == "worker_exit"
            events = [e["event"] for e in dump["events"]]
            assert events[:2] == ["spawn", "ready"]
            assert "kill_shard" in events
            assert events[-1] == "dead"
            # The dump carries the victim's own spans (worker-minted ids
            # are prefixed with the shard id).
            assert dump["spans"]
            assert all(
                s["span_id"].startswith(f"{victim}.")
                for s in dump["spans"]
            )
            names = {s["name"] for s in dump["spans"]}
            assert "worker.apply" in names

            # The cluster is healthy again after the restart.
            ta.find("/ui/title").commit("post-crash")
            session.pump()
            assert ta.find("/ui/title").value == "post-crash"
