"""Floor-control contention: concurrent events on one couple group (§3.2).

The paper's serialization guarantee: "the lock table guarantees that
actions occur serially within each group of coupled objects" and "actions
on locked objects are disabled".
"""

import pytest

from repro.net import kinds
from repro.net.message import Message
from repro.server.couples import gid_to_wire
from repro.session import LocalSession

from conftest import make_demo_tree

FIELD = "/app/form/name"
SCALE = "/app/board/zoom"


@pytest.fixture
def arena():
    session = LocalSession()
    instances, trees = [], []
    for name in ("a", "b", "c"):
        inst = session.create_instance(name, user=f"user-{name}")
        trees.append(inst.add_root(make_demo_tree()))
        instances.append(inst)
    instances[0].couple(trees[0].find(FIELD), ("b", FIELD))
    instances[0].couple(trees[0].find(FIELD), ("c", FIELD))
    session.pump()
    yield session, instances, trees
    session.close()


class TestSerialization:
    def test_racing_lock_requests_one_winner(self, arena):
        """Two lock requests in flight simultaneously: exactly one grant."""
        session, (a, b, c), (ta, tb, tc) = arena
        # Bypass the blocking fire() API: inject raw lock requests so both
        # are queued before either is processed.
        req_a = Message(
            kind=kinds.LOCK_REQUEST,
            sender="a",
            payload={"source": gid_to_wire(("a", FIELD)), "token": 1},
        )
        req_b = Message(
            kind=kinds.LOCK_REQUEST,
            sender="b",
            payload={"source": gid_to_wire(("b", FIELD)), "token": 1},
        )
        a.send(req_a)
        b.send(req_b)
        session.pump()
        reply_a = a._replies.pop(req_a.msg_id)
        reply_b = b._replies.pop(req_b.msg_id)
        grants = [reply_a.payload["granted"], reply_b.payload["granted"]]
        assert grants.count(True) == 1
        assert grants.count(False) == 1

    def test_denied_user_rolls_back_feedback(self, arena):
        session, (a, b, c), (ta, tb, tc) = arena
        grant = a.acquire_floor(ta.find(FIELD))
        assert grant is not None
        tb.find(FIELD).commit("loser")
        assert b.last_execution.lock_denied
        assert tb.find(FIELD).value == ""
        a.release_floor(grant)

    def test_whole_group_locked_not_just_source(self, arena):
        session, (a, b, c), (ta, tb, tc) = arena
        grant = a.acquire_floor(ta.find(FIELD))
        assert len(grant.group) == 3
        # Even c (not the instance a raced with) is locked out.
        tc.find(FIELD).commit("also denied")
        assert c.last_execution.lock_denied
        a.release_floor(grant)

    def test_other_groups_unaffected_by_held_floor(self, arena):
        session, (a, b, c), (ta, tb, tc) = arena
        a.couple(ta.find(SCALE), ("b", SCALE))
        session.pump()
        grant = a.acquire_floor(ta.find(FIELD))
        tb.find(SCALE).set_value(5)
        assert not b.last_execution.lock_denied
        session.pump()
        assert ta.find(SCALE).value == 5
        a.release_floor(grant)

    def test_floor_released_after_event_automatically(self, arena):
        session, (a, b, c), (ta, tb, tc) = arena
        ta.find(FIELD).commit("first")
        session.pump()
        assert len(session.server.locks) == 0
        tb.find(FIELD).commit("second")
        session.pump()
        assert not b.last_execution.lock_denied
        assert ta.find(FIELD).value == "second"

    def test_sequential_contenders_all_succeed_eventually(self, arena):
        session, (a, b, c), (ta, tb, tc) = arena
        for i, tree in enumerate([ta, tb, tc] * 3):
            tree.find(FIELD).commit(f"round-{i}")
            session.pump()
        for tree in (ta, tb, tc):
            assert tree.find(FIELD).value == "round-8"

    def test_lock_denial_stats_recorded(self, arena):
        session, (a, b, c), (ta, tb, tc) = arena
        grant = a.acquire_floor(ta.find(FIELD))
        tb.find(FIELD).commit("x")
        tc.find(FIELD).commit("y")
        a.release_floor(grant)
        assert b.stats["lock_denials"] == 1
        assert c.stats["lock_denials"] == 1
        assert session.server.locks.stats.denials == 2


class TestRemoteExecutionLocking:
    def test_widgets_floor_locked_during_remote_execution(self, arena):
        """During re-execution the coupled object is disabled (§3.2)."""
        session, (a, b, c), (ta, tb, tc) = arena
        observed = []

        def probe(widget, event):
            observed.append(widget.floor_locked)

        from repro.toolkit.events import VALUE_CHANGED

        tb.find(FIELD).add_callback(VALUE_CHANGED, probe)
        ta.find(FIELD).commit("watch locking")
        session.pump()
        assert observed == [True]
        # And unlocked again afterwards.
        assert not tb.find(FIELD).floor_locked
