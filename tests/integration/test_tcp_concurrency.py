"""Thread-safety of the coupling runtime over TCP.

Over TCP, each instance's inbound messages arrive on a reader thread while
the application fires events from its own thread; the transport's guard
serializes them.  These tests hammer that boundary.
"""

import threading
import time


from repro.session import TcpSession
from repro.toolkit.widgets import Canvas, Shell, TextField

FIELD = "/ui/field"
CANVAS = "/ui/canvas"


def build_tree():
    root = Shell("ui")
    TextField("field", parent=root)
    Canvas("canvas", parent=root, width=40, height=10)
    return root


def wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestTcpConcurrency:
    def test_two_threads_firing_concurrently_converge_as_sets(self):
        with TcpSession() as session:
            a = session.create_instance("a", user="u1")
            b = session.create_instance("b", user="u2")
            ta = a.add_root(build_tree())
            tb = b.add_root(build_tree())
            a.couple(ta.find(CANVAS), ("b", CANVAS))
            assert wait_until(lambda: b.is_coupled(CANVAS))

            denials = {"a": 0, "b": 0}

            def drawer(name, instance, tree, rows):
                for i in range(rows):
                    tree.find(CANVAS).draw_stroke([(i, 0), (i, 1)])
                    result = instance.last_execution
                    if result is not None and result.lock_denied:
                        denials[name] += 1
                    time.sleep(0.001)

            t1 = threading.Thread(target=drawer, args=("a", a, ta, 20))
            t2 = threading.Thread(target=drawer, args=("b", b, tb, 20))
            t1.start(); t2.start()
            t1.join(15.0); t2.join(15.0)
            assert not t1.is_alive() and not t2.is_alive()

            accepted = 40 - denials["a"] - denials["b"]
            assert wait_until(
                lambda: ta.find(CANVAS).stroke_count == accepted
                and tb.find(CANVAS).stroke_count == accepted
            ), (
                f"accepted={accepted}, a={ta.find(CANVAS).stroke_count}, "
                f"b={tb.find(CANVAS).stroke_count}"
            )

            def key(stroke):
                return tuple(map(tuple, stroke["points"]))

            strokes_a = sorted(map(key, ta.find(CANVAS).strokes))
            strokes_b = sorted(map(key, tb.find(CANVAS).strokes))
            assert strokes_a == strokes_b

    def test_single_writer_many_events_under_reader_thread(self):
        with TcpSession() as session:
            a = session.create_instance("a", user="u1")
            b = session.create_instance("b", user="u2")
            ta = a.add_root(build_tree())
            tb = b.add_root(build_tree())
            a.couple(ta.find(FIELD), ("b", FIELD))
            assert wait_until(lambda: b.is_coupled(FIELD))
            for i in range(100):
                ta.find(FIELD).commit(f"v{i}")
            assert wait_until(lambda: tb.find(FIELD).value == "v99")
            assert a.stats["lock_denials"] == 0

    def test_bidirectional_commands_during_events(self):
        with TcpSession() as session:
            a = session.create_instance("a", user="u1")
            b = session.create_instance("b", user="u2")
            ta = a.add_root(build_tree())
            b.add_root(build_tree())
            a.couple(ta.find(FIELD), ("b", FIELD))
            assert wait_until(lambda: b.is_coupled(FIELD))
            b.on_command("sum", lambda data, sender: sum(data))

            results = []

            def commander():
                for _ in range(10):
                    results.append(
                        a.send_command("sum", [1, 2, 3], targets=["b"],
                                       want_reply=True)
                    )

            def typist():
                for i in range(10):
                    ta.find(FIELD).commit(f"t{i}")
                    time.sleep(0.002)

            t1 = threading.Thread(target=commander)
            t2 = threading.Thread(target=typist)
            t1.start(); t2.start()
            t1.join(15.0); t2.join(15.0)
            assert not t1.is_alive() and not t2.is_alive()
            assert results == [6] * 10
