"""Codec interop: mixed fleets of JSON and binary clients on one server.

Negotiation is per connection (docs/PROTOCOL.md): the server detects
each peer's codec from the first body byte of its frames and answers in
kind, so a binary deployment accepts legacy JSON clients (and vice
versa) with no handshake and no configuration on the server side.
"""

import time

import pytest

from repro.core.instance import ApplicationInstance
from repro.session import Session

from conftest import make_demo_tree

FIELD = "/app/form/name"


def wait_until(predicate, timeout=5.0):
    end = time.monotonic() + timeout
    while time.monotonic() < end:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def drive_mixed_fleet(session, connect):
    """One session-managed instance plus one foreign-codec manual client."""
    a = session.create_instance("a", user="u1")
    tree_a = a.add_root(make_demo_tree())

    foreign_codec = "json" if session.config.codec == "binary" else "binary"
    b = ApplicationInstance("b", "u2")
    connect(b, foreign_codec)
    b.register()
    tree_b = b.add_root(make_demo_tree())
    try:
        assert wait_until(lambda: "b" in a.roster and "a" in b.roster)

        # Couple across the codec boundary and edit from both sides.
        a.couple(tree_a.find(FIELD), ("b", FIELD))
        assert wait_until(lambda: b.is_coupled(FIELD))

        tree_a.find(FIELD).commit("from-a")
        assert wait_until(lambda: tree_b.find(FIELD).value == "from-a")

        tree_b.find(FIELD).commit("from-b")
        assert wait_until(lambda: tree_a.find(FIELD).value == "from-b")
    finally:
        b.close()


@pytest.mark.parametrize("server_codec", ["json", "binary"])
def test_tcp_mixed_fleet(server_codec):
    with Session(backend="tcp", codec=server_codec) as session:
        drive_mixed_fleet(
            session,
            lambda inst, codec: inst.connect_tcp(
                session.host, session.port, codec=codec
            ),
        )


@pytest.mark.parametrize("server_codec", ["json", "binary"])
def test_aio_mixed_fleet(server_codec):
    with Session(backend="aio", codec=server_codec) as session:
        drive_mixed_fleet(
            session,
            # A private loop thread: a plain out-of-process-style client.
            lambda inst, codec: inst.connect_aio(
                session.host, session.port, codec=codec
            ),
        )


@pytest.mark.parametrize("shards", [1, 2])
def test_tcp_binary_sharded_cluster(shards):
    with Session(backend="tcp", codec="binary", shards=shards) as session:
        a = session.create_instance("a", user="u1")
        b = session.create_instance("b", user="u2")
        tree_a = a.add_root(make_demo_tree())
        tree_b = b.add_root(make_demo_tree())
        assert wait_until(lambda: "b" in a.roster and "a" in b.roster)
        a.couple(tree_a.find(FIELD), ("b", FIELD))
        assert wait_until(lambda: b.is_coupled(FIELD))
        tree_a.find(FIELD).commit("hello")
        assert wait_until(lambda: tree_b.find(FIELD).value == "hello")


def test_server_answers_each_peer_in_its_own_codec():
    """Inspect the host transport: after a mixed fleet registers, the
    negotiated per-peer codec map holds one entry per foreign peer."""
    with Session(backend="tcp", codec="binary") as session:
        session.create_instance("bin-client", user="u1")
        json_client = ApplicationInstance("json-client", "u2")
        json_client.connect_tcp(session.host, session.port, codec="json")
        json_client.register()
        try:
            assert wait_until(
                lambda: "json-client" in session._impl._host_transport.connections()
            )
            host = session._impl._host_transport
            assert wait_until(
                lambda: host._peer_codecs.get("json-client") is not None
            )
            assert host._peer_codecs["json-client"].name == "json"
            assert host._peer_codecs["bin-client"].name == "binary"
        finally:
            json_client.close()


def test_memory_binary_accounts_fewer_bytes():
    """The simulator prices frames with the session codec: the same
    workload costs fewer bytes under binary than under JSON."""
    def run(codec):
        with Session(codec=codec) as session:
            a = session.create_instance("a", user="u1")
            b = session.create_instance("b", user="u2")
            tree_a = a.add_root(make_demo_tree())
            b.add_root(make_demo_tree())
            session.pump()
            a.couple(tree_a.find(FIELD), ("b", FIELD))
            session.pump()
            tree_a.find(FIELD).commit("payload-bytes")
            session.pump()
            return session.traffic()["bytes"]

    assert run("binary") < run("json")
