"""Guard the runnable examples: each must execute cleanly end to end.

Examples rot silently otherwise; running them as subprocesses also checks
the package is importable the way a user would import it.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=lambda path: path.name
)
def test_example_runs_cleanly(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script.name} printed nothing"


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert {
        "quickstart.py",
        "classroom_session.py",
        "cooperative_retrieval.py",
        "shared_whiteboard.py",
        "heterogeneous_coupling.py",
        "control_room.py",
        "record_replay.py",
    } <= names


def test_module_demo_runs():
    result = subprocess.run(
        [sys.executable, "-m", "repro"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "classroom_lesson" in result.stdout
    assert "design_meeting" in result.stdout
