"""Tests for the live cluster dashboard (repro.tools.top)."""

import io
import subprocess
import sys

from repro.tools.top import (
    ParsedMetrics,
    main,
    parse_prometheus_text,
    quantile_from_buckets,
    render_frame,
)

#: A canned two-shard exposition in the shapes the repo's exporter emits.
EXPOSITION = """\
# HELP repro_cluster_shard_up Shard worker liveness
# TYPE repro_cluster_shard_up gauge
repro_cluster_shard_up{shard="shard-0"} 1
repro_cluster_shard_up{shard="shard-1"} 0
# TYPE repro_cluster_shard_restarts_total counter
repro_cluster_shard_restarts_total{shard="shard-0"} 0
repro_cluster_shard_restarts_total{shard="shard-1"} 2
# TYPE repro_cluster_shard_heartbeat_age_seconds gauge
repro_cluster_shard_heartbeat_age_seconds{shard="shard-0"} 0.25
repro_cluster_shard_heartbeat_age_seconds{shard="shard-1"} 7.5
# TYPE repro_traffic_messages_total counter
repro_traffic_messages_total{transport="aio"} 1200
# TYPE repro_net_envelope_fill gauge
repro_net_envelope_fill 0.42
# TYPE repro_server_processed_total counter
repro_server_processed_total{kind="event",shard="shard-0"} 90
repro_server_processed_total{kind="register",shard="shard-0"} 10
repro_server_processed_total{kind="event",shard="shard-1"} 50
# TYPE repro_server_registered_instances gauge
repro_server_registered_instances{shard="shard-0"} 2
repro_server_registered_instances{shard="shard-1"} 1
# TYPE repro_sync_latency_seconds histogram
repro_sync_latency_seconds_bucket{segment="e2e",le="0.005"} 60
repro_sync_latency_seconds_bucket{segment="e2e",le="0.05"} 99
repro_sync_latency_seconds_bucket{segment="e2e",le="+Inf"} 100
repro_sync_latency_seconds_count{segment="e2e"} 100
repro_sync_latency_seconds_sum{segment="e2e"} 0.9
"""


class TestParser:
    def test_series_labels_and_values(self):
        parsed = parse_prometheus_text(EXPOSITION)
        assert parsed.value("repro_cluster_shard_up", shard="shard-0") == 1
        assert parsed.value("repro_cluster_shard_up", shard="shard-1") == 0
        assert parsed.total("repro_server_processed_total", shard="shard-0") == 100
        assert parsed.label_values("repro_cluster_shard_up", "shard") == [
            "shard-0", "shard-1",
        ]

    def test_plus_inf_bucket_bound(self):
        parsed = parse_prometheus_text(EXPOSITION)
        hist = parsed.histogram("repro_sync_latency_seconds", segment="e2e")
        assert hist["buckets"][-1] == (float("inf"), 100)
        assert hist["count"] == 100
        assert hist["sum"] == 0.9

    def test_escaped_label_values_unescape(self):
        parsed = parse_prometheus_text(
            'repro_esc_total{path="a\\"b\\\\c\\nd"} 3\n'
        )
        ((labels, value),) = parsed.get("repro_esc_total")
        assert labels == (("path", 'a"b\\c\nd'),)
        assert value == 3

    def test_comments_and_garbage_are_skipped(self):
        parsed = parse_prometheus_text(
            "# HELP x y\nnot a metric line !!\nrepro_ok 1\n"
        )
        assert parsed.value("repro_ok") == 1
        assert len(parsed.series) == 1


class TestQuantiles:
    BUCKETS = [(0.005, 60), (0.05, 99), (float("inf"), 100)]

    def test_p50_lands_in_first_covering_bucket(self):
        assert quantile_from_buckets(self.BUCKETS, 100, 0.5) == 0.005

    def test_p99_needs_the_second_bucket(self):
        assert quantile_from_buckets(self.BUCKETS, 100, 0.99) == 0.05

    def test_tail_falls_into_inf(self):
        assert quantile_from_buckets(self.BUCKETS, 100, 0.999) == float("inf")

    def test_empty_histogram_has_no_quantiles(self):
        assert quantile_from_buckets([], 0, 0.5) is None


class TestRenderFrame:
    def test_cluster_summary_and_shard_rows(self):
        frame = render_frame(parse_prometheus_text(EXPOSITION))
        assert "shards 1/2 up" in frame
        assert "restarts 2" in frame
        assert "msgs 1,200" in frame
        assert "envelope-fill 0.42" in frame
        lines = frame.splitlines()
        (row0,) = [ln for ln in lines if ln.startswith("shard-0")]
        (row1,) = [ln for ln in lines if ln.startswith("shard-1")]
        assert " up " in row0 and "DOWN" in row1
        assert "100" in row0  # processed msgs
        assert "7.50s" in row1  # stale heartbeat age rendered

    def test_latency_table_has_quantiles(self):
        frame = render_frame(parse_prometheus_text(EXPOSITION))
        (row,) = [
            ln for ln in frame.splitlines() if ln.startswith("e2e")
        ]
        assert "100" in row      # count
        assert "5.0ms" in row    # p50 = 0.005
        assert "50.0ms" in row   # p99 = 0.05
        assert "9.0ms" in row    # mean = 0.9 / 100

    def test_rates_come_from_frame_deltas(self):
        previous = parse_prometheus_text(EXPOSITION)
        current = ParsedMetrics()
        for name, series in previous.series.items():
            for labels, value in series:
                bump = 500 if name == "repro_traffic_messages_total" else 0
                current.add(name, labels, value + bump)
        frame = render_frame(current, previous=previous, interval=2.0)
        assert "msgs/s 250" in frame

    def test_empty_scrape_renders_header_only(self):
        frame = render_frame(parse_prometheus_text(""))
        assert frame.startswith("repro.tools.top")
        assert "shards 0/0 up" in frame


class TestCli:
    def test_file_mode_renders_one_frame(self, tmp_path, capsys):
        path = tmp_path / "scrape.txt"
        path.write_text(EXPOSITION)
        assert main(["--file", str(path)]) == 0
        out = capsys.readouterr().out
        assert "shards 1/2 up" in out
        assert str(path) in out  # the source is named in the header

    def test_once_flag_prints_a_single_frame(self, tmp_path):
        # --once with --url is the scripted/CI path; exercise the loop
        # body directly with a stub scraper to stay off the network.
        from repro.tools.top import _run_loop

        out = io.StringIO()
        rc = _run_loop(
            lambda: EXPOSITION, interval=0.0, once=True,
            source="stub", out=out,
        )
        assert rc == 0
        frame = out.getvalue()
        assert frame.count("repro.tools.top") == 1
        assert "\x1b[2J" not in frame  # no tty clear in one-shot mode

    def test_module_entrypoint(self, tmp_path):
        path = tmp_path / "scrape.txt"
        path.write_text(EXPOSITION)
        import os

        import repro

        proc = subprocess.run(
            [sys.executable, "-m", "repro.tools.top", "--file", str(path)],
            capture_output=True, text=True, timeout=60,
            env={
                **os.environ,
                "PYTHONPATH": os.path.dirname(
                    os.path.dirname(os.path.abspath(repro.__file__))
                ),
            },
        )
        assert proc.returncode == 0, proc.stderr
        assert "SYNC-LATENCY" in proc.stdout
