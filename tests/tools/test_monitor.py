"""Tests for the server monitoring snapshot/dashboard."""

import json

import pytest

from repro.session import LocalSession
from repro.tools.monitor import format_dashboard, snapshot
from repro.toolkit.widgets import Shell, TextField

from conftest import make_demo_tree

FIELD = "/app/form/name"


@pytest.fixture
def busy_session():
    session = LocalSession()
    a = session.create_instance("a", user="alice", app_type="editor")
    b = session.create_instance("b", user="bob", app_type="editor")
    ta = a.add_root(make_demo_tree())
    tb = b.add_root(make_demo_tree())
    a.couple(ta.find(FIELD), ("b", FIELD))
    session.pump()
    # One state copy to populate history, one held floor.
    a.copy_from(ta.find(FIELD), ("b", FIELD))
    grant = a.acquire_floor(ta.find(FIELD))
    yield session, a, b, grant
    session.close()


class TestSnapshot:
    def test_structure(self, busy_session):
        session, a, b, _ = busy_session
        snap = snapshot(session.server)
        assert {r["instance_id"] for r in snap["registered"]} == {"a", "b"}
        assert snap["couple_links"] == 1
        assert snap["couple_groups"] == [[f"a:{FIELD}", f"b:{FIELD}"]]
        assert len(snap["locks"]) == 2
        assert all(l["holder"] == "a" for l in snap["locks"])
        assert snap["histories"][f"a:{FIELD}"] == (1, 0)

    def test_json_safe(self, busy_session):
        session, *_ = busy_session
        json.dumps(snapshot(session.server))  # must not raise

    def test_lock_stats(self, busy_session):
        session, a, b, grant = busy_session
        snap = snapshot(session.server)
        assert snap["lock_stats"]["acquisitions"] >= 1


class TestDashboard:
    def test_mentions_everything(self, busy_session):
        session, *_ = busy_session
        text = format_dashboard(session.server)
        for fragment in ("alice", "bob", "Couple groups", "Floors held",
                         "Historical UI states", f"a:{FIELD}"):
            assert fragment in text

    def test_empty_server_renders(self):
        session = LocalSession()
        text = format_dashboard(session.server)
        assert "Floors held: none" in text
        assert "Historical UI states: none" in text
        session.close()
