"""Tests for the server monitoring snapshot/dashboard."""

import json

import pytest

from repro.session import LocalSession
from repro.tools.monitor import format_dashboard, snapshot

from conftest import make_demo_tree

FIELD = "/app/form/name"


@pytest.fixture
def busy_session():
    session = LocalSession()
    a = session.create_instance("a", user="alice", app_type="editor")
    b = session.create_instance("b", user="bob", app_type="editor")
    ta = a.add_root(make_demo_tree())
    tb = b.add_root(make_demo_tree())
    a.couple(ta.find(FIELD), ("b", FIELD))
    session.pump()
    # One state copy to populate history, one held floor.
    a.copy_from(ta.find(FIELD), ("b", FIELD))
    grant = a.acquire_floor(ta.find(FIELD))
    yield session, a, b, grant
    session.close()


class TestSnapshot:
    def test_structure(self, busy_session):
        session, a, b, _ = busy_session
        snap = snapshot(session.server)
        assert {r["instance_id"] for r in snap["registered"]} == {"a", "b"}
        assert snap["couple_links"] == 1
        assert snap["couple_groups"] == [[f"a:{FIELD}", f"b:{FIELD}"]]
        assert len(snap["locks"]) == 2
        assert all(l["holder"] == "a" for l in snap["locks"])
        assert snap["histories"][f"a:{FIELD}"] == (1, 0)

    def test_json_safe(self, busy_session):
        session, *_ = busy_session
        json.dumps(snapshot(session.server))  # must not raise

    def test_lock_stats(self, busy_session):
        session, a, b, grant = busy_session
        snap = snapshot(session.server)
        assert snap["lock_stats"]["acquisitions"] >= 1


class TestDashboard:
    def test_mentions_everything(self, busy_session):
        session, *_ = busy_session
        text = format_dashboard(session.server)
        for fragment in ("alice", "bob", "Couple groups", "Floors held",
                         "Historical UI states", f"a:{FIELD}"):
            assert fragment in text

    def test_empty_server_renders(self):
        session = LocalSession()
        text = format_dashboard(session.server)
        assert "Floors held: none" in text
        assert "Historical UI states: none" in text
        session.close()


class TestClusterMonitor:
    @pytest.fixture
    def cluster_session(self):
        from repro.session import ClusterSession

        session = ClusterSession(shards=2)
        a = session.create_instance("a", user="alice")
        b = session.create_instance("b", user="bob")
        ta = a.add_root(make_demo_tree())
        tb = b.add_root(make_demo_tree())
        a.couple(ta.find(FIELD), ("b", FIELD))
        session.pump()
        yield session
        session.close()

    def test_cluster_snapshot_structure(self, cluster_session):
        from repro.tools.monitor import cluster_snapshot

        snap = cluster_snapshot(cluster_session.cluster)
        assert snap["shards"] == 2
        assert snap["registered"] == 2
        assert snap["couple_links"] == 1
        assert snap["couple_groups"] == 1
        assert set(snap["per_shard"]) == {"shard-0", "shard-1"}
        # The two coupled objects are pinned to the same home shard.
        assert len(set(snap["homes"].values())) == 1
        assert set(snap["homes"]) == {f"a:{FIELD}", f"b:{FIELD}"}
        # Exactly one shard holds the link; per-shard snapshots agree.
        links = [s["couple_links"] for s in snap["per_shard"].values()]
        assert sorted(links) == [0, 1]

    def test_cluster_snapshot_json_safe(self, cluster_session):
        from repro.tools.monitor import cluster_snapshot

        json.dumps(cluster_snapshot(cluster_session.cluster))

    def test_cluster_dashboard_mentions_everything(self, cluster_session):
        from repro.tools.monitor import format_cluster_dashboard

        text = format_cluster_dashboard(cluster_session.cluster)
        for fragment in ("COSOFT cluster", "2 shards", "shard-0", "shard-1",
                         "Group homes", f"a:{FIELD}"):
            assert fragment in text

    def test_empty_cluster_dashboard_renders(self):
        from repro.cluster import ShardedCosoftCluster
        from repro.tools.monitor import format_cluster_dashboard

        text = format_cluster_dashboard(ShardedCosoftCluster(3))
        assert "3 shards" in text
        assert "Group homes: none pinned" in text
