"""Smoke tests for the persistence operator CLI and journal time travel."""

import json
import os

import pytest

import importlib

from repro.persist import PersistenceConfig
from repro.session import Session
from repro.tools import persist as persist_cli

# ``repro.tools`` re-exports the ``replay`` *function*, which shadows the
# submodule on a ``from repro.tools import replay``.
replay_cli = importlib.import_module("repro.tools.replay")

from conftest import make_demo_tree

FIELD = "/app/form/name"


@pytest.fixture
def journal_dir(tmp_path):
    """A populated persistence directory: tiny segments, frequent snaps."""
    config = PersistenceConfig(
        directory=str(tmp_path), segment_bytes=64, snapshot_every=5
    )
    session = Session(persistence=config)
    a = session.create_instance("a", user="alice")
    b = session.create_instance("b", user="bob")
    ta = a.add_root(make_demo_tree())
    b.add_root(make_demo_tree())
    a.couple(ta.find(FIELD), ("b", FIELD))
    session.pump()
    for round_no in range(4):
        ta.find(FIELD).commit(f"v{round_no}")
        session.pump()
    session.close()
    return str(tmp_path)


class TestInspect:
    def test_reports_segments_kinds_snapshots(self, journal_dir, capsys):
        assert persist_cli.main(["inspect", journal_dir]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["entries"] > 0
        assert report["last_seq"] == report["entries"]
        assert len(report["segments"]) > 1
        assert "register" in report["kinds"]
        assert report["snapshots"], "snapshot_every=5 should have fired"
        assert all("fingerprint" in s for s in report["snapshots"])


class TestVerify:
    def test_clean_directory_passes(self, journal_dir, capsys):
        assert persist_cli.main(["verify-crc", journal_dir]) == 0
        assert json.loads(capsys.readouterr().out)["ok"] is True

    def test_corruption_fails_with_exit_1(self, journal_dir, capsys):
        oplog_dir = os.path.join(journal_dir, "oplog")
        segment = sorted(os.listdir(oplog_dir))[0]
        path = os.path.join(oplog_dir, segment)
        data = bytearray(open(path, "rb").read())
        data[-1] ^= 0xFF
        open(path, "wb").write(bytes(data))
        assert persist_cli.main(["verify-crc", journal_dir]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is False
        assert report["problems"]


class TestCompact:
    def test_compacts_below_newest_snapshot(self, journal_dir, capsys):
        before = len(os.listdir(os.path.join(journal_dir, "oplog")))
        assert persist_cli.main(["compact", journal_dir]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["segments_removed"] > 0
        after = len(os.listdir(os.path.join(journal_dir, "oplog")))
        assert after == before - report["segments_removed"]
        # The directory still verifies and still recovers.
        assert persist_cli.main(["verify-crc", journal_dir]) == 0

    def test_refuses_without_snapshot_or_explicit_seq(self, tmp_path, capsys):
        config = PersistenceConfig(directory=str(tmp_path))
        session = Session(persistence=config)
        session.create_instance("a", user="alice")
        session.pump()
        session.close()
        assert persist_cli.main(["compact", str(tmp_path)]) == 1
        assert "error" in json.loads(capsys.readouterr().out)


class TestReplayTimeTravel:
    def test_state_at_present_and_past(self, journal_dir):
        # The fixture closed its session, so the present holds zero
        # registrations — but the journal remembers when it held two.
        now = replay_cli.state_at(journal_dir)
        assert now["stats"]["registered"] == 0
        past = replay_cli.state_at(journal_dir, at_seq=1)
        assert past["stats"]["registered"] == 1
        assert past["seq"] == 1
        assert past["last_seq"] == now["last_seq"]
        both = replay_cli.state_at(journal_dir, at_seq=2)
        assert both["stats"]["registered"] == 2

    def test_cli_prints_summary(self, journal_dir, capsys):
        assert (
            replay_cli.main(["--log-dir", journal_dir, "--at-seq", "2"]) == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["seq"] == 2
        assert "state" not in report  # summary unless --full
        assert (
            replay_cli.main(["--log-dir", journal_dir, "--full"]) == 0
        )
        assert "state" in json.loads(capsys.readouterr().out)
