"""Tests for session recording and replay."""

import pytest

from repro.session import LocalSession
from repro.tools.replay import SessionRecorder, loads, replay, replay_locally
from repro.toolkit.builder import build
from repro.toolkit.tree import subtree_state

from conftest import make_demo_tree

FIELD = "/app/form/name"
FLAG = "/app/form/flag"


@pytest.fixture
def pair():
    session = LocalSession()
    a = session.create_instance("a", user="alice")
    b = session.create_instance("b", user="bob")
    ta = a.add_root(make_demo_tree())
    tb = b.add_root(make_demo_tree())
    yield session, a, b, ta, tb
    session.close()


class TestRecorder:
    def test_records_local_events_only(self, pair):
        session, a, b, ta, tb = pair
        a.couple(ta.find(FIELD), ("b", FIELD))
        session.pump()
        recorder_a = SessionRecorder(a)
        recorder_b = SessionRecorder(b)
        ta.find(FIELD).commit("from a")
        session.pump()
        assert len(recorder_a.cut()) == 1
        # b saw the remote re-execution, but it is not a *local* input.
        assert recorder_b.cut() == []

    def test_cut_advances_mark(self, pair):
        session, a, _, ta, _ = pair
        recorder = SessionRecorder(a)
        ta.find(FIELD).commit("one")
        assert len(recorder.cut()) == 1
        assert recorder.cut() == []
        ta.find(FIELD).commit("two")
        assert len(recorder.cut()) == 1

    def test_dumps_loads_roundtrip(self, pair):
        session, a, _, ta, _ = pair
        recorder = SessionRecorder(a)
        ta.find(FIELD).commit("serialized")
        ta.find(FLAG).toggle()
        log = loads(recorder.dumps())
        assert len(log) == 2
        assert log[0]["params"]["value"] == "serialized"

    def test_loads_rejects_non_array(self):
        with pytest.raises(ValueError):
            loads('{"not": "a list"}')


class TestReplay:
    def test_replay_reproduces_state(self, pair):
        session, a, b, ta, tb = pair
        recorder = SessionRecorder(a)
        ta.find(FIELD).commit("first")
        ta.find(FLAG).toggle()
        ta.find(FIELD).commit("second")
        log = recorder.cut()
        # A completely fresh instance replays the log.
        c = session.create_instance("c", user="carol")
        tc = c.add_root(make_demo_tree())
        fired = replay(log, c)
        assert fired == 3
        assert tc.find(FIELD).value == "second"
        assert tc.find(FLAG).value is True

    def test_replay_through_coupling_reaches_peers(self, pair):
        session, a, b, ta, tb = pair
        recorder = SessionRecorder(a)
        ta.find(FIELD).commit("replayed value")
        log = recorder.cut()
        # Couple c's field to b's, then replay a's log through c.
        c = session.create_instance("c", user="carol")
        tc = c.add_root(make_demo_tree())
        c.couple(tc.find(FIELD), ("b", FIELD))
        session.pump()
        replay(log, c)
        session.pump()
        assert tb.find(FIELD).value == "replayed value"

    def test_replay_strict_missing_widget(self, pair):
        session, a, _, ta, _ = pair
        recorder = SessionRecorder(a)
        ta.find(FIELD).commit("x")
        log = recorder.cut()
        c = session.create_instance("c", user="carol")
        c.add_root(build({"type": "shell", "name": "other"}))
        with pytest.raises(LookupError):
            replay(log, c)
        assert replay(log, c, strict=False) == 0

    def test_replay_locally_offline(self, pair):
        session, a, _, ta, _ = pair
        recorder = SessionRecorder(a)
        ta.find(FIELD).commit("offline")
        ta.find(FLAG).toggle()
        log = recorder.cut()
        fresh = make_demo_tree()
        applied = replay_locally(log, fresh)
        assert applied == 2
        assert subtree_state(fresh) == subtree_state(ta)
