"""End-to-end tests of the delta state sync protocol (docs/PERF.md).

CopyTo ships a full snapshot on first contact, then only the attributes
written since the last acknowledged transfer; continuity is guarded by
sequence numbers and structure fingerprints, with RESYNC_REQUEST as the
recovery path.
"""

import pytest

from repro.session import Session
from repro.toolkit.widgets import Scale, Shell, TextField, ToggleButton

PATH = "/app"


def make_tree():
    root = Shell("app", title="delta")
    TextField("field", parent=root)
    Scale("zoom", parent=root, maximum=100)
    ToggleButton("flag", parent=root)
    return root


@pytest.fixture
def duo():
    session = Session(backend="memory")
    a = session.create_instance("a", user="alice")
    b = session.create_instance("b", user="bob")
    tree_a = a.add_root(make_tree())
    tree_b = b.add_root(make_tree())
    session.pump()
    yield session, a, b, tree_a, tree_b
    session.close()


def assert_synced(tree_a, tree_b):
    assert tree_b.find("field").value == tree_a.find("field").value
    assert tree_b.find("zoom").value == tree_a.find("zoom").value
    assert tree_b.find("flag").get("set") == tree_a.find("flag").get("set")


class TestDeltaProtocol:
    def test_first_push_is_full_then_delta(self, duo):
        session, a, b, tree_a, tree_b = duo
        tree_a.find("field").set("value", "one")
        a.copy_to(PATH, ("b", PATH))
        session.pump()
        assert a.stats["full_pushes"] == 1
        assert a.stats["delta_pushes"] == 0
        assert_synced(tree_a, tree_b)

        tree_a.find("field").set("value", "two")
        a.copy_to(PATH, ("b", PATH))
        session.pump()
        assert a.stats["delta_pushes"] == 1
        assert b.stats["deltas_applied"] == 1
        assert_synced(tree_a, tree_b)

    def test_idle_delta_is_empty_and_harmless(self, duo):
        session, a, b, tree_a, tree_b = duo
        tree_a.find("zoom").set("value", 42)
        a.copy_to(PATH, ("b", PATH))
        a.copy_to(PATH, ("b", PATH))  # nothing changed in between
        session.pump()
        assert a.stats["delta_pushes"] == 1
        assert_synced(tree_a, tree_b)

    def test_delta_applies_only_changed_attributes(self, duo):
        session, a, b, tree_a, tree_b = duo
        tree_a.find("field").set("value", "keep")
        a.copy_to(PATH, ("b", PATH))
        session.pump()
        # A local-only edit on the receiver that the sender never touches
        # again must survive the next delta (it is not in the payload).
        tree_b.find("zoom").set("value", 77)
        tree_a.find("flag").set("set", True)
        a.copy_to(PATH, ("b", PATH))
        session.pump()
        assert tree_b.find("flag").get("set") is True
        assert tree_b.find("zoom").value == 77  # untouched by the delta

    def test_structure_change_falls_back_to_full(self, duo):
        session, a, b, tree_a, tree_b = duo
        a.copy_to(PATH, ("b", PATH))
        session.pump()
        TextField("extra", parent=tree_a)
        TextField("extra", parent=tree_b)
        tree_a.find("extra").set("value", "new")
        a.copy_to(PATH, ("b", PATH))
        session.pump()
        assert a.stats["full_pushes"] == 2
        assert a.stats["delta_pushes"] == 0
        assert tree_b.find("extra").value == "new"

    def test_receiver_continuity_loss_triggers_resync(self, duo):
        session, a, b, tree_a, tree_b = duo
        tree_a.find("field").set("value", "v1")
        a.copy_to(PATH, ("b", PATH))
        session.pump()
        # Simulate a receiver that lost its continuity baseline (e.g. a
        # restart): the next delta cannot be applied and must trigger a
        # full resync from the sender.
        b._delta_in.clear()
        tree_a.find("field").set("value", "v2")
        a.copy_to(PATH, ("b", PATH))
        session.pump()
        assert b.stats["delta_resyncs"] == 1
        assert a.stats["resync_pushes"] == 1
        # The resync's full snapshot brings the receiver up to date.
        assert tree_b.find("field").value == "v2"

    def test_receiver_structure_change_triggers_resync(self, duo):
        session, a, b, tree_a, tree_b = duo
        a.copy_to(PATH, ("b", PATH))
        session.pump()
        # Rename-equivalent change on the receiver: same shape, so a full
        # resync can still match structurally, but the receiver's local
        # fingerprint changed and the cached mapping is stale.
        tree_b.find("field").destroy()
        TextField("field2", parent=tree_b)
        tree_a.find("field").set("value", "after")
        a.copy_to(PATH, ("b", PATH))
        session.pump()
        assert b.stats["delta_resyncs"] == 1
        assert tree_b.find("field2").value == "after"

    def test_merge_mode_invalidates_delta_chain(self, duo):
        session, a, b, tree_a, tree_b = duo
        a.copy_to(PATH, ("b", PATH))
        session.pump()
        a.copy_to(PATH, ("b", PATH), mode="merge")
        session.pump()
        # The MERGE transfer dropped continuity: next STRICT is full again.
        a.copy_to(PATH, ("b", PATH))
        session.pump()
        assert a.stats["full_pushes"] == 2
        assert a.stats["delta_pushes"] == 0

    def test_predefined_mapping_bypasses_delta(self, duo):
        session, a, b, tree_a, tree_b = duo
        identity = {
            "": "",
            "field": "field",
            "zoom": "zoom",
            "flag": "flag",
        }
        a.copy_to(PATH, ("b", PATH), predefined=identity)
        session.pump()
        assert a.stats["full_pushes"] == 0
        assert a.stats["delta_pushes"] == 0
        assert "a" not in {k[0] for k in b._delta_in}

    def test_disabled_knob_always_sends_full(self):
        with Session(backend="memory", delta_sync=False) as session:
            a = session.create_instance("a", user="alice")
            b = session.create_instance("b", user="bob")
            tree_a = a.add_root(make_tree())
            tree_b = b.add_root(make_tree())
            session.pump()
            tree_a.find("field").set("value", "x")
            a.copy_to(PATH, ("b", PATH))
            tree_a.find("field").set("value", "y")
            a.copy_to(PATH, ("b", PATH))
            session.pump()
            assert a.stats["delta_pushes"] == 0
            assert a.stats["full_pushes"] == 0  # outside the protocol
            assert b.stats["deltas_applied"] == 0
            assert tree_b.find("field").value == "y"

    def test_history_still_pushed_for_deltas(self, duo):
        """Delta application still records the overwritten state, so the
        server's historical UI states (undo) keep working."""
        session, a, b, tree_a, tree_b = duo
        tree_a.find("field").set("value", "first")
        a.copy_to(PATH, ("b", PATH))
        session.pump()
        tree_a.find("field").set("value", "second")
        a.copy_to(PATH, ("b", PATH))
        session.pump()
        assert tree_b.find("field").value == "second"
        assert b.undo(PATH)
        session.pump()
        assert tree_b.find("field").value == "first"

    def test_unregister_clears_delta_caches(self, duo):
        session, a, b, tree_a, tree_b = duo
        a.copy_to(PATH, ("b", PATH))
        session.pump()
        assert a._delta_out
        a.unregister()
        session.pump()
        assert not a._delta_out
        assert not a._delta_in


class TestDeltaPayloadShape:
    def test_delta_payload_omits_structure_and_unchanged(self, duo):
        session, a, b, tree_a, tree_b = duo
        tree_a.find("field").set("value", "seed")
        payload_full, commit = a._build_push_payload(
            tree_a, ("b", PATH), "strict", None
        )
        assert "structure" in payload_full
        assert payload_full["sync"]["delta"] is False
        a._delta_out[(tree_a.pathname, ("b", PATH))] = commit

        tree_a.find("zoom").set("value", 9)
        payload_delta, _ = a._build_push_payload(
            tree_a, ("b", PATH), "strict", None
        )
        assert "structure" not in payload_delta
        assert payload_delta["sync"]["delta"] is True
        assert payload_delta["sync"]["base"] == payload_full["sync"]["seq"]
        assert payload_delta["state"] == {"zoom": {"value": 9}}

    def test_sequence_numbers_advance(self, duo):
        session, a, b, tree_a, tree_b = duo
        for value in ("one", "two", "three"):
            tree_a.find("field").set("value", value)
            a.copy_to(PATH, ("b", PATH))
        session.pump()
        entry = a._delta_out[(tree_a.pathname, ("b", PATH))]
        assert entry["seq"] == 3
        assert b._delta_in[(("a", PATH), PATH)]["seq"] == 3
