"""Unit tests for the semantic store/load hook registry (§3.1)."""

import pytest

from repro.core.semantic import SemanticHookRegistry, attach_attribute_semantics
from repro.errors import SemanticHookError
from repro.toolkit.widgets import Form, Shell, TextField


def tree():
    root = Shell("app")
    form = Form("form", parent=root)
    TextField("name", parent=form)
    return root


class TestRegistration:
    def test_register_and_has_hook(self):
        reg = SemanticHookRegistry()
        reg.register("/app/form", lambda: 1, lambda d: None)
        assert reg.has_hook("/app/form")
        assert reg.paths() == ["/app/form"]

    def test_register_widget(self):
        reg = SemanticHookRegistry()
        root = tree()
        reg.register_widget(root.find("/app/form/name"), lambda: 1, lambda d: None)
        assert reg.has_hook("/app/form/name")

    def test_relative_path_rejected(self):
        reg = SemanticHookRegistry()
        with pytest.raises(ValueError):
            reg.register("form/name", lambda: 1, lambda d: None)

    def test_unregister(self):
        reg = SemanticHookRegistry()
        reg.register("/a", lambda: 1, lambda d: None)
        assert reg.unregister("/a")
        assert not reg.unregister("/a")


class TestStoreSubtree:
    def test_collects_hooks_inside_root(self):
        reg = SemanticHookRegistry()
        root = tree()
        reg.register("/app/form", lambda: {"form": 1}, lambda d: None)
        reg.register("/app/form/name", lambda: "cell", lambda d: None)
        reg.register("/app", lambda: "outer", lambda d: None)
        data = reg.store_subtree(root.find("/app/form"))
        assert data == {"": {"form": 1}, "name": "cell"}

    def test_store_error_wrapped(self):
        reg = SemanticHookRegistry()
        root = tree()

        def boom():
            raise RuntimeError("db closed")

        reg.register("/app/form", boom, lambda d: None)
        with pytest.raises(SemanticHookError):
            reg.store_subtree(root.find("/app/form"))

    def test_non_serializable_store_rejected(self):
        reg = SemanticHookRegistry()
        root = tree()
        reg.register("/app/form", lambda: object(), lambda d: None)
        with pytest.raises(SemanticHookError):
            reg.store_subtree(root.find("/app/form"))

    def test_no_hooks_returns_empty(self):
        assert SemanticHookRegistry().store_subtree(tree()) == {}


class TestLoadSubtree:
    def test_loads_matching_hooks(self):
        reg = SemanticHookRegistry()
        root = tree()
        loaded = {}
        reg.register("/app/form/name", lambda: None, lambda d: loaded.update(d))
        result = reg.load_subtree(root.find("/app/form"), {"name": {"x": 1}})
        assert result == ["name"]
        assert loaded == {"x": 1}

    def test_entries_without_local_hook_skipped(self):
        reg = SemanticHookRegistry()
        root = tree()
        result = reg.load_subtree(root.find("/app/form"), {"name": 123})
        assert result == []

    def test_root_entry_uses_empty_relpath(self):
        reg = SemanticHookRegistry()
        root = tree()
        seen = []
        reg.register("/app/form", lambda: None, seen.append)
        reg.load_subtree(root.find("/app/form"), {"": "payload"})
        assert seen == ["payload"]

    def test_load_error_wrapped(self):
        reg = SemanticHookRegistry()
        root = tree()

        def explode(_data):
            raise ValueError("bad payload")

        reg.register("/app/form", lambda: None, explode)
        with pytest.raises(SemanticHookError):
            reg.load_subtree(root.find("/app/form"), {"": 1})


class TestAttributeSemantics:
    def test_dict_slot_roundtrip(self):
        reg = SemanticHookRegistry()
        root = tree()
        storage = {"rows": [1, 2, 3]}
        attach_attribute_semantics(reg, root.find("/app/form"), storage, "rows")
        shipped = reg.store_subtree(root.find("/app/form"))
        assert shipped == {"": [1, 2, 3]}
        storage["rows"] = None
        reg.load_subtree(root.find("/app/form"), {"": [9]})
        assert storage["rows"] == [9]
