"""Tests for the standard semantic-state extensions (§5)."""

import pytest

from repro.core.semantic_ext import DocumentModel, ListModel, ValueModel
from repro.session import LocalSession
from repro.toolkit.widgets import Form, ListBox, Shell, TextArea, TextField


@pytest.fixture
def pair():
    session = LocalSession()
    a = session.create_instance("a", user="alice")
    b = session.create_instance("b", user="bob")
    yield session, a, b
    session.close()


def forms(a, b):
    ta = a.add_root(Shell("ui"))
    form_a = Form("panel", parent=ta)
    tb = b.add_root(Shell("ui"))
    form_b = Form("panel", parent=tb)
    return form_a, form_b


class TestValueModel:
    def test_travels_with_state_copy(self, pair):
        session, a, b = pair
        form_a, form_b = forms(a, b)
        field_a = TextField("entry", parent=form_a)
        field_b = TextField("entry", parent=form_b)
        model_a = ValueModel(a, field_a, initial={"unit": "meters"})
        model_b = ValueModel(b, field_b)
        b.copy_from(form_b, ("a", "/ui/panel"))
        assert model_b.value == {"unit": "meters"}

    def test_on_load_callback(self, pair):
        session, a, b = pair
        form_a, form_b = forms(a, b)
        field_a = TextField("entry", parent=form_a)
        field_b = TextField("entry", parent=form_b)
        ValueModel(a, field_a, initial=42)
        landed = []
        ValueModel(b, field_b, on_load=landed.append)
        b.copy_from(form_b, ("a", "/ui/panel"))
        assert landed == [42]

    def test_mutation(self, pair):
        _, a, _ = pair
        ta = a.add_root(Shell("ui"))
        field = TextField("entry", parent=ta)
        model = ValueModel(a, field)
        model.value = [1, 2]
        assert model.value == [1, 2]


class TestListModel:
    def test_render_on_construction(self, pair):
        _, a, _ = pair
        ta = a.add_root(Shell("ui"))
        box = ListBox("rows", parent=ta)
        ListModel(a, box, rows=[{"name": "ada", "age": 36}])
        assert box.get("items") == ["ada | 36"]

    def test_custom_formatter(self, pair):
        _, a, _ = pair
        ta = a.add_root(Shell("ui"))
        box = ListBox("rows", parent=ta)
        model = ListModel(
            a, box, rows=[{"name": "ada"}],
            formatter=lambda r: r["name"].upper(),
        )
        assert box.get("items") == ["ADA"]

    def test_rows_copy_and_rerender_remotely(self, pair):
        session, a, b = pair
        form_a, form_b = forms(a, b)
        box_a = ListBox("rows", parent=form_a)
        box_b = ListBox("rows", parent=form_b)
        model_a = ListModel(a, box_a)
        model_b = ListModel(b, box_b)
        model_a.set_rows([{"name": "grace"}, {"name": "alan"}])
        a.copy_to(form_a, ("b", "/ui/panel"))
        session.pump()
        assert model_b.rows == [{"name": "grace"}, {"name": "alan"}]
        assert box_b.get("items") == box_a.get("items")

    def test_selected_rows(self, pair):
        _, a, _ = pair
        ta = a.add_root(Shell("ui"))
        box = ListBox("rows", parent=ta)
        model = ListModel(a, box, rows=[{"n": 1}, {"n": 2}, {"n": 3}])
        box.select_indices([2])
        assert model.selected_rows() == [{"n": 3}]

    def test_append(self, pair):
        _, a, _ = pair
        ta = a.add_root(Shell("ui"))
        box = ListBox("rows", parent=ta)
        model = ListModel(a, box)
        model.append({"n": 1})
        assert len(model) == 1
        assert len(box.get("items")) == 1

    def test_models_are_independent_copies(self, pair):
        session, a, b = pair
        form_a, form_b = forms(a, b)
        box_a = ListBox("rows", parent=form_a)
        box_b = ListBox("rows", parent=form_b)
        model_a = ListModel(a, box_a, rows=[{"n": 1}])
        model_b = ListModel(b, box_b)
        a.copy_to(form_a, ("b", "/ui/panel"))
        session.pump()
        model_b.rows[0]["n"] = 99  # mutating the accessor copy
        assert model_b.rows == [{"n": 1}]


class TestDocumentModel:
    def test_revision_bumps_on_edit(self, pair):
        _, a, _ = pair
        ta = a.add_root(Shell("ui"))
        area = TextArea("doc", parent=ta)
        doc = DocumentModel(a, area, title="Notes")
        assert doc.revision == 0
        doc.edit("first line")
        assert doc.revision == 1
        assert doc.text == "first line"

    def test_metadata_travels(self, pair):
        session, a, b = pair
        form_a, form_b = forms(a, b)
        area_a = TextArea("doc", parent=form_a)
        area_b = TextArea("doc", parent=form_b)
        doc_a = DocumentModel(a, area_a, title="Meeting minutes")
        doc_b = DocumentModel(b, area_b)
        doc_a.edit("agenda\nitems")
        b.copy_from(form_b, ("a", "/ui/panel"))
        assert doc_b.title == "Meeting minutes"
        assert doc_b.author == "alice"
        assert doc_b.revision == 1
        assert doc_b.text == "agenda\nitems"

    def test_revision_never_regresses(self, pair):
        session, a, b = pair
        form_a, form_b = forms(a, b)
        area_a = TextArea("doc", parent=form_a)
        area_b = TextArea("doc", parent=form_b)
        doc_a = DocumentModel(a, area_a)
        doc_b = DocumentModel(b, area_b)
        for i in range(5):
            doc_b.edit(f"local edit {i}")
        assert doc_b.revision == 5
        doc_a.edit("remote edit")
        b.copy_from(form_b, ("a", "/ui/panel"))
        assert doc_b.revision == 5  # 5 > incoming 1: no regression
        assert doc_b.text == "remote edit"

    def test_author_follows_edits_through_coupling(self, pair):
        session, a, b = pair
        form_a, form_b = forms(a, b)
        area_a = TextArea("doc", parent=form_a)
        area_b = TextArea("doc", parent=form_b)
        doc_a = DocumentModel(a, area_a)
        doc_b = DocumentModel(b, area_b)
        a.couple(area_a, ("b", "/ui/panel/doc"))
        session.pump()
        doc_a.edit("alice wrote this")
        session.pump()
        # The coupled commit re-executed at b; b's revision bumped and the
        # author attribution followed the event's user.
        assert doc_b.text == "alice wrote this"
        assert doc_b.revision == 1
        assert doc_b.author == "alice"
