"""Unit tests for the compatibility model (§3.3)."""

import pytest

from repro.core import compat
from repro.errors import IncompatibleObjectsError
from repro.toolkit.builder import to_spec
from repro.toolkit.widgets import Form, Label, Shell, TextField


def spec(type_name, name, children=()):
    node = {"type": type_name, "name": name}
    if children:
        node["children"] = list(children)
    return node


@pytest.fixture
def corr():
    registry = compat.CorrespondenceRegistry()
    registry.declare("label", "textfield", {"text": "value"})
    return registry


class TestCorrespondences:
    def test_declared_lookup_both_directions(self, corr):
        assert corr.lookup("label", "textfield") == {"text": "value"}
        assert corr.lookup("textfield", "label") == {"value": "text"}

    def test_must_cover_relevant_attributes(self):
        registry = compat.CorrespondenceRegistry()
        with pytest.raises(ValueError):
            registry.declare("optionmenu", "textfield", {"selection": "value"})

    def test_unknown_attribute_rejected(self):
        registry = compat.CorrespondenceRegistry()
        with pytest.raises(ValueError):
            registry.declare("label", "textfield", {"text": "bogus"})

    def test_pairs_listing(self, corr):
        assert ("label", "textfield") in corr.pairs()
        assert len(corr) == 2


class TestDirectCompatibility:
    def test_same_type_identity_mapping(self):
        mapping = compat.attribute_mapping("textfield", "textfield")
        assert mapping == {"value": "value"}

    def test_different_types_need_declaration(self, corr):
        assert not compat.directly_compatible("label", "textfield")
        assert compat.directly_compatible("label", "textfield", corr)

    def test_mapping_via_correspondence(self, corr):
        assert compat.attribute_mapping("label", "textfield", corr) == {
            "text": "value"
        }


class TestStructuralCompatibility:
    def test_identical_structures(self):
        a = spec("form", "f", [spec("textfield", "x"), spec("pushbutton", "b")])
        b = spec("form", "g", [spec("textfield", "y"), spec("pushbutton", "c")])
        result = compat.structurally_compatible(a, b)
        assert result.compatible
        assert result.mapping[""] == ""
        assert result.mapping["x"] == "y"
        assert result.mapping["b"] == "c"

    def test_different_child_counts_incompatible(self):
        a = spec("form", "f", [spec("textfield", "x")])
        b = spec("form", "g", [])
        assert not compat.structurally_compatible(a, b).compatible

    def test_type_mismatch_incompatible(self):
        a = spec("form", "f", [spec("textfield", "x")])
        b = spec("form", "g", [spec("canvas", "x")])
        assert not compat.structurally_compatible(a, b).compatible

    def test_permuted_children_matched(self):
        a = spec("form", "f", [spec("textfield", "x"), spec("canvas", "c")])
        b = spec("form", "g", [spec("canvas", "d"), spec("textfield", "y")])
        result = compat.structurally_compatible(a, b)
        assert result.compatible
        assert result.mapping["x"] == "y"
        assert result.mapping["c"] == "d"

    def test_nested_matching(self):
        a = spec(
            "shell",
            "s1",
            [spec("form", "f", [spec("textfield", "deep")])],
        )
        b = spec(
            "shell",
            "s2",
            [spec("form", "g", [spec("textfield", "down")])],
        )
        result = compat.structurally_compatible(a, b)
        assert result.mapping["f/deep"] == "g/down"

    def test_heterogeneous_with_correspondence(self, corr):
        a = spec("form", "f", [spec("label", "caption")])
        b = spec("form", "g", [spec("textfield", "input")])
        assert not compat.structurally_compatible(a, b).compatible
        result = compat.structurally_compatible(a, b, correspondences=corr)
        assert result.compatible
        assert result.mapping["caption"] == "input"

    def test_ambiguous_bijection_backtracks(self):
        # Two same-typed children whose subtrees differ force backtracking:
        # a greedy first pairing of x1->y1 fails and must be revised.
        a = spec(
            "form",
            "f",
            [
                spec("form", "x1", [spec("textfield", "t")]),
                spec("form", "x2", [spec("canvas", "c")]),
            ],
        )
        b = spec(
            "form",
            "g",
            [
                spec("form", "y1", [spec("canvas", "c2")]),
                spec("form", "y2", [spec("textfield", "t2")]),
            ],
        )
        result = compat.structurally_compatible(a, b, strategy=compat.EXHAUSTIVE)
        assert result.compatible
        assert result.mapping["x1"] == "y2"
        assert result.mapping["x2"] == "y1"

    def test_heuristic_handles_type_permutation(self):
        a = spec("form", "f", [spec("textfield", "x"), spec("canvas", "c")])
        b = spec("form", "g", [spec("canvas", "d"), spec("textfield", "y")])
        result = compat.structurally_compatible(a, b, strategy=compat.HEURISTIC)
        assert result.compatible

    def test_heuristic_misses_exotic_case_exhaustive_finds(self):
        # Same-name-same-type pairs with incompatible subtrees: the greedy
        # matcher pins x->x by name and fails; exhaustive finds the cross
        # mapping.  Documents the heuristic's known limitation.
        a = spec(
            "form",
            "f",
            [
                spec("form", "x", [spec("textfield", "t")]),
                spec("form", "y", [spec("canvas", "c")]),
            ],
        )
        b = spec(
            "form",
            "g",
            [
                spec("form", "x", [spec("canvas", "c")]),
                spec("form", "y", [spec("textfield", "t")]),
            ],
        )
        heuristic = compat.structurally_compatible(a, b, strategy=compat.HEURISTIC)
        exhaustive = compat.structurally_compatible(a, b, strategy=compat.EXHAUSTIVE)
        assert not heuristic.compatible
        assert exhaustive.compatible

    def test_node_budget_enforced(self):
        def wide(name, fanout, depth):
            if depth == 0:
                return spec("textfield", name)
            return spec(
                "form",
                name,
                [wide(f"{name}{i}", fanout, depth - 1) for i in range(fanout)],
            )

        # Mirror-ordered children at every level maximize backtracking.
        a = wide("a", 5, 3)
        b = wide("b", 5, 3)
        b["children"] = list(reversed(b["children"]))
        with pytest.raises(IncompatibleObjectsError):
            compat.structurally_compatible(a, b, node_budget=10)

    def test_stats_count_comparisons(self):
        a = spec("form", "f", [spec("textfield", "x")])
        b = spec("form", "g", [spec("textfield", "y")])
        result = compat.structurally_compatible(a, b)
        assert result.stats.nodes_compared >= 2

    def test_unknown_strategy_rejected(self):
        a = spec("form", "f")
        with pytest.raises(ValueError):
            compat.structurally_compatible(a, a, strategy="magic")


class TestPredefinedMapping:
    def test_valid_predefined_accepted(self):
        a = spec("form", "f", [spec("textfield", "x")])
        b = spec("form", "g", [spec("textfield", "y")])
        result = compat.structurally_compatible(
            a, b, strategy=compat.PREDEFINED, predefined={"": "", "x": "y"}
        )
        assert result.compatible

    def test_incomplete_predefined_rejected(self):
        a = spec("form", "f", [spec("textfield", "x")])
        b = spec("form", "g", [spec("textfield", "y")])
        result = compat.structurally_compatible(
            a, b, strategy=compat.PREDEFINED, predefined={"": ""}
        )
        assert not result.compatible

    def test_type_clash_in_predefined_rejected(self):
        a = spec("form", "f", [spec("textfield", "x")])
        b = spec("form", "g", [spec("canvas", "y")])
        result = compat.structurally_compatible(
            a, b, strategy=compat.PREDEFINED, predefined={"": "", "x": "y"}
        )
        assert not result.compatible

    def test_predefined_requires_mapping_argument(self):
        a = spec("form", "f")
        with pytest.raises(ValueError):
            compat.structurally_compatible(a, a, strategy=compat.PREDEFINED)


class TestEnsureCompatible:
    def test_raises_with_context(self):
        a = spec("form", "f", [spec("textfield", "x")])
        b = spec("canvas", "g")
        with pytest.raises(IncompatibleObjectsError):
            compat.ensure_compatible(a, b)

    def test_returns_mapping(self):
        a = spec("form", "f")
        b = spec("form", "g")
        assert compat.ensure_compatible(a, b) == {"": ""}


class TestTranslateState:
    def test_translates_paths_and_attributes(self, corr):
        source_root = Shell("s")
        Label("caption", parent=Form("f", parent=source_root), text="shown")
        target_root = Shell("t")
        TextField("input", parent=Form("g", parent=target_root))
        source_spec = to_spec(source_root)
        target_spec = to_spec(target_root)
        mapping = compat.ensure_compatible(
            source_spec, target_spec, correspondences=corr
        )
        from repro.toolkit.tree import subtree_state

        translated = compat.translate_state(
            subtree_state(source_root),
            source_spec,
            target_spec,
            mapping,
            corr,
        )
        assert translated["g/input"] == {"value": "shown"}

    def test_missing_mapping_entries_skipped(self):
        a = spec("form", "f")
        b = spec("form", "g")
        out = compat.translate_state(
            {"ghost": {"value": 1}}, a, b, {"": ""}
        )
        assert out == {}
