"""Unit tests for state-payload building and application (§3.1)."""

import pytest

from repro.core import compat, state_sync
from repro.core.semantic import SemanticHookRegistry
from repro.errors import IncompatibleObjectsError
from repro.toolkit.widgets import Canvas, Form, Label, Shell, TextField


def source():
    root = Shell("src", title="Source")
    form = Form("form", parent=root)
    field = TextField("name", parent=form)
    field.set("value", "shipped")
    return root


def matching_target():
    root = Shell("dst", title="Target")
    form = Form("form", parent=root)
    TextField("name", parent=form)
    return root


class TestBuildPayload:
    def test_contains_state_and_structure(self):
        payload = state_sync.build_state_payload(source())
        assert payload["structure"]["type"] == "shell"
        assert payload["state"]["form/name"] == {"value": "shipped"}

    def test_structure_optional(self):
        payload = state_sync.build_state_payload(
            source(), include_structure=False
        )
        assert "structure" not in payload

    def test_semantics_included_when_present(self):
        reg = SemanticHookRegistry()
        root = source()
        reg.register("/src/form", lambda: {"n": 1}, lambda d: None)
        payload = state_sync.build_state_payload(root, reg)
        assert payload["semantic"] == {"form": {"n": 1}}

    def test_no_semantic_key_when_empty(self):
        payload = state_sync.build_state_payload(source(), SemanticHookRegistry())
        assert "semantic" not in payload


class TestStrictMode:
    def test_apply_homogeneous(self):
        payload = state_sync.build_state_payload(source())
        target = matching_target()
        report = state_sync.apply_state_payload(target, payload)
        assert target.find("form/name").get("value") == "shipped"
        assert report.mode == state_sync.STRICT
        assert report.mapping_size == 3  # shell, form, field

    def test_old_state_captured_for_history(self):
        payload = state_sync.build_state_payload(source())
        target = matching_target()
        target.find("form/name").set("value", "previous")
        report = state_sync.apply_state_payload(target, payload)
        assert report.old_state["form/name"] == {"value": "previous"}

    def test_structureless_fast_path(self):
        payload = state_sync.build_state_payload(
            source(), include_structure=False
        )
        target = matching_target()
        state_sync.apply_state_payload(target, payload)
        assert target.find("form/name").get("value") == "shipped"

    def test_incompatible_raises(self):
        payload = state_sync.build_state_payload(source())
        target = Shell("dst")
        Canvas("other", parent=target)
        with pytest.raises(IncompatibleObjectsError):
            state_sync.apply_state_payload(target, payload)

    def test_differently_named_components_translated(self):
        payload = state_sync.build_state_payload(source())
        target = Shell("dst")
        form = Form("panel", parent=target)
        TextField("input", parent=form)
        report = state_sync.apply_state_payload(target, payload)
        assert target.find("panel/input").get("value") == "shipped"
        assert "panel/input" in report.applied_paths

    def test_heterogeneous_via_correspondence(self):
        corr = compat.CorrespondenceRegistry()
        corr.declare("textfield", "label", {"value": "text"})
        payload = state_sync.build_state_payload(source())
        target = Shell("dst")
        form = Form("form", parent=target)
        Label("name", parent=form)
        state_sync.apply_state_payload(target, payload, correspondences=corr)
        assert target.find("form/name").get("text") == "shipped"

    def test_predefined_mapping_used(self):
        payload = state_sync.build_state_payload(source())
        target = matching_target()
        mapping = {"": "", "form": "form", "form/name": "form/name"}
        report = state_sync.apply_state_payload(
            target, payload, predefined=mapping
        )
        assert report.mapping_size == 3

    def test_strategy_auto_falls_back_to_exhaustive(self):
        # A case the greedy matcher cannot solve (cross-typed same names).
        src = Shell("src")
        fa = Form("x", parent=src)
        TextField("t", parent=fa)
        fb = Form("y", parent=src)
        Canvas("c", parent=fb)
        payload = state_sync.build_state_payload(src)
        dst = Shell("dst")
        ga = Form("x", parent=dst)
        Canvas("c", parent=ga)
        gb = Form("y", parent=dst)
        TextField("t", parent=gb)
        report = state_sync.apply_state_payload(dst, payload)
        assert report.mapping_size == 5


class TestMergeMode:
    def test_destructive_merge_invoked(self):
        payload = state_sync.build_state_payload(source())
        target = Shell("dst")  # empty: everything must be created
        report = state_sync.apply_state_payload(
            target, payload, mode=state_sync.MERGE
        )
        assert report.merge is not None
        assert target.find("form/name").get("value") == "shipped"

    def test_merge_requires_structure(self):
        payload = state_sync.build_state_payload(
            source(), include_structure=False
        )
        with pytest.raises(IncompatibleObjectsError):
            state_sync.apply_state_payload(
                Shell("dst"), payload, mode=state_sync.MERGE
            )


class TestFlexibleMode:
    def test_flexible_conserves_extras(self):
        payload = state_sync.build_state_payload(source())
        target = matching_target()
        TextField("extra", parent=target.find("form"))
        report = state_sync.apply_state_payload(
            target, payload, mode=state_sync.FLEXIBLE
        )
        assert not target.find("form/extra").destroyed
        assert target.find("form/name").get("value") == "shipped"
        assert "form/extra" in report.merge.conserved

    def test_flexible_requires_structure(self):
        payload = state_sync.build_state_payload(
            source(), include_structure=False
        )
        with pytest.raises(IncompatibleObjectsError):
            state_sync.apply_state_payload(
                Shell("dst"), payload, mode=state_sync.FLEXIBLE
            )


class TestSemanticsOnApply:
    def test_load_hooks_invoked(self):
        src_reg = SemanticHookRegistry()
        root = source()
        src_reg.register("/src/form", lambda: {"rows": [1]}, lambda d: None)
        payload = state_sync.build_state_payload(root, src_reg)

        dst_reg = SemanticHookRegistry()
        target = matching_target()
        landed = {}
        dst_reg.register("/dst/form", lambda: None, landed.update)
        report = state_sync.apply_state_payload(
            target, payload, semantics=dst_reg
        )
        assert landed == {"rows": [1]}
        assert report.semantic_loaded == ["form"]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            state_sync.apply_state_payload(Shell("x"), {}, mode="telepathy")
