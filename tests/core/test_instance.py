"""Tests of the ApplicationInstance runtime against a simulated session."""

import pytest

from repro.errors import NotRegisteredError, PathError, ServerError
from repro.server.permissions import PermissionRule
from repro.toolkit.events import VALUE_CHANGED
from repro.toolkit.widgets import Form, Shell, TextField

from conftest import make_demo_tree


class TestLifecycle:
    def test_register_populates_roster(self, pair):
        session, a, b = pair
        session.pump()
        assert set(a.roster) == {"a", "b"} or set(a.roster) == {"a"}
        session.pump()
        # After pumping the roster broadcast, both see each other.
        assert "b" in a.roster or "a" in b.roster

    def test_register_bootstraps_couple_replica(self, session):
        a = session.create_instance("a", user="u1")
        a.add_root(make_demo_tree())
        b = session.create_instance("b", user="u2")
        b.add_root(make_demo_tree())
        a.couple(a.widget("/app/form/name"), ("b", "/app/form/name"))
        session.pump()
        # A third instance registering late receives the existing links.
        c = session.create_instance("c", user="u3")
        assert len(c.replica) == 1

    def test_invalid_instance_id(self):
        from repro.core.instance import ApplicationInstance

        with pytest.raises(ValueError):
            ApplicationInstance("", user="x")
        with pytest.raises(ValueError):
            ApplicationInstance("server", user="x")

    def test_unregister_clears_replica_and_server(self, coupled_pair):
        session, a, b, tree_a, tree_b = coupled_pair
        a.unregister()
        session.pump()
        assert len(session.server.couples) == 0
        assert len(a.replica) == 0
        # b learned about the removal too.
        assert len(b.replica) == 0

    def test_operations_without_transport_raise(self):
        from repro.core.instance import ApplicationInstance

        inst = ApplicationInstance("x", user="u")
        with pytest.raises(NotRegisteredError):
            inst.register()

    def test_close_is_idempotent(self, pair):
        _, a, _ = pair
        a.close()
        a.close()


class TestWidgetManagement:
    def test_add_root_and_find(self, pair):
        _, a, _ = pair
        tree = a.add_root(make_demo_tree())
        assert a.find_widget("/app/form/name") is tree.find("/app/form/name")
        assert a.find_widget("/ghost/x") is None
        assert a.find_widget("") is None

    def test_widget_raises_on_missing(self, pair):
        _, a, _ = pair
        with pytest.raises(PathError):
            a.widget("/nope")

    def test_add_root_rejects_non_root(self, pair):
        _, a, _ = pair
        shell = Shell("app")
        form = Form("form", parent=shell)
        with pytest.raises(ValueError):
            a.add_root(form)

    def test_duplicate_root_name_rejected(self, pair):
        _, a, _ = pair
        a.add_root(Shell("app"))
        with pytest.raises(ValueError):
            a.add_root(Shell("app"))

    def test_gid(self, pair):
        _, a, _ = pair
        tree = a.add_root(make_demo_tree())
        widget = tree.find("/app/form/name")
        assert a.gid(widget) == ("a", "/app/form/name")
        assert a.gid("/app/form/name") == ("a", "/app/form/name")


class TestLocalVsCoupledEvents:
    def test_uncoupled_events_stay_local(self, pair):
        session, a, _ = pair
        tree = a.add_root(make_demo_tree())
        before = session.traffic()["messages"]
        tree.find("/app/form/name").commit("local only")
        assert session.traffic()["messages"] == before
        assert a.stats["events_local"] == 1
        assert a.last_execution.local_only

    def test_coupled_event_propagates(self, coupled_pair):
        session, a, b, tree_a, tree_b = coupled_pair
        tree_a.find("/app/form/name").commit("shared")
        session.pump()
        assert tree_b.find("/app/form/name").value == "shared"
        assert b.stats["events_remote"] == 1

    def test_callbacks_run_on_both_sides(self, coupled_pair):
        session, a, b, tree_a, tree_b = coupled_pair
        calls = []
        tree_a.find("/app/form/name").add_callback(
            VALUE_CHANGED, lambda w, e: calls.append(("a", e.params["value"]))
        )
        tree_b.find("/app/form/name").add_callback(
            VALUE_CHANGED, lambda w, e: calls.append(("b", e.params["value"]))
        )
        tree_a.find("/app/form/name").commit("x")
        session.pump()
        assert ("a", "x") in calls and ("b", "x") in calls

    def test_event_trace_records_both_ends(self, coupled_pair):
        session, a, b, tree_a, _ = coupled_pair
        tree_a.find("/app/form/name").commit("x")
        session.pump()
        assert len(a.trace.events(VALUE_CHANGED)) == 1
        assert len(b.trace.events(VALUE_CHANGED)) == 1

    def test_same_instance_coupling(self, pair):
        """Two objects coupled within the same application instance (§3.3)."""
        session, a, _ = pair
        tree = a.add_root(make_demo_tree())
        other = Shell("mirror")
        TextField("copy", parent=other)
        a.add_root(other)
        a.couple(tree.find("/app/form/name"), ("a", "/mirror/copy"))
        session.pump()
        tree.find("/app/form/name").commit("twice")
        session.pump()
        assert other.find("/mirror/copy").value == "twice"


class TestCoupleApi:
    def test_coupled_objects_uses_replica(self, coupled_pair):
        session, a, b, tree_a, _ = coupled_pair
        assert a.coupled_objects("/app/form/name") == (("b", "/app/form/name"),)
        assert a.is_coupled("/app/form/name")
        assert not a.is_coupled("/app/form/ok")

    def test_decouple(self, coupled_pair):
        session, a, b, tree_a, tree_b = coupled_pair
        a.decouple(tree_a.find("/app/form/name"), ("b", "/app/form/name"))
        session.pump()
        assert not a.is_coupled("/app/form/name")
        tree_a.find("/app/form/name").commit("alone")
        session.pump()
        assert tree_b.find("/app/form/name").value == ""

    def test_remote_couple_by_third_party(self, session):
        a = session.create_instance("a", user="u1")
        b = session.create_instance("b", user="u2")
        c = session.create_instance("c", user="u3")
        a.add_root(make_demo_tree())
        b.add_root(make_demo_tree())
        c.remote_couple(("a", "/app/form/name"), ("b", "/app/form/name"))
        session.pump()
        assert a.is_coupled("/app/form/name")
        a.widget("/app/form/name").commit("via c")
        session.pump()
        assert b.widget("/app/form/name").value == "via c"
        c.remote_decouple(("a", "/app/form/name"), ("b", "/app/form/name"))
        session.pump()
        assert not a.is_coupled("/app/form/name")

    def test_couple_unknown_instance_raises(self, pair):
        session, a, _ = pair
        tree = a.add_root(make_demo_tree())
        with pytest.raises(ServerError):
            a.couple(tree.find("/app/form/name"), ("ghost", "/x"))

    def test_destroy_auto_decouples(self, coupled_pair):
        session, a, b, tree_a, tree_b = coupled_pair
        tree_a.find("/app/form/name").destroy()
        session.pump()
        assert len(session.server.couples) == 0
        assert not b.is_coupled("/app/form/name")

    def test_destroying_ancestor_decouples_subtree(self, coupled_pair):
        session, a, b, tree_a, _ = coupled_pair
        tree_a.find("/app/form").destroy()
        session.pump()
        assert len(session.server.couples) == 0


class TestStateSyncApi:
    def test_copy_from(self, pair):
        session, a, b = pair
        tree_a = a.add_root(make_demo_tree())
        tree_b = b.add_root(make_demo_tree())
        tree_b.find("/app/form/name").commit("bob's work")
        report = a.copy_from(
            tree_a.find("/app/form"), ("b", "/app/form")
        )
        assert tree_a.find("/app/form/name").value == "bob's work"
        assert report.applied_paths

    def test_copy_to(self, pair):
        session, a, b = pair
        tree_a = a.add_root(make_demo_tree())
        tree_b = b.add_root(make_demo_tree())
        tree_a.find("/app/form/name").commit("alice's work")
        a.copy_to(tree_a.find("/app/form"), ("b", "/app/form"))
        session.pump()
        assert tree_b.find("/app/form/name").value == "alice's work"

    def test_remote_copy(self, session):
        a = session.create_instance("a", user="u1")
        b = session.create_instance("b", user="u2")
        c = session.create_instance("c", user="u3")
        tree_a = a.add_root(make_demo_tree())
        tree_b = b.add_root(make_demo_tree())
        tree_a.find("/app/form/name").commit("original")
        c.remote_copy(("a", "/app/form"), ("b", "/app/form"))
        session.pump()
        assert tree_b.find("/app/form/name").value == "original"

    def test_copy_from_missing_object_raises(self, pair):
        session, a, b = pair
        tree_a = a.add_root(make_demo_tree())
        b.add_root(make_demo_tree())
        with pytest.raises(ServerError):
            a.copy_from(tree_a.find("/app/form"), ("b", "/ghost"))

    def test_undo_redo_roundtrip(self, pair):
        session, a, b = pair
        tree_a = a.add_root(make_demo_tree())
        tree_b = b.add_root(make_demo_tree())
        field_a = tree_a.find("/app/form/name")
        field_a.commit("mine")
        tree_b.find("/app/form/name").commit("theirs")
        a.copy_from(tree_a.find("/app/form"), ("b", "/app/form"))
        assert field_a.value == "theirs"
        assert a.undo(tree_a.find("/app/form"))
        assert field_a.value == "mine"
        assert a.redo(tree_a.find("/app/form"))
        assert field_a.value == "theirs"

    def test_undo_without_history_returns_false(self, pair):
        session, a, _ = pair
        tree = a.add_root(make_demo_tree())
        assert not a.undo(tree.find("/app/form"))

    def test_fetch_state_returns_payload_without_applying(self, pair):
        session, a, b = pair
        tree_a = a.add_root(make_demo_tree())
        tree_b = b.add_root(make_demo_tree())
        tree_b.find("/app/form/name").commit("inspect me")
        payload = a.fetch_state(("b", "/app/form"))
        assert payload["structure"]["type"] == "form"
        assert payload["state"]["name"] == {"value": "inspect me"}
        # Nothing was applied locally.
        assert tree_a.find("/app/form/name").value == ""

    def test_export_import_ui_roundtrip(self, pair):
        session, a, b = pair
        tree_a = a.add_root(make_demo_tree())
        tree_a.find("/app/form/name").commit("persisted")
        tree_a.find("/app/board/zoom").set_value(7)
        exported = a.export_ui()
        roots = b.import_ui(exported)
        assert len(roots) == 1
        restored = b.widget("/app/form/name")
        assert restored.value == "persisted"
        assert b.widget("/app/board/zoom").value == 7
        # The rebuilt tree is live: events route through b's runtime.
        restored.commit("edited in b")
        assert b.stats["events_local"] >= 1

    def test_semantic_data_travels_with_copy(self, pair):
        session, a, b = pair
        tree_a = a.add_root(make_demo_tree())
        tree_b = b.add_root(make_demo_tree())
        payload_b = {"rows": [1, 2]}
        b.semantics.register(
            "/app/form", lambda: payload_b, lambda d: None
        )
        landed = {}
        a.semantics.register("/app/form", lambda: None, landed.update)
        a.copy_from(tree_a.find("/app/form"), ("b", "/app/form"))
        assert landed == {"rows": [1, 2]}


class TestCommandsApi:
    def test_targeted_command_with_reply(self, pair):
        session, a, b = pair
        b.on_command("add", lambda data, sender: data["x"] + data["y"])
        result = a.send_command(
            "add", {"x": 2, "y": 3}, targets=["b"], want_reply=True
        )
        assert result == 5

    def test_broadcast_command(self, session):
        a = session.create_instance("a", user="u1")
        b = session.create_instance("b", user="u2")
        c = session.create_instance("c", user="u3")
        seen = []
        b.on_command("note", lambda d, s: seen.append(("b", d)))
        c.on_command("note", lambda d, s: seen.append(("c", d)))
        a.send_command("note", "hello")
        session.pump()
        assert ("b", "hello") in seen and ("c", "hello") in seen

    def test_unknown_command_counted_not_fatal(self, pair):
        session, a, b = pair
        a.send_command("mystery", 1, targets=["b"])
        session.pump()
        assert b.stats["command_failures"] == 1


class TestPermissionsApi:
    def test_write_permission_blocks_copy_to(self, session):
        a = session.create_instance("a", user="alice")
        b = session.create_instance("b", user="bob")
        tree_a = a.add_root(make_demo_tree())
        b.add_root(make_demo_tree())
        # b denies writes to its form for everyone.
        b.set_permission(
            PermissionRule("*", "b", "/app/form", "write", allow=False)
        )
        with pytest.raises(ServerError):
            a.copy_to(tree_a.find("/app/form"), ("b", "/app/form"))

    def test_read_permission_blocks_copy_from(self, session):
        a = session.create_instance("a", user="alice")
        b = session.create_instance("b", user="bob")
        tree_a = a.add_root(make_demo_tree())
        b.add_root(make_demo_tree())
        b.set_permission(
            PermissionRule("alice", "b", "", "read", allow=False)
        )
        with pytest.raises(ServerError):
            a.copy_from(tree_a.find("/app/form"), ("b", "/app/form"))


class TestFloorApi:
    def test_explicit_floor_blocks_peer(self, coupled_pair):
        session, a, b, tree_a, tree_b = coupled_pair
        grant = a.acquire_floor(tree_a.find("/app/form/name"))
        assert grant is not None
        assert len(grant.group) == 2
        # b's event is denied while a holds the floor.
        tree_b.find("/app/form/name").commit("denied")
        assert b.last_execution.lock_denied
        assert tree_b.find("/app/form/name").value == ""  # feedback undone
        a.release_floor(grant)
        session.pump()
        tree_b.find("/app/form/name").commit("granted")
        session.pump()
        assert tree_a.find("/app/form/name").value == "granted"

    def test_denied_action_does_not_run_callbacks(self, coupled_pair):
        session, a, b, tree_a, tree_b = coupled_pair
        calls = []
        tree_b.find("/app/form/name").add_callback(
            VALUE_CHANGED, lambda w, e: calls.append(1)
        )
        grant = a.acquire_floor(tree_a.find("/app/form/name"))
        tree_b.find("/app/form/name").commit("denied")
        assert calls == []
        a.release_floor(grant)
