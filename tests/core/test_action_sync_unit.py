"""Direct unit tests for the action-sync helpers (with a stub instance)."""

from collections import Counter
from typing import Optional


from repro.core import action_sync
from repro.core.action_sync import FloorGrant
from repro.net import kinds
from repro.net.message import Message
from repro.toolkit.events import ACTIVATE, VALUE_CHANGED, Event, EventTrace
from repro.toolkit.widgets import Shell, TextField, ToggleButton


class StubInstance:
    """Just enough of ApplicationInstance for the action-sync functions."""

    def __init__(self, *, grant: Optional[dict] = None):
        self.instance_id = "stub"
        self.stats = Counter()
        self.trace = EventTrace()
        self.sent = []
        self._grant = grant
        self._token = 0
        self.root = Shell("app")
        TextField("field", parent=self.root)
        ToggleButton("flag", parent=self.root)
        self.root.attach_runtime(self)

    # Runtime interface ---------------------------------------------------

    def next_token(self) -> int:
        self._token += 1
        return self._token

    def send(self, message: Message) -> None:
        self.sent.append(message)

    def request(self, message: Message, timeout=None) -> Optional[Message]:
        self.sent.append(message)
        if message.kind == kinds.LOCK_REQUEST and self._grant is not None:
            return message.reply(kinds.LOCK_REPLY, "server", **self._grant)
        return None  # simulate timeout

    def find_widget(self, pathname: str):
        try:
            return self.root.find(pathname)
        except Exception:
            return None

    def trace_remote_event(self, event: Event) -> None:
        self.trace.record(event)

    def accept_remote_event(self, event: Event) -> bool:
        return True

    def process_local_event(self, widget, event):
        # Stub: behave like an uncoupled instance (no network round).
        widget.run_callbacks(event)


class TestRequestFloor:
    def test_granted(self):
        inst = StubInstance(
            grant={"granted": True, "group": [["stub", "/app/field"]]}
        )
        grant = action_sync.request_floor(inst, ("stub", "/app/field"), 1.0)
        assert grant is not None
        assert grant.group == (("stub", "/app/field"),)
        assert inst.sent[0].kind == kinds.LOCK_REQUEST

    def test_denied(self):
        inst = StubInstance(grant={"granted": False, "group": [], "conflicts": []})
        assert action_sync.request_floor(inst, ("stub", "/x"), 1.0) is None

    def test_timeout_is_denial(self):
        inst = StubInstance(grant=None)
        assert action_sync.request_floor(inst, ("stub", "/x"), 1.0) is None

    def test_release_floor_message(self):
        inst = StubInstance()
        grant = FloorGrant(token=7, group=(("stub", "/app/field"),))
        action_sync.release_floor(inst, grant)
        msg = inst.sent[-1]
        assert msg.kind == kinds.UNLOCK
        assert msg.payload["token"] == 7
        assert msg.payload["objects"] == [["stub", "/app/field"]]


class TestRunMultipleExecution:
    def test_denied_rolls_back_and_skips_callbacks(self):
        inst = StubInstance(grant={"granted": False, "group": []})
        toggle = inst.root.find("/app/flag")
        calls = []
        toggle.add_callback(ACTIVATE, lambda w, e: calls.append(1))
        event = Event(type=ACTIVATE, source_path="/app/flag",
                      instance_id="stub")
        undo = toggle.apply_feedback(event)
        result = action_sync.run_multiple_execution(
            inst, toggle, event, undo, timeout=1.0
        )
        assert result.lock_denied and not result.executed
        assert toggle.value is False  # feedback undone
        assert calls == []
        assert inst.stats["lock_denials"] == 1

    def test_granted_runs_callbacks_and_ships_event(self):
        inst = StubInstance(
            grant={
                "granted": True,
                "group": [["stub", "/app/flag"], ["other", "/y"]],
            }
        )
        toggle = inst.root.find("/app/flag")
        calls = []
        toggle.add_callback(ACTIVATE, lambda w, e: calls.append(1))
        event = Event(type=ACTIVATE, source_path="/app/flag",
                      instance_id="stub")
        undo = toggle.apply_feedback(event)
        result = action_sync.run_multiple_execution(
            inst, toggle, event, undo, timeout=1.0
        )
        assert result.executed
        assert calls == [1]
        event_msgs = [m for m in inst.sent if m.kind == kinds.EVENT]
        assert len(event_msgs) == 1
        assert event_msgs[0].payload["token"] == 1
        assert event_msgs[0].payload["release"] is True

    def test_local_group_members_reexecuted_and_unlocked(self):
        inst = StubInstance(
            grant={
                "granted": True,
                "group": [["stub", "/app/flag"], ["stub", "/app/field"]],
            }
        )
        toggle = inst.root.find("/app/flag")
        field = inst.root.find("/app/field")
        locked_during = []
        field.add_callback(
            ACTIVATE, lambda w, e: locked_during.append(w.floor_locked)
        )
        event = Event(type=ACTIVATE, source_path="/app/flag",
                      instance_id="stub")
        undo = toggle.apply_feedback(event)
        action_sync.run_multiple_execution(inst, toggle, event, undo, timeout=1.0)
        assert locked_during == [True]
        assert not field.floor_locked  # unlocked afterwards


class TestApplyRemoteEvent:
    def test_executes_and_acks(self):
        inst = StubInstance()
        payload = {
            "event": Event(
                type=VALUE_CHANGED,
                source_path="/elsewhere/field",
                params={"value": "remote"},
                instance_id="origin",
            ).to_wire(),
            "targets": ["/app/field"],
            "owner": ["origin", 9],
        }
        executed = action_sync.apply_remote_event(inst, payload)
        assert executed == 1
        assert inst.root.find("/app/field").value == "remote"
        acks = [m for m in inst.sent if m.kind == kinds.EVENT_ACK]
        assert len(acks) == 1
        assert acks[0].payload["owner"] == ["origin", 9]

    def test_missing_targets_skipped(self):
        inst = StubInstance()
        payload = {
            "event": Event(
                type=VALUE_CHANGED, source_path="/x", params={"value": "v"},
                instance_id="origin",
            ).to_wire(),
            "targets": ["/ghost/path"],
            "owner": ["origin", 1],
        }
        assert action_sync.apply_remote_event(inst, payload) == 0
        # The ack still goes out (the event was processed as far as
        # possible; the floor must not stay wedged).
        assert any(m.kind == kinds.EVENT_ACK for m in inst.sent)

    def test_remote_event_traced(self):
        inst = StubInstance()
        payload = {
            "event": Event(
                type=VALUE_CHANGED, source_path="/x", params={"value": "v"},
                instance_id="origin",
            ).to_wire(),
            "targets": ["/app/field"],
            "owner": ["origin", 1],
        }
        action_sync.apply_remote_event(inst, payload)
        assert len(inst.trace.events(VALUE_CHANGED)) == 1
