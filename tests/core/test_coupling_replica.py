"""Unit tests for the client-side coupling replica helpers."""

import pytest

from repro.core.coupling import (
    apply_couple_update,
    bootstrap_replica,
    subtree_is_coupled,
)
from repro.server.couples import CoupleLink, CoupleTable, global_id

A = global_id("a", "/ui/x")
B = global_id("b", "/ui/x")


def update(action, link):
    return {"action": action, "link": link.to_wire()}


class TestApplyCoupleUpdate:
    def test_add_and_remove(self):
        table = CoupleTable()
        link = CoupleLink(source=A, target=B)
        assert apply_couple_update(table, update("add", link)) == link
        assert table.has_link(A, B)
        apply_couple_update(table, update("remove", link))
        assert len(table) == 0

    def test_add_is_idempotent(self):
        table = CoupleTable()
        link = CoupleLink(source=A, target=B)
        apply_couple_update(table, update("add", link))
        apply_couple_update(table, update("add", link))
        assert len(table) == 1

    def test_remove_missing_is_tolerated(self):
        table = CoupleTable()
        link = CoupleLink(source=A, target=B)
        apply_couple_update(table, update("remove", link))  # no raise
        assert len(table) == 0

    def test_noop_update(self):
        table = CoupleTable()
        assert apply_couple_update(table, {"action": "noop", "link": None}) is None

    def test_unknown_action_rejected(self):
        table = CoupleTable()
        link = CoupleLink(source=A, target=B)
        with pytest.raises(ValueError):
            apply_couple_update(table, update("teleport", link))


class TestBootstrap:
    def test_bootstrap_from_wire_dump(self):
        source = CoupleTable()
        source.add_link(CoupleLink(source=A, target=B))
        source.add_link(
            CoupleLink(source=global_id("a", "/ui/y"), target=B)
        )
        replica = CoupleTable()
        assert bootstrap_replica(replica, source.to_wire()) == 2
        assert replica.group_of(A) == source.group_of(A)

    def test_bootstrap_empty(self):
        assert bootstrap_replica(CoupleTable(), None) == 0
        assert bootstrap_replica(CoupleTable(), []) == 0


class TestSubtreeIsCoupled:
    def test_exact_and_descendant(self):
        table = CoupleTable()
        deep = global_id("a", "/ui/panel/field")
        table.add_link(CoupleLink(source=deep, target=B))
        assert subtree_is_coupled(table, "a", "/ui/panel/field")
        assert subtree_is_coupled(table, "a", "/ui/panel")
        assert subtree_is_coupled(table, "a", "/ui")
        assert not subtree_is_coupled(table, "a", "/ui/other")

    def test_no_prefix_confusion(self):
        table = CoupleTable()
        table.add_link(
            CoupleLink(source=global_id("a", "/ui/panel2"), target=B)
        )
        assert not subtree_is_coupled(table, "a", "/ui/panel")

    def test_other_instance_ignored(self):
        table = CoupleTable()
        table.add_link(CoupleLink(source=A, target=B))
        assert not subtree_is_coupled(table, "c", "/ui/x")
