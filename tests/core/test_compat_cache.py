"""Tests for spec fingerprints and the structural-mapping cache (§3.3)."""


from repro.core import compat, state_sync
from repro.core.compat import (
    CorrespondenceRegistry,
    MappingCache,
    mapping_cache_key,
    spec_fingerprint,
)
from repro.toolkit.builder import to_spec
from repro.toolkit.widgets import Form, Shell, TextField


def make_tree(root="app", field="name"):
    shell = Shell(root, title="t")
    form = Form("form", parent=shell)
    TextField(field, parent=form)
    return shell


class TestSpecFingerprint:
    def test_ignores_state_values(self):
        one, two = make_tree(), make_tree()
        two.find("form/name").set("value", "completely different")
        assert spec_fingerprint(to_spec(one)) == spec_fingerprint(to_spec(two))

    def test_sensitive_to_names(self):
        assert spec_fingerprint(to_spec(make_tree())) != spec_fingerprint(
            to_spec(make_tree(field="other"))
        )

    def test_sensitive_to_types_and_nesting(self):
        flat = Shell("app", title="t")
        TextField("name", parent=flat)
        assert spec_fingerprint(to_spec(make_tree())) != spec_fingerprint(
            to_spec(flat)
        )

    def test_stable_across_serialization(self):
        spec = to_spec(make_tree())
        assert spec_fingerprint(spec) == spec_fingerprint(dict(spec))


class TestMappingCache:
    def test_miss_then_hit(self):
        cache = MappingCache()
        key = ("fa", "fb", "auto", 0, None)
        assert cache.lookup(key) is None
        cache.store(key, {"": ""})
        assert cache.lookup(key) == {"": ""}
        assert cache.hits == 1 and cache.misses == 1

    def test_lookup_returns_a_copy(self):
        cache = MappingCache()
        key = ("fa", "fb", "auto", 0, None)
        cache.store(key, {"": ""})
        cache.lookup(key)["corrupted"] = "x"
        assert cache.lookup(key) == {"": ""}

    def test_eviction_respects_maxsize(self):
        cache = MappingCache(maxsize=2)
        for i in range(5):
            cache.store((i,), {"": ""})
        assert len(cache) <= 2

    def test_clear_resets_counters(self):
        cache = MappingCache()
        cache.store(("k",), {})
        cache.lookup(("k",))
        cache.clear()
        assert cache.snapshot() == {"hits": 0, "misses": 0, "size": 0}


class TestCacheKey:
    def test_epoch_invalidates_on_declare(self):
        registry = CorrespondenceRegistry()
        spec = to_spec(make_tree())
        before = mapping_cache_key(spec, spec, "auto", registry)
        registry.declare(
            "label", "textfield", {"text": "value", "visible": "visible"}
        )
        after = mapping_cache_key(spec, spec, "auto", registry)
        assert before != after

    def test_predefined_mapping_part_of_key(self):
        spec = to_spec(make_tree())
        plain = mapping_cache_key(spec, spec, "auto", None)
        predefined = mapping_cache_key(spec, spec, "auto", None, {"": ""})
        assert plain != predefined

    def test_strategy_part_of_key(self):
        spec = to_spec(make_tree())
        assert mapping_cache_key(spec, spec, "auto", None) != mapping_cache_key(
            spec, spec, "exhaustive", None
        )


class TestResolveMappingUsesCache:
    def test_repeat_apply_hits_cache(self):
        cache = compat.DEFAULT_MAPPING_CACHE
        cache.clear()
        source_payload = state_sync.build_state_payload(make_tree("src"))
        target = make_tree("dst")
        state_sync.apply_state_payload(target, source_payload)
        assert cache.misses >= 1 and cache.hits == 0
        misses_after_first = cache.misses
        state_sync.apply_state_payload(target, source_payload)
        assert cache.hits >= 1
        assert cache.misses == misses_after_first

    def test_cached_mapping_produces_same_result(self):
        compat.DEFAULT_MAPPING_CACHE.clear()
        source = make_tree("src")
        source.find("form/name").set("value", "first")
        target = make_tree("dst")
        first = state_sync.apply_state_payload(
            target, state_sync.build_state_payload(source)
        )
        source.find("form/name").set("value", "second")
        second = state_sync.apply_state_payload(
            target, state_sync.build_state_payload(source)
        )
        assert first.mapping == second.mapping
        assert target.find("form/name").value == "second"

    def test_report_exposes_mapping(self):
        target = make_tree("dst")
        report = state_sync.apply_state_payload(
            target, state_sync.build_state_payload(make_tree("src"))
        )
        assert report.mapping is not None
        assert set(report.mapping) == {"", "form", "form/name"}


class TestIdentityMappingMemo:
    def test_same_type_identity(self):
        mapping = compat.attribute_mapping("textfield", "textfield")
        assert mapping["value"] == "value"

    def test_returns_fresh_copy(self):
        one = compat.attribute_mapping("textfield", "textfield")
        one["tainted"] = "x"
        assert "tainted" not in compat.attribute_mapping(
            "textfield", "textfield"
        )
