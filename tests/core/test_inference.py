"""Tests for correspondence inference (§5 future-work extension)."""

import pytest

from repro.core.compat import (
    CorrespondenceRegistry,
    declare_inferred,
    infer_correspondence,
)
from repro.errors import IncompatibleObjectsError
from repro.session import LocalSession
from repro.toolkit.widgets import Label, Shell, TextField


class TestInference:
    def test_same_type_identity(self):
        mapping = infer_correspondence("textfield", "textfield")
        assert mapping == {"value": "value"}

    def test_label_to_textfield_by_kind(self):
        # label.text (text) has no same-named counterpart in textfield;
        # inference falls back to the relevant text-kind attribute: value.
        mapping = infer_correspondence("label", "textfield")
        assert mapping == {"text": "value"}

    def test_scale_to_scale_like(self):
        mapping = infer_correspondence("scale", "scale")
        assert mapping["value"] == "value"
        assert mapping["label"] == "label"

    def test_prefers_same_name(self):
        # togglebutton and scale both have 'label'; name match wins over
        # kind fallbacks.
        mapping = infer_correspondence("togglebutton", "scale")
        assert mapping is not None
        assert mapping["label"] == "label"

    def test_refuses_cross_kind_guess(self):
        # canvas.strokes is a list; a label offers no list-kind attribute.
        assert infer_correspondence("canvas", "label") is None

    def test_injective(self):
        # optionmenu has three relevant attrs (label, entries, selection);
        # whatever the target, no two may map to the same attribute.
        mapping = infer_correspondence("optionmenu", "listbox")
        if mapping is not None:
            values = list(mapping.values())
            assert len(values) == len(set(values))

    def test_declare_inferred_installs_both_directions(self):
        registry = CorrespondenceRegistry()
        mapping = declare_inferred("label", "textfield", registry)
        assert registry.lookup("label", "textfield") == mapping
        assert registry.lookup("textfield", "label") == {
            v: k for k, v in mapping.items()
        }

    def test_declare_inferred_raises_on_failure(self):
        with pytest.raises(IncompatibleObjectsError):
            declare_inferred("canvas", "label", CorrespondenceRegistry())

    def test_inferred_correspondence_end_to_end(self):
        """A cross-type copy works with zero manual declarations."""
        registry = CorrespondenceRegistry()
        declare_inferred("label", "textfield", registry)
        session = LocalSession(correspondences=registry)
        try:
            a = session.create_instance("a", user="u1")
            b = session.create_instance("b", user="u2")
            src = a.add_root(Shell("src"))
            Label("msg", parent=src, text="auto-mapped")
            dst = b.add_root(Shell("dst"))
            TextField("msg", parent=dst)
            b.copy_from(dst.find("/dst/msg"), ("a", "/src/msg"))
            assert dst.find("/dst/msg").value == "auto-mapped"
        finally:
            session.close()
