"""Unit tests for the CoSendCommand dispatch registry (§3.4)."""

import pytest

from repro.core.commands import CommandRegistry
from repro.errors import UnknownCommandError


class TestCommandRegistry:
    def test_register_and_dispatch(self):
        reg = CommandRegistry()
        reg.register("ping", lambda data, sender: {"pong": data})
        assert reg.dispatch("ping", 7, "a") == {"pong": 7}
        assert reg.dispatched == 1

    def test_handler_receives_sender(self):
        reg = CommandRegistry()
        seen = []
        reg.register("who", lambda data, sender: seen.append(sender))
        reg.dispatch("who", None, "instance-9")
        assert seen == ["instance-9"]

    def test_unknown_command_raises_and_counts(self):
        reg = CommandRegistry()
        with pytest.raises(UnknownCommandError):
            reg.dispatch("ghost", None, "a")
        assert reg.unknown == 1

    def test_replace_handler(self):
        reg = CommandRegistry()
        reg.register("c", lambda d, s: 1)
        reg.register("c", lambda d, s: 2)
        assert reg.dispatch("c", None, "a") == 2

    def test_unregister(self):
        reg = CommandRegistry()
        reg.register("c", lambda d, s: 1)
        assert reg.unregister("c")
        assert not reg.unregister("c")
        assert not reg.knows("c")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            CommandRegistry().register("", lambda d, s: None)

    def test_commands_sorted(self):
        reg = CommandRegistry()
        reg.register("zeta", lambda d, s: None)
        reg.register("alpha", lambda d, s: None)
        assert reg.commands() == ["alpha", "zeta"]

    def test_non_serializable_reply_rejected(self):
        reg = CommandRegistry()
        reg.register("bad", lambda d, s: object())
        with pytest.raises(ValueError):
            reg.dispatch("bad", None, "a")

    def test_none_reply_allowed(self):
        reg = CommandRegistry()
        reg.register("fire-and-forget", lambda d, s: None)
        assert reg.dispatch("fire-and-forget", 1, "a") is None
