"""Unit tests for destructive merging and flexible matching (§3.3)."""

import pytest

from repro.core.merging import destructive_merge, flexible_match
from repro.errors import BuilderError
from repro.toolkit.builder import build, to_spec
from repro.toolkit.tree import subtree_state
from repro.toolkit.widgets import Canvas, Form, Label, Shell, TextField


def source_tree():
    """The dominating complex object."""
    root = Shell("src", title="Source")
    form = Form("form", parent=root)
    TextField("name", parent=form)
    Label("hint", parent=form, text="from source")
    root.find("/src/form/name").set("value", "dominating")
    return root


def source_payload():
    root = source_tree()
    return to_spec(root), subtree_state(root)


class TestDestructiveMerge:
    def test_identical_structure_only_updates(self):
        spec, state = source_payload()
        target = build(to_spec(source_tree()))
        report = destructive_merge(target, spec, state)
        assert report.created == [] and report.destroyed == []
        assert target.find("form/name").get("value") == "dominating"
        assert "form/name" in report.updated

    def test_missing_objects_created(self):
        spec, state = source_payload()
        target = Shell("dst")
        Form("form", parent=target)  # lacks the two fields
        report = destructive_merge(target, spec, state)
        assert set(report.created) == {"form/name", "form/hint"}
        assert target.find("form/name").get("value") == "dominating"
        assert target.find("form/hint").get("text") == "from source"

    def test_conflicting_type_destroyed_and_rebuilt(self):
        spec, state = source_payload()
        target = Shell("dst")
        form = Form("form", parent=target)
        Canvas("name", parent=form)  # conflicts: same name, wrong type
        report = destructive_merge(target, spec, state)
        assert "form/name" in report.destroyed
        assert "form/name" in report.created
        assert target.find("form/name").TYPE_NAME == "textfield"
        assert target.find("form/name").get("value") == "dominating"

    def test_extra_target_children_conserved(self):
        spec, state = source_payload()
        target = build(to_spec(source_tree()))
        extra = TextField("private", parent=target.find("form"))
        extra.set("value", "mine")
        report = destructive_merge(target, spec, state)
        assert "form/private" in report.conserved
        assert target.find("form/private").get("value") == "mine"

    def test_whole_subtree_created(self):
        spec, state = source_payload()
        target = Shell("dst")  # completely empty
        report = destructive_merge(target, spec, state)
        assert "form" in report.created
        # Children of a created node are not re-listed individually but
        # their state is applied.
        assert target.find("form/name").get("value") == "dominating"

    def test_invalid_spec_rejected(self):
        target = Shell("dst")
        with pytest.raises(BuilderError):
            destructive_merge(target, {"type": "ghost", "name": "x"})

    def test_report_summary_counts(self):
        spec, state = source_payload()
        target = Shell("dst")
        report = destructive_merge(target, spec, state)
        summary = report.summary()
        assert summary["created"] == len(report.created)
        assert report.changed


class TestFlexibleMatch:
    def test_identical_substructures_synchronized(self):
        spec, state = source_payload()
        target = build(to_spec(source_tree()))
        report = flexible_match(target, spec, state)
        assert target.find("form/name").get("value") == "dominating"
        assert report.destroyed == []

    def test_differing_substructures_conserved(self):
        spec, state = source_payload()
        target = Shell("dst")
        form = Form("form", parent=target)
        # Same name but different type: conserved, NOT destroyed.
        conflicting = Canvas("name", parent=form)
        conflicting.draw_stroke([(0, 0)])
        report = flexible_match(target, spec, state)
        assert "form/name" in report.conserved
        assert target.find("form/name").TYPE_NAME == "canvas"
        assert target.find("form/name").stroke_count == 1
        # The source's hint had no conflict and was merged in.
        assert "form/hint" in report.created

    def test_target_extras_survive(self):
        spec, state = source_payload()
        target = build(to_spec(source_tree()))
        TextField("private", parent=target.find("form"))
        report = flexible_match(target, spec, state)
        assert "form/private" in report.conserved
        assert not target.find("form/private").destroyed

    def test_never_destroys(self):
        spec, state = source_payload()
        target = Shell("dst")
        form = Form("form", parent=target)
        Canvas("name", parent=form)
        before = sum(1 for _ in target.walk())
        report = flexible_match(target, spec, state)
        assert report.destroyed == []
        assert sum(1 for _ in target.walk()) >= before

    def test_root_type_mismatch_conserves_root_state(self):
        spec, state = source_payload()
        target = Form("dst", title="keep me")  # shell vs form at the root
        report = flexible_match(target, spec, state)
        assert "" in report.conserved
        assert target.get("title") == "keep me"

    def test_merged_in_subtree_carries_state(self):
        spec, state = source_payload()
        target = Shell("dst")
        report = flexible_match(target, spec, state)
        assert target.find("form/name").get("value") == "dominating"
