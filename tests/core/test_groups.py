"""Tests for CouplingGroup: named dynamic groups (§2.2 dynamic grouping)."""

import pytest

from repro.core.groups import CouplingGroup
from repro.errors import CouplingError
from repro.session import LocalSession
from repro.toolkit.widgets import Scale, Shell, TextField

FIELD = "/ui/field"
ZOOM = "/ui/zoom"


def build_tree():
    root = Shell("ui")
    TextField("field", parent=root)
    Scale("zoom", parent=root, maximum=100)
    return root


@pytest.fixture
def arena():
    session = LocalSession()
    trees = {}
    for i in range(4):
        inst = session.create_instance(f"i{i}", user=f"u{i}")
        trees[f"i{i}"] = inst.add_root(build_tree())
    coordinator = session.create_instance("coord", user="moderator")
    yield session, coordinator, trees
    session.close()


class TestMembership:
    def test_requires_paths(self, arena):
        _, coordinator, _ = arena
        with pytest.raises(ValueError):
            CouplingGroup(coordinator, "empty", [])

    def test_first_member_is_anchor(self, arena):
        session, coordinator, trees = arena
        group = CouplingGroup(coordinator, "g", [FIELD])
        group.add_member("i0")
        assert group.anchor == "i0"
        assert "i0" in group and len(group) == 1
        # A lone member has no links yet.
        session.pump()
        assert len(session.server.couples) == 0

    def test_duplicate_member_rejected(self, arena):
        _, coordinator, _ = arena
        group = CouplingGroup(coordinator, "g", [FIELD])
        group.add_member("i0")
        with pytest.raises(CouplingError):
            group.add_member("i0")

    def test_remove_unknown_rejected(self, arena):
        _, coordinator, _ = arena
        group = CouplingGroup(coordinator, "g", [FIELD])
        with pytest.raises(CouplingError):
            group.remove_member("ghost")

    def test_star_topology_links(self, arena):
        session, coordinator, trees = arena
        group = CouplingGroup(coordinator, "g", [FIELD, ZOOM])
        for member in ("i0", "i1", "i2"):
            group.add_member(member)
        session.pump()
        # Star: 2 members coupled to the anchor, 2 paths each.
        assert len(session.server.couples) == 4

    def test_events_reach_all_members(self, arena):
        session, coordinator, trees = arena
        group = CouplingGroup(coordinator, "g", [FIELD])
        for member in ("i0", "i1", "i2", "i3"):
            group.add_member(member)
        session.pump()
        trees["i2"].find(FIELD).commit("from the middle")
        session.pump()
        for member in ("i0", "i1", "i3"):
            assert trees[member].find(FIELD).value == "from the middle"

    def test_remove_non_anchor(self, arena):
        session, coordinator, trees = arena
        group = CouplingGroup(coordinator, "g", [FIELD])
        for member in ("i0", "i1", "i2"):
            group.add_member(member)
        session.pump()
        group.remove_member("i1")
        session.pump()
        trees["i0"].find(FIELD).commit("still grouped")
        session.pump()
        assert trees["i2"].find(FIELD).value == "still grouped"
        assert trees["i1"].find(FIELD).value == ""

    def test_anchor_departure_reelects_and_reconnects(self, arena):
        session, coordinator, trees = arena
        group = CouplingGroup(coordinator, "g", [FIELD])
        for member in ("i0", "i1", "i2"):
            group.add_member(member)
        session.pump()
        group.remove_member("i0")  # the anchor leaves
        session.pump()
        assert group.anchor in ("i1", "i2")
        trees["i1"].find(FIELD).commit("survived re-anchoring")
        session.pump()
        assert trees["i2"].find(FIELD).value == "survived re-anchoring"
        assert trees["i0"].find(FIELD).value == ""

    def test_dissolve(self, arena):
        session, coordinator, trees = arena
        group = CouplingGroup(coordinator, "g", [FIELD, ZOOM])
        for member in ("i0", "i1", "i2"):
            group.add_member(member)
        session.pump()
        group.dissolve()
        session.pump()
        assert len(group) == 0
        assert group.anchor is None
        assert len(session.server.couples) == 0

    def test_heterogeneous_path_overrides(self, arena):
        session, coordinator, trees = arena
        other = session.create_instance("odd", user="odd-user")
        odd_tree = Shell("other")
        TextField("entry", parent=odd_tree)
        other.add_root(odd_tree)
        group = CouplingGroup(coordinator, "g", [FIELD])
        group.add_member("i0")
        group.add_member("odd", path_overrides={FIELD: "/other/entry"})
        session.pump()
        trees["i0"].find(FIELD).commit("mapped")
        session.pump()
        assert odd_tree.find("/other/entry").value == "mapped"

    def test_override_for_unknown_path_rejected(self, arena):
        _, coordinator, _ = arena
        group = CouplingGroup(coordinator, "g", [FIELD])
        with pytest.raises(ValueError):
            group.add_member("i0", path_overrides={"/bogus": "/x"})

    def test_coordinator_need_not_be_member(self, arena):
        session, coordinator, trees = arena
        group = CouplingGroup(coordinator, "g", [FIELD])
        group.add_member("i0")
        group.add_member("i1")
        session.pump()
        assert "coord" not in group
        # The coordinator has no widget tree at all — pure third party.
        assert coordinator.roots() == ()
