"""Tests for the COSOFT classroom application (§4)."""

import pytest

from repro.apps.classroom import (
    StudentEnvironment,
    TeacherEnvironment,
    couple_simulation_directly,
)
from repro.session import LocalSession


@pytest.fixture
def classroom():
    session = LocalSession()
    teacher = TeacherEnvironment(
        session.create_instance("teacher", user="hoppe")
    )
    students = [
        StudentEnvironment(
            session.create_instance(f"student-{i}", user=f"kid-{i}")
        )
        for i in range(2)
    ]
    session.pump()
    yield session, teacher, students
    session.close()


class TestHelpRequests:
    def test_request_buffered_at_teacher(self, classroom):
        session, teacher, (s1, s2) = classroom
        ack = s1.request_help("lost", "teacher")
        assert ack == {"queued": 1}
        queue = teacher.pending_help()
        assert queue[0]["student"] == "student-0"
        assert queue[0]["data"]["message"] == "lost"

    def test_multiple_requests_queue_in_order(self, classroom):
        session, teacher, (s1, s2) = classroom
        s1.request_help("first", "teacher")
        s2.request_help("second", "teacher")
        students = [entry["student"] for entry in teacher.pending_help()]
        assert students == ["student-0", "student-1"]


class TestJoinSession:
    def test_indirect_join_couples_params_not_display(self, classroom):
        session, teacher, (s1, _) = classroom
        coupled = teacher.join_session("student-0")
        session.pump()
        coupled_teacher_paths = {t for t, _ in coupled}
        assert "/teacher/params/amplitude" in coupled_teacher_paths
        assert "/teacher/simulation" not in coupled_teacher_paths
        assert teacher.instance.is_coupled("/teacher/params/amplitude")
        assert not teacher.instance.is_coupled("/teacher/simulation")

    def test_parameter_changes_regenerate_remote_display(self, classroom):
        session, teacher, (s1, _) = classroom
        teacher.join_session("student-0")
        session.pump()
        regens_before = s1.simulation_regenerations
        teacher.set_parameters(6, 2)
        session.pump()
        assert s1._amp.value == 6
        assert s1._freq.value == 2
        assert s1.simulation_regenerations > regens_before
        # Indirect coupling converges the displays without shipping them.
        assert s1.simulation_strokes == teacher.simulation_strokes

    def test_student_changes_flow_back(self, classroom):
        session, teacher, (s1, _) = classroom
        teacher.join_session("student-0")
        session.pump()
        s1.set_parameters(3, 5)
        session.pump()
        assert teacher._amp.value == 3
        assert teacher.simulation_strokes == s1.simulation_strokes

    def test_notes_coupled_to_answer(self, classroom):
        session, teacher, (s1, _) = classroom
        teacher.join_session("student-0")
        session.pump()
        teacher.write_note("watch the amplitude")
        session.pump()
        assert s1.answer_text == "watch the amplitude"

    def test_leave_session_decouples(self, classroom):
        session, teacher, (s1, _) = classroom
        teacher.join_session("student-0")
        session.pump()
        count = teacher.leave_session("student-0")
        session.pump()
        assert count == 3
        teacher.set_parameters(9, 9)
        session.pump()
        assert s1._amp.value != 9

    def test_second_student_unaffected(self, classroom):
        session, teacher, (s1, s2) = classroom
        teacher.join_session("student-0")
        session.pump()
        teacher.set_parameters(7, 1)
        session.pump()
        assert s1._amp.value == 7
        assert s2._amp.value == 1  # the default


class TestDirectCoupling:
    def test_direct_display_coupling_ships_strokes(self, classroom):
        session, teacher, (s1, _) = classroom
        couple_simulation_directly(teacher, "student-0")
        session.pump()
        before = session.network.stats.bytes
        teacher.set_parameters(8, 4)
        session.pump()
        shipped = session.network.stats.bytes - before
        # The display strokes travelled over the wire (big payload).
        assert s1.simulation_strokes == teacher.simulation_strokes
        assert shipped > 2000

    def test_indirect_coupling_is_cheaper(self):
        """The E9 claim, asserted qualitatively at unit-test scale."""

        def run(indirect):
            session = LocalSession()
            try:
                teacher = TeacherEnvironment(
                    session.create_instance("teacher", user="t")
                )
                s1 = StudentEnvironment(
                    session.create_instance("student-0", user="s")
                )
                session.pump()
                if indirect:
                    teacher.join_session(
                        "student-0",
                        pairs=[
                            ("/teacher/params/amplitude",
                             "/student/exercise/amplitude"),
                            ("/teacher/params/frequency",
                             "/student/exercise/frequency"),
                        ],
                    )
                else:
                    couple_simulation_directly(teacher, "student-0")
                session.pump()
                base = session.network.stats.bytes
                for value in range(1, 6):
                    teacher.set_parameters(value, value)
                session.pump()
                assert (
                    s1.simulation_strokes == teacher.simulation_strokes
                )
                return session.network.stats.bytes - base
            finally:
                session.close()

        assert run(indirect=True) * 2 < run(indirect=False)


class TestInspection:
    def test_teacher_pulls_student_answer(self, classroom):
        session, teacher, (s1, _) = classroom
        s1.write_answer("my solution")
        session.pump()
        teacher.inspect_student_work(
            "student-0", "/student/exercise/answer", "/teacher/notes"
        )
        assert teacher.ui.find("/teacher/notes").text == "my solution"
