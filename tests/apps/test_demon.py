"""Tests for the §4 intelligent demon (automatic help requests)."""

import pytest

from repro.apps.classroom import (
    IntelligentDemon,
    StudentEnvironment,
    TeacherEnvironment,
)
from repro.session import LocalSession


@pytest.fixture
def room():
    session = LocalSession()
    teacher = TeacherEnvironment(
        session.create_instance("teacher", user="t", app_type="cosoft-teacher")
    )
    student = StudentEnvironment(
        session.create_instance("ws-0", user="kim", app_type="cosoft-student")
    )
    demon = IntelligentDemon(student, "teacher", fiddle_threshold=4)
    session.pump()
    yield session, teacher, student, demon
    session.close()


class TestDemon:
    def test_thrashing_triggers_automatic_request(self, room):
        session, teacher, student, demon = room
        for i in range(4):
            student.set_parameters(i + 1, 1)
        session.pump()
        queue = teacher.pending_help()
        assert len(queue) == 1
        assert queue[0]["data"]["demon"] is True
        assert demon.alerts_sent == 1

    def test_set_parameters_counts_both_scales(self, room):
        session, teacher, student, demon = room
        # set_parameters fires two events; two calls reach threshold 4.
        student.set_parameters(2, 2)
        student.set_parameters(3, 3)
        session.pump()
        assert demon.alerts_sent == 1

    def test_writing_an_answer_resets_the_counter(self, room):
        session, teacher, student, demon = room
        student.set_parameters(2, 2)          # 2 fiddles
        student.write_answer("A=2 because…")  # progress: reset
        student.set_parameters(3, 3)          # 2 fiddles again
        session.pump()
        assert demon.alerts_sent == 0
        assert teacher.pending_help() == []

    def test_disarmed_until_progress(self, room):
        session, teacher, student, demon = room
        for i in range(8):
            student.set_parameters(i + 1, 1)
        session.pump()
        assert demon.alerts_sent == 1  # not re-fired while disarmed
        student.write_answer("trying something")
        for i in range(4):
            student.set_parameters(i + 2, 2)
        session.pump()
        assert demon.alerts_sent == 2

    def test_teacher_driving_the_scales_does_not_count(self, room):
        session, teacher, student, demon = room
        teacher.join_session("ws-0")
        session.pump()
        for i in range(6):
            teacher.set_parameters(i + 1, 1)
        session.pump()
        # The coupled re-executions carried the teacher's user tag.
        assert demon.alerts_sent == 0

    def test_threshold_validated(self, room):
        _, _, student, _ = room
        with pytest.raises(ValueError):
            IntelligentDemon(student, "teacher", fiddle_threshold=0)
