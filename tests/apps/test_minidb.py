"""Unit tests for the mini relational engine."""

import pytest

from repro.apps.minidb import (
    Condition,
    Database,
    QueryError,
    sample_publications,
)


@pytest.fixture
def db():
    database = Database("test")
    table = database.create_table("people", ("name", "age", "city"))
    table.insert(name="ada", age=36, city="london")
    table.insert(name="grace", age=85, city="new york")
    table.insert(name="alan", age=41, city="london")
    return database


class TestSchema:
    def test_create_and_lookup(self, db):
        assert db.tables() == ("people",)
        assert len(db.table("people")) == 3

    def test_duplicate_table_rejected(self, db):
        with pytest.raises(QueryError):
            db.create_table("people", ("x",))

    def test_empty_columns_rejected(self):
        with pytest.raises(QueryError):
            Database().create_table("t", ())

    def test_unknown_table(self, db):
        with pytest.raises(QueryError):
            db.table("ghost")

    def test_insert_unknown_column_rejected(self, db):
        with pytest.raises(QueryError):
            db.table("people").insert(name="x", shoe_size=42)

    def test_missing_columns_become_none(self, db):
        db.table("people").insert(name="partial")
        result = db.select("people", [Condition("name", "eq", "partial")])
        assert result.as_dicts()[0]["age"] is None


class TestConditions:
    def test_unknown_operator_rejected(self):
        with pytest.raises(QueryError):
            Condition("x", "resembles", 1)

    def test_unknown_column_raises_at_match(self, db):
        with pytest.raises(QueryError):
            db.select("people", [Condition("ghost", "eq", 1)])

    @pytest.mark.parametrize(
        "op,value,expected",
        [
            ("eq", "ada", {"ada"}),
            ("ne", "ada", {"grace", "alan"}),
            ("substring", "a", {"ada", "grace", "alan"}),
            ("prefix", "a", {"ada", "alan"}),
            ("like-one-of", "ada, grace", {"ada", "grace"}),
        ],
    )
    def test_string_operators(self, db, op, value, expected):
        result = db.select("people", [Condition("name", op, value)], ["name"])
        assert {row[0] for row in result.rows} == expected

    @pytest.mark.parametrize(
        "op,value,expected",
        [
            ("lt", 41, {"ada"}),
            ("le", 41, {"ada", "alan"}),
            ("gt", 41, {"grace"}),
            ("ge", 41, {"grace", "alan"}),
        ],
    )
    def test_numeric_operators(self, db, op, value, expected):
        result = db.select("people", [Condition("age", op, value)], ["name"])
        assert {row[0] for row in result.rows} == expected

    def test_comparison_with_none_cell_is_false(self, db):
        db.table("people").insert(name="unknown-age")
        result = db.select("people", [Condition("age", "lt", 100)], ["name"])
        assert "unknown-age" not in {row[0] for row in result.rows}

    def test_conjunction(self, db):
        result = db.select(
            "people",
            [Condition("city", "eq", "london"), Condition("age", "gt", 40)],
            ["name"],
        )
        assert {row[0] for row in result.rows} == {"alan"}

    def test_wire_roundtrip(self):
        cond = Condition("age", "ge", 10)
        assert Condition.from_wire(cond.to_wire()) == cond


class TestSelect:
    def test_projection(self, db):
        result = db.select("people", columns=["name", "city"])
        assert result.columns == ("name", "city")
        assert all(len(row) == 2 for row in result.rows)

    def test_unknown_projection_column(self, db):
        with pytest.raises(QueryError):
            db.select("people", columns=["ghost"])

    def test_order_by(self, db):
        result = db.select("people", order_by="age", columns=["name"])
        assert [row[0] for row in result.rows] == ["ada", "alan", "grace"]

    def test_order_by_unknown_column(self, db):
        with pytest.raises(QueryError):
            db.select("people", order_by="ghost")

    def test_order_by_none_last(self, db):
        db.table("people").insert(name="x")
        result = db.select("people", order_by="age", columns=["name"])
        assert result.rows[-1][0] == "x"

    def test_limit(self, db):
        result = db.select("people", limit=2)
        assert len(result) == 2

    def test_cost_accounting(self, db):
        result = db.select("people")
        assert result.rows_scanned == 3
        db.select("people")
        assert db.total_rows_scanned == 6
        assert db.queries_executed == 2

    def test_formatted_rows(self, db):
        result = db.select(
            "people", [Condition("name", "eq", "ada")], ["name", "age"]
        )
        assert result.formatted() == ["ada | 36"]


class TestSampleDataset:
    def test_deterministic_per_seed(self):
        a = sample_publications(50, seed=1)
        b = sample_publications(50, seed=1)
        assert a.select("publications").rows == b.select("publications").rows

    def test_row_count(self):
        db = sample_publications(120)
        assert len(db.table("publications")) == 120

    def test_years_in_paper_era(self):
        db = sample_publications(100)
        result = db.select("publications", columns=["year"])
        years = [row[0] for row in result.rows]
        assert all(1986 <= y <= 1994 for y in years)
