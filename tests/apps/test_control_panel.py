"""Tests for the §4 interactive coupling control panel."""

import pytest

from repro.apps.classroom import StudentEnvironment, TeacherEnvironment
from repro.apps.control_panel import (
    CouplingControlPanel,
    enable_panel_introspection,
)
from repro.session import LocalSession


@pytest.fixture
def classroom():
    session = LocalSession()
    teacher_inst = session.create_instance(
        "liveboard", user="teacher", app_type="cosoft-teacher"
    )
    teacher = TeacherEnvironment(teacher_inst)
    students = {}
    for i in range(2):
        inst = session.create_instance(
            f"ws-{i}", user=f"kid-{i}", app_type="cosoft-student"
        )
        students[f"ws-{i}"] = StudentEnvironment(inst)
        enable_panel_introspection(inst)
    session.pump()
    panel = CouplingControlPanel(
        teacher_inst,
        correspondences={
            "/student/exercise/amplitude": "/teacher/params/amplitude",
            "/student/exercise/frequency": "/teacher/params/frequency",
            "/student/exercise/answer": "/teacher/notes",
        },
    )
    session.pump()
    yield session, teacher, students, panel
    session.close()


class TestRoster:
    def test_roster_lists_other_participants(self, classroom):
        _, _, _, panel = classroom
        participants = panel.refresh_roster()
        assert participants == ["ws-0", "ws-1"]
        items = panel.roster_list.get("items")
        assert any("kid-0" in row for row in items)
        assert any("cosoft-student" in row for row in items)

    def test_self_excluded(self, classroom):
        _, _, _, panel = classroom
        assert "liveboard" not in panel.refresh_roster()

    def test_unknown_participant_rejected(self, classroom):
        _, _, _, panel = classroom
        with pytest.raises(ValueError):
            panel.select_participant("ghost")


class TestObjectDiscovery:
    def test_loads_student_structure(self, classroom):
        session, _, _, panel = classroom
        paths = panel.select_participant("ws-0")
        assert "/student/exercise/amplitude" in paths
        assert "/student/exercise/answer" in paths
        assert "amplitude" in " ".join(panel.tree_list.get("items"))
        assert "ws-0" in panel.status_text

    def test_selection_through_the_ui_loads_objects(self, classroom):
        session, _, _, panel = classroom
        panel.refresh_roster()
        panel.roster_list.select_indices([1])  # ws-1 via the widget itself
        session.pump()
        assert "ws-1" in panel.status_text

    def test_participant_without_introspection_yields_empty(self, classroom):
        session, _, _, panel = classroom
        mute = session.create_instance("mute", user="quiet")
        session.pump()
        panel.refresh_roster()
        paths = panel.select_participant("mute")
        assert paths == []


class TestCoupleDecouple:
    def test_couple_selected_creates_working_links(self, classroom):
        session, teacher, students, panel = classroom
        panel.select_participant("ws-0")
        panel.select_objects(
            ["/student/exercise/amplitude", "/student/exercise/frequency"]
        )
        assert panel.couple_selected() == 2
        session.pump()
        students["ws-0"].set_parameters(7, 4)
        session.pump()
        assert teacher._amp.value == 7
        assert teacher._freq.value == 4
        # ws-1 untouched (selective grouping).
        assert students["ws-1"]._amp.value == 1

    def test_objects_without_counterpart_skipped(self, classroom):
        session, _, _, panel = classroom
        panel.select_participant("ws-0")
        # The help button exists only in the student environment and has
        # no declared counterpart: coupling it is skipped.
        panel.select_objects(["/student/exercise/help"])
        assert panel.couple_selected() == 0

    def test_decouple_selected(self, classroom):
        session, teacher, students, panel = classroom
        panel.select_participant("ws-0")
        panel.select_objects(["/student/exercise/amplitude"])
        panel.couple_selected()
        session.pump()
        panel.select_objects(["/student/exercise/amplitude"])
        assert panel.decouple_selected() == 1
        session.pump()
        students["ws-0"].set_parameters(9, 9)
        session.pump()
        assert teacher._amp.value != 9
        assert panel.active_links == []

    def test_end_all_sessions(self, classroom):
        session, _, students, panel = classroom
        for student_id in ("ws-0", "ws-1"):
            panel.select_participant(student_id)
            panel.select_objects(["/student/exercise/amplitude"])
            panel.couple_selected()
        session.pump()
        assert panel.end_all_sessions() == 2
        session.pump()
        assert len(session.server.couples) == 0

    def test_buttons_drive_the_panel(self, classroom):
        session, teacher, students, panel = classroom
        panel.select_participant("ws-0")
        panel.select_objects(["/student/exercise/answer"])
        panel.ui.find("objects/couple").press(user="teacher")
        session.pump()
        students["ws-0"].write_answer("typed by kid")
        session.pump()
        assert teacher.ui.find("/teacher/notes").text == "typed by kid"
