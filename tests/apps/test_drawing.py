"""Tests for the shared whiteboard application."""

import pytest

from repro.apps.drawing import Whiteboard
from repro.session import LocalSession


@pytest.fixture
def boards():
    session = LocalSession()
    boards = [
        Whiteboard(session.create_instance(f"wb-{i}", user=f"u{i}"))
        for i in range(3)
    ]
    session.pump()
    yield session, boards
    session.close()


class TestSharedDrawing:
    def test_strokes_propagate_after_join(self, boards):
        session, (w1, w2, w3) = boards
        w2.join("wb-0")
        session.pump()
        w1.draw([(0, 0), (3, 3)])
        session.pump()
        assert w2.stroke_count == 1
        assert w3.stroke_count == 0  # not joined

    def test_late_join_pulls_existing_drawing(self, boards):
        session, (w1, w2, _) = boards
        w1.draw([(1, 1)])
        w1.draw([(2, 2)])
        w2.join("wb-0")
        session.pump()
        assert w2.stroke_count == 2

    def test_join_via_any_member_joins_group(self, boards):
        session, (w1, w2, w3) = boards
        w2.join("wb-0")
        session.pump()
        w3.join("wb-1")  # joins through w2, reaches w1 transitively
        session.pump()
        w1.draw([(5, 5)])
        session.pump()
        assert w3.stroke_count == w1.stroke_count

    def test_colors_stay_private(self, boards):
        """Congruence relaxation: pen colors are per user."""
        session, (w1, w2, _) = boards
        w2.join("wb-0")
        session.pump()
        w1.pick_color("red")
        session.pump()
        assert w2.color_menu.selection == "black"
        w1.draw([(0, 0)])
        session.pump()
        w2.draw([(1, 1)])
        session.pump()
        colors = {s["color"] for s in w1.strokes}
        assert colors == {"red", "black"}
        assert w1.strokes == w2.strokes

    def test_clear_wipes_the_group(self, boards):
        session, (w1, w2, _) = boards
        w2.join("wb-0")
        session.pump()
        w1.draw([(0, 0)])
        session.pump()
        w2.clear()
        session.pump()
        assert w1.stroke_count == 0
        assert w2.stroke_count == 0

    def test_leave_keeps_local_drawing(self, boards):
        session, (w1, w2, _) = boards
        w2.join("wb-0")
        session.pump()
        w1.draw([(0, 0)])
        session.pump()
        w2.leave()
        session.pump()
        w1.draw([(9, 9)])
        session.pump()
        assert w1.stroke_count == 2
        assert w2.stroke_count == 1  # kept the pre-departure content

    def test_sequential_drawers_converge_identically(self, boards):
        session, (w1, w2, w3) = boards
        w2.join("wb-0")
        w3.join("wb-0")
        session.pump()
        for i in range(5):
            for board in (w1, w2, w3):
                board.draw([(i, 0)])
                session.pump()
        assert w1.stroke_count == 15
        assert w1.strokes == w2.strokes == w3.strokes

    def test_racing_drawers_converge_as_a_set(self, boards):
        """Optimistic local echo (feedback before locking, §3.2) means two
        strokes racing through the server may be appended in different
        orders at different replicas: the stroke *sets* converge, the order
        may transiently differ.  This documents the paper's optimistic
        semantics rather than hiding it."""
        session, (w1, w2, _) = boards
        w2.join("wb-0")
        session.pump()
        w1.draw([(0, 0)])
        w2.draw([(9, 9)])  # in flight while w1's broadcast races it
        session.pump()

        def key(stroke):
            return tuple(map(tuple, stroke["points"]))

        denied = (
            w1.instance.last_execution.lock_denied
            or w2.instance.last_execution.lock_denied
        )
        if not denied:
            assert sorted(map(key, w1.strokes)) == sorted(map(key, w2.strokes))
            assert w1.stroke_count == 2
