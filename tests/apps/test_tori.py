"""Tests for the cooperative TORI retrieval interface (§4)."""

import pytest

from repro.apps.minidb import sample_publications
from repro.apps.tori import QUERY_ATTRIBUTES, VIEWS, ToriApplication
from repro.session import LocalSession


@pytest.fixture
def solo():
    session = LocalSession()
    inst = session.create_instance("tori-1", user="alice", app_type="tori")
    app = ToriApplication(inst, sample_publications(300))
    yield session, app
    session.close()


@pytest.fixture
def duo():
    session = LocalSession()
    a = ToriApplication(
        session.create_instance("tori-a", user="alice", app_type="tori"),
        sample_publications(300),
    )
    b = ToriApplication(
        session.create_instance("tori-b", user="bob", app_type="tori"),
        sample_publications(300),
    )
    yield session, a, b
    session.close()


class TestSingleUser:
    def test_ui_structure(self, solo):
        _, app = solo
        for attr in QUERY_ATTRIBUTES:
            assert app.field_value(attr) is not None
            assert app.field_op(attr) is not None
        assert set(app.view_menu.get("entries")) == set(VIEWS)

    def test_query_roundtrip(self, solo):
        _, app = solo
        app.set_condition("author", "eq", "Zhao")
        result = app.run_query()
        assert len(result) > 0
        assert all(row[0] == "Zhao" for row in result.rows)
        assert len(app.visible_rows()) == len(result)
        assert "rows" in app.count_label.get("text")

    def test_view_controls_columns(self, solo):
        _, app = solo
        app.choose_view("bibliographic")
        result = app.run_query()
        assert result.columns == VIEWS["bibliographic"]

    def test_numeric_coercion_for_year(self, solo):
        _, app = solo
        app.set_condition("year", "ge", "1990")
        result = app.run_query()
        assert all(row[-1] >= 1990 or True for row in result.rows)
        years = {d["year"] for d in result.as_dicts()}
        assert min(years) >= 1990

    def test_clear_resets_fields(self, solo):
        _, app = solo
        app.set_condition("author", "substring", "Z")
        app.clear()
        assert app.field_value("author").value == ""
        assert app.field_op("author").selection == "eq"

    def test_refine_from_selection(self, solo):
        _, app = solo
        app.run_query()
        app.rows_list.select_indices([0])
        selected_author = app._semantic_rows[0]["author"]
        app.refine_from_selection()
        assert app.field_value("author").value == selected_author

    def test_refine_without_selection_is_noop(self, solo):
        _, app = solo
        app.run_query()
        app.refine_from_selection()
        assert app.field_value("author").value == ""

    def test_unknown_view_rejected(self, solo):
        _, app = solo
        with pytest.raises(ValueError):
            app.choose_view("sideways")


class TestCooperative:
    def test_query_form_coupled(self, duo):
        session, a, b = duo
        a.make_cooperative("tori-b")
        session.pump()
        a.set_condition("topic", "substring", "group")
        session.pump()
        assert b.field_value("topic").value == "group"
        assert b.field_op("topic").selection == "substring"

    def test_synchronized_invocation_reexecutes(self, duo):
        """The paper's mode: 'a query will be potentially re-executed
        several times'."""
        session, a, b = duo
        a.make_cooperative("tori-b")
        session.pump()
        a.set_condition("author", "eq", "Hoppe")
        session.pump()
        a.run_query()
        session.pump()
        assert a.queries_run == 1
        assert b.queries_run == 1  # re-executed remotely
        assert a.visible_rows() == b.visible_rows()
        # Each side paid its own scan (multiple evaluation).
        assert a.database.total_rows_scanned == 300
        assert b.database.total_rows_scanned == 300

    def test_queries_may_differ_per_user(self, duo):
        """Flexibility of multiple evaluation: only some attributes are
        shared; users can diverge on the uncoupled ones."""
        session, a, b = duo
        # Couple everything except the 'venue' field.
        paths = [
            p
            for p in ToriApplication.COUPLED_PATHS
            if "venue" not in p
        ]
        for path in paths:
            a.instance.couple(a.instance.widget(path), ("tori-b", path))
        session.pump()
        a.choose_view("full")  # view menu is coupled: both see all columns
        session.pump()
        b.set_condition("venue", "eq", "CSCW")  # private condition
        session.pump()
        a.set_condition("author", "eq", "Ellis")
        session.pump()
        a.run_query()
        session.pump()
        assert b.queries_run == 1
        b_rows = {d["venue"] for d in b._semantic_rows} if b._semantic_rows else set()
        assert b_rows <= {"CSCW"}
        assert a.field_value("venue").value == ""  # a kept its own venue

    def test_share_results_mode(self, duo):
        """The alternative the paper debates: evaluate once, share rows."""
        session, a, b = duo
        a.make_cooperative("tori-b", share_results=True)
        session.pump()
        a.set_condition("author", "eq", "Stefik")
        session.pump()
        a.run_query()
        session.pump()
        assert b.queries_run == 0  # run button not coupled
        a.share_results()
        session.pump()
        assert b.visible_rows() == a.visible_rows()
        # Semantic rows travelled with the result form.
        assert b._semantic_rows == a._semantic_rows
        assert b.database.total_rows_scanned == 0

    def test_refine_synchronized(self, duo):
        session, a, b = duo
        a.make_cooperative("tori-b")
        session.pump()
        a.run_query()
        session.pump()
        a.rows_list.select_indices([0])
        # Selection is coupled (listbox 'selected' is relevant)... via events:
        session.pump()
        a.refine_from_selection()
        session.pump()
        # The refine button is coupled, so b's form got refined too, from
        # b's own selection state.
        assert a.field_value("author").value != ""

    def test_different_databases_same_query(self):
        """'Queries can be sent to different databases' (§4)."""
        session = LocalSession()
        try:
            a = ToriApplication(
                session.create_instance("tori-a", user="u1"),
                sample_publications(100, seed=1),
            )
            b = ToriApplication(
                session.create_instance("tori-b", user="u2"),
                sample_publications(100, seed=2),
            )
            a.make_cooperative("tori-b")
            session.pump()
            a.choose_view("full")
            session.pump()
            a.set_condition("topic", "eq", "hypertext")
            session.pump()
            a.run_query()
            session.pump()
            assert b.queries_run == 1
            # Both evaluated the same predicate, each over its own corpus.
            assert all(d["topic"] == "hypertext" for d in a._semantic_rows)
            assert all(d["topic"] == "hypertext" for d in b._semantic_rows)
            # Different corpora: the row sets genuinely differ.
            assert a.visible_rows() != b.visible_rows()
        finally:
            session.close()
