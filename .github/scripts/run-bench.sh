#!/usr/bin/env bash
# Run benchmark gate(s) and publish measured-vs-gate numbers to the
# GitHub job summary.  The benchmarks render their measurements as
# fixed-width tables under benchmarks/results/ (benchmarks/_common.py);
# this script collects the tables the just-finished run (re)wrote and
# appends them — together with the modules' MIN_*/MAX_* gate floors —
# to $GITHUB_STEP_SUMMARY (stdout when unset, so it runs locally too).
#
# Usage: .github/scripts/run-bench.sh <title> <pytest target>...
set -euo pipefail

title="${1:?usage: run-bench.sh <title> <pytest target>...}"
shift

export PYTHONPATH=src
stamp="$(mktemp)"
status=0
python -m pytest "$@" -x -q || status=$?

summary="${GITHUB_STEP_SUMMARY:-/dev/stdout}"
{
  echo "### ${title} — measured vs gate"
  echo
  python .github/scripts/gate_floors.py "$@"
  echo
  find benchmarks/results -name '*.txt' -newer "$stamp" -print0 2>/dev/null \
    | sort -z \
    | while IFS= read -r -d '' table; do
        echo '```'
        cat "$table"
        echo '```'
      done
  if [ "$status" -ne 0 ]; then
    echo
    echo "**GATE FAILED** (pytest exit ${status})"
  fi
} >> "$summary"

rm -f "$stamp"
exit "$status"
