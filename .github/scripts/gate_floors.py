"""Render benchmark gate floors as a markdown table.

Each benchmark module pins its regression gates as MIN_*/MAX_* module
constants; this prints them for the pytest targets given on the command
line, so CI job summaries show the floor next to the measured tables
(.github/scripts/run-bench.sh).
"""

import importlib
import os
import sys


GATE_PREFIXES = ("MIN_", "MAX_", "REQUIRED_")


def module_names(targets):
    seen = []
    for target in targets:
        path = target.split("::", 1)[0]
        name = os.path.splitext(os.path.basename(path))[0]
        if name.startswith("bench_") and name not in seen:
            seen.append(name)
    return seen


def main(argv):
    sys.path.insert(0, "benchmarks")
    rows = []
    for name in module_names(argv):
        try:
            module = importlib.import_module(name)
        except Exception as exc:  # benchmark deps missing: still summarize
            rows.append((f"{name} (import failed)", repr(exc)))
            continue
        for attr, value in sorted(vars(module).items()):
            if attr.startswith(GATE_PREFIXES):
                rows.append((f"{name}.{attr}", value))
            elif isinstance(value, type) and value.__module__ == name:
                # Gates pinned as class attributes (bench_micro_components).
                for inner, floor in sorted(vars(value).items()):
                    if inner.startswith(GATE_PREFIXES):
                        rows.append((f"{name}.{attr}.{inner}", floor))
    print("| gate | floor |")
    print("| --- | --- |")
    for gate, floor in rows:
        print(f"| `{gate}` | {floor} |")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
