#!/usr/bin/env bash
# One env-knob test suite per invocation — the body of the CI test
# matrix (.github/workflows/ci.yml).  Each case preserves the exact
# environment, test selection, and perf gates of the former hand-copied
# job of the same name; keep the knobs in sync with docs/RUNTIME.md.
#
# Usage: .github/scripts/run-suite.sh <suite>
set -euo pipefail

export PYTHONPATH=src
suite="${1:?usage: run-suite.sh <suite>}"

case "$suite" in
  default)
    # The whole suite on the simulated in-memory network.
    python -m pytest -x -q
    ;;
  aio)
    # The same suite with every Session running on the asyncio server
    # runtime (batching, backpressure, per-hop retry) instead of the
    # simulated in-memory network — proves the backend is a drop-in for
    # the whole protocol surface.
    REPRO_BACKEND=aio python -m pytest -x -q
    ;;
  observability)
    # The same suite with observability on for every Session (metrics
    # registry, span tracing, trace context on the wire) — proves the
    # instrumentation is semantically invisible — plus the overhead
    # gate that keeps it within 5% msgs/op of baseline.
    REPRO_OBSERVABILITY=1 python -m pytest -x -q
    python -m pytest "benchmarks/bench_micro_components.py::TestObservabilityOverhead" -x -q
    ;;
  persistence)
    # Recovery chaos: the integration suite with event-sourced
    # persistence on for every Session, the persistence
    # unit/property/recovery suites, and the overhead gate that pins
    # journaling to zero added wire traffic.
    REPRO_PERSISTENCE=1 python -m pytest tests/integration -x -q
    python -m pytest tests/persist tests/property/test_property_persistence.py tests/integration/test_kill_recover.py -x -q
    python -m pytest "benchmarks/bench_micro_components.py::TestPersistenceOverhead" -x -q
    ;;
  binary-codec)
    # The same suite with every Session speaking the compact binary
    # wire codec, plus the frame-size gate that pins binary frames to
    # <= 70% of JSON on the E11 message mix.
    REPRO_CODEC=binary python -m pytest -x -q
    python -m pytest "benchmarks/bench_micro_components.py::TestCodecFrameSize" -x -q
    ;;
  wire-batching)
    # The same suite with batch-envelope wire framing on for every
    # Session — alone and combined with the binary codec — plus the
    # batch-encode fast-path gate and the 64-destination flood gate.
    REPRO_WIRE_BATCHING=1 python -m pytest -x -q
    REPRO_WIRE_BATCHING=1 REPRO_CODEC=binary python -m pytest tests/net tests/integration -x -q
    python -m pytest "benchmarks/bench_micro_components.py::TestBatchEncodeGate" -x -q
    python -m pytest "benchmarks/bench_routing_delta.py::TestWireBatchingFlood" -x -q
    ;;
  *)
    echo "run-suite.sh: unknown suite '$suite'" >&2
    exit 2
    ;;
esac
