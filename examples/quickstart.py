#!/usr/bin/env python3
"""Quickstart: couple two UI objects between two application instances.

Runs entirely on the deterministic in-memory network:

1. start a session (central server + simulated LAN);
2. register two application instances, each with its own widget tree —
   the paper's "no more programming than inserting a statement to
   register the application with the server";
3. dynamically couple the two text fields;
4. type in one instance and watch the other converge (synchronization by
   multiple execution, §3.2);
5. decouple — the objects keep existing and keep their content (§2.2).
"""

from repro import Session
from repro.toolkit import Label, PushButton, Shell, TextField, render


def build_ui(title: str) -> Shell:
    shell = Shell("app", title=title, width=36, height=6)
    Label("caption", parent=shell, text=title, x=1, y=0)
    TextField("note", parent=shell, x=1, y=2, width=28)
    PushButton("send", parent=shell, label="Send", x=1, y=4)
    return shell


def show(name: str, tree: Shell) -> None:
    print(f"--- {name} " + "-" * (30 - len(name)))
    print(render(tree, 36, 6))


def main() -> None:
    session = Session()

    alice = session.create_instance("editor-alice", user="alice")
    bob = session.create_instance("editor-bob", user="bob")

    ui_alice = alice.add_root(build_ui("Alice's editor"))
    ui_bob = bob.add_root(build_ui("Bob's editor"))

    # Dynamic coupling: link Alice's note field to Bob's (any two
    # compatible objects would do — they need not have the same path).
    alice.couple(ui_alice.find("/app/note"), ("editor-bob", "/app/note"))
    session.pump()
    print("Coupled:", alice.coupled_objects("/app/note"))

    # Alice types; the high-level commit event is locked, broadcast and
    # re-executed in Bob's instance.
    ui_alice.find("/app/note").commit("hello from alice", user="alice")
    session.pump()
    show("alice", ui_alice)
    show("bob", ui_bob)
    assert ui_bob.find("/app/note").value == "hello from alice"

    # It is symmetric — Bob answers.
    ui_bob.find("/app/note").commit("hi alice!", user="bob")
    session.pump()
    assert ui_alice.find("/app/note").value == "hi alice!"
    print("After Bob's reply, Alice sees:",
          repr(ui_alice.find("/app/note").value))

    # Decouple: both fields survive with their content (unlike shared
    # window systems, where the shared window disappears).
    alice.decouple(ui_alice.find("/app/note"), ("editor-bob", "/app/note"))
    session.pump()
    ui_alice.find("/app/note").commit("alice alone now", user="alice")
    session.pump()
    print("Decoupled. Alice:", repr(ui_alice.find("/app/note").value),
          "| Bob keeps:", repr(ui_bob.find("/app/note").value))

    stats = session.traffic()
    print(f"\nTraffic: {stats['messages']} messages, {stats['bytes']} bytes")
    session.close()


if __name__ == "__main__":
    main()
