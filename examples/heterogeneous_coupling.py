#!/usr/bin/env python3
"""Heterogeneous coupling — different widget types, different applications.

The paper's headline relaxation of WYSIWIS: application-*independence*.
This example couples/copies between *functionally different* programs:

1. a declared **correspondence relation** lets a read-only monitor's Label
   track an editor's TextField (§3.3 "direct compatibility");
2. **s-compatibility** maps whole forms with different names/nesting;
3. **destructive merging** imposes a dominating structure on an empty
   target; **flexible matching** synchronizes the common substructure
   while conserving local extras;
4. the run is repeated over **real TCP sockets** to show the transports
   are interchangeable.
"""

from repro import CorrespondenceRegistry, Session
from repro.toolkit import Form, Label, Scale, Shell, TextField


def build_editor() -> Shell:
    root = Shell("editor", title="Editor")
    main = Form("main", parent=root)
    TextField("status", parent=main, width=30)
    Scale("progress", parent=main, maximum=100)
    return root


def build_monitor() -> Shell:
    root = Shell("monitor", title="Monitor (read-only)")
    view = Form("view", parent=root)
    Label("status_display", parent=view, width=30)
    Scale("progress_mirror", parent=view, maximum=100)
    return root


def run(session, label) -> None:
    editor = session.create_instance("editor-1", user="dev",
                                     app_type="editor")
    monitor = session.create_instance("monitor-1", user="ops",
                                      app_type="monitor")
    editor_ui = editor.add_root(build_editor())
    monitor_ui = monitor.add_root(build_monitor())

    # --- 1+2. Cross-type state copy through the correspondence.
    editor_ui.find("main/status").commit("deploying v2.1")
    editor_ui.find("main/progress").set_value(40)
    monitor.copy_from(monitor_ui.find("view"), ("editor-1", "/editor/main"))
    print(f"[{label}] monitor label now shows:",
          repr(monitor_ui.find("view/status_display").get("text")))
    print(f"[{label}] monitor progress mirror:",
          monitor_ui.find("view/progress_mirror").value)

    # --- 3a. Destructive merging: build a dashboard clone from nothing.
    blank = monitor.add_root(Shell("editor"))
    monitor_inst_id = monitor.instance_id
    monitor.copy_from(blank, ("editor-1", "/editor"), mode="merge")
    print(f"[{label}] destructive merge materialized:",
          [w.pathname for w in blank.walk()][1:])

    # --- 3b. Flexible matching conserves local extras.
    extra = TextField("private_notes", parent=monitor_ui.find("view"))
    extra.commit("only mine")
    editor_ui.find("main/status").commit("rollout complete")
    monitor.copy_from(monitor_ui.find("view"), ("editor-1", "/editor/main"),
                      mode="flexible")
    print(f"[{label}] after flexible copy: label=",
          repr(monitor_ui.find("view/status_display").get("text")),
          " private notes kept:",
          repr(monitor_ui.find("view/private_notes").value))


def main() -> None:
    # The correspondence declaration: label.text <-> textfield.value.
    corr = CorrespondenceRegistry()
    corr.declare("label", "textfield", {"text": "value"})

    print("== simulated in-memory network ==")
    with Session(correspondences=corr) as session:
        run(session, "memory")

    print("\n== real TCP sockets (localhost) ==")
    with Session(backend="tcp", correspondences=corr) as tcp:
        run(tcp, "tcp")


if __name__ == "__main__":
    main()
