#!/usr/bin/env python3
"""Control room: the §4 coupling control panel plus server monitoring.

The paper: "the most of the work went into providing the interactive
control mechanism which ... is even more general since it can be used for
a variety of COSOFT applications."  This example drives that mechanism:

1. a teacher opens the generic :class:`CouplingControlPanel`;
2. the roster list shows the classroom "in stylized form";
3. selecting a student fetches a simplified representation of their
   environment (widget structure over the wire);
4. couple/decouple buttons issue RemoteCouple/RemoteDecouple;
5. the server-side dashboard shows the four database categories live.
"""

from repro import Session
from repro.apps.classroom import StudentEnvironment, TeacherEnvironment
from repro.apps.control_panel import (
    CouplingControlPanel,
    enable_panel_introspection,
)
from repro.tools.monitor import format_dashboard
from repro.toolkit import render


def main() -> None:
    session = Session()
    teacher_inst = session.create_instance(
        "liveboard", user="dr-hoppe", app_type="cosoft-teacher"
    )
    teacher = TeacherEnvironment(teacher_inst)
    students = {}
    for i, name in enumerate(("kim", "lee")):
        inst = session.create_instance(
            f"ws-{name}", user=name, app_type="cosoft-student"
        )
        students[f"ws-{name}"] = StudentEnvironment(inst)
        enable_panel_introspection(inst)
    session.pump()

    panel = CouplingControlPanel(
        teacher_inst,
        correspondences={
            "/student/exercise/amplitude": "/teacher/params/amplitude",
            "/student/exercise/frequency": "/teacher/params/frequency",
            "/student/exercise/answer": "/teacher/notes",
        },
        root_name="cpanel",
    )
    session.pump()

    print("Step 1-2: the classroom roster")
    for row in panel.roster_list.get("items"):
        print("   ", row)

    print("\nStep 3: inspecting ws-kim's environment")
    panel.select_participant("ws-kim")
    for row in panel.tree_list.get("items")[:8]:
        print("   ", row)

    print("\nStep 4: coupling the parameter scales + answer field")
    panel.select_objects([
        "/student/exercise/amplitude",
        "/student/exercise/frequency",
        "/student/exercise/answer",
    ])
    coupled = panel.couple_selected()
    session.pump()
    print(f"    panel coupled {coupled} objects; status: {panel.status_text}")

    students["ws-kim"].set_parameters(6, 2)
    students["ws-kim"].write_answer("does this look right?")
    session.pump()
    print(f"    teacher now sees A={teacher._amp.value}, "
          f"f={teacher._freq.value}, note="
          f"{teacher.ui.find('/teacher/notes').text!r}")

    print("\nStep 5: the server dashboard")
    print(format_dashboard(session.server))

    panel.end_all_sessions()
    session.pump()
    print("\nAfter ending all sessions:")
    print(format_dashboard(session.server))
    session.close()


if __name__ == "__main__":
    main()
