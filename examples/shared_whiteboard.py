#!/usr/bin/env python3
"""Shared whiteboard: a GroupDesign-style tool in ~100 lines of app code.

Demonstrates the dimensions of flexibility from §2.2:

* **dynamic population** — participants join and leave the drawing group
  at run time (late joiners pull the current drawing by state first);
* **partial coupling** — only the canvas is shared; each user's tool
  palette (pen color) stays private (congruence relaxation);
* **decoupled objects survive** — leaving keeps the local drawing.
"""

from repro import Session
from repro.apps.drawing import Whiteboard
from repro.toolkit import render


def main() -> None:
    session = Session()
    w1 = Whiteboard(session.create_instance("wb-anna", user="anna"))
    w2 = Whiteboard(session.create_instance("wb-ben", user="ben"))
    w3 = Whiteboard(session.create_instance("wb-cleo", user="cleo"))
    session.pump()

    # Anna sketches alone first.
    w1.draw([(2, 2), (10, 2), (10, 6), (2, 6), (2, 2)])   # a box
    print(f"Anna drew alone: {w1.stroke_count} stroke, "
          f"Ben has {w2.stroke_count}.")

    # Ben joins: synchronization by state (pull), then by action (couple).
    w2.join("wb-anna")
    session.pump()
    print(f"Ben joined late and pulled the drawing: {w2.stroke_count} stroke.")

    # Private congruence: Ben picks red — Anna's palette is untouched.
    w2.pick_color("red")
    session.pump()
    print(f"Ben's pen: {w2.color_menu.selection}, "
          f"Anna's pen: {w1.color_menu.selection} (palettes are private).")

    w2.draw([(14, 2), (20, 5)])
    session.pump()

    # Cleo joins through Ben; the transitive closure connects her to the
    # whole group including Anna.
    w3.join("wb-ben")
    session.pump()
    w3.pick_color("blue")
    w3.draw([(24, 2), (24, 6)])
    session.pump()

    counts = (w1.stroke_count, w2.stroke_count, w3.stroke_count)
    print(f"Three participants drawing: stroke counts {counts}")
    assert counts[0] == counts[1] == counts[2] == 3
    print("\nAnna's board:")
    print(render(w1.ui, 46, 12))

    colors = sorted({s["color"] for s in w1.strokes})
    print("Stroke colors on every board:", colors)

    # Ben leaves; his drawing survives locally.  NB: Cleo was connected to
    # Anna only *through* Ben (transitive closure), so Ben's departure
    # splits the group — Cleo re-couples to Anna directly to stay in.
    w2.leave()
    session.pump()
    print(f"\nBen left; Cleo still coupled? "
          f"{w3.instance.is_coupled(w3.CANVAS_PATH)} "
          "(the closure ran through Ben)")
    w3.join("wb-anna")
    session.pump()

    w1.draw([(5, 8), (30, 8)])
    session.pump()
    print(f"Group continues: anna={w1.stroke_count} strokes, "
          f"cleo={w3.stroke_count}, ben keeps his snapshot of "
          f"{w2.stroke_count}.")

    # Group clear still reaches everyone coupled.
    w3.clear()
    session.pump()
    print(f"Cleo clears: anna={w1.stroke_count}, cleo={w3.stroke_count}, "
          f"ben (decoupled)={w2.stroke_count}.")

    session.close()


if __name__ == "__main__":
    main()
