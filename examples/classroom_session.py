#!/usr/bin/env python3
"""COSOFT classroom walkthrough — the paper's §4 scenario end to end.

A teacher on the electronic blackboard and two students on local
workstations, all heterogeneous application instances:

1. a student asks for help (CoSendCommand; the request is buffered at the
   teacher's environment);
2. the teacher inspects the student's answer (CopyFrom);
3. the teacher opens a joint session with that student — RemoteCouple of
   the pre-declared shared objects (parameter scales + notes);
4. *indirect coupling*: moving the coupled parameter scales regenerates
   the (uncoupled) simulation display on both sides for free;
5. the session ends with RemoteDecouple; the student keeps working.
"""

from repro import Session
from repro.apps.classroom import StudentEnvironment, TeacherEnvironment
from repro.toolkit import render


def main() -> None:
    session = Session()
    teacher = TeacherEnvironment(
        session.create_instance("liveboard", user="dr-hoppe",
                                app_type="cosoft-teacher")
    )
    kim = StudentEnvironment(
        session.create_instance("ws-kim", user="kim",
                                app_type="cosoft-student")
    )
    lee = StudentEnvironment(
        session.create_instance("ws-lee", user="lee",
                                app_type="cosoft-student")
    )
    session.pump()
    print("Registered:", sorted(session.server.registry.instance_ids()))

    # -- 1. Kim gets stuck and asks for help (buffered at the teacher).
    kim.set_parameters(2, 7)
    kim.write_answer("I think A=2 but the wave looks wrong?")
    session.pump()
    ack = kim.request_help("My wave does not match the target", "liveboard")
    print(f"\nKim's help request acknowledged: {ack}")
    print("Teacher's queue:", [
        (r["student"], r["data"]["message"]) for r in teacher.pending_help()
    ])

    # -- 2. The teacher pulls Kim's answer onto the board (CopyFrom).
    teacher.inspect_student_work(
        "ws-kim", "/student/exercise/answer", "/teacher/notes"
    )
    print("\nTeacher inspects Kim's answer:",
          repr(teacher.ui.find("/teacher/notes").text))

    # -- 3. Joint session: RemoteCouple the pre-declared shared objects.
    pairs = teacher.join_session("ws-kim")  # indirect mode: no display link
    session.pump()
    print("\nJoint session with ws-kim; coupled object pairs:")
    for teacher_path, student_path in pairs:
        print(f"  {teacher_path}  <->  ws-kim:{student_path}")

    # -- 4. Indirect coupling at work: the teacher demonstrates the right
    #       parameters; only two small scale events cross the wire, yet
    #       both simulation displays regenerate identically.
    before = session.traffic()["bytes"]
    teacher.set_parameters(5, 3)
    session.pump()
    shipped = session.traffic()["bytes"] - before
    same = teacher.simulation_strokes == kim.simulation_strokes
    print(f"\nTeacher sets A=5 f=3 -> {shipped} bytes on the wire; "
          f"displays identical: {same}")
    print("Lee (not in the session) still has A="
          f"{lee._amp.value} — population dimension relaxed.")
    print("\nKim's exercise window:")
    print(render(kim.ui.find("/student/exercise"), 46, 17))

    # -- 5. End the joint session; Kim keeps the final state and autonomy.
    teacher.leave_session("ws-kim")
    session.pump()
    kim.set_parameters(9, 1)
    session.pump()
    print("After decoupling, Kim works alone: A(kim)="
          f"{kim._amp.value}, A(teacher)={teacher._amp.value}")

    session.close()


if __name__ == "__main__":
    main()
