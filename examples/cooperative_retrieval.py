#!/usr/bin/env python3
"""Cooperative TORI — the paper's §4 database-retrieval case study.

Two researchers run TORI against their *own* databases.  Their query
forms are coupled: operator menus, attribute fields, view menus and the
Run button all synchronize, so invoking a query re-executes it at every
participant ("a query will be potentially re-executed several times") —
each against its local corpus.

The example then contrasts the alternative the paper debates: evaluate
once and share the result rows (CopyTo of the result form plus semantic
data), showing the scan/bandwidth trade-off.
"""

from repro import Session
from repro.apps.minidb import sample_publications
from repro.apps.tori import ToriApplication


def main() -> None:
    session = Session()
    alice = ToriApplication(
        session.create_instance("tori-alice", user="alice", app_type="tori"),
        sample_publications(400, seed=1),
    )
    bob = ToriApplication(
        session.create_instance("tori-bob", user="bob", app_type="tori"),
        sample_publications(400, seed=2),   # a different corpus!
    )

    # --- Mode 1: the paper's coupled invocation (multiple evaluation).
    paths = alice.make_cooperative("tori-bob")
    session.pump()
    print(f"Coupled {len(paths)} query/result-form objects.\n")

    alice.choose_view("full")
    alice.set_condition("topic", "eq", "groupware")
    session.pump()
    print("Alice filled the query form; Bob's form mirrors it:")
    print("  bob topic field :", repr(bob.field_value("topic").value))
    print("  bob operator    :", bob.field_op("topic").selection)
    print("  bob view        :", bob.view_menu.selection)

    alice.run_query()
    session.pump()
    print("\nAlice presses Run -> the invocation is synchronized:")
    print(f"  alice executed {alice.queries_run} quer(y/ies), "
          f"{alice.database.total_rows_scanned} rows scanned, "
          f"{len(alice.visible_rows())} hits")
    print(f"  bob   executed {bob.queries_run} quer(y/ies), "
          f"{bob.database.total_rows_scanned} rows scanned, "
          f"{len(bob.visible_rows())} hits")
    print("  (different corpora -> legitimately different hits; that is")
    print("   the flexibility multiple evaluation buys)")
    print("\n  Alice's first rows:")
    for row in alice.visible_rows()[:3]:
        print("   ", row)
    print("  Bob's first rows:")
    for row in bob.visible_rows()[:3]:
        print("   ", row)

    # Refinement from a selected result row, also synchronized.
    alice.rows_list.select_indices([0])
    session.pump()
    alice.refine_from_selection()
    session.pump()
    print("\nAlice refines from her selection; both query forms now ask for"
          f" author={alice.field_value('author').value!r}"
          f" (bob: {bob.field_value('author').value!r})")

    session.close()

    # --- Mode 2: evaluate once, share the results.
    session = Session()
    alice = ToriApplication(
        session.create_instance("tori-alice", user="alice"),
        sample_publications(400, seed=1),
    )
    bob = ToriApplication(
        session.create_instance("tori-bob", user="bob"),
        sample_publications(400, seed=2),
    )
    alice.make_cooperative("tori-bob", share_results=True)
    session.pump()
    alice.set_condition("author", "eq", "Stefik")
    session.pump()
    alice.run_query()
    session.pump()
    before = session.traffic()["bytes"]
    alice.share_results()
    session.pump()
    shipped = session.traffic()["bytes"] - before
    print("\nShare-results mode: bob ran "
          f"{bob.queries_run} queries (scanned "
          f"{bob.database.total_rows_scanned} rows) yet sees "
          f"{len(bob.visible_rows())} identical rows; shipping them cost "
          f"{shipped} bytes.")
    print("Rows identical:", alice.visible_rows() == bob.visible_rows())
    session.close()


if __name__ == "__main__":
    main()
