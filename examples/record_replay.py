#!/usr/bin/env python3
"""Record a collaboration, persist it, replay it elsewhere.

Combines three operational features:

1. :class:`SessionRecorder` taps a user's local events into a JSON log;
2. :meth:`ApplicationInstance.export_ui` persists the final workspace;
3. :func:`replay` re-fires the log — through the full coupling pipeline —
   against a fresh session, reproducing the collaboration (including all
   remote effects), while :func:`replay_locally` applies it offline.
"""

import json

from repro import Session
from repro.tools.replay import SessionRecorder, replay, replay_locally
from repro.toolkit import Canvas, Shell, TextField
from repro.toolkit.tree import subtree_state


def build_ui() -> Shell:
    shell = Shell("pad")
    TextField("title", parent=shell, width=30)
    Canvas("sketch", parent=shell, width=30, height=8)
    return shell


def main() -> None:
    # ---- Act 1: a live session is recorded.
    session = Session()
    alice = session.create_instance("pad-alice", user="alice")
    bob = session.create_instance("pad-bob", user="bob")
    ui_alice = alice.add_root(build_ui())
    ui_bob = bob.add_root(build_ui())
    alice.couple(ui_alice.find("/pad/title"), ("pad-bob", "/pad/title"))
    alice.couple(ui_alice.find("/pad/sketch"), ("pad-bob", "/pad/sketch"))
    session.pump()

    recorder = SessionRecorder(alice)
    ui_alice.find("/pad/title").commit("Rocket sketch v1", user="alice")
    ui_alice.find("/pad/sketch").draw_stroke(
        [(5, 1), (5, 6)], color="red", user="alice"
    )
    ui_alice.find("/pad/sketch").draw_stroke(
        [(3, 3), (7, 3)], color="red", user="alice"
    )
    session.pump()

    log = recorder.cut()
    log_json = json.dumps(log, indent=None)
    workspace = alice.export_ui()
    final_state = subtree_state(ui_alice)
    print(f"Recorded {len(log)} events ({len(log_json)} bytes of JSON); "
          f"bob converged: {subtree_state(ui_bob) == final_state}")
    session.close()

    # ---- Act 2: replay the log in a brand-new session.
    session2 = Session()
    carol = session2.create_instance("pad-carol", user="carol")
    dave = session2.create_instance("pad-dave", user="dave")
    ui_carol = carol.add_root(build_ui())
    ui_dave = dave.add_root(build_ui())
    carol.couple(ui_carol.find("/pad/title"), ("pad-dave", "/pad/title"))
    carol.couple(ui_carol.find("/pad/sketch"), ("pad-dave", "/pad/sketch"))
    session2.pump()

    fired = replay(json.loads(log_json), carol)
    session2.pump()
    print(f"Replayed {fired} events through carol; dave's replica matches "
          f"the original recording: "
          f"{subtree_state(ui_dave) == final_state}")
    session2.close()

    # ---- Act 3: offline replay onto a bare widget tree (no network).
    offline = build_ui()
    applied = replay_locally(json.loads(log_json), offline)
    print(f"Offline replay applied {applied} events; state matches: "
          f"{subtree_state(offline) == final_state}")

    # ---- Act 4: the exported workspace reconstructs directly.
    session3 = Session()
    erin = session3.create_instance("pad-erin", user="erin")
    erin.import_ui(workspace)
    print("Workspace import matches:",
          subtree_state(erin.widget("/pad")) == final_state)
    session3.close()


if __name__ == "__main__":
    main()
