"""Ablations of the design choices DESIGN.md calls out.

A1 — **replicated coupling information** (§3.2 "to be completely
available locally").  The client-side replica answers "is this object
coupled?" without a server round trip, so *uncoupled* interaction is
free.  Disabling the fast path forces every event through the server.

A2 — **ack-held floors** (our E10 fix for the paper's "unlocked when the
processing of this event is completed").  Releasing on broadcast saves
the ack messages but lets racing replicas diverge; the ablation
quantifies both sides.
"""

import pytest

from _common import emit_table, ms
from repro.session import Session
from repro.toolkit.widgets import Scale, Shell, TextField
from repro.workloads import contention_burst

FIELD = "/ui/field"


def build_session(**session_kwargs):
    session = Session(**session_kwargs)
    return session


class TestReplicaFastPath:
    def test_uncoupled_event_cost(self, benchmark):
        def measure(fast_path):
            session = Session()
            inst = session.create_instance(
                "solo", user="u", replica_fast_path=fast_path
            )
            tree = inst.add_root(Shell("ui"))
            field = TextField("field", parent=tree)
            session.network.stats.reset()
            start = session.now
            for i in range(50):
                field.commit(f"v{i}")
                session.pump()
            result = {
                "messages": session.network.stats.messages,
                "sim_ms_per_event": ms((session.now - start) / 50),
            }
            session.close()
            return result

        def both():
            return measure(True), measure(False)

        with_replica, without = benchmark.pedantic(both, rounds=1, iterations=1)
        emit_table(
            "ablation_replica",
            "A1: uncoupled-event cost with/without the coupling replica",
            ["variant", "messages (50 events)", "sim ms/event"],
            [
                ["replica fast path", with_replica["messages"],
                 with_replica["sim_ms_per_event"]],
                ["ask server always", without["messages"],
                 without["sim_ms_per_event"]],
            ],
        )
        # Shape: the replica makes uncoupled interaction free.
        assert with_replica["messages"] == 0
        assert without["messages"] >= 150  # lock req+reply+event per commit
        assert with_replica["sim_ms_per_event"] == pytest.approx(0.0)
        assert without["sim_ms_per_event"] > 0

    def test_coupled_behaviour_identical(self, benchmark):
        """The fast path only matters for uncoupled objects: coupled
        events behave identically either way."""

        def run(fast_path):
            session = Session()
            a = session.create_instance("a", user="u1",
                                        replica_fast_path=fast_path)
            b = session.create_instance("b", user="u2")
            ta = a.add_root(Shell("ui"))
            TextField("field", parent=ta)
            tb = b.add_root(Shell("ui"))
            TextField("field", parent=tb)
            a.couple(ta.find(FIELD), ("b", FIELD))
            session.pump()
            ta.find(FIELD).commit("payload")
            session.pump()
            value = tb.find(FIELD).value
            session.close()
            return value

        values = benchmark.pedantic(
            lambda: (run(True), run(False)), rounds=1, iterations=1
        )
        assert values == ("payload", "payload")


class TestAckRelease:
    def _run_contention(self, ack_release):
        session = Session(base_latency=0.005, ack_release=ack_release)
        trees = []
        for i in range(4):
            inst = session.create_instance(f"i{i}", user=f"u{i}")
            root = Shell("ui")
            Scale("zoom", parent=root, maximum=100)
            inst.add_root(root)
            trees.append(root)
        primary = session.instances["i0"]
        for i in range(1, 4):
            primary.couple(trees[0].find("/ui/zoom"), (f"i{i}", "/ui/zoom"))
        session.pump()
        session.network.stats.reset()
        workload = contention_burst(
            n_users=4, rounds=8, spacing=0.0005, path="/ui/zoom", seed=3
        )
        denied = 0
        for action in workload:
            session.network.pump_until_time(action.at)
            widget = trees[action.user].find(action.path)
            widget.fire(action.event_type, **dict(action.params))
            inst = session.instances[f"i{action.user}"]
            if inst.last_execution and inst.last_execution.lock_denied:
                denied += 1
        session.pump()
        values = {tree.find("/ui/zoom").value for tree in trees}
        stats = session.network.stats.snapshot()
        session.close()
        executed = len(workload) - denied
        return {
            "denied": denied,
            "converged": len(values) == 1,
            "messages": stats["messages"],
            "msgs_per_executed": stats["messages"] / max(executed, 1),
        }

    def test_ack_release_vs_broadcast_release(self, benchmark):
        both = benchmark.pedantic(
            lambda: (self._run_contention(True), self._run_contention(False)),
            rounds=1,
            iterations=1,
        )
        with_acks, without = both
        emit_table(
            "ablation_ack_release",
            "A2: floor release policy under contention (4 users, 8 rounds)",
            ["variant", "denied", "converged", "messages",
             "msgs/executed action"],
            [
                ["ack-held floors", with_acks["denied"],
                 with_acks["converged"], with_acks["messages"],
                 round(with_acks["msgs_per_executed"], 1)],
                ["release on broadcast", without["denied"],
                 without["converged"], without["messages"],
                 round(without["msgs_per_executed"], 1)],
            ],
        )
        # Shape: ack-held floors cost more protocol per executed action and
        # refuse contended actions — but they are what keeps the replicas
        # convergent; release-on-broadcast silently diverges.
        assert with_acks["converged"] is True
        assert without["converged"] is False
        assert with_acks["denied"] > without["denied"]
        assert (
            with_acks["msgs_per_executed"] > without["msgs_per_executed"]
        )
