"""F1 — Figure 1: the multiplex (shared-X) architecture.

The paper's claim: the single centralized application instance makes the
multiplexor the bottleneck — every user event round-trips through it and
every output is multiplexed N ways, so central load and traffic grow
linearly with the number of participants while even the *issuing* user's
echo pays a full round trip.

Series reproduced: users ∈ {2..16} → (echo latency, msgs/action, central
inbound+outbound messages).
"""

import pytest

from _common import emit_table, ms
from repro.baselines.multiplex import CENTRAL, MultiplexHarness
from repro.workloads import WorkloadConfig, editing_session

USERS = (2, 4, 8, 12, 16)


def run(n_users, actions_per_user=12):
    workload = editing_session(
        WorkloadConfig(n_users=n_users, actions_per_user=actions_per_user, seed=23)
    )
    harness = MultiplexHarness(n_users)
    harness.run(workload)
    metrics = harness.metrics()
    outbound = sum(
        count
        for (sender, _), count in harness.network.stats.by_link.items()
        if sender == CENTRAL
    )
    metrics["central_outbound_messages"] = outbound
    return metrics


class TestFigure1:
    def test_multiplex_scaling(self, benchmark):
        results = benchmark.pedantic(
            lambda: [run(n) for n in USERS], rounds=1, iterations=1
        )
        rows = [
            [
                m["users"],
                ms(m["echo_latency_mean"]),
                round(m["messages_per_action"], 1),
                m["central_inbound_messages"],
                m["central_outbound_messages"],
            ]
            for m in results
        ]
        emit_table(
            "fig1_multiplex",
            "Figure 1: multiplex architecture vs participant count",
            ["users", "echo ms", "msgs/action", "central in", "central out"],
            rows,
        )
        # Shape: output multiplexing means msgs/action ~ 1 + N.
        for m in results:
            assert m["messages_per_action"] == pytest.approx(1 + m["users"])
        # Shape: echo is never local — at least two network hops.
        for m in results:
            assert m["echo_latency_mean"] >= 0.002 - 1e-9
        # Shape: central outbound grows linearly with users.
        assert (
            results[-1]["central_outbound_messages"]
            > results[0]["central_outbound_messages"] * 4
        )

    def test_central_serialization_under_load(self, benchmark):
        """A busy multiplexor delays everyone: semantic cost stretches the
        p95 sync latency across ALL users."""

        def run_with_cost(cost):
            workload = editing_session(
                WorkloadConfig(n_users=6, actions_per_user=8, seed=5,
                               mean_think_time=0.05)
            )
            harness = MultiplexHarness(6, semantic_cost=cost)
            harness.run(workload)
            return harness.metrics()["sync_latency_p95"]

        idle, busy = benchmark.pedantic(
            lambda: (run_with_cost(0.0), run_with_cost(0.05)),
            rounds=1,
            iterations=1,
        )
        emit_table(
            "fig1_serialization",
            "Figure 1: central semantic cost stretches sync p95",
            ["semantic cost ms", "sync p95 ms"],
            [[0, ms(idle)], [50, ms(busy)]],
        )
        assert busy > idle * 5
