"""E9 — §4 COSOFT: indirect coupling of dependent objects.

The paper: "partial coupling can be very efficient since it allows for
indirect coupling: often it is sufficient to couple UI objects that
contain information (e.g. certain input fields for parameters ...) from
which the content or behavior of other components can be generated.  For
these dependent objects (e.g. simulations or graphical displays), direct
coupling might be much more costly."

Series reproduced: simulation display resolution sweep → bytes/messages
per parameter change for (a) indirect coupling (two scales coupled, the
display regenerated locally) vs (b) direct coupling (the display canvas
coupled, every regeneration shipped).
"""


from _common import emit_table
from repro.apps import classroom
from repro.apps.classroom import (
    StudentEnvironment,
    TeacherEnvironment,
    couple_simulation_directly,
)
from repro.session import Session

RESOLUTIONS = (16, 64, 256)
PARAM_CHANGES = 5


def run(indirect, sim_points):
    original = classroom.SIM_POINTS
    classroom.SIM_POINTS = sim_points
    try:
        session = Session()
        teacher = TeacherEnvironment(
            session.create_instance("teacher", user="t")
        )
        student = StudentEnvironment(
            session.create_instance("student-0", user="s")
        )
        session.pump()
        if indirect:
            teacher.join_session(
                "student-0",
                pairs=[
                    ("/teacher/params/amplitude", "/student/exercise/amplitude"),
                    ("/teacher/params/frequency", "/student/exercise/frequency"),
                ],
            )
        else:
            couple_simulation_directly(teacher, "student-0")
        session.pump()
        session.network.stats.reset()
        for value in range(1, PARAM_CHANGES + 1):
            teacher.set_parameters(value, value % 8)
        session.pump()
        stats = session.network.stats.snapshot()
        converged = (
            student.simulation_strokes == teacher.simulation_strokes
        )
        session.close()
        assert converged, "both modes must converge the display"
        return {
            "bytes": stats["bytes"],
            "messages": stats["messages"],
            "per_change_bytes": stats["bytes"] / PARAM_CHANGES,
        }
    finally:
        classroom.SIM_POINTS = original


class TestIndirectCoupling:
    def test_resolution_sweep(self, benchmark):
        def sweep():
            rows = []
            for points in RESOLUTIONS:
                ind = run(indirect=True, sim_points=points)
                direct = run(indirect=False, sim_points=points)
                rows.append(
                    [
                        points,
                        round(ind["per_change_bytes"]),
                        round(direct["per_change_bytes"]),
                        round(direct["per_change_bytes"]
                              / ind["per_change_bytes"], 1),
                    ]
                )
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        emit_table(
            "e9_indirect_coupling",
            "E9: bytes per parameter change — indirect vs direct coupling",
            ["display points", "indirect B/change", "direct B/change",
             "direct/indirect"],
            rows,
        )
        # Shape: indirect cost is flat in display resolution...
        indirect_costs = [row[1] for row in rows]
        assert max(indirect_costs) < min(indirect_costs) * 1.5
        # ...direct cost grows with it...
        direct_costs = [row[2] for row in rows]
        assert direct_costs[-1] > direct_costs[0] * 4
        # ...so the advantage factor grows with display size (the paper's
        # "much more costly").
        factors = [row[3] for row in rows]
        assert factors[-1] > factors[0]
        assert factors[-1] > 5

    def test_indirect_change_wall_clock(self, benchmark):
        session = Session()
        teacher = TeacherEnvironment(session.create_instance("teacher", user="t"))
        StudentEnvironment(session.create_instance("student-0", user="s"))
        session.pump()
        teacher.join_session("student-0")
        session.pump()
        value = [0]

        def change():
            value[0] = (value[0] + 1) % 10
            teacher.set_parameters(value[0], 2)
            session.pump()

        benchmark(change)
        session.close()
