"""Macro-benchmarks: the scripted collaboration scenarios end to end.

Where the micro-benchmarks isolate one mechanism each, these run whole
collaboration sessions (classroom lesson, joint retrieval, design
meeting) through the full stack — toolkit, coupling runtime, server,
simulated network — and report their aggregate cost.  Useful as a
regression canary: a protocol change that bloats traffic or time shows up
here first.
"""

import pytest

from _common import emit_table
from repro.workloads.scenarios import (
    classroom_lesson,
    design_meeting,
    joint_retrieval,
)

SCENARIOS = (
    ("classroom_lesson", lambda: classroom_lesson(n_students=4, exercises=2)),
    ("joint_retrieval", lambda: joint_retrieval(n_participants=3, queries=5)),
    ("design_meeting", lambda: design_meeting(n_participants=4,
                                              strokes_per_phase=8)),
)


class TestMacroScenarios:
    @pytest.mark.parametrize("name,factory", SCENARIOS, ids=lambda v: v
                             if isinstance(v, str) else "")
    def test_scenario(self, benchmark, name, factory):
        report = benchmark.pedantic(factory, rounds=1, iterations=1)
        benchmark.extra_info.update(
            {
                "messages": report.messages,
                "bytes": report.bytes,
                "sim_duration": report.duration,
                "phases": len(report.phases),
            }
        )
        assert report.messages > 0

    def test_emit_summary(self, benchmark):
        def run_all():
            return [(name, factory()) for name, factory in SCENARIOS]

        results = benchmark.pedantic(run_all, rounds=1, iterations=1)
        rows = [
            [
                name,
                len(report.phases),
                report.messages,
                report.bytes,
                round(report.duration, 3),
            ]
            for name, report in results
        ]
        emit_table(
            "macro_scenarios",
            "Macro scenarios: whole collaboration sessions",
            ["scenario", "phases", "messages", "bytes", "sim seconds"],
            rows,
        )
        by_name = dict(results)
        # Sanity shapes: the lesson's reference reached all students; the
        # retrieval session re-executed at every analyst; the meeting
        # converged after churn.
        assert by_name["classroom_lesson"].observations["reference_reached_all"]
        queries = by_name["joint_retrieval"].observations["queries_per_app"]
        assert len(set(queries)) == 1
        assert by_name["design_meeting"].observations["converged"]
