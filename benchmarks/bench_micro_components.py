"""Micro-benchmarks of the hot-path components.

Unlike the experiment benchmarks (which reproduce paper claims on
simulated time), these measure real wall-clock throughput of the pieces
every coupled event touches: codec, event dispatch, couple-table closure,
state payload build/apply.  They exist to catch performance regressions
in the substrate itself.
"""

import pytest

from repro.core.compat import DEFAULT_MAPPING_CACHE, spec_fingerprint
from repro.core.state_sync import apply_state_payload, build_state_payload
from repro.net import kinds
from repro.net.codec import decode, encode
from repro.net.message import Message
from repro.server.couples import CoupleLink, CoupleTable, global_id
from repro.session import Session
from repro.toolkit.builder import build
from repro.toolkit.events import VALUE_CHANGED, Event
from repro.toolkit.widgets import Shell, TextField
from repro.workloads import standard_form_spec


@pytest.fixture
def event_message():
    return Message(
        kind=kinds.EVENT,
        sender="instance-1",
        payload={
            "event": Event(
                type=VALUE_CHANGED,
                source_path="/app/form/text",
                params={"value": "the quick brown fox"},
                user="alice",
                instance_id="instance-1",
            ).to_wire(),
            "token": 42,
            "release": True,
        },
    )


class TestCodecThroughput:
    def test_encode(self, benchmark, event_message):
        frame = benchmark(encode, event_message)
        assert len(frame) > 0

    def test_decode(self, benchmark, event_message):
        frame = encode(event_message)
        message = benchmark(decode, frame)
        assert message == event_message

    def test_roundtrip(self, benchmark, event_message):
        def roundtrip():
            return decode(encode(event_message))

        assert benchmark(roundtrip) == event_message


class TestEventDispatch:
    def test_fire_uncoupled_widget(self, benchmark):
        root = build(standard_form_spec())
        field = root.find("/app/form/text")
        counter = [0]
        field.add_callback(VALUE_CHANGED, lambda w, e: counter.__setitem__(
            0, counter[0] + 1))

        def fire():
            field.commit("x")

        benchmark(fire)
        assert counter[0] > 0

    def test_feedback_apply_and_rollback(self, benchmark):
        field = TextField("t")
        event = Event(
            type=VALUE_CHANGED, source_path="/t", params={"value": "abc"}
        )

        def cycle():
            undo = field.apply_feedback(event)
            undo.rollback()

        benchmark(cycle)


class TestCoupleClosure:
    def _big_table(self, groups=20, size=10):
        table = CoupleTable()
        for g in range(groups):
            members = [
                global_id(f"inst-{g}-{i}", "/app/x") for i in range(size)
            ]
            for member in members[1:]:
                table.add_link(CoupleLink(source=members[0], target=member))
        return table, global_id("inst-0-0", "/app/x")

    def test_group_of_cold(self, benchmark):
        table, probe = self._big_table()

        def closure():
            table._group_cache.clear()  # force recomputation
            return table.group_of(probe)

        group = benchmark(closure)
        assert len(group) == 10

    def test_group_of_cached(self, benchmark):
        table, probe = self._big_table()
        table.group_of(probe)  # warm the cache
        group = benchmark(table.group_of, probe)
        assert len(group) == 10


class TestCompatMappingCache:
    """Structural-mapping resolution with the fingerprint cache cold vs
    warm.  Every STRICT transfer between structurally distinct replicas
    pays this cost, so the warm path must be markedly cheaper."""

    def _transfer(self):
        source = build(standard_form_spec())
        source.find("/app/form/text").commit("content")
        payload = build_state_payload(source)
        target = build(standard_form_spec())
        return payload, target

    def test_fingerprint(self, benchmark):
        source = build(standard_form_spec())
        payload = build_state_payload(source)
        digest = benchmark(spec_fingerprint, payload["structure"])
        assert len(digest) == 40

    def test_apply_mapping_cold(self, benchmark):
        payload, target = self._transfer()

        def cold():
            DEFAULT_MAPPING_CACHE.clear()  # force recomputation
            return apply_state_payload(target, payload)

        report = benchmark(cold)
        assert report.applied_paths

    def test_apply_mapping_warm(self, benchmark):
        payload, target = self._transfer()
        DEFAULT_MAPPING_CACHE.clear()
        apply_state_payload(target, payload)  # warm the cache

        def warm():
            return apply_state_payload(target, payload)

        report = benchmark(warm)
        assert report.applied_paths
        assert DEFAULT_MAPPING_CACHE.hits > 0


class TestObservabilityOverhead:
    """Gate: enabling metrics must not regress the message economy.

    Replays the E11 selective-pairs workload (bench_e11_population.py)
    with observability off vs on and asserts msgs/op stays within 5%.
    The registry is pull-based (collectors polled at snapshot time), so
    the instrumented run should send the *same* messages — the trace
    context rides existing frames, it never adds round trips.
    """

    USERS = 8
    EVENTS_PER_USER = 5

    def _replay(self, observability):
        from repro.core.groups import CouplingGroup

        session = Session(observability=observability)
        trees = []
        for i in range(self.USERS):
            inst = session.create_instance(f"i{i}", user=f"u{i}")
            root = Shell("ui")
            TextField("field", parent=root)
            inst.add_root(root)
            trees.append(root)
        coordinator = session.create_instance("coord", user="mod")
        for i in range(0, self.USERS, 2):
            pair = CouplingGroup(coordinator, f"pair-{i}", ["/ui/field"])
            pair.add_member(f"i{i}")
            pair.add_member(f"i{i + 1}")
        session.pump()
        session.network.stats.reset()
        for round_no in range(self.EVENTS_PER_USER):
            for i in range(self.USERS):
                trees[i].find("/ui/field").commit(f"u{i}-r{round_no}")
                session.pump()
        stats = session.network.stats.snapshot()
        session.close()
        events = self.USERS * self.EVENTS_PER_USER
        return stats["messages"] / events

    def test_metrics_overhead_under_five_percent(self, benchmark):
        def compare():
            return self._replay(False), self._replay(True)

        baseline, instrumented = benchmark.pedantic(
            compare, rounds=1, iterations=1
        )
        assert instrumented <= baseline * 1.05, (
            f"observability regressed msgs/op: "
            f"{baseline:.2f} -> {instrumented:.2f}"
        )


class TestObservabilityOverheadProc:
    """Gate: the cluster observability plane stays off the hot path.

    Same economy argument as :class:`TestObservabilityOverhead`, on the
    multi-process path: with ``processes=True`` the supervisor scrapes
    workers over the admin links (piggybacked on heartbeats and at
    export time), so client-visible traffic per operation must stay
    within 5% of the uninstrumented run.
    """

    USERS = 4
    EVENTS_PER_USER = 3

    def _replay(self, observability, directory):
        session = Session(
            backend="aio",
            shards=2,
            processes=True,
            persistence=directory,
            observability=observability,
        )
        try:
            instances, trees = [], []
            for i in range(self.USERS):
                inst = session.create_instance(f"i{i}", user=f"u{i}")
                root = Shell("ui")
                TextField("field", parent=root)
                inst.add_root(root)
                instances.append(inst)
                trees.append(root)
            for i in range(0, self.USERS, 2):
                instances[i].couple(
                    trees[i].find("/ui/field"), (f"i{i + 1}", "/ui/field")
                )
            session.pump()
            before = session.traffic()["messages"]
            for round_no in range(self.EVENTS_PER_USER):
                for i in range(self.USERS):
                    trees[i].find("/ui/field").commit(f"u{i}-r{round_no}")
                    session.pump()
            messages = session.traffic()["messages"] - before
        finally:
            session.close()
        return messages / (self.USERS * self.EVENTS_PER_USER)

    def test_cluster_overhead_under_five_percent(self, benchmark, tmp_path):
        def compare():
            return (
                self._replay(False, str(tmp_path / "off")),
                self._replay(True, str(tmp_path / "on")),
            )

        baseline, instrumented = benchmark.pedantic(
            compare, rounds=1, iterations=1
        )
        assert instrumented <= baseline * 1.05, (
            f"cluster observability regressed msgs/op: "
            f"{baseline:.2f} -> {instrumented:.2f}"
        )


class TestPersistenceOverhead:
    """Gate: journaling must never add wire traffic.

    Replays the same selective-pairs workload with the op log off vs on
    (memory-backed journal — the fsync cost is the disk's, not the
    protocol's).  The journal hangs off ``handle_message`` *after* the
    handler ran; it appends locally and sends nothing, so msgs/op with
    persistence enabled must equal the baseline exactly, and the
    enabled run must stay within 5% even counting the local appends.
    """

    USERS = 8
    EVENTS_PER_USER = 5

    def _replay(self, persistence):
        from repro.core.groups import CouplingGroup
        from repro.persist import PersistenceConfig

        config = (
            PersistenceConfig(directory=None) if persistence else None
        )
        session = Session(persistence=config)
        trees = []
        for i in range(self.USERS):
            inst = session.create_instance(f"i{i}", user=f"u{i}")
            root = Shell("ui")
            TextField("field", parent=root)
            inst.add_root(root)
            trees.append(root)
        coordinator = session.create_instance("coord", user="mod")
        for i in range(0, self.USERS, 2):
            pair = CouplingGroup(coordinator, f"pair-{i}", ["/ui/field"])
            pair.add_member(f"i{i}")
            pair.add_member(f"i{i + 1}")
        session.pump()
        session.network.stats.reset()
        for round_no in range(self.EVENTS_PER_USER):
            for i in range(self.USERS):
                trees[i].find("/ui/field").commit(f"u{i}-r{round_no}")
                session.pump()
        stats = session.network.stats.snapshot()
        journaled = session.persistence
        appends = journaled.appends if journaled is not None else 0
        session.close()
        events = self.USERS * self.EVENTS_PER_USER
        return stats["messages"] / events, appends

    def test_journal_adds_no_wire_traffic(self, benchmark):
        def compare():
            return self._replay(False), self._replay(True)

        (baseline, _), (journaled, appends) = benchmark.pedantic(
            compare, rounds=1, iterations=1
        )
        assert journaled == baseline, (
            f"persistence changed the wire: "
            f"{baseline:.2f} -> {journaled:.2f} msgs/op"
        )
        assert appends > 0, "journal recorded nothing"
        assert journaled <= baseline * 1.05


class TestStateSyncThroughput:
    def test_build_payload(self, benchmark):
        root = build(standard_form_spec())
        payload = benchmark(build_state_payload, root)
        assert "state" in payload

    def test_apply_payload_strict(self, benchmark):
        source = build(standard_form_spec())
        source.find("/app/form/text").commit("content")
        payload = build_state_payload(source)
        target = build(standard_form_spec())

        def apply():
            return apply_state_payload(target, payload)

        report = benchmark(apply)
        assert report.applied_paths


def e11_message_mix(receivers=8):
    """The E11 population-workload wire mix: one coupled edit's full
    message complement (lock cycle, event, per-receiver broadcast and
    acks) plus the session-lifecycle kinds that ride along."""
    from repro.net.message import Message
    from repro.toolkit.events import Event

    event_wire = Event(
        type=VALUE_CHANGED,
        source_path="/app/board/canvas",
        params={"value": "stroke 182 204 17 44", "seq": 913},
        user="u3",
        instance_id="i3",
    ).to_wire()
    mix = [
        Message(kind=kinds.LOCK_REQUEST, sender="i3",
                payload={"source": ["i3", "/app/board/canvas"], "token": 77}),
        Message(kind=kinds.LOCK_REPLY, sender="server", to="i3", reply_to=1,
                payload={"granted": True, "conflicts": [],
                         "group": [["i3", "/app/board/canvas"],
                                   ["i5", "/app/board/canvas"]]}),
        Message(kind=kinds.EVENT, sender="i3",
                payload={"event": event_wire, "token": 77, "release": True}),
        Message(kind=kinds.COUPLE_UPDATE, sender="server", to="",
                payload={"action": "add",
                         "link": {"source": ["i3", "/app/board/canvas"],
                                  "target": ["i5", "/app/board/canvas"],
                                  "creator": "i3"},
                         "group": [["i3", "/app/board/canvas"],
                                   ["i5", "/app/board/canvas"]],
                         "cause": "couple"}),
    ]
    for r in range(receivers):
        mix.append(
            Message(kind=kinds.EVENT_BROADCAST, sender="server", to=f"i{r}",
                    payload={"event": event_wire,
                             "targets": [f"/app/board/canvas"],
                             "owner": ["i3", 77]},
                    trace=("a3f9" * 8, f"span{r:04d}"))
        )
        mix.append(
            Message(kind=kinds.EVENT_ACK, sender=f"i{r}",
                    payload={"owner": ["i3", 77]})
        )
    return mix


class TestCodecFrameSize:
    #: The binary codec must keep frames >= 30% smaller than JSON on the
    #: E11 fan-out mix — the wire-efficiency claim behind codec="binary".
    MAX_BINARY_RATIO = 0.70

    def test_binary_frames_beat_json_on_e11_mix(self, benchmark):
        from repro.net.binary import BINARY_CODEC
        from repro.net.codec import JSON_CODEC

        def measure():
            mix = e11_message_mix()
            json_bytes = sum(JSON_CODEC.wire_size(m) for m in mix)
            binary_bytes = sum(BINARY_CODEC.wire_size(m) for m in mix)
            return json_bytes, binary_bytes

        json_bytes, binary_bytes = benchmark.pedantic(
            measure, rounds=1, iterations=1
        )
        ratio = binary_bytes / json_bytes
        assert ratio <= self.MAX_BINARY_RATIO, (
            f"binary frames are only {(1 - ratio) * 100:.1f}% smaller than "
            f"JSON on the E11 mix ({binary_bytes} vs {json_bytes} bytes); "
            f"the codec promises >= 30%"
        )


class TestBinaryCodecThroughput:
    def test_encode(self, benchmark):
        from repro.net.binary import BINARY_CODEC

        mix = e11_message_mix()

        def encode_all():
            for m in mix:
                object.__setattr__(m, "_frames", None)
            return [BINARY_CODEC.encode(m) for m in mix]

        frames = benchmark(encode_all)
        assert all(frames)

    def test_decode(self, benchmark):
        from repro.net.binary import BINARY_CODEC

        frames = [BINARY_CODEC.encode(m) for m in e11_message_mix()]

        def decode_all():
            return [decode(f) for f in frames]

        out = benchmark(decode_all)
        assert len(out) == len(frames)


class TestBatchEncodeGate:
    """Gate: batch-envelope encode must beat per-message framing.

    Encoding a flush as one batch envelope skips the per-message frame
    cache, the per-message header pack and the per-frame ``bytes`` copy;
    the envelope's member loop shares every encoder table across the
    batch.  On the E11 wire mix (cache-cold, the worst case for the
    envelope) the batch path must cost <= ``MAX_RATIO`` of the
    per-message path, per message.
    """

    #: Committed floor; measured ~0.60 on the reference machine
    #: (benchmarks/results/wire_batching_encode.txt).
    MAX_RATIO = 0.70
    ROUNDS = 300

    def _cost(self, encode_mix, mix):
        import time as _time

        def once():
            for m in mix:
                object.__setattr__(m, "_frames", None)
            started = _time.perf_counter()
            encode_mix(mix)
            return _time.perf_counter() - started

        return min(once() for _ in range(self.ROUNDS)) / len(mix)

    def test_binary_batch_encode_beats_per_message(self, benchmark):
        from repro.net.binary import BINARY_CODEC
        from repro.net.codec import JSON_CODEC

        from _common import emit_table

        def measure():
            mix = e11_message_mix()
            rows = []
            for codec in (BINARY_CODEC, JSON_CODEC):
                per_message = self._cost(
                    lambda ms, c=codec: [c.encode(m) for m in ms], mix
                )
                batch = self._cost(
                    lambda ms, c=codec: c.encode_batch(ms), mix
                )
                rows.append(
                    (codec.name, per_message * 1e6, batch * 1e6,
                     batch / per_message)
                )
            return rows

        rows = benchmark.pedantic(measure, rounds=1, iterations=1)
        emit_table(
            "wire_batching_encode",
            "Batch-envelope vs per-message encode (E11 mix, cache-cold)",
            ["codec", "per-msg us/msg", "batch us/msg", "ratio"],
            rows,
        )
        binary_ratio = rows[0][3]
        assert binary_ratio <= self.MAX_RATIO, (
            f"binary batch encode is {binary_ratio:.2f}x the per-message "
            f"path per message; the envelope promises <= {self.MAX_RATIO}x"
        )
