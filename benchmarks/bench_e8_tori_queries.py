"""E8 — §4 TORI: multiple query evaluation vs evaluate-once-share-results.

The paper's experience report: "We also synchronize the invocation of
queries, which implies that a query will be potentially re-executed
several times.  From a performance point of view, one might argue that it
would be preferable to evaluate the query once and share the results.
But this goes beyond a simple sharing of UI objects. ... On the other
hand, multiple evaluation is more flexible."

Series reproduced: (participants, database size) sweep → total rows
scanned and bytes shipped for each mode.  Re-execution pays CPU at every
replica but ships only the tiny query events; sharing pays one scan but
ships the full result rows.
"""


from _common import emit_table
from repro.apps.minidb import sample_publications
from repro.apps.tori import ToriApplication
from repro.session import Session

SWEEP = (  # (participants, rows in each database)
    (2, 200),
    (4, 200),
    (8, 200),
    (4, 1000),
    (4, 5000),
)


def run_mode(n_users, db_rows, share_results):
    session = Session()
    apps = [
        ToriApplication(
            session.create_instance(f"tori-{i}", user=f"u{i}", app_type="tori"),
            sample_publications(db_rows, seed=9),
        )
        for i in range(n_users)
    ]
    primary = apps[0]
    for i in range(1, n_users):
        primary.make_cooperative(f"tori-{i}", share_results=share_results)
    session.pump()
    session.network.stats.reset()
    primary.set_condition("author", "eq", "Zhao")
    session.pump()
    primary.run_query()
    session.pump()
    if share_results:
        primary.share_results()
        session.pump()
    total_scanned = sum(app.database.total_rows_scanned for app in apps)
    rows_visible = [len(app.visible_rows()) for app in apps]
    stats = session.network.stats.snapshot()
    session.close()
    assert all(r == rows_visible[0] for r in rows_visible), "must converge"
    return {
        "scanned": total_scanned,
        "bytes": stats["bytes"],
        "messages": stats["messages"],
        "result_rows": rows_visible[0],
    }


class TestToriQueries:
    def test_mode_sweep(self, benchmark):
        def sweep():
            rows = []
            for n_users, db_rows in SWEEP:
                reexec = run_mode(n_users, db_rows, share_results=False)
                share = run_mode(n_users, db_rows, share_results=True)
                rows.append(
                    [
                        n_users,
                        db_rows,
                        reexec["scanned"],
                        share["scanned"],
                        reexec["bytes"],
                        share["bytes"],
                        reexec["result_rows"],
                    ]
                )
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        emit_table(
            "e8_tori_queries",
            "E8: TORI — re-execute everywhere vs evaluate once & share",
            ["users", "db rows", "scan reexec", "scan share",
             "bytes reexec", "bytes share", "result rows"],
            rows,
        )
        for n_users, db_rows, scan_re, scan_sh, bytes_re, bytes_sh, _ in rows:
            # Shape: re-execution scans N times the database...
            assert scan_re == n_users * db_rows
            # ...sharing scans it exactly once...
            assert scan_sh == db_rows
            # ...but ships more bytes (the result rows travel).
            assert bytes_sh > bytes_re
        # Shape: the scan gap grows with participants (who wins depends on
        # whether CPU or bandwidth is scarce — the paper's trade-off).
        assert rows[2][2] / rows[2][3] > rows[0][2] / rows[0][3]

    def test_flexibility_of_reexecution(self, benchmark):
        """Multiple evaluation lets queries differ per user — here each
        user queries their *own* database and still stays coordinated."""

        def run():
            session = Session()
            a = ToriApplication(
                session.create_instance("tori-a", user="u1"),
                sample_publications(300, seed=1),
            )
            b = ToriApplication(
                session.create_instance("tori-b", user="u2"),
                sample_publications(300, seed=2),
            )
            a.make_cooperative("tori-b")
            session.pump()
            a.set_condition("author", "eq", "Hoppe")
            session.pump()
            a.run_query()
            session.pump()
            out = (
                b.queries_run,
                a.visible_rows() == b.visible_rows(),
            )
            session.close()
            return out

        b_ran, same_rows = benchmark.pedantic(run, rounds=1, iterations=1)
        assert b_ran == 1
        assert not same_rows  # different corpora, legitimately different hits

    def test_query_wall_clock(self, benchmark):
        session = Session()
        app = ToriApplication(
            session.create_instance("tori", user="u"),
            sample_publications(2000, seed=3),
        )
        app.set_condition("topic", "substring", "system")

        def query():
            app.run_query()

        benchmark(query)
        session.close()
