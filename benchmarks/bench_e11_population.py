"""E11 — §2.2 population relaxation: selective vs global sharing.

"In global sharing mode, each participant has to couple with the rest of
the work group ... In our approach, we support dynamic grouping, in that
we allow each participant to couple selectively with other participants."

Series reproduced: N participants editing their shared field at the same
rate, under (a) **global sharing** — one couple group spanning everyone —
versus (b) **selective grouping** — disjoint pairs.  Every event in
global mode fans out to N−1 receivers (plus their acks); in pairs it
reaches exactly one.  Selective coupling turns the per-event cost from
O(N) into O(1), which is what makes the paper's classroom (one teacher,
many mostly-independent students) feasible.
"""

import pytest

from _common import emit_table
from repro.core.groups import CouplingGroup
from repro.session import Session
from repro.toolkit.widgets import Shell, TextField

USERS = (4, 8, 16)
EVENTS_PER_USER = 5
FIELD = "/ui/field"


def build_session(n_users):
    session = Session()
    trees = []
    for i in range(n_users):
        inst = session.create_instance(f"i{i}", user=f"u{i}")
        root = Shell("ui")
        TextField("field", parent=root)
        inst.add_root(root)
        trees.append(root)
    coordinator = session.create_instance("coord", user="mod")
    return session, trees, coordinator


def run(n_users, mode):
    session, trees, coordinator = build_session(n_users)
    if mode == "global":
        group = CouplingGroup(coordinator, "everyone", [FIELD])
        for i in range(n_users):
            group.add_member(f"i{i}")
    else:  # disjoint pairs
        for i in range(0, n_users, 2):
            pair = CouplingGroup(coordinator, f"pair-{i}", [FIELD])
            pair.add_member(f"i{i}")
            pair.add_member(f"i{i + 1}")
    session.pump()
    session.network.stats.reset()
    for round_no in range(EVENTS_PER_USER):
        for i in range(n_users):
            trees[i].find(FIELD).commit(f"u{i}-r{round_no}")
            session.pump()
    stats = session.network.stats.snapshot()
    events = n_users * EVENTS_PER_USER
    # Convergence check per group.
    if mode == "global":
        values = {t.find(FIELD).value for t in trees}
        assert len(values) == 1
    else:
        for i in range(0, n_users, 2):
            assert (
                trees[i].find(FIELD).value == trees[i + 1].find(FIELD).value
            )
    session.close()
    return {
        "messages_per_event": stats["messages"] / events,
        "bytes_per_event": stats["bytes"] / events,
    }


class TestPopulationRelaxation:
    def test_global_vs_selective(self, benchmark):
        def sweep():
            rows = []
            for n in USERS:
                global_mode = run(n, "global")
                pairs_mode = run(n, "pairs")
                rows.append(
                    [
                        n,
                        round(global_mode["messages_per_event"], 1),
                        round(pairs_mode["messages_per_event"], 1),
                        round(
                            global_mode["messages_per_event"]
                            / pairs_mode["messages_per_event"],
                            1,
                        ),
                    ]
                )
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        emit_table(
            "e11_population",
            "E11: msgs/event — global sharing vs selective pairs",
            ["users", "global msgs/event", "pairs msgs/event", "ratio"],
            rows,
        )
        # Shape: global fan-out grows linearly with N (3 + 2(N-1));
        # selective pairs stay constant (3 + 2).
        for n, global_cost, pairs_cost, ratio in rows:
            assert global_cost == pytest.approx(3 + 2 * (n - 1), abs=0.5)
            assert pairs_cost == pytest.approx(5, abs=0.5)
        ratios = [row[3] for row in rows]
        assert ratios == sorted(ratios)  # the gap widens with N
        assert ratios[-1] > 4
