"""E5 — §3.2: floor-control cost vs event granularity.

The paper: "Such a locking mechanism might become costly if the events
were fine-grained, such as cursor movements or the typing of single
characters.  However, in our model, most events are high-level callback
events of UI objects."

Series reproduced: the same text typed into a coupled text field (a) one
KEY_PRESS event per keystroke — every keystroke pays a lock round trip —
versus (b) one high-level VALUE_CHANGED commit.  Reported: messages,
bytes, lock acquisitions, simulated completion time.
"""


from _common import emit_table, ms
from repro.session import Session
from repro.toolkit.widgets import Shell, TextField

TEXTS = {
    "short (8 chars)": "abcdefgh",
    "sentence (32 chars)": "the quick brown fox jumps over.!",
    "paragraph (128 chars)": "x" * 128,
}


def build_pair():
    session = Session()
    trees = []
    for name in ("a", "b"):
        inst = session.create_instance(name, user=name)
        root = Shell("ui")
        TextField("field", parent=root)
        inst.add_root(root)
        trees.append(root)
    session.instances["a"].couple(
        trees[0].find("/ui/field"), ("b", "/ui/field")
    )
    session.pump()
    return session, trees


def type_text(text, fine_grained):
    session, (tree_a, tree_b) = build_pair()
    session.network.stats.reset()
    acquisitions_before = session.server.locks.stats.acquisitions
    start = session.now
    field = tree_a.find("/ui/field")
    if fine_grained:
        for char in text:
            field.type_key(char)
        session.pump()
    else:
        field.commit(text)
        session.pump()
    result = {
        "messages": session.network.stats.messages,
        "bytes": session.network.stats.bytes,
        "locks": session.server.locks.stats.acquisitions - acquisitions_before,
        "time_ms": ms(session.now - start),
        "converged": tree_b.find("/ui/field").value == text,
    }
    session.close()
    return result


class TestLockGranularity:
    def test_granularity_sweep(self, benchmark):
        def sweep():
            rows = []
            for label, text in TEXTS.items():
                fine = type_text(text, fine_grained=True)
                coarse = type_text(text, fine_grained=False)
                assert fine["converged"] and coarse["converged"]
                rows.append((label, fine, coarse))
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        table = []
        for label, fine, coarse in rows:
            table.append(
                [label, "per-keystroke", fine["messages"], fine["bytes"],
                 fine["locks"], fine["time_ms"]]
            )
            table.append(
                [label, "high-level commit", coarse["messages"],
                 coarse["bytes"], coarse["locks"], coarse["time_ms"]]
            )
        emit_table(
            "e5_lock_granularity",
            "E5: floor control cost — fine-grained vs high-level events",
            ["text", "granularity", "messages", "bytes", "locks", "sim ms"],
            table,
        )
        # Shape: per-keystroke costs scale with text length; the commit
        # costs one lock round regardless.
        for label, fine, coarse in rows:
            assert coarse["locks"] == 1
            assert fine["locks"] == len(TEXTS[label])
            assert fine["messages"] > coarse["messages"] * 3
        # Shape: the gap widens with length (the paper's "costly").
        short = rows[0]
        long = rows[-1]
        assert (long[1]["messages"] / long[2]["messages"]) > (
            short[1]["messages"] / short[2]["messages"]
        )

    def test_wall_clock_per_event(self, benchmark):
        """Wall-clock cost of one fine-grained coupled keystroke."""
        session, (tree_a, _) = build_pair()
        field = tree_a.find("/ui/field")

        def keystroke():
            field.type_key("x")
            session.pump()

        benchmark(keystroke)
        session.close()
