"""T1 — the paper's §2.2 comparison of synchronization approaches.

Reproduces the comparison table of application-independent multi-user
architectures: multiplex (Figure 1), UI-replicated (Figure 2) and the
fully replicated COSOFT model (Figures 3/4).  One identical editing
workload runs through all three harnesses; the table reports the numeric
columns (latency, traffic, central load) next to the paper's qualitative
feature columns.

Expected shape (the paper's argument):
* multiplex has NO local echo (a full round trip) and the heaviest
  central component;
* UI-replicated echoes locally but serializes semantics centrally;
* fully replicated echoes locally, scales semantics out, and is the only
  one supporting partial coupling, heterogeneity and dynamic grouping.
"""

import pytest

from _common import emit_table, ms
from repro.baselines import ALL_ARCHITECTURES
from repro.workloads import WorkloadConfig, editing_session

USERS = (2, 4, 8, 16)


def run_architecture(cls, n_users, actions_per_user=10, semantic_cost=0.002):
    workload = editing_session(
        WorkloadConfig(n_users=n_users, actions_per_user=actions_per_user, seed=17)
    )
    harness = cls(n_users, semantic_cost=semantic_cost)
    harness.run(workload)
    metrics = harness.metrics()
    harness.close()
    return metrics


class TestTable1:
    @pytest.mark.parametrize("cls", ALL_ARCHITECTURES, ids=lambda c: c.name)
    def test_quantitative_columns(self, benchmark, cls):
        metrics = benchmark.pedantic(
            run_architecture, args=(cls, 4), rounds=1, iterations=1
        )
        benchmark.extra_info.update(
            {k: v for k, v in metrics.items() if isinstance(v, (int, float, str))}
        )
        assert metrics["executed"] > 0

    def test_emit_comparison_table(self, benchmark):
        def sweep():
            rows = []
            per_arch = {}
            for n_users in USERS:
                for cls in ALL_ARCHITECTURES:
                    m = run_architecture(cls, n_users)
                    per_arch.setdefault(cls.name, {})[n_users] = m
                    rows.append(
                        [
                            m["architecture"],
                            n_users,
                            ms(m["echo_latency_mean"]),
                            ms(m["sync_latency_mean"]),
                            round(m["messages_per_action"], 1),
                            m["central_inbound_messages"],
                            m["denied"],
                        ]
                    )
            return rows, per_arch

        rows, per_arch = benchmark.pedantic(sweep, rounds=1, iterations=1)
        emit_table(
            "table1_quantitative",
            "Table 1 (quantitative): architectures under one workload",
            ["architecture", "users", "echo ms", "sync ms",
             "msgs/action", "central in-msgs", "denied"],
            rows,
        )
        feature_rows = [
            [
                cls.name,
                cls.features["replication"],
                cls.features["local_echo"],
                cls.features["partial_coupling"],
                cls.features["heterogeneous_instances"],
                cls.features["dynamic_grouping"],
            ]
            for cls in ALL_ARCHITECTURES
        ]
        emit_table(
            "table1_features",
            "Table 1 (qualitative): feature columns from the paper",
            ["architecture", "replication", "local echo", "partial coupling",
             "heterogeneous", "dynamic grouping"],
            feature_rows,
        )
        # Shape assertions (the paper's qualitative claims).
        four = {name: m[4] for name, m in per_arch.items()}
        assert (
            four["multiplex"]["echo_latency_mean"]
            > four["ui-replicated"]["echo_latency_mean"]
        )
        assert (
            four["multiplex"]["echo_latency_mean"]
            > four["fully-replicated"]["echo_latency_mean"]
        )
        mux8 = per_arch["multiplex"][8]
        assert mux8["central_inbound_messages"] == mux8["actions"]
