"""F3 — Figure 3: the fully replicated architecture.

The paper (§2.1): "A fully replicated architecture ... avoids this
runtime problem" — a time-consuming semantic action is re-executed on
every replica, but replicas pay independently: one couple group's slow
work never queues another group's actions behind a central component.

Series reproduced: the same semantic-cost sweep as Figure 2 run through
the real COSOFT runtime, plus the two-group isolation experiment that
contrasts directly with the UI-replicated blocking behaviour.
"""

import pytest

from _common import emit_table, ms
from repro.baselines.fully_replicated import FullyReplicatedHarness
from repro.baselines.ui_replicated import UIReplicatedHarness
from repro.workloads import (
    SCALE_PATH,
    TEXT_PATH,
    UserAction,
    WorkloadConfig,
    assign_ids,
    editing_session,
)

COSTS = (0.0, 0.005, 0.02, 0.05, 0.1)


def run(cost, n_users=6):
    workload = editing_session(
        WorkloadConfig(
            n_users=n_users, actions_per_user=8, seed=31, mean_think_time=0.1
        )
    )
    harness = FullyReplicatedHarness(n_users, semantic_cost=cost)
    records = harness.run(workload)
    metrics = harness.metrics()
    harness.close()
    return metrics


def two_group_workload():
    """Group X (text field) with users 0,1; group Y (scale) with users 2,3.
    X's users act at t=0.0/0.1 with heavy semantics; Y's users act densely."""
    actions = [
        UserAction(at=0.0, user=0, path=TEXT_PATH, event_type="value_changed",
                   params={"value": "slow work"}),
        UserAction(at=0.1, user=1, path=TEXT_PATH, event_type="value_changed",
                   params={"value": "more slow work"}),
    ]
    for i in range(8):
        actions.append(
            UserAction(at=0.01 + i * 0.02, user=2 + (i % 2), path=SCALE_PATH,
                       event_type="value_changed", params={"value": i * 10})
        )
    return assign_ids(actions)


class TestFigure3:
    def test_semantic_cost_sweep(self, benchmark):
        results = benchmark.pedantic(
            lambda: [run(c) for c in COSTS], rounds=1, iterations=1
        )
        rows = [
            [
                ms(cost),
                ms(m["echo_latency_mean"]),
                ms(m["sync_latency_mean"]),
                ms(m["sync_latency_p95"]),
            ]
            for cost, m in zip(COSTS, results)
        ]
        emit_table(
            "fig3_fully_replicated",
            "Figure 3: fully replicated — semantic cost sweep",
            ["semantic cost ms", "echo ms", "sync mean ms", "sync p95 ms"],
            rows,
        )
        # Shape: echo stays local and instant.
        for m in results:
            assert m["echo_latency_mean"] == pytest.approx(0.0)

    def test_crossover_vs_ui_replicated(self, benchmark):
        """Fig 2 vs Fig 3 head-to-head: as the semantic cost grows, the
        fully replicated architecture wins (the paper's core argument)."""

        def sweep():
            pairs = []
            for cost in COSTS:
                full = run(cost)
                ui = UIReplicatedHarness(6, semantic_cost=cost)
                ui.run(
                    editing_session(
                        WorkloadConfig(n_users=6, actions_per_user=8, seed=31,
                                       mean_think_time=0.1)
                    )
                )
                pairs.append((cost, full, ui.metrics()))
            return pairs

        pairs = benchmark.pedantic(sweep, rounds=1, iterations=1)
        rows = [
            [ms(cost), ms(ui["sync_latency_p95"]), ms(full["sync_latency_p95"])]
            for cost, full, ui in pairs
        ]
        emit_table(
            "fig3_vs_fig2",
            "Figures 2 vs 3: sync p95 under growing semantic cost",
            ["semantic cost ms", "ui-replicated p95 ms", "fully-replicated p95 ms"],
            rows,
        )
        # Shape: at the heavy end, fully replicated is faster.
        heavy_cost, heavy_full, heavy_ui = pairs[-1]
        assert heavy_full["sync_latency_p95"] < heavy_ui["sync_latency_p95"]

    def test_group_isolation(self, benchmark):
        """Disjoint couple groups on disjoint replicas do not interfere: a
        slow group X (replicas 0-1) never delays group Y (replicas 2-3) —
        unlike the centralized-semantics architecture, where X's operations
        would queue ahead of Y's at the single semantic process."""

        def measure():
            from repro.session import Session
            from repro.toolkit.widgets import Scale, Shell, TextField

            session = Session()
            trees = []
            for i in range(4):
                inst = session.create_instance(f"r{i}", user=f"u{i}")
                root = Shell("ui")
                TextField("text", parent=root)
                Scale("scale", parent=root, maximum=100)
                inst.add_root(root)
                trees.append(root)
            # Group X: text coupled between replicas 0 and 1, with a 200ms
            # semantic callback on each member.
            session.instances["r0"].couple(
                trees[0].find("/ui/text"), ("r1", "/ui/text")
            )
            for i in (0, 1):
                trees[i].find("/ui/text").add_callback(
                    "value_changed",
                    lambda w, e, i=i: session.network.occupy(f"r{i}", 0.2),
                )
            # Group Y: scale coupled between replicas 2 and 3, cheap.
            session.instances["r2"].couple(
                trees[2].find("/ui/scale"), ("r3", "/ui/scale")
            )
            session.pump()
            sync_times = []
            trees[3].find("/ui/scale").add_callback(
                "value_changed",
                lambda w, e: sync_times.append(session.now),
            )
            # X fires its slow op; Y fires a burst right behind it.
            trees[0].find("/ui/text").commit("heavy")
            starts = []
            for k in range(5):
                starts.append(session.now)
                trees[2].find("/ui/scale").set_value(k * 10)
                session.pump()
            session.close()
            return [t - s for s, t in zip(starts, sync_times)]

        y_latencies = benchmark.pedantic(measure, rounds=1, iterations=1)
        emit_table(
            "fig3_group_isolation",
            "Figure 3: group Y sync latency while group X runs 200ms ops",
            ["y action", "sync ms"],
            [[i, ms(v)] for i, v in enumerate(y_latencies)],
        )
        assert len(y_latencies) == 5
        # Y's actions complete far faster than X's 200ms semantic ops, even
        # while X is busy: no central serialization.
        assert max(y_latencies) < 0.1
