"""Network-parameter sensitivity of the coupling protocol.

The paper ran on a 1994 LAN; our simulator lets us ask how the mechanism
behaves across network regimes — from same-switch (0.1 ms) to WAN-like
(50 ms) latency, and across bandwidth models.  The interesting shapes:

* coupled-event *sync* latency is a fixed small number of hops, so it
  scales linearly with one-way latency (no hidden round-trip blowup);
* floor acquisition adds exactly one round trip before the event ships;
* byte-heavy operations (direct display coupling, result sharing) are the
  ones that react to the per-byte term — the indirect-coupling and
  high-level-event designs keep payloads small precisely so that latency,
  not bandwidth, dominates.
"""


from _common import emit_table, ms
from repro.session import Session
from repro.toolkit.widgets import Canvas, Shell, TextField

LATENCIES = (0.0001, 0.001, 0.01, 0.05)
FIELD = "/ui/field"
CANVAS = "/ui/canvas"


def build_pair(**net_kwargs):
    session = Session(**net_kwargs)
    trees = []
    for name in ("a", "b"):
        inst = session.create_instance(name, user=name)
        root = Shell("ui")
        TextField("field", parent=root)
        Canvas("canvas", parent=root, width=40, height=10)
        inst.add_root(root)
        trees.append(root)
    session.instances["a"].couple(trees[0].find(FIELD), ("b", FIELD))
    session.pump()
    return session, trees


def measure_sync(base_latency, events=10):
    session, (ta, tb) = build_pair(base_latency=base_latency)
    start = session.now
    for i in range(events):
        ta.find(FIELD).commit(f"v{i}")
        session.pump()
    per_event = (session.now - start) / events
    session.close()
    return per_event


class TestLatencySensitivity:
    def test_latency_sweep(self, benchmark):
        results = benchmark.pedantic(
            lambda: [(lat, measure_sync(lat)) for lat in LATENCIES],
            rounds=1,
            iterations=1,
        )
        rows = [
            [ms(lat), ms(per_event), round(per_event / lat, 1)]
            for lat, per_event in results
        ]
        emit_table(
            "network_latency",
            "Sync time per coupled event vs one-way latency",
            ["one-way ms", "sync ms/event", "hops (ratio)"],
            rows,
        )
        # Shape: the protocol is a constant number of hops — the ratio
        # (sync / latency) is the same across three orders of magnitude.
        ratios = [per_event / lat for lat, per_event in results]
        assert max(ratios) - min(ratios) < 0.5
        # Exactly: lock-req + lock-reply + event + broadcast + ack, with
        # the ack overlapping the next event's lock round trip: 5 hops
        # on the first event, amortizing toward 5 per event.
        assert 3 <= ratios[-1] <= 7

    def test_bandwidth_sensitivity(self, benchmark):
        """Per-byte cost hits payload-heavy ops, not high-level events."""

        def measure(per_byte):
            session, (ta, tb) = build_pair(
                base_latency=0.001, per_byte_latency=per_byte
            )
            # Small payload: one text commit.
            start = session.now
            ta.find(FIELD).commit("small")
            session.pump()
            small = session.now - start
            # Big payload: couple the canvases and ship a 200-point stroke.
            session.instances["a"].couple(
                ta.find(CANVAS), ("b", CANVAS)
            )
            session.pump()
            start = session.now
            ta.find(CANVAS).draw_stroke(
                [(i % 40, i % 10) for i in range(200)]
            )
            session.pump()
            big = session.now - start
            session.close()
            return small, big

        sweep = benchmark.pedantic(
            lambda: [(b, *measure(b)) for b in (0.0, 1e-6, 1e-5)],
            rounds=1,
            iterations=1,
        )
        rows = [
            [f"{per_byte:g}", ms(small), ms(big), round(big / small, 1)]
            for per_byte, small, big in sweep
        ]
        emit_table(
            "network_bandwidth",
            "Commit vs big-stroke sync time under per-byte latency",
            ["s/byte", "small-op ms", "big-op ms", "big/small"],
            rows,
        )
        # Shape: with no bandwidth term the two ops cost alike; the gap
        # opens as the per-byte cost grows.
        gaps = [big / small for _, small, big in sweep]
        assert gaps[0] < 2.0
        assert gaps[-1] > gaps[0] * 2
