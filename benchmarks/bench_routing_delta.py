"""Interest-aware routing + delta sync: delivered traffic on the hot path.

The paper's central server should make traffic scale with *coupling
interest*, not population (§2.2).  Two series quantify what the PR's
routing layer buys:

* **Routing sweep** — N instances with sparse (10% of the population in
  couple pairs) or dense (everyone paired) coupling run a workload of
  coupling churn plus coupled edits.  ``couple_scope="all"`` replicates
  every COUPLE_UPDATE to the whole population (the pre-change broadcast
  path); ``couple_scope="group"`` scopes it to the affected group's
  audience.  Reported: delivered messages per logical operation.

* **Delta payload** — repeated CopyTo of a mostly-unchanged tree, full
  snapshot vs delta encoding, measured in wire bytes per transfer.

Both series run on the simulated network by default; CI re-runs them on
the asyncio runtime via ``REPRO_ROUTING_BENCH_BACKEND=aio`` as the
regression gate, so the counters come from ``session.traffic()`` (the
same snapshot every backend reports) rather than the memory network's
private stats object.
"""

import gc
import os
import socket
import threading
import time

from _common import emit_table
from repro.net import kinds
from repro.net.aio import AioHostTransport, BatchConfig
from repro.net.codec import JSON_CODEC
from repro.net.message import Message
from repro.net.transport import TrafficStats
from repro.session import Session
from repro.toolkit.widgets import Scale, Shell, TextField

BACKEND = os.environ.get("REPRO_ROUTING_BENCH_BACKEND", "memory")
POPULATIONS = (16, 32, 64)
CHURN_ROUNDS = 3
FIELD = "/ui/field"

#: Acceptance floor: scoped routing must at least halve delivered
#: messages on the sparse 64-instance workload.
MIN_SPARSE_REDUCTION = 2.0

#: Committed sparse-coupling baseline (delivered messages per logical
#: operation with ``couple_scope="group"``): measured 3.7 on the memory
#: backend at every population, with headroom for backend accounting
#: differences.  CI fails if a change pushes the scoped path above this.
SPARSE_GROUP_BASELINE = 5.0

#: Acceptance floor: at 64 instances the binary codec must deliver at
#: least 1.3x as many protocol messages per wire byte as JSON — the
#: bandwidth-bound delivery throughput (see TestCodecDelivery).
MIN_CODEC_EFFICIENCY_GAIN = 1.3

#: Loopback wall-clock is codec-neutral (see TestCodecDelivery); this
#: floor only catches a pathological encode/decode regression.
MIN_CODEC_WALLCLOCK_RATIO = 0.75

#: Committed JSON baseline: wire bytes per delivered message on the
#: 64-instance event-flood workload (measured 198 on memory, 288 on
#: aio; headroom for backend accounting differences).
JSON_FLOOD_BYTES_PER_MSG_BASELINE = 340.0

#: Acceptance target: the flush path (encode + traffic accounting, the
#: work wire batching replaces) should deliver >= 1.5x messages/sec as
#: one batch envelope vs per-message frames on the 64-destination flood
#: traffic.  Measured 1.36-1.75x (typically ~1.5x) on the reference
#: machine; as with the encode gate's 0.5x-target/0.7x-floor pattern,
#: the committed floor leaves noise headroom below the target (a real
#: regression collapses the ratio to ~1.0x).
MIN_FLUSH_SPEEDUP = 1.3

#: End-to-end loopback wall-clock is scheduler-bound (see
#: TestWireBatchingFlood docstring); this floor only catches a batching
#: path that slows real delivery down.  Measured 1.1-1.5x run to run.
MIN_FLOOD_SPEEDUP = 1.05

#: Batches must really form on the flood: mean messages per envelope.
MIN_ENVELOPE_FILL = 16.0


def settle(session, predicate, timeout=10.0):
    if session.backend == "memory":
        session.pump()
        return predicate()
    session.pump()
    end = time.monotonic() + timeout
    while time.monotonic() < end:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def build_tree():
    root = Shell("ui")
    TextField("field", parent=root)
    Scale("zoom", parent=root, maximum=100)
    return root


def run_routing(n_instances, density, scope):
    """Coupling churn + coupled edits; returns delivered msgs/operation."""
    session = Session(backend=BACKEND, couple_scope=scope)
    trees = []
    instances = []
    for i in range(n_instances):
        inst = session.create_instance(f"i{i}", user=f"u{i}")
        trees.append(inst.add_root(build_tree()))
        instances.append(inst)
    session.pump()

    if density == "sparse":
        coupled_count = max(2, n_instances // 10)
    else:  # dense
        coupled_count = n_instances
    coupled_count -= coupled_count % 2
    pairs = [(i, i + 1) for i in range(0, coupled_count, 2)]

    baseline = session.traffic()["messages"]
    operations = 0
    for round_no in range(CHURN_ROUNDS):
        for a, b in pairs:
            instances[a].couple(trees[a].find(FIELD), (f"i{b}", FIELD))
            operations += 1
        for a, b in pairs:
            trees[a].find(FIELD).commit(f"r{round_no}-{a}")
            assert settle(
                session,
                lambda a=a, b=b, v=f"r{round_no}-{a}": (
                    trees[b].find(FIELD).value == v
                ),
            )
            operations += 1
        for a, b in pairs:
            instances[a].decouple(trees[a].find(FIELD), (f"i{b}", FIELD))
            operations += 1
    session.pump()

    # Correctness guard: the scoped run still converged every pair.
    for a, b in pairs:
        assert (
            trees[b].find(FIELD).value
            == trees[a].find(FIELD).value
            == f"r{CHURN_ROUNDS - 1}-{a}"
        )
    delivered = session.traffic()["messages"] - baseline
    session.close()
    return delivered / operations


def build_form_tree(fields=12):
    """A form-sized complex object: deltas touch one field of many."""
    root = Shell("ui")
    for i in range(fields):
        TextField(f"field{i}", parent=root)
    field = TextField("field", parent=root)
    field.set("value", "seed " * 8)
    Scale("zoom", parent=root, maximum=100)
    return root


def run_delta_bytes(edits_between_transfers=1, transfers=10):
    """Wire bytes per CopyTo transfer: full snapshot vs delta encoding."""
    results = {}
    for delta in (False, True):
        session = Session(backend=BACKEND, delta_sync=delta)
        a = session.create_instance("a", user="alice")
        b = session.create_instance("b", user="bob")
        tree_a = a.add_root(build_form_tree())
        b.add_root(build_form_tree())
        session.pump()

        # Prime with the first (always-full) transfer, then measure the
        # steady state through the per-kind byte counters.
        a.copy_to("/ui", ("b", "/ui"))
        session.pump()
        baseline = session.traffic()["bytes_by_kind"].get("push_state", 0)
        for t in range(transfers):
            for e in range(edits_between_transfers):
                tree_a.find(FIELD).set("value", f"t{t}e{e}")
            a.copy_to("/ui", ("b", "/ui"))
        session.pump()
        push_bytes = (
            session.traffic()["bytes_by_kind"].get("push_state", 0) - baseline
        )
        session.close()
        results["delta" if delta else "full"] = push_bytes / transfers
    return results


class TestRoutingSweep:
    def test_scoped_vs_broadcast(self, benchmark):
        def sweep():
            rows = []
            for n in POPULATIONS:
                for density in ("sparse", "dense"):
                    all_cost = run_routing(n, density, "all")
                    group_cost = run_routing(n, density, "group")
                    rows.append(
                        [
                            n,
                            density,
                            round(all_cost, 1),
                            round(group_cost, 1),
                            round(all_cost / group_cost, 1),
                        ]
                    )
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        emit_table(
            "routing_delta_sweep",
            "Interest routing: delivered msgs/op, scope=all vs scope=group",
            ["instances", "density", "all msgs/op", "group msgs/op", "ratio"],
            rows,
        )
        by_key = {(n, d): ratio for n, d, _, _, ratio in rows}
        # Acceptance: >= 2x delivered-message reduction on the sparse
        # 64-instance workload vs the pre-change broadcast path.
        assert by_key[(64, "sparse")] >= MIN_SPARSE_REDUCTION
        # The win grows with population: suppressed copies scale with N.
        sparse_ratios = [by_key[(n, "sparse")] for n in POPULATIONS]
        assert sparse_ratios == sorted(sparse_ratios)
        # Regression gate: the scoped path must stay at (or below) the
        # committed per-operation cost, independent of population.
        by_group = {(n, d): group for n, d, _, group, _ in rows}
        assert by_group[(64, "sparse")] <= SPARSE_GROUP_BASELINE


def run_latency_histograms(n_edits=40):
    """Instrumented coupled edits; returns per-segment histogram samples.

    Observability stamps every hop of the multiple-execution path with a
    span; :meth:`Observability.observe_span_latencies` folds the finished
    durations into the ``repro_sync_latency_seconds`` histogram family
    (log-scale buckets, 1 µs .. ~4 s), which this returns by segment.
    """
    session = Session(backend=BACKEND, observability=True)
    a = session.create_instance("a", user="alice")
    b = session.create_instance("b", user="bob")
    tree_a = a.add_root(build_tree())
    tree_b = b.add_root(build_tree())
    a.couple(tree_a.find(FIELD), ("b", FIELD))
    session.pump()
    for n in range(n_edits):
        tree_a.find(FIELD).commit(f"edit-{n}")
        assert settle(
            session,
            lambda v=f"edit-{n}": tree_b.find(FIELD).value == v,
        )
    # Let the trailing acks close their spans before folding durations.
    settle(session, lambda: session.obs.spans.stats()["open"] == 0)
    session.obs.observe_span_latencies()
    samples = {
        dict(s.labels)["segment"]: s.value
        for s in session.obs.registry.collect()
        if s.name == "repro_sync_latency_seconds"
    }
    session.close()
    return samples


class TestSyncLatencyHistogram:
    def test_segment_latency_baseline(self, benchmark):
        samples = benchmark.pedantic(
            run_latency_histograms, rounds=1, iterations=1
        )
        rows = []
        for segment in sorted(samples):
            hist = samples[segment]
            count = hist["count"]
            mean_ms = (hist["sum"] / count) * 1e3 if count else 0.0
            # Smallest log bucket already covering every observation —
            # a timing-stable shape indicator for the committed baseline.
            ceiling = next(
                (
                    bound
                    for bound, cumulative in hist["buckets"]
                    if cumulative == count
                ),
                "+Inf",
            )
            rows.append([segment, count, round(mean_ms, 3), ceiling])
        emit_table(
            "obs_latency",
            "Sync latency by segment (repro_sync_latency_seconds)",
            ["segment", "count", "mean ms", "all <= (s)"],
            rows,
        )
        segments = {row[0] for row in rows}
        # The E2E root decomposes into at least lock, route and apply.
        for required in ("e2e", "lock", "route", "apply", "floor_held"):
            assert required in segments, f"segment {required} missing"
        counts = {row[0]: row[1] for row in rows}
        assert counts["e2e"] >= 40
        assert counts["apply"] >= 40
        # Every segment of one trace is shorter than its e2e root on
        # average; spot-check the fast server-side hops.
        means = {row[0]: row[2] for row in rows}
        assert means["queue"] <= means["e2e"]


class TestDeltaPayload:
    def test_delta_bytes_vs_full(self, benchmark):
        def sweep():
            rows = []
            for edits in (1, 3):
                sizes = run_delta_bytes(edits_between_transfers=edits)
                rows.append(
                    [
                        edits,
                        round(sizes["full"]),
                        round(sizes["delta"]),
                        round(sizes["full"] / sizes["delta"], 1),
                    ]
                )
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        emit_table(
            "routing_delta_payload",
            "Delta sync: PUSH_STATE wire bytes/transfer, full vs delta",
            ["edits/transfer", "full bytes", "delta bytes", "ratio"],
            rows,
        )
        for _, full_bytes, delta_bytes, ratio in rows:
            assert delta_bytes < full_bytes
            assert ratio >= 2


def run_codec_delivery(codec, n_instances=64, edits=60):
    """Fan-out event flood under one codec; returns delivery counters.

    ``i0`` couples its field to every other instance, then floods
    commits: each edit runs the full multiple-execution path (floor
    acquisition, ``event_broadcast`` to the other ``n-1`` receivers,
    per-receiver ``event_ack``).  Returns delivered messages, wire
    bytes and wall-clock seconds for the flood phase only.
    """
    session = Session(backend=BACKEND, codec=codec)
    instances = []
    trees = []
    for i in range(n_instances):
        inst = session.create_instance(f"i{i}", user=f"u{i}")
        trees.append(inst.add_root(build_tree()))
        instances.append(inst)
    session.pump()
    for i in range(1, n_instances):
        instances[0].couple(trees[0].find(FIELD), (f"i{i}", FIELD))
    # Make sure the couple table settled everywhere before measuring.
    trees[0].find(FIELD).commit("warmup")
    assert settle(
        session,
        lambda: all(
            trees[i].find(FIELD).value == "warmup"
            for i in range(1, n_instances)
        ),
    )

    before = session.traffic()
    start = time.perf_counter()
    last = f"edit-{edits - 1}"
    for n in range(edits):
        trees[0].find(FIELD).commit(f"edit-{n}")
        assert settle(
            session,
            lambda v=f"edit-{n}": trees[-1].find(FIELD).value == v,
        )
    assert settle(
        session,
        lambda: all(
            trees[i].find(FIELD).value == last
            for i in range(1, n_instances)
        ),
    )
    elapsed = time.perf_counter() - start
    after = session.traffic()
    delivered = after["messages"] - before["messages"]
    wire_bytes = after["bytes"] - before["bytes"]
    session.close()
    return {"delivered": delivered, "bytes": wire_bytes, "seconds": elapsed}


class TestCodecDelivery:
    """The binary codec's delivery-throughput gate at 64 instances.

    Honest framing: on a localhost loopback, wall-clock throughput is
    codec-*neutral* — bandwidth is effectively free there, the hot loop
    is Python protocol handling, and C-accelerated ``json.dumps`` keeps
    the JSON encode path competitive.  What the codec controls is the
    *bandwidth-bound* delivery throughput: how many protocol messages a
    deployment pushes through a link of fixed capacity.  That is
    messages per wire byte, and it is what this gate asserts (>= 1.3x
    JSON, measured ~2x); wall-clock only carries a sanity floor so a
    pathologically slow encoder cannot hide behind the bytes win.
    """

    def test_binary_vs_json_delivery(self, benchmark):
        def compare():
            return {
                codec: run_codec_delivery(codec)
                for codec in ("json", "binary")
            }

        results = benchmark.pedantic(compare, rounds=1, iterations=1)
        rows = []
        for codec in ("json", "binary"):
            r = results[codec]
            rows.append(
                [
                    codec,
                    r["delivered"],
                    r["bytes"],
                    round(r["bytes"] / r["delivered"], 1),
                    round(r["delivered"] / r["seconds"]),
                ]
            )
        emit_table(
            "codec_delivery",
            "Codec delivery throughput, 64-instance event fan-out",
            ["codec", "delivered msgs", "wire bytes", "bytes/msg", "msgs/s"],
            rows,
        )
        js, bin_ = results["json"], results["binary"]
        # Both codecs deliver the same protocol conversation.
        assert abs(bin_["delivered"] - js["delivered"]) <= (
            0.02 * js["delivered"]
        )
        # Acceptance: >= 1.3x delivery throughput per unit of bandwidth.
        efficiency_gain = (bin_["delivered"] / bin_["bytes"]) / (
            js["delivered"] / js["bytes"]
        )
        assert efficiency_gain >= MIN_CODEC_EFFICIENCY_GAIN, efficiency_gain
        # Regression gate against the committed JSON baseline: the
        # binary flood must stay under it with the acceptance margin.
        json_bytes_per_msg = js["bytes"] / js["delivered"]
        assert json_bytes_per_msg <= JSON_FLOOD_BYTES_PER_MSG_BASELINE
        binary_bytes_per_msg = bin_["bytes"] / bin_["delivered"]
        assert binary_bytes_per_msg <= (
            JSON_FLOOD_BYTES_PER_MSG_BASELINE / MIN_CODEC_EFFICIENCY_GAIN
        )
        # Wall-clock sanity floor (loopback is codec-neutral; see class
        # docstring) — guards against a pathological encoder regression.
        json_rate = js["delivered"] / js["seconds"]
        binary_rate = bin_["delivered"] / bin_["seconds"]
        assert binary_rate >= MIN_CODEC_WALLCLOCK_RATIO * json_rate


def _flood_event():
    return {
        "type": "value_changed",
        "source_path": "/ui/board/canvas",
        "params": {"value": "stroke 182 204 17 44", "seq": 913},
        "user": "u0",
        "instance_id": "c0",
    }


def flood_traffic(n_clients=64, per_dest=192, chunk=64):
    """The flood's outbound work-list: per-destination broadcast batches.

    Models what ``SendQueue.pop_batch`` hands the flush path during a
    fan-out flood — ``chunk`` near-identical EVENT_BROADCAST messages
    per pop, ``per_dest`` messages per destination in total.  Messages
    are built fresh on every call so no per-message frame cache survives
    between measurement rounds.
    """
    event = _flood_event()
    batches = []
    for d in range(n_clients):
        dest = f"c{d}"
        for base in range(0, per_dest, chunk):
            batches.append(
                (
                    dest,
                    [
                        Message(
                            kind=kinds.EVENT_BROADCAST,
                            sender="server",
                            to=dest,
                            payload={
                                "event": event,
                                "targets": ["/ui/board/canvas"],
                                "owner": ["c0", 77],
                            },
                            trace=("a3f9" * 8, f"s{base + k:06d}"),
                        )
                        for k in range(chunk)
                    ],
                )
            )
    return batches


def run_flush_path(wire_batching, rounds=9):
    """Min-of-*rounds* cost of the flush path over the flood traffic.

    Exercises exactly what ``AioHostTransport._flush_dirty`` does with a
    popped batch in each mode: per-message frames are encoded, joined
    and accounted one ``record`` at a time; a batch envelope is encoded
    once and accounted with the vectorized ``record_many`` +
    ``record_envelope``.  Returns ``(us_per_message, stats)`` from the
    best round.
    """
    best = None
    stats = None
    for _ in range(rounds):
        batches = flood_traffic()
        total = sum(len(msgs) for _, msgs in batches)
        stats = TrafficStats()
        if wire_batching:
            encode_batch = JSON_CODEC.encode_batch
            start = time.perf_counter()
            for dest, msgs in batches:
                payload = encode_batch(msgs)
                stats.record_many(msgs, len(payload), dest)
                stats.record_envelope(len(msgs), len(payload))
                stats.record_batch(len(msgs))
            elapsed = time.perf_counter() - start
        else:
            encode = JSON_CODEC.encode
            record = stats.record
            start = time.perf_counter()
            for dest, msgs in batches:
                frames = [encode(m) for m in msgs]
                b"".join(frames)
                sizes = [len(frame) for frame in frames]
                for m, size in zip(msgs, sizes):
                    record(m, size, dest)
                stats.record_batch(len(msgs))
            elapsed = time.perf_counter() - start
        cost = elapsed / total * 1e6
        if best is None or cost < best:
            best = cost
    return best, stats


class _DrainSink:
    """A flood receiver that drains its socket without decoding.

    Models a non-CPU-bound peer (a real deployment's clients are other
    machines): it sends one hello frame so the host learns its identity,
    then reads and discards bytes forever.  Keeping the sinks out of
    Python protocol work leaves the measured process CPU to the flush
    path under test.
    """

    def __init__(self, ident, host, port):
        self.sock = socket.create_connection((host, port))
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        hello = Message(
            kind=kinds.COMMAND, sender=ident, to="", payload={"hello": True}
        )
        self.sock.sendall(JSON_CODEC.encode(hello))
        threading.Thread(target=self._drain, daemon=True).start()

    def _drain(self):
        try:
            while self.sock.recv(1 << 20):
                pass
        except OSError:
            pass

    def close(self):
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()


def run_wire_flood(wire_batching, n_clients=64, rounds=400):
    """End-to-end aio flood: delivered messages/sec with 64 sinks.

    A driver socket injects ``rounds`` trigger frames; the host handler
    fans each trigger out to all ``n_clients`` destinations (messages
    prebuilt outside the timed region).  Burst mode (``max_delay=0``)
    keeps the flush inline and clock-free.  Delivery is measured at the
    transport's outbound counter — ``stats.messages`` increments only
    after a successful non-blocking write — while the sinks drain.
    """
    prebuilt = {}
    transport = None

    def fan_out(message):
        batch = prebuilt.get(message.payload.get("n"))
        if batch is None:
            return
        send = transport.send
        for m in batch:
            send(m)

    transport = AioHostTransport(
        fan_out,
        port=0,
        config=BatchConfig(max_batch=512, max_delay=0.0, max_queue=40000),
        wire_batching=wire_batching,
    )
    host, port = transport.address
    sinks = [_DrainSink(f"c{i}", host, port) for i in range(n_clients)]
    driver = None
    try:
        deadline = time.monotonic() + 10
        while (
            len(transport.connections()) < n_clients
            and time.monotonic() < deadline
        ):
            time.sleep(0.005)
        stats = transport.stats
        base = stats.messages
        base_bytes = stats.bytes
        event = _flood_event()
        for k in range(rounds):
            prebuilt[k] = [
                Message(
                    kind=kinds.EVENT_BROADCAST,
                    sender="server",
                    to=f"c{i}",
                    payload={
                        "event": event,
                        "targets": ["/ui/board/canvas"],
                        "owner": ["c0", 77],
                    },
                    trace=("a3f9" * 8, f"s{k:06d}"),
                )
                for i in range(n_clients)
            ]
        triggers = b"".join(
            JSON_CODEC.encode(
                Message(
                    kind=kinds.EVENT, sender="driver", to="", payload={"n": k}
                )
            )
            for k in range(rounds)
        )
        driver = socket.create_connection((host, port))
        total = n_clients * rounds
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            driver.sendall(triggers)
            deadline = time.monotonic() + 60
            while (
                stats.messages - base < total
                and time.monotonic() < deadline
            ):
                time.sleep(0.002)
            elapsed = time.perf_counter() - start
        finally:
            gc.enable()
        delivered = stats.messages - base
        assert delivered == total, (delivered, total)
        return {
            "rate": delivered / elapsed,
            "bytes_per_msg": (stats.bytes - base_bytes) / delivered,
            "envelopes": stats.envelopes,
            "envelope_messages": stats.envelope_messages,
        }
    finally:
        if driver is not None:
            driver.close()
        for sink in sinks:
            sink.close()
        transport.close()


class TestWireBatchingFlood:
    """The wire-batching delivery gate on the 64-destination aio flood.

    Honest framing (the TestCodecDelivery precedent): on a localhost
    loopback with sender, event loop and 64 receivers in one process,
    end-to-end wall clock is dominated by work both modes share — the
    reader loop, per-message enqueue, socket writes and the scheduler —
    so the measured end-to-end speedup swings 1.1-1.5x run to run on a
    shared machine.  What wire batching actually replaces is the flush
    path: per-message ``encode`` + per-message ``record`` become one
    ``encode_batch`` + one vectorized ``record_many``.  That component,
    measured over the same flood traffic, is where the 1.5x
    messages/sec target is gated (measured 1.44-1.75x min-of-rounds,
    asserted above the 1.35x noise floor — the encode gate's
    target-vs-floor pattern); the end-to-end flood carries a
    sanity floor plus structural gates —
    envelopes must really fill and framing bytes per delivered message
    must shrink — so the flush win cannot regress invisibly.
    """

    def test_batching_flood_delivery(self, benchmark):
        def measure():
            flush = {
                mode: run_flush_path(mode)[0] for mode in (False, True)
            }
            floods = {
                mode: max(
                    (run_wire_flood(mode) for _ in range(2)),
                    key=lambda r: r["rate"],
                )
                for mode in (False, True)
            }
            return flush, floods

        flush, floods = benchmark.pedantic(measure, rounds=1, iterations=1)
        flush_speedup = flush[False] / flush[True]
        flood_speedup = floods[True]["rate"] / floods[False]["rate"]
        fill = floods[True]["envelope_messages"] / max(
            1, floods[True]["envelopes"]
        )
        rows = [
            [
                "per-message",
                round(flush[False], 2),
                round(floods[False]["rate"]),
                round(floods[False]["bytes_per_msg"], 1),
                "-",
            ],
            [
                "batch envelope",
                round(flush[True], 2),
                round(floods[True]["rate"]),
                round(floods[True]["bytes_per_msg"], 1),
                round(fill, 1),
            ],
            [
                "speedup",
                f"{flush_speedup:.2f}x",
                f"{flood_speedup:.2f}x",
                "-",
                "-",
            ],
        ]
        emit_table(
            "wire_batching_flood",
            "Wire batching on the 64-destination aio flood",
            ["mode", "flush us/msg", "flood msgs/s", "bytes/msg", "fill"],
            rows,
        )
        # Acceptance: 1.5x messages/sec target through the flush path,
        # asserted above the committed noise floor (see MIN_FLUSH_SPEEDUP).
        assert flush_speedup >= MIN_FLUSH_SPEEDUP, flush_speedup
        # End-to-end sanity floor (loopback wall clock is scheduler
        # bound; see class docstring).
        assert flood_speedup >= MIN_FLOOD_SPEEDUP, flood_speedup
        # Structural gates: batches really form, framing really shrinks.
        assert fill >= MIN_ENVELOPE_FILL, fill
        assert (
            floods[True]["bytes_per_msg"] < floods[False]["bytes_per_msg"]
        )
