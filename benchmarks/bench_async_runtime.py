"""Async runtime vs sync TCP: E11 population delivery, lifecycle, E10 contention.

The asyncio server runtime (docs/RUNTIME.md) replaces the blocking
thread-per-connection TCP host with one event loop plus per-destination
outbound batching.  Three harnesses quantify what that buys on the
paper's population-scaling story (§2.2/§4: a classroom where "each
participant has to couple with the rest of the work group"):

* **Delivery replay** — the tentpole gate.  One E11 population
  lifecycle (join storm → selective couple storm → concurrent student
  edits) is run through the sans-I/O ``CosoftServer`` once to capture
  the exact outbound message schedule its broadcasts produce; that
  schedule is then replayed through each host transport to N connected
  receivers, several rounds back to back, with every receiver counting
  the length-prefixed frames it decodes.  This isolates the transport
  cost the runtime redesigns: the sync host pays one ``sendall`` per
  message, the runtime coalesces each destination's accumulation into
  batched writes.  Must be >= 2x sync TCP at 64 instances (median of
  paired, same-noise-window runs; this host's absolute speed swings
  ~2x between scheduling windows, so only paired ratios are meaningful).
* **End-to-end lifecycle** — the same population lifecycle driven over
  real sockets into a live ``CosoftServer``: 64 connections register
  concurrently, the teacher couples every student, students commit
  edits under the floor protocol.  Here inbound decoding and handler
  work (shared by both backends) dilute the transport gap; the runtime
  must still win.
* **E10 contention** — one global couple group, all users racing for a
  single floor.  Throughput is bounded by the round-trip-serialized
  floor protocol, not the transport; the runtime must preserve the
  safety shape (exactly-one-winner, convergence, zero lock leakage) at
  sync-comparable speed — the "batching adds no latency" claim.
"""

import selectors
import socket
import struct
import threading
import time


from _common import emit_table
from repro.net import kinds
from repro.net.aio import AioHostTransport, BatchConfig
from repro.net.codec import encode
from repro.net.message import Message
from repro.net.tcp import TcpHostTransport
from repro.server.server import CosoftServer
from repro.session import Session
from repro.toolkit.events import Event, VALUE_CHANGED
from repro.toolkit.widgets import Shell, TextField

POPULATIONS = (16, 32, 64)
EVENTS_PER_STUDENT = 5
#: Schedule replays per measured delivery run (amortizes setup noise).
DELIVERY_ROUNDS = 10
#: Paired (sync, aio) delivery runs at the gated population; the
#: asserted speedup is the median of the paired ratios.
DELIVERY_PAIRS = 5
CONTENTION_USERS = 8
CONTENTION_ROUNDS = 6

#: The hard gate this benchmark exists to enforce (ISSUE: >= 2x at 64).
REQUIRED_SPEEDUP_AT_64 = 2.0


def wait_until(predicate, timeout=120.0, interval=0.002):
    end = time.monotonic() + timeout
    while time.monotonic() < end:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ---------------------------------------------------------------------------
# The E11 population lifecycle, as protocol messages
# ---------------------------------------------------------------------------


def lifecycle_inbound(n_instances, events=EVENTS_PER_STUDENT):
    """The client->server message sequence of one population lifecycle.

    Phase 1: everyone joins (the server answers each REGISTER with an
    ack and broadcasts the roster to everyone already present).
    Phase 2: the teacher couples selectively with every student (each
    COUPLE fans a COUPLE_UPDATE out to the whole population).
    Phase 3: every student commits *events* edits under the floor
    protocol (lock request -> grant, event -> broadcast to the group).
    """
    n_students = n_instances - 1
    regs = [
        Message(
            kind=kinds.REGISTER,
            sender="teacher",
            payload={"user": "teacher", "app_type": "bench"},
        )
    ]
    for k in range(n_students):
        regs.append(
            Message(
                kind=kinds.REGISTER,
                sender=f"i{k}",
                payload={"user": f"u{k}", "app_type": "bench"},
            )
        )
    couples = [
        Message(
            kind=kinds.COUPLE,
            sender="teacher",
            payload={
                "source": ["teacher", f"/ui/s{k}"],
                "target": [f"i{k}", "/ui/field"],
            },
        )
        for k in range(n_students)
    ]
    edits = []
    for k in range(n_students):
        per_student = []
        for round_no in range(events):
            token = round_no + 1
            per_student.append(
                Message(
                    kind=kinds.LOCK_REQUEST,
                    sender=f"i{k}",
                    payload={"source": [f"i{k}", "/ui/field"], "token": token},
                )
            )
            event = Event(
                type=VALUE_CHANGED,
                source_path="/ui/field",
                params={"value": f"v{round_no}"},
                user=f"u{k}",
                instance_id=f"i{k}",
            )
            per_student.append(
                Message(
                    kind=kinds.EVENT,
                    sender=f"i{k}",
                    payload={
                        "event": event.to_wire(),
                        "token": token,
                        "release": True,
                    },
                )
            )
        edits.append(per_student)
    return regs, couples, edits


def capture_outbound(regs, couples, edits):
    """Run the lifecycle through a sans-I/O server; return its outbound.

    The captured messages are the exact per-receiver broadcast schedule
    (roster updates, couple updates, lock replies, event broadcasts) the
    live server would emit — the delivery workload of the population.
    """
    out = []

    class _Capture:
        def send(self, message):
            out.append(message)

    server = CosoftServer(ack_release=False)
    server.bind(_Capture())
    for message in regs:
        server.handle_message(message)
    for message in couples:
        server.handle_message(message)
    for per_student in edits:
        for message in per_student:
            server.handle_message(message)
    return out


# ---------------------------------------------------------------------------
# Receiver pool: N sockets, one selector thread counting decoded frames
# ---------------------------------------------------------------------------


class ReceiverPool:
    """N client connections draining a host transport, counting frames.

    Each receiver associates itself by sending one REGISTER (hosts map a
    connection to an instance id on its first message), then counts the
    length-prefixed frames it receives — delivery is verified at the
    receiving end, not trusted from sender-side counters.
    """

    def __init__(self, host, port, ids):
        self.counts = {i: 0 for i in ids}
        self._residue = {i: b"" for i in ids}
        self._stop = threading.Event()
        self._selector = selectors.DefaultSelector()
        self._socks = {}
        for instance_id in ids:
            sock = socket.create_connection((host, port))
            sock.sendall(
                encode(
                    Message(kind=kinds.REGISTER, sender=instance_id, payload={})
                )
            )
            sock.setblocking(False)
            self._selector.register(
                sock, selectors.EVENT_READ, data=instance_id
            )
            self._socks[instance_id] = sock
        self._thread = threading.Thread(target=self._drain, daemon=True)
        self._thread.start()

    def total(self):
        return sum(self.counts.values())

    def close(self):
        self._stop.set()
        self._thread.join(timeout=2.0)
        for sock in self._socks.values():
            sock.close()

    def _drain(self):
        while not self._stop.is_set():
            for key, _ in self._selector.select(timeout=0.05):
                instance_id = key.data
                try:
                    while True:
                        data = key.fileobj.recv(1 << 16)
                        if not data:
                            raise OSError("peer closed")
                        buffer = self._residue[instance_id] + data
                        pos = 0
                        while len(buffer) - pos >= 4:
                            (length,) = struct.unpack_from(">I", buffer, pos)
                            if len(buffer) - pos - 4 < length:
                                break
                            pos += 4 + length
                            self.counts[instance_id] += 1
                        self._residue[instance_id] = buffer[pos:]
                except BlockingIOError:
                    pass
                except OSError:
                    try:
                        self._selector.unregister(key.fileobj)
                    except (KeyError, ValueError):
                        pass


# ---------------------------------------------------------------------------
# Delivery replay: the transport-level gate
# ---------------------------------------------------------------------------


def run_delivery(backend, schedule, ids, rounds=DELIVERY_ROUNDS):
    """Replay *schedule* *rounds* times through one host transport.

    The replay is driven from the endpoint handler — exactly where the
    live server's broadcasts originate — so the aio transport's sends
    run on its loop and batch, while the sync host's sends pay their
    per-message ``sendall``, each from its natural dispatch context.
    """
    expected = len(schedule) * rounds

    def handler(message):
        if message.kind == kinds.COMMAND:  # the replay trigger
            for _ in range(rounds):
                for outbound in schedule:
                    transport.send(outbound)

    if backend == "tcp":
        transport = TcpHostTransport(handler)
    else:
        # Queue bound sized to the workload: the replay enqueues the full
        # schedule in one burst, which is the shape a join/couple storm
        # produces; drops would void the delivery verification below.
        transport = AioHostTransport(
            handler, config=BatchConfig(max_queue=len(schedule) * rounds)
        )
    host, port = transport.address
    pool = ReceiverPool(host, port, ids)
    try:
        assert wait_until(lambda: len(transport.connections()) >= len(ids))
        driver = socket.create_connection((host, port))
        started = time.perf_counter()
        driver.sendall(
            encode(Message(kind=kinds.COMMAND, sender="driver", payload={}))
        )
        delivered = wait_until(lambda: pool.total() >= expected, timeout=180)
        elapsed = time.perf_counter() - started
        driver.close()
        assert delivered, f"delivered {pool.total()}/{expected}"
        snapshot = transport.stats.snapshot()
        batches = snapshot.get("batches", 0)
        batched = snapshot.get("batched_messages", 0)
        return {
            "messages_per_s": expected / elapsed,
            "mean_batch": (batched / batches) if batches else 1.0,
        }
    finally:
        pool.close()
        transport.close()


# ---------------------------------------------------------------------------
# End-to-end lifecycle: live server, real protocol traffic
# ---------------------------------------------------------------------------


def run_lifecycle(backend, n_instances, events=EVENTS_PER_STUDENT):
    """Drive one full population lifecycle into a live server.

    Joins land concurrently on N connections, then the teacher's couple
    storm, then every student's edit stream — phase-gated on the
    server's processed counters so the broadcast fan-out (and therefore
    the expected outbound total, computed by the sans-I/O capture) is
    deterministic.  Completion is the server's outbound counter reaching
    that total.
    """
    regs, couples, edits = lifecycle_inbound(n_instances, events)
    expected = len(capture_outbound(regs, couples, edits))
    n_students = n_instances - 1
    kwargs = dict(backend=backend, ack_release=False)
    if backend == "aio":
        kwargs.update(max_queue=max(4096, expected))
    with Session(**kwargs) as session:
        stats = session._impl._server_stats()
        server = session.server
        ids = ["teacher"] + [f"i{k}" for k in range(n_students)]
        socks = {}
        frames = {m.sender: encode(m) for m in regs}
        couple_blob = b"".join(encode(m) for m in couples)
        edit_blobs = [b"".join(encode(m) for m in per) for per in edits]
        stop = threading.Event()
        selector = selectors.DefaultSelector()
        for instance_id in ids:
            sock = socket.create_connection((session.host, session.port))
            sock.setblocking(False)
            selector.register(sock, selectors.EVENT_READ)
            socks[instance_id] = sock

        def drain():
            while not stop.is_set():
                for key, _ in selector.select(timeout=0.05):
                    try:
                        while key.fileobj.recv(1 << 16):
                            pass
                    except BlockingIOError:
                        pass
                    except OSError:
                        try:
                            selector.unregister(key.fileobj)
                        except (KeyError, ValueError):
                            pass

        drainer = threading.Thread(target=drain, daemon=True)
        drainer.start()
        base = stats.messages
        started = time.perf_counter()
        # Join storm: every REGISTER in flight at once.
        for instance_id, sock in socks.items():
            sock.sendall(frames[instance_id])
        assert wait_until(
            lambda: server.processed[kinds.REGISTER] >= n_instances
        )
        # Selective couple storm from the teacher.
        socks["teacher"].sendall(couple_blob)
        assert wait_until(lambda: server.processed[kinds.COUPLE] >= n_students)
        # Concurrent student edits under the floor protocol.
        for k, blob in enumerate(edit_blobs):
            socks[f"i{k}"].sendall(blob)
        delivered = wait_until(
            lambda: stats.messages - base >= expected, timeout=180
        )
        elapsed = time.perf_counter() - started
        stop.set()
        drainer.join(timeout=2.0)
        for sock in socks.values():
            sock.close()
        assert delivered, f"sent {stats.messages - base}/{expected}"
        snapshot = session.traffic()
        batches = snapshot.get("batches", 0)
        batched = snapshot.get("batched_messages", 0)
        return {
            "messages_per_s": expected / elapsed,
            "mean_batch": (batched / batches) if batches else 1.0,
            "dropped": snapshot["dropped"],
        }


class TestPopulationScaling:
    def test_delivery_beats_sync_tcp(self, benchmark):
        """The tentpole gate: >= 2x delivery throughput at 64 instances."""

        def sweep():
            rows = []
            gate_ratios = []
            for n in POPULATIONS:
                regs, couples, edits = lifecycle_inbound(n)
                schedule = capture_outbound(regs, couples, edits)
                # Pre-serialize once so every measured run — first
                # included — replays cached frames: the comparison is
                # purely transport cost, with codec work out of the loop.
                for message in schedule:
                    encode(message)
                ids = ["teacher"] + [f"i{k}" for k in range(n - 1)]
                pairs = DELIVERY_PAIRS if n == 64 else 1
                sync = aio = None
                ratios = []
                for _ in range(pairs):
                    sync = run_delivery("tcp", schedule, ids)
                    aio = run_delivery("aio", schedule, ids)
                    ratios.append(
                        aio["messages_per_s"] / sync["messages_per_s"]
                    )
                ratios.sort()
                median = ratios[len(ratios) // 2]
                if n == 64:
                    gate_ratios = ratios
                rows.append(
                    [
                        n,
                        len(schedule),
                        round(sync["messages_per_s"], 0),
                        round(aio["messages_per_s"], 0),
                        round(median, 2),
                        round(aio["mean_batch"], 1),
                    ]
                )
            return rows, gate_ratios

        rows, gate_ratios = benchmark.pedantic(sweep, rounds=1, iterations=1)
        emit_table(
            "async_runtime_population",
            "E11/async: population-lifecycle delivery — sync TCP vs aio "
            f"(x{DELIVERY_ROUNDS} rounds, median of paired runs)",
            [
                "instances",
                "msgs/lifecycle",
                "sync msg/s",
                "aio msg/s",
                "speedup",
                "aio msgs/batch",
            ],
            rows,
        )
        by_n = {row[0]: row for row in rows}
        # The tentpole gate: >= 2x delivery throughput at 64 instances,
        # median over paired same-window runs.
        assert by_n[64][4] >= REQUIRED_SPEEDUP_AT_64, gate_ratios
        # Batching engages on the population fan-out.
        assert by_n[64][5] > 1.0

    def test_lifecycle_end_to_end(self, benchmark):
        """Live-server lifecycle: the runtime wins with handlers included."""

        def both():
            rows = []
            for n in POPULATIONS:
                sync = run_lifecycle("tcp", n)
                aio = run_lifecycle("aio", n)
                rows.append(
                    [
                        n,
                        round(sync["messages_per_s"], 0),
                        round(aio["messages_per_s"], 0),
                        round(
                            aio["messages_per_s"] / sync["messages_per_s"], 2
                        ),
                        round(aio["mean_batch"], 1),
                    ]
                )
            return rows

        rows = benchmark.pedantic(both, rounds=1, iterations=1)
        emit_table(
            "async_runtime_lifecycle",
            "E11/async: live-server population lifecycle — sync TCP vs aio",
            ["instances", "sync msg/s", "aio msg/s", "speedup", "aio msgs/batch"],
            rows,
        )
        by_n = {row[0]: row for row in rows}
        # End to end, shared inbound/handler cost dilutes the transport
        # gap; the runtime must still not lose (noise guard, not a gate).
        assert by_n[64][3] >= 1.0
        assert by_n[64][4] > 1.0


# ---------------------------------------------------------------------------
# E10 contention: one global group, racing commits
# ---------------------------------------------------------------------------


def run_contention(backend, n_users=CONTENTION_USERS, rounds=CONTENTION_ROUNDS):
    """All users race for one floor; safety shape must survive sockets."""
    with Session(backend=backend) as session:
        trees = []
        instances = []
        for i in range(n_users):
            instance = session.create_instance(f"i{i}", user=f"u{i}")
            tree = Shell("ui")
            TextField("field", parent=tree)
            instance.add_root(tree)
            instances.append(instance)
            trees.append(tree)
        assert wait_until(
            lambda: all(len(inst.roster) == n_users for inst in instances)
        )
        for i in range(1, n_users):
            instances[0].couple(trees[0].find("/ui/field"), (f"i{i}", "/ui/field"))
        assert wait_until(
            lambda: all(inst.is_coupled("/ui/field") for inst in instances)
        )

        executed = [0] * n_users
        denied = [0] * n_users
        barrier = threading.Barrier(n_users)

        def contender(index):
            field = trees[index].find("/ui/field")
            for round_no in range(rounds):
                barrier.wait()
                field.commit(f"u{index}-r{round_no}")
                if instances[index].last_execution.lock_denied:
                    denied[index] += 1
                else:
                    executed[index] += 1

        threads = [
            threading.Thread(target=contender, args=(i,))
            for i in range(n_users)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started

        # Settle, then check convergence and lock hygiene.
        def converged():
            values = {tree.find("/ui/field").value for tree in trees}
            return len(values) == 1

        assert wait_until(converged)
        # Late EVENT_ACKs may still be in flight after the last commit
        # returns; floors release only when every receiver has acked, so
        # settle the deployment before auditing the lock table.
        session.pump()

        def no_locks_left():
            if session.cluster is None:
                return len(session.server.locks) == 0
            return all(
                len(shard.locks) == 0
                for shard in session.cluster.shards.values()
            )

        wait_until(no_locks_left, timeout=10.0)
        if session.cluster is None:
            locks_left = len(session.server.locks)
        else:
            locks_left = sum(
                len(shard.locks) for shard in session.cluster.shards.values()
            )
        return {
            "attempts_per_s": (n_users * rounds) / elapsed,
            "executed": sum(executed),
            "denied": sum(denied),
            "locks_left": locks_left,
        }


class TestContentionParity:
    def test_safety_shape_and_speed(self, benchmark):
        def both():
            return run_contention("tcp"), run_contention("aio")

        sync, aio = benchmark.pedantic(both, rounds=1, iterations=1)
        emit_table(
            "async_runtime_contention",
            "E10/async: global-group contention — sync TCP vs aio",
            ["backend", "attempts/s", "executed", "denied", "locks leaked"],
            [
                ["tcp", round(sync["attempts_per_s"], 1), sync["executed"],
                 sync["denied"], sync["locks_left"]],
                ["aio", round(aio["attempts_per_s"], 1), aio["executed"],
                 aio["denied"], aio["locks_left"]],
            ],
        )
        for result in (sync, aio):
            # Safety: every round admitted at least one winner, nothing
            # wedged, and no locks leaked.
            assert result["executed"] >= CONTENTION_ROUNDS
            assert result["locks_left"] == 0
            assert (
                result["executed"] + result["denied"]
                == CONTENTION_USERS * CONTENTION_ROUNDS
            )
        # "Batching adds no latency": the round-trip-bound floor protocol
        # must not run slower under the runtime (generous 2x guard: this
        # host's absolute speed swings ~2x between scheduling windows).
        assert aio["attempts_per_s"] >= sync["attempts_per_s"] / 2.0
