"""E6 — §3.1: synchronization by state vs re-executing missed actions.

The paper, on reconciling after decoupled work: "One approach is to record
all actions occurring on the (copied and copying) complex objects while
they are decoupled, and then re-execute these actions when they are
coupled.  Another approach is to copy ... the complex UI object's state.
The first approach is expensive, especially for long periods of
decoupling."

Series reproduced: a participant works alone for N committed actions;
rejoining costs either (a) replaying all N missed events or (b) one state
copy.  Reported: bytes on the wire and wall time for each, locating the
crossover.
"""

import time


from _common import emit_table
from repro.net.codec import wire_size
from repro.net.message import Message
from repro.net import kinds
from repro.session import Session
from repro.toolkit.widgets import Scale, Shell, TextField

MISSED_ACTIONS = (1, 5, 20, 100, 400)


def offline_work(n_actions):
    """One instance working decoupled: text edits and scale moves — work
    that *overwrites* state, which is where state-copy reconciliation
    shines (the live state stays small while the action log grows).

    Returns (session, trees, missed events list).
    """
    session = Session()
    trees = []
    for name in ("worker", "rejoiner"):
        inst = session.create_instance(name, user=name)
        root = Shell("ui")
        TextField("field", parent=root)
        Scale("zoom", parent=root, maximum=1000)
        inst.add_root(root)
        trees.append(root)
    worker_tree = trees[0]
    for k in range(n_actions):
        if k % 2 == 0:
            worker_tree.find("/ui/zoom").set_value(k % 1000)
        else:
            worker_tree.find("/ui/field").commit(f"edit number {k}")
    missed = session.instances["worker"].trace.events()
    return session, trees, missed


def replay_cost(session, trees, missed):
    """Re-execute every missed event on the rejoiner (the paper's first
    approach) and account each event's wire size."""
    rejoiner = trees[1]
    wire_bytes = 0
    start = time.perf_counter()
    for event in missed:
        wire_bytes += wire_size(
            Message(
                kind=kinds.EVENT_BROADCAST,
                sender="server",
                to="rejoiner",
                payload={"event": event.to_wire(), "targets": [event.source_path]},
            )
        )
        widget = rejoiner.find(event.source_path)
        widget.apply_feedback(event.retargeted(widget.pathname, "rejoiner"))
    elapsed = time.perf_counter() - start
    return wire_bytes, elapsed


def state_copy_cost(session, trees):
    """One CopyFrom of the whole UI (the paper's second approach)."""
    session.network.stats.reset()
    start = time.perf_counter()
    session.instances["rejoiner"].copy_from(trees[1], ("worker", "/ui"))
    elapsed = time.perf_counter() - start
    return session.network.stats.bytes, elapsed


class TestStateVsAction:
    def test_crossover_sweep(self, benchmark):
        def sweep():
            rows = []
            for n in MISSED_ACTIONS:
                session, trees, missed = offline_work(n)
                replay_bytes, replay_time = replay_cost(session, trees, missed)
                # Fresh pair for the state path (replay mutated the target).
                session.close()
                session, trees, _ = offline_work(n)
                state_bytes, state_time = state_copy_cost(session, trees)
                converged = (
                    trees[1].find("/ui/field").relevant_state()
                    == trees[0].find("/ui/field").relevant_state()
                )
                session.close()
                rows.append(
                    [n, replay_bytes, state_bytes,
                     round(replay_time * 1e6), round(state_time * 1e6),
                     converged]
                )
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        emit_table(
            "e6_state_vs_action",
            "E6: rejoin cost — replay missed actions vs one state copy",
            ["missed actions", "replay bytes", "state-copy bytes",
             "replay us", "state-copy us", "converged"],
            rows,
        )
        # Shape: replay bytes grow linearly with missed actions...
        assert rows[-1][1] > rows[0][1] * 50
        # ...while the state copy grows only with live state size, so for
        # long decoupling the state copy wins (the paper's conclusion)...
        assert rows[-1][2] < rows[-1][1]
        # ...and for a couple of missed actions replay is cheaper.
        assert rows[0][1] < rows[0][2]
        assert all(row[5] for row in rows)

    def test_state_copy_wall_clock(self, benchmark):
        session, trees, _ = offline_work(50)

        def copy():
            session.instances["rejoiner"].copy_from(trees[1], ("worker", "/ui"))

        benchmark(copy)
        session.close()
