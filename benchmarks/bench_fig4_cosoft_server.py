"""F4 — Figure 4: the COSOFT server-client architecture.

Measures the central controller itself: registration throughput, couple
link creation/broadcast cost, event fan-out versus couple-group size, and
the size of the replicated coupling information.

Series reproduced: group size ∈ {2..32} → (messages per event, bytes per
event, end-to-end sync latency); plus raw server event throughput.
"""

import pytest

from _common import emit_table, ms
from repro.session import Session
from repro.toolkit.widgets import Shell, TextField

GROUP_SIZES = (2, 4, 8, 16, 32)


def build_group(n):
    session = Session()
    trees = []
    for i in range(n):
        inst = session.create_instance(f"i{i}", user=f"u{i}")
        root = Shell("ui")
        TextField("field", parent=root)
        inst.add_root(root)
        trees.append(root)
    primary = session.instances["i0"]
    for i in range(1, n):
        primary.couple(trees[0].find("/ui/field"), (f"i{i}", "/ui/field"))
    session.pump()
    return session, trees


def measure_group(n, events=10):
    session, trees = build_group(n)
    session.network.stats.reset()
    start = session.now
    for k in range(events):
        trees[0].find("/ui/field").commit(f"v{k}")
        session.pump()
    elapsed = session.now - start
    stats = session.network.stats.snapshot()
    result = {
        "group": n,
        "msgs_per_event": stats["messages"] / events,
        "bytes_per_event": stats["bytes"] / events,
        "sync_ms": ms(elapsed / events),
        "replica_links": len(session.instances["i0"].replica),
    }
    session.close()
    return result


class TestFigure4:
    def test_group_size_sweep(self, benchmark):
        results = benchmark.pedantic(
            lambda: [measure_group(n) for n in GROUP_SIZES],
            rounds=1,
            iterations=1,
        )
        rows = [
            [
                r["group"],
                round(r["msgs_per_event"], 1),
                round(r["bytes_per_event"]),
                r["sync_ms"],
                r["replica_links"],
            ]
            for r in results
        ]
        emit_table(
            "fig4_group_sweep",
            "Figure 4: COSOFT server cost vs couple-group size",
            ["group size", "msgs/event", "bytes/event", "sync ms/event",
             "replica links"],
            rows,
        )
        # Shape: per-event messages = lock req + reply + event + (N-1)
        # broadcasts + (N-1) acks -> linear in group size.
        for r in results:
            assert r["msgs_per_event"] == pytest.approx(3 + 2 * (r["group"] - 1))
        # Shape: the replicated coupling info holds all N-1 star links.
        for r in results:
            assert r["replica_links"] == r["group"] - 1

    def test_server_event_throughput(self, benchmark):
        """Raw wall-clock throughput of the whole pipeline (server +
        clients + simulated network) for a 4-member group."""
        session, trees = build_group(4)
        field = trees[0].find("/ui/field")

        def one_event():
            field.commit("x")
            session.pump()

        benchmark(one_event)
        processed = session.server.processed["event"]
        benchmark.extra_info["events_processed"] = processed
        session.close()
        assert processed > 0

    def test_registration_cost(self, benchmark):
        """Cost of joining a session grows with the couple table shipped to
        the newcomer (the replica bootstrap)."""

        def join_after(links):
            session, trees = build_group(links + 1)
            session.network.stats.reset()
            late = session.create_instance("late", user="late-user")
            session.pump()
            bytes_for_join = session.network.stats.bytes
            session.close()
            return bytes_for_join

        sizes = benchmark.pedantic(
            lambda: [(n, join_after(n)) for n in (1, 4, 16)],
            rounds=1,
            iterations=1,
        )
        emit_table(
            "fig4_registration",
            "Figure 4: join cost vs existing couple links",
            ["existing links", "join bytes"],
            [[n, b] for n, b in sizes],
        )
        assert sizes[-1][1] > sizes[0][1]
