"""E10 — §3.2: floor-control behaviour under contention.

Reproduces the multiple-execution algorithm's guarantees when several
users act on one couple group nearly simultaneously:

* exactly one contender per overlap window wins the floor;
* losers' built-in feedback is rolled back (no ghost state);
* all replicas converge to the winner's value;
* no deadlock and no lock leakage, round after round.

Series reproduced: contention spacing sweep → denial rate; the tighter
the overlap, the more actions are refused — but convergence never breaks.
"""


from _common import emit_table
from repro.baselines.fully_replicated import FullyReplicatedHarness
from repro.workloads import SCALE_PATH, contention_burst

SPACINGS = (0.0002, 0.001, 0.01, 0.2)
ROUNDS = 10
USERS = 4


def run(spacing):
    workload = contention_burst(
        n_users=USERS, rounds=ROUNDS, spacing=spacing, seed=13
    )
    harness = FullyReplicatedHarness(USERS, base_latency=0.005)
    records = harness.run(workload)
    denied = sum(1 for r in records if not r.executed)
    executed = len(records) - denied
    # Convergence: all replicas agree on the scale value.
    values = {
        harness.user_state(u, SCALE_PATH)["value"] for u in range(USERS)
    }
    locks_left = len(harness.server.locks)
    harness.close()
    return {
        "spacing": spacing,
        "denied": denied,
        "executed": executed,
        "denial_rate": denied / len(records),
        "converged": len(values) == 1,
        "locks_left": locks_left,
    }


class TestContention:
    def test_spacing_sweep(self, benchmark):
        results = benchmark.pedantic(
            lambda: [run(s) for s in SPACINGS], rounds=1, iterations=1
        )
        rows = [
            [
                r["spacing"] * 1000,
                r["executed"],
                r["denied"],
                round(r["denial_rate"], 2),
                r["converged"],
                r["locks_left"],
            ]
            for r in results
        ]
        emit_table(
            "e10_contention",
            "E10: floor control under contention (4 users, 10 rounds)",
            ["spacing ms", "executed", "denied", "denial rate",
             "converged", "locks leaked"],
            rows,
        )
        for r in results:
            # Safety: convergence and no lock leakage at every spacing.
            assert r["converged"]
            assert r["locks_left"] == 0
            # Liveness: at least one action per round succeeded.
            assert r["executed"] >= ROUNDS
        # Shape: tighter overlap -> more denials; wide spacing -> none.
        assert results[0]["denied"] > 0
        assert results[-1]["denied"] == 0
        rates = [r["denial_rate"] for r in results]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_floor_window_admits_few_winners(self, benchmark):
        """While a floor is held (event still propagating), every racing
        contender is refused: a burst of near-simultaneous actions admits
        strictly fewer winners than contenders — a user acting after the
        acks drained may legitimately win a later floor."""

        def one_round():
            workload = contention_burst(
                n_users=USERS, rounds=1, spacing=0.0001, seed=7
            )
            harness = FullyReplicatedHarness(USERS, base_latency=0.005)
            records = harness.run(workload)
            executed = [r for r in records if r.executed]
            harness.close()
            return len(executed)

        winners = benchmark.pedantic(one_round, rounds=1, iterations=1)
        assert 1 <= winners < USERS

    def test_contended_event_wall_clock(self, benchmark):
        harness = FullyReplicatedHarness(USERS)
        tree = harness.trees[0]

        def event():
            tree.find(SCALE_PATH).set_value(5)
            harness.network.pump()

        benchmark(event)
        harness.close()
