"""Shared helpers for the reproduction benchmarks.

Every benchmark reproduces one table/figure/claim of the paper (see the
per-experiment index in DESIGN.md).  Results are rendered as fixed-width
tables, printed to stdout (visible with ``pytest -s`` or in failure
output) and saved under ``benchmarks/results/`` so EXPERIMENTS.md can
reference them.
"""

from __future__ import annotations

import os
from typing import Any, Iterable, List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def format_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence[Any]]
) -> str:
    rendered_rows: List[List[str]] = [
        [_format_cell(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    separator = "  ".join("-" * w for w in widths)
    body = "\n".join(line(row) for row in rendered_rows)
    return f"\n== {title} ==\n{line(headers)}\n{separator}\n{body}\n"


def _format_cell(cell: Any) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


def emit_table(
    name: str, title: str, headers: Sequence[str], rows: Iterable[Sequence[Any]]
) -> str:
    """Print a result table and persist it under benchmarks/results/."""
    text = format_table(title, headers, list(rows))
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text)
    return text


def ms(seconds: float) -> float:
    return seconds * 1000.0
