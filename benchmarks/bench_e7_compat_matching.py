"""E7 — §3.3: the cost of computing structural compatibility.

The paper: "calculating a [the component mapping] over several levels of
nesting may be costly in practice.  Sometimes it can be pre-defined, or
certain heuristics have to be used to avoid combinatorial explosion."

Two tree families are swept:

* **isomorphic** — shuffled copies whose subtrees are all alike: the easy
  common case, where every strategy is linear;
* **deceptive** — subtrees share their shape and differ only at the
  deepest leaf, so a wrong sibling pairing fails only after a full
  subtree comparison: here the exhaustive matcher backtracks heavily,
  and the greedy heuristic (which cannot backtrack) fails outright —
  exactly why the paper falls back to *pre-defined* mappings, which
  validate in one linear pass.
"""

import random
import time


from _common import emit_table
from repro.core import compat
from repro.errors import IncompatibleObjectsError

LEAVES = ("textfield", "pushbutton", "label", "scale")

SHAPES = ((2, 3), (3, 3), (3, 4), (4, 3))


def make_isomorphic(depth, fanout, path=()):
    name = "n" + "_".join(map(str, path)) if path else "root"
    if depth == 0:
        return {"type": "textfield", "name": name}
    return {
        "type": "form",
        "name": name,
        "children": [
            make_isomorphic(depth - 1, fanout, path + (i,))
            for i in range(fanout)
        ],
    }


def make_deceptive(depth, fanout, path=()):
    """Subtrees of identical shape distinguished only at the bottom."""
    name = "n" + "_".join(map(str, path)) if path else "root"
    if depth == 0:
        marker = LEAVES[sum(path) % len(LEAVES)]
        return {"type": marker, "name": name}
    return {
        "type": "form",
        "name": name,
        "children": [
            make_deceptive(depth - 1, fanout, path + (i,))
            for i in range(fanout)
        ],
    }


def shuffled(spec, rng):
    out = {"type": spec["type"], "name": spec["name"] + "x"}
    children = list(spec.get("children", []))
    rng.shuffle(children)
    if children:
        out["children"] = [shuffled(child, rng) for child in children]
    return out


def count_nodes(spec):
    return 1 + sum(count_nodes(c) for c in spec.get("children", []))


def measure(strategy, spec_a, spec_b, predefined=None):
    start = time.perf_counter()
    result = compat.structurally_compatible(
        spec_a,
        spec_b,
        strategy=strategy,
        predefined=predefined,
        node_budget=5_000_000,
    )
    elapsed = time.perf_counter() - start
    return result, elapsed


class TestMatchingCost:
    def test_strategy_sweep(self, benchmark):
        def sweep():
            rows = []
            for family, factory in (
                ("isomorphic", make_isomorphic),
                ("deceptive", make_deceptive),
            ):
                for depth, fanout in SHAPES:
                    rng = random.Random(depth * 100 + fanout)
                    spec_a = factory(depth, fanout)
                    spec_b = shuffled(spec_a, rng)
                    n = count_nodes(spec_a)
                    exhaustive, ex_time = measure(
                        compat.EXHAUSTIVE, spec_a, spec_b
                    )
                    assert exhaustive.compatible
                    heuristic, _ = measure(compat.HEURISTIC, spec_a, spec_b)
                    predefined, pre_time = measure(
                        compat.PREDEFINED,
                        spec_a,
                        spec_b,
                        predefined=exhaustive.mapping,
                    )
                    assert predefined.compatible
                    rows.append(
                        [
                            family,
                            f"d={depth} f={fanout}",
                            n,
                            exhaustive.stats.nodes_compared,
                            exhaustive.stats.backtracks,
                            heuristic.compatible,
                            predefined.stats.nodes_compared,
                            round(ex_time * 1e6),
                            round(pre_time * 1e6),
                        ]
                    )
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        emit_table(
            "e7_matching_cost",
            "E7: s-compatibility cost per strategy",
            ["family", "shape", "nodes", "exhaustive cmps", "backtracks",
             "heuristic ok", "predefined cmps", "exhaustive us",
             "predefined us"],
            rows,
        )
        iso = [r for r in rows if r[0] == "isomorphic"]
        deceptive = [r for r in rows if r[0] == "deceptive"]
        # Shape: on isomorphic trees every strategy is linear and the
        # heuristic succeeds.
        for row in iso:
            assert row[3] == row[2]      # exhaustive cmps == nodes
            assert row[4] == 0           # no backtracking
            assert row[5] is True
        # Shape: on deceptive trees the exhaustive matcher backtracks and
        # its comparisons grow well beyond the node count...
        big = deceptive[-1]
        assert big[4] > 0
        assert big[3] > big[2] * 3
        # ...the greedy heuristic cannot solve them (it never backtracks)...
        assert any(row[5] is False for row in deceptive)
        # ...and the pre-defined mapping stays a single linear pass.
        for row in deceptive:
            assert row[6] == row[2]

    def test_budget_prevents_runaway(self, benchmark):
        """The node budget converts heavy backtracking into a clean error
        (what a production system must do instead of hanging)."""
        spec_a = make_deceptive(4, 3)
        spec_b = shuffled(spec_a, random.Random(1))

        def guarded():
            try:
                compat.structurally_compatible(
                    spec_a, spec_b, strategy=compat.EXHAUSTIVE, node_budget=200
                )
                return False
            except IncompatibleObjectsError:
                return True

        assert benchmark.pedantic(guarded, rounds=1, iterations=1)

    def test_heuristic_wall_clock(self, benchmark):
        spec_a = make_isomorphic(4, 3)
        spec_b = shuffled(spec_a, random.Random(2))
        result = benchmark(
            lambda: compat.structurally_compatible(
                spec_a, spec_b, strategy=compat.HEURISTIC
            )
        )
