"""F2 — Figure 2: the UI-replicated (partially replicated) architecture.

The paper (§2.1): "If such a semantic action is time-consuming, it may of
course block the execution of other user's actions for an unacceptably
long period of time.  If such cases are frequent, the UI-replicated
architecture is not appropriate."

Series reproduced: semantic-operation cost sweep → sync latency.  The
echo stays flat (dialogue is local) while the end-to-end sync latency
degrades super-linearly once requests start queueing behind the single
semantic process.
"""

import pytest

from _common import emit_table, ms
from repro.baselines.ui_replicated import UIReplicatedHarness
from repro.workloads import WorkloadConfig, editing_session

COSTS = (0.0, 0.005, 0.02, 0.05, 0.1)


def run(cost, n_users=6):
    workload = editing_session(
        WorkloadConfig(
            n_users=n_users, actions_per_user=8, seed=31, mean_think_time=0.1
        )
    )
    harness = UIReplicatedHarness(n_users, semantic_cost=cost)
    harness.run(workload)
    return harness.metrics()


class TestFigure2:
    def test_semantic_cost_sweep(self, benchmark):
        results = benchmark.pedantic(
            lambda: [run(c) for c in COSTS], rounds=1, iterations=1
        )
        rows = [
            [
                ms(cost),
                ms(m["echo_latency_mean"]),
                ms(m["sync_latency_mean"]),
                ms(m["sync_latency_p95"]),
            ]
            for cost, m in zip(COSTS, results)
        ]
        emit_table(
            "fig2_ui_replicated",
            "Figure 2: UI-replicated — central semantic cost blocks everyone",
            ["semantic cost ms", "echo ms", "sync mean ms", "sync p95 ms"],
            rows,
        )
        # Shape: echo is local and flat regardless of semantic cost.
        for m in results:
            assert m["echo_latency_mean"] == pytest.approx(0.0)
        # Shape: sync latency strictly degrades with semantic cost...
        sync = [m["sync_latency_mean"] for m in results]
        assert all(b > a for a, b in zip(sync, sync[1:]))
        # ...and worse than proportionally once queueing kicks in: at the
        # heaviest cost, p95 exceeds the cost of a single operation several
        # times over (requests wait behind other users' operations).
        assert results[-1]["sync_latency_p95"] > COSTS[-1] * 2

    def test_queueing_is_the_culprit(self, benchmark):
        """With a single user (no queueing) the same semantic cost hurts
        far less — blocking is a *multi-user* pathology."""

        def compare():
            solo = run(0.05, n_users=1)
            crowd = run(0.05, n_users=6)
            return solo, crowd

        solo, crowd = benchmark.pedantic(compare, rounds=1, iterations=1)
        emit_table(
            "fig2_queueing",
            "Figure 2: queueing effect (semantic cost 50ms)",
            ["users", "sync p95 ms"],
            [[1, ms(solo["sync_latency_p95"])],
             [6, ms(crowd["sync_latency_p95"])]],
        )
        assert crowd["sync_latency_p95"] > solo["sync_latency_p95"]
