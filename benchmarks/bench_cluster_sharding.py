"""Cluster sharding — scaling the central server beyond one process.

The paper's central-server architecture (Figure 4) serializes every
couple group through one process.  ``repro.cluster`` shards the server by
couple group behind a protocol-transparent router; this benchmark checks
the two claims that make that worthwhile:

* **conservation** — the router adds no traffic on the hot path: the
  per-shard message counts, summed with ``TrafficStats.merge``, stay
  within the single-server total ± the routing overhead (registration
  fan-out and group migration happen at setup, not per event);
* **scaling** — with a modeled per-message service time, the busiest
  shard's makespan shrinks and modeled throughput rises as shards are
  added, because disjoint couple groups land on different shards.

Workloads are reused from E10 (contention burst on one couple group —
floor-control correctness must be identical on every deployment) and E11
(population of disjoint pairs — the selective-grouping regime the
cluster is designed to scale).
"""

from _common import emit_table
from repro.baselines.fully_replicated import FullyReplicatedHarness
from repro.core.groups import CouplingGroup
from repro.net.transport import TrafficStats
from repro.session import Session
from repro.toolkit.widgets import Shell, TextField
from repro.workloads import SCALE_PATH, contention_burst

SHARD_COUNTS = (1, 2, 4, 8)
FIELD = "/ui/field"
USERS = 24
EVENTS_PER_USER = 5
SERVICE_TIME = 1.0  # modeled seconds per message, >> simulated latency

E10_USERS = 4
E10_ROUNDS = 10
E10_SPACING = 0.001  # tight overlap: denials guaranteed


# ---------------------------------------------------------------------------
# E11 population workload (disjoint pairs) against 1..8 shards
# ---------------------------------------------------------------------------

def build_population(shards):
    session = (
        Session(shards=shards, service_time=SERVICE_TIME)
        if shards
        else Session()
    )
    trees = []
    for i in range(USERS):
        inst = session.create_instance(f"i{i}", user=f"u{i}")
        root = Shell("ui")
        TextField("field", parent=root)
        inst.add_root(root)
        trees.append(root)
    coordinator = session.create_instance("coord", user="mod")
    for i in range(0, USERS, 2):
        pair = CouplingGroup(coordinator, f"pair-{i}", [FIELD])
        pair.add_member(f"i{i}")
        pair.add_member(f"i{i + 1}")
    session.pump()
    return session, trees


def run_population(shards):
    session, trees = build_population(shards)
    cluster = session.cluster if shards else None
    # Measure the event phase only: registration fan-out and any group
    # migrations are one-time setup costs, not hot-path traffic.
    session.network.stats.reset()
    if cluster is not None:
        cluster.reset_shard_traffic()
        cluster._busy_until.clear()
    for round_no in range(EVENTS_PER_USER):
        for i in range(USERS):
            trees[i].find(FIELD).commit(f"u{i}-r{round_no}")
            session.pump()
    for i in range(0, USERS, 2):
        assert trees[i].find(FIELD).value == trees[i + 1].find(FIELD).value
    events = USERS * EVENTS_PER_USER
    network_messages = session.network.stats.messages
    result = {
        "shards": shards,
        "events": events,
        "network_messages": network_messages,
        "shard_messages": None,
        "migrations": None,
        "makespan": None,
        "throughput": None,
    }
    if cluster is not None:
        merged = TrafficStats()
        for stats in cluster._shard_stats.values():
            merged.merge(stats)
        assert merged.messages == cluster.shard_traffic().messages
        result["shard_messages"] = merged.messages
        result["migrations"] = cluster.migrations
        makespan = cluster.modeled_makespan()
        result["makespan"] = makespan
        result["throughput"] = events / makespan if makespan else 0.0
    session.close()
    return result


# ---------------------------------------------------------------------------
# E10 contention workload: floor-control parity on every deployment
# ---------------------------------------------------------------------------

def run_contention(shards):
    workload = contention_burst(
        n_users=E10_USERS, rounds=E10_ROUNDS, spacing=E10_SPACING, seed=13
    )
    harness = FullyReplicatedHarness(
        E10_USERS, base_latency=0.005, shards=shards
    )
    records = harness.run(workload)
    denied = sum(1 for r in records if not r.executed)
    values = {
        harness.user_state(u, SCALE_PATH)["value"] for u in range(E10_USERS)
    }
    if shards:
        locks_left = sum(
            len(shard.locks) for shard in harness.server.shards.values()
        )
    else:
        locks_left = len(harness.server.locks)
    harness.close()
    return {
        "shards": shards,
        "executed": len(records) - denied,
        "denied": denied,
        "converged": len(values) == 1,
        "locks_left": locks_left,
    }


class TestClusterSharding:
    def test_population_scaling_and_conservation(self, benchmark):
        def sweep():
            baseline = run_population(0)
            return baseline, [run_population(n) for n in SHARD_COUNTS]

        baseline, results = benchmark.pedantic(sweep, rounds=1, iterations=1)
        rows = [
            [
                r["shards"],
                r["network_messages"],
                r["shard_messages"],
                r["migrations"],
                round(r["makespan"], 1),
                round(r["throughput"], 3),
            ]
            for r in results
        ]
        emit_table(
            "cluster_sharding",
            f"Cluster sharding: E11 pairs, {USERS} users x "
            f"{EVENTS_PER_USER} events (single-server net total: "
            f"{baseline['network_messages']} msgs)",
            ["shards", "net msgs", "shard msgs (merged)", "migrations",
             "modeled makespan s", "events/s (modeled)"],
            rows,
        )
        for r in results:
            # Conservation 1: the cluster is invisible on the wire — the
            # client-facing network carries the same traffic as against
            # the single server.
            assert r["network_messages"] == baseline["network_messages"]
            # Conservation 2: merged per-shard counts equal the network
            # total ± routing overhead (hot-path messages touch exactly
            # one shard; migrations were excluded by the post-setup
            # reset, so the margin is tight).
            overhead = abs(r["shard_messages"] - r["network_messages"])
            assert overhead <= 0.05 * r["network_messages"]
        # Scaling: disjoint groups spread over shards, so the modeled
        # makespan shrinks and throughput rises monotonically.
        throughputs = [r["throughput"] for r in results]
        assert throughputs == sorted(throughputs)
        assert throughputs[-1] > 2 * throughputs[0]

    def test_multiprocess_cluster_commit_throughput(self, benchmark, tmp_path):
        """The processes=True deployment under a real commit workload.

        Not a speedup gate (subprocess spawn and fsync costs are
        machine-dependent): it measures sustained cross-process commit
        round-trips and asserts the structural claims — every op lands,
        both workers stay alive, and the per-shard journals actually
        grew (the exactly-once protocol journals before acking).
        """
        import os
        import time as _time

        from repro.session import Session as _Session

        ROUNDS = 20

        def run():
            with _Session(
                backend="aio", shards=2, processes=True,
                persistence=str(tmp_path),
            ) as session:
                a = session.create_instance("a", user="amy")
                b = session.create_instance("b", user="ben")
                roots = []
                for inst in (a, b):
                    root = Shell("ui")
                    TextField("field", parent=root)
                    roots.append(inst.add_root(root))
                a.couple(roots[0].find(FIELD), ("b", FIELD))
                session.pump()
                started = _time.perf_counter()
                for round_no in range(ROUNDS):
                    roots[0].find(FIELD).commit(f"r{round_no}")
                    session.pump()
                elapsed = _time.perf_counter() - started
                assert roots[1].find(FIELD).value == f"r{ROUNDS - 1}"
                states = [
                    handle.state
                    for handle in session.cluster.shards.values()
                ]
                journals = [
                    os.path.getsize(os.path.join(root_dir, name))
                    for root_dir, _, names in os.walk(str(tmp_path))
                    for name in names
                    if name.endswith(".jsonl") or name.startswith("oplog")
                ]
                return elapsed, states, journals

        elapsed, states, journals = benchmark.pedantic(
            run, rounds=1, iterations=1
        )
        emit_table(
            "cluster_multiprocess",
            f"Multi-process cluster: {ROUNDS} coupled commits, 2 shards",
            ["commits", "elapsed s", "commits/s", "workers ready"],
            [[ROUNDS, round(elapsed, 2), round(ROUNDS / elapsed, 1),
              states.count("ready")]],
        )
        assert states == ["ready", "ready"]
        assert sum(journals) > 0

    def test_contention_parity_across_deployments(self, benchmark):
        def sweep():
            return [run_contention(0)] + [
                run_contention(n) for n in SHARD_COUNTS
            ]

        results = benchmark.pedantic(sweep, rounds=1, iterations=1)
        rows = [
            [
                r["shards"] or "single",
                r["executed"],
                r["denied"],
                r["converged"],
                r["locks_left"],
            ]
            for r in results
        ]
        emit_table(
            "cluster_sharding_contention",
            f"Cluster sharding: E10 contention parity "
            f"({E10_USERS} users, {E10_ROUNDS} rounds)",
            ["shards", "executed", "denied", "converged", "locks leaked"],
            rows,
        )
        single = results[0]
        assert single["denied"] > 0  # the burst actually contends
        for r in results:
            # One couple group lives on one shard, so floor-control
            # outcomes are bit-identical on every deployment.
            assert r["executed"] == single["executed"]
            assert r["denied"] == single["denied"]
            assert r["converged"]
            assert r["locks_left"] == 0
