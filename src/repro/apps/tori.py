"""Cooperative TORI: the task-oriented database retrieval interface (§4).

The paper reports making TORI cooperative "in a few days during one week by
one person": the coupled UI objects were the *query forms* and *result
forms* TORI generates — "menus for selecting comparison operators", "text
input fields associated with attributes", "menus for selecting a certain
view", and the result-form operations ("using result data to partially
instantiate new query forms").  Query invocation is synchronized too, so a
query "will be potentially re-executed several times", which the paper
discusses as both a cost (multiple evaluation) and a flexibility win
(queries may differ per user, and "queries can be sent to different
databases").

:class:`ToriApplication` reproduces this: a query form + result form over a
:class:`~repro.apps.minidb.Database`, with :meth:`make_cooperative`
coupling two instances in either the paper's *re-execute* mode or the
alternative *share-results* mode it contemplates ("one might argue that it
would be preferable to evaluate the query once and share the results") —
experiment E8 compares the two.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.apps.minidb import OPERATORS, Condition, Database, QueryResult
from repro.core.instance import ApplicationInstance
from repro.toolkit.builder import build
from repro.toolkit.events import ACTIVATE
from repro.toolkit.widget import UIObject

#: Query attributes TORI's form exposes (columns of the sample DB).
QUERY_ATTRIBUTES: Tuple[str, ...] = ("author", "topic", "venue", "year")

#: Views: which columns the result form shows (the paper's "menus for
#: selecting a certain view (i.e. a set of query attributes)").
VIEWS: Dict[str, Tuple[str, ...]] = {
    "full": ("author", "title", "topic", "venue", "year", "pages"),
    "compact": ("author", "title", "year"),
    "bibliographic": ("author", "venue", "year", "pages"),
}

_OPERATOR_CHOICES = tuple(sorted(OPERATORS))


def tori_spec() -> Dict[str, Any]:
    """Builder spec of the TORI user interface."""
    field_specs = []
    for attr in QUERY_ATTRIBUTES:
        field_specs.append(
            {
                "type": "form",
                "name": attr,
                "children": [
                    {"type": "label", "name": "caption", "state": {"text": attr}},
                    {
                        "type": "optionmenu",
                        "name": "op",
                        "state": {
                            "entries": list(_OPERATOR_CHOICES),
                            "selection": "eq",
                        },
                    },
                    {"type": "textfield", "name": "value", "state": {"width": 18}},
                ],
            }
        )
    return {
        "type": "shell",
        "name": "tori",
        "state": {"title": "TORI"},
        "children": [
            {
                "type": "form",
                "name": "query",
                "state": {"title": "Query"},
                "children": [
                    {
                        "type": "optionmenu",
                        "name": "view",
                        "state": {
                            "entries": list(VIEWS),
                            "selection": "compact",
                        },
                    },
                    {"type": "form", "name": "fields", "children": field_specs},
                    {
                        "type": "pushbutton",
                        "name": "run",
                        "state": {"label": "Run Query"},
                    },
                    {
                        "type": "pushbutton",
                        "name": "clear",
                        "state": {"label": "Clear"},
                    },
                ],
            },
            {
                "type": "form",
                "name": "result",
                "state": {"title": "Results"},
                "children": [
                    {"type": "label", "name": "count", "state": {"text": "no query"}},
                    {"type": "listbox", "name": "rows", "state": {"width": 60}},
                    {
                        "type": "pushbutton",
                        "name": "refine",
                        "state": {"label": "Refine from selection"},
                    },
                ],
            },
        ],
    }


class ToriApplication:
    """One TORI instance: query form + result form over a local database."""

    def __init__(
        self,
        instance: ApplicationInstance,
        database: Database,
        *,
        table: str = "publications",
    ):
        self.instance = instance
        self.database = database
        self.table = table
        self.ui: UIObject = instance.add_root(build(tori_spec()))
        self.query_form = self.ui.find("/tori/query")
        self.result_form = self.ui.find("/tori/result")
        self.queries_run = 0
        self.last_result: Optional[QueryResult] = None
        self._share_results_peers: List[str] = []
        #: Raw result rows as semantic data behind the result form (§3.1).
        self._semantic_rows: List[Dict[str, Any]] = []
        self._wire_callbacks()
        self._register_semantics()

    # ------------------------------------------------------------------
    # UI accessors
    # ------------------------------------------------------------------

    def field_value(self, attr: str) -> UIObject:
        return self.ui.find(f"/tori/query/fields/{attr}/value")

    def field_op(self, attr: str) -> UIObject:
        return self.ui.find(f"/tori/query/fields/{attr}/op")

    @property
    def view_menu(self) -> UIObject:
        return self.ui.find("/tori/query/view")

    @property
    def run_button(self) -> UIObject:
        return self.ui.find("/tori/query/run")

    @property
    def rows_list(self) -> UIObject:
        return self.ui.find("/tori/result/rows")

    @property
    def count_label(self) -> UIObject:
        return self.ui.find("/tori/result/count")

    # ------------------------------------------------------------------
    # User-level operations
    # ------------------------------------------------------------------

    def set_condition(self, attr: str, op: str, value: str) -> None:
        """Fill one query field through the event path (couples propagate)."""
        self.field_op(attr).select(op, user=self.instance.user)
        self.field_value(attr).commit(value, user=self.instance.user)

    def choose_view(self, view: str) -> None:
        if view not in VIEWS:
            raise ValueError(f"unknown view {view!r}")
        self.view_menu.select(view, user=self.instance.user)

    def run_query(self) -> QueryResult:
        """Press the Run button (synchronized invocation when coupled)."""
        self.run_button.press(user=self.instance.user)
        assert self.last_result is not None
        return self.last_result

    def refine_from_selection(self) -> None:
        """Use the selected result row to partially instantiate a new query
        (the paper's result-form operation)."""
        self.ui.find("/tori/result/refine").press(user=self.instance.user)

    def clear(self) -> None:
        self.ui.find("/tori/query/clear").press(user=self.instance.user)

    def visible_rows(self) -> List[str]:
        return list(self.rows_list.get("items"))

    # ------------------------------------------------------------------
    # Cooperation (§4)
    # ------------------------------------------------------------------

    #: Relative paths of the query-form objects the paper couples.
    COUPLED_PATHS: Tuple[str, ...] = (
        ("/tori/query/view",)
        + tuple(f"/tori/query/fields/{a}/op" for a in QUERY_ATTRIBUTES)
        + tuple(f"/tori/query/fields/{a}/value" for a in QUERY_ATTRIBUTES)
        + ("/tori/query/run", "/tori/query/clear")
        + ("/tori/result/rows", "/tori/result/refine")
    )

    def make_cooperative(
        self, peer_instance_id: str, *, share_results: bool = False
    ) -> List[str]:
        """Couple this TORI with a peer instance's TORI.

        With the default *share_results=False* the run button is coupled,
        so each participant re-executes the query locally (the paper's
        mode: multiple evaluation, possibly against different databases).
        With *share_results=True* the run button stays uncoupled and the
        invoker ships its result form via CopyTo instead.
        """
        paths = [p for p in self.COUPLED_PATHS]
        if share_results:
            paths.remove("/tori/query/run")
        for path in paths:
            self.instance.couple(
                self.instance.widget(path), (peer_instance_id, path)
            )
        if share_results:
            self._share_results_peers.append(peer_instance_id)
        return paths

    def share_results(self) -> int:
        """Push this instance's result form to the share-results peers."""
        for peer in self._share_results_peers:
            self.instance.copy_to(self.result_form, (peer, "/tori/result"))
        return len(self._share_results_peers)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _wire_callbacks(self) -> None:
        self.run_button.add_callback(ACTIVATE, self._on_run)
        self.ui.find("/tori/query/clear").add_callback(ACTIVATE, self._on_clear)
        self.ui.find("/tori/result/refine").add_callback(ACTIVATE, self._on_refine)

    def _register_semantics(self) -> None:
        def store() -> Any:
            return self._semantic_rows

        def load(data: Any) -> None:
            self._semantic_rows = list(data or [])

        self.instance.semantics.register_widget(self.result_form, store, load)

    def current_conditions(self) -> List[Condition]:
        """Read the query form into WHERE conditions."""
        conditions: List[Condition] = []
        for attr in QUERY_ATTRIBUTES:
            raw = self.field_value(attr).value.strip()
            if not raw:
                continue
            value: Any = raw
            if attr == "year":
                try:
                    value = int(raw)
                except ValueError:
                    pass
            conditions.append(
                Condition(attr, self.field_op(attr).selection, value)
            )
        return conditions

    def _on_run(self, _widget: UIObject, _event: Any) -> None:
        """Execute the query against the *local* database.

        When the run button is coupled this callback re-runs in every
        instance — the multiple evaluation the paper describes.
        """
        view = self.view_menu.selection or "compact"
        columns = VIEWS.get(view, VIEWS["compact"])
        result = self.database.select(
            self.table, self.current_conditions(), columns, order_by=columns[0]
        )
        self.queries_run += 1
        self.last_result = result
        self._semantic_rows = result.as_dicts()
        self.rows_list.set("items", result.formatted())
        self.rows_list.set("selected", [])
        self.count_label.set(
            "text", f"{len(result)} rows ({result.rows_scanned} scanned)"
        )

    def _on_clear(self, _widget: UIObject, _event: Any) -> None:
        for attr in QUERY_ATTRIBUTES:
            self.field_value(attr).set("value", "")
            self.field_op(attr).set("selection", "eq")

    def _on_refine(self, _widget: UIObject, _event: Any) -> None:
        """Partially instantiate the query form from the selected row."""
        selected = self.rows_list.get("selected")
        if not selected or not self._semantic_rows:
            return
        index = selected[0]
        if not 0 <= index < len(self._semantic_rows):
            return
        row = self._semantic_rows[index]
        if "author" in row:
            self.field_op("author").set("selection", "eq")
            self.field_value("author").set("value", str(row["author"]))
        if "year" in row:
            self.field_op("year").set("selection", "eq")
            self.field_value("year").set("value", str(row["year"]))
