"""Mini relational engine: the database substrate behind TORI.

The paper's second application converts TORI — a "Task-Oriented database
Retrieval Interface" — to a cooperative tool (§4).  TORI ran against a real
DBMS; this module is the substitution: an in-memory relational engine with
exactly the query surface TORI's forms need, including the comparison
operators the paper lists ("substring", "like-one-of", …).

The engine counts rows scanned per query, which is the cost model behind
experiment E8 (multiple query evaluation vs. evaluate-once-share-results).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ReproError


class QueryError(ReproError, ValueError):
    """Malformed query: unknown table, column, or operator."""


# Comparison operators TORI's operator menus offer (§4 names two of them;
# the rest complete a plausible retrieval vocabulary).
OPERATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "eq": lambda cell, value: cell == value,
    "ne": lambda cell, value: cell != value,
    "lt": lambda cell, value: cell is not None and cell < value,
    "le": lambda cell, value: cell is not None and cell <= value,
    "gt": lambda cell, value: cell is not None and cell > value,
    "ge": lambda cell, value: cell is not None and cell >= value,
    "substring": lambda cell, value: str(value) in str(cell),
    "prefix": lambda cell, value: str(cell).startswith(str(value)),
    "like-one-of": lambda cell, value: str(cell)
    in [v.strip() for v in str(value).split(",")],
}


@dataclass(frozen=True)
class Condition:
    """One WHERE clause: ``column <op> value``."""

    column: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in OPERATORS:
            raise QueryError(f"unknown operator {self.op!r}")

    def matches(self, row: Mapping[str, Any]) -> bool:
        if self.column not in row:
            raise QueryError(f"unknown column {self.column!r}")
        return OPERATORS[self.op](row[self.column], self.value)

    def to_wire(self) -> Dict[str, Any]:
        return {"column": self.column, "op": self.op, "value": self.value}

    @classmethod
    def from_wire(cls, data: Mapping[str, Any]) -> "Condition":
        return cls(str(data["column"]), str(data["op"]), data["value"])


@dataclass
class QueryResult:
    """Rows matching a query plus its execution cost."""

    columns: Tuple[str, ...]
    rows: List[Tuple[Any, ...]]
    rows_scanned: int = 0

    def __len__(self) -> int:
        return len(self.rows)

    def as_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def formatted(self, separator: str = " | ") -> List[str]:
        """Human-readable row strings, for ListBox display."""
        return [
            separator.join(str(cell) for cell in row) for row in self.rows
        ]


class Table:
    """One relation: named columns, list-of-dict rows."""

    def __init__(self, name: str, columns: Sequence[str]):
        if not columns:
            raise QueryError("a table needs at least one column")
        self.name = name
        self.columns: Tuple[str, ...] = tuple(columns)
        self._rows: List[Dict[str, Any]] = []

    def insert(self, **values: Any) -> None:
        unknown = set(values) - set(self.columns)
        if unknown:
            raise QueryError(
                f"table {self.name!r} has no columns {sorted(unknown)}"
            )
        row = {column: values.get(column) for column in self.columns}
        self._rows.append(row)

    def insert_rows(self, rows: Iterable[Mapping[str, Any]]) -> int:
        count = 0
        for row in rows:
            self.insert(**dict(row))
            count += 1
        return count

    def __len__(self) -> int:
        return len(self._rows)

    def scan(self) -> Iterable[Mapping[str, Any]]:
        return iter(self._rows)


class Database:
    """A named collection of tables with a query API and cost accounting."""

    def __init__(self, name: str = "db"):
        self.name = name
        self._tables: Dict[str, Table] = {}
        #: Cumulative rows scanned over the database's lifetime (E8).
        self.total_rows_scanned = 0
        self.queries_executed = 0

    def create_table(self, name: str, columns: Sequence[str]) -> Table:
        if name in self._tables:
            raise QueryError(f"table {name!r} already exists")
        table = Table(name, columns)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise QueryError(f"no table named {name!r}") from None

    def tables(self) -> Tuple[str, ...]:
        return tuple(self._tables)

    def select(
        self,
        table_name: str,
        conditions: Sequence[Condition] = (),
        columns: Optional[Sequence[str]] = None,
        *,
        order_by: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> QueryResult:
        """Evaluate a conjunctive query over one table (full scan)."""
        table = self.table(table_name)
        out_columns = tuple(columns) if columns else table.columns
        unknown = set(out_columns) - set(table.columns)
        if unknown:
            raise QueryError(
                f"table {table_name!r} has no columns {sorted(unknown)}"
            )
        if order_by is not None and order_by not in table.columns:
            raise QueryError(f"cannot order by unknown column {order_by!r}")
        scanned = 0
        matches: List[Mapping[str, Any]] = []
        for row in table.scan():
            scanned += 1
            if all(condition.matches(row) for condition in conditions):
                matches.append(row)
        if order_by is not None:
            matches.sort(key=lambda r: (r[order_by] is None, r[order_by]))
        if limit is not None:
            matches = matches[: max(0, limit)]
        self.total_rows_scanned += scanned
        self.queries_executed += 1
        return QueryResult(
            columns=out_columns,
            rows=[tuple(row[c] for c in out_columns) for row in matches],
            rows_scanned=scanned,
        )


# ---------------------------------------------------------------------------
# Sample dataset: a publications catalogue (what a retrieval UI browses)
# ---------------------------------------------------------------------------

_FIRST_AUTHORS = (
    "Zhao", "Hoppe", "Stefik", "Ellis", "Greenberg", "Patterson", "Dewan",
    "Rein", "Haake", "Knister", "Lauwers", "Baloian", "Tewissen", "Kalter",
)
_TOPICS = (
    "groupware", "hypertext", "user interfaces", "databases", "CSCW",
    "distributed systems", "education", "graphics", "version control",
)
_VENUES = ("CSCW", "CHI", "UIST", "ICDCS", "InterCHI", "ECSCW")

PUBLICATIONS_COLUMNS = ("id", "author", "title", "topic", "venue", "year", "pages")


def sample_publications(n_rows: int = 500, seed: int = 1994) -> Database:
    """A deterministic publications database for TORI demos and benches."""
    rng = random.Random(seed)
    db = Database("library")
    table = db.create_table("publications", PUBLICATIONS_COLUMNS)
    for i in range(n_rows):
        author = rng.choice(_FIRST_AUTHORS)
        topic = rng.choice(_TOPICS)
        table.insert(
            id=i,
            author=author,
            title=f"On {topic} ({author} et al., study {i})",
            topic=topic,
            venue=rng.choice(_VENUES),
            year=rng.randint(1986, 1994),
            pages=rng.randint(4, 24),
        )
    return db
