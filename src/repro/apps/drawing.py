"""A multi-user sketch editor in the GroupDesign family.

The paper repeatedly contrasts its application-independent mechanism with
special-purpose multi-user drawing tools ("GroupDesign is for multi-user
sketch drawing", §2.2).  This module shows the contrast constructively: a
complete shared whiteboard built on the generic coupling layer in ~100
lines, with per-user colors (GROVE-style congruence relaxation) and
dynamic join/leave.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.core.instance import ApplicationInstance
from repro.toolkit.builder import build
from repro.toolkit.events import ACTIVATE
from repro.toolkit.widget import UIObject

APP_TYPE = "whiteboard"

PALETTE: Tuple[str, ...] = ("black", "red", "blue", "green", "orange")


def whiteboard_spec(width: int = 50, height: int = 14) -> Dict[str, Any]:
    return {
        "type": "shell",
        "name": "wb",
        "state": {"title": "Whiteboard"},
        "children": [
            {
                "type": "canvas",
                "name": "canvas",
                "state": {"width": width, "height": height, "x": 0, "y": 2},
            },
            {
                "type": "form",
                "name": "tools",
                "children": [
                    {
                        "type": "optionmenu",
                        "name": "color",
                        "state": {
                            "entries": list(PALETTE),
                            "selection": "black",
                            "x": 0, "y": 0, "width": 16,
                        },
                    },
                    {
                        "type": "pushbutton",
                        "name": "clear",
                        "state": {"label": "Clear", "x": 20, "y": 0},
                    },
                ],
            },
        ],
    }


class Whiteboard:
    """One participant's whiteboard instance."""

    #: The shared surface; tool widgets stay private (congruence
    #: relaxation: each user keeps their own pen color).
    CANVAS_PATH = "/wb/canvas"

    def __init__(self, instance: ApplicationInstance):
        if instance.app_type != APP_TYPE:
            instance.app_type = APP_TYPE
        self.instance = instance
        self.ui: UIObject = instance.add_root(build(whiteboard_spec()))
        self.canvas = self.ui.find(self.CANVAS_PATH)
        self.color_menu = self.ui.find("/wb/tools/color")
        self.ui.find("/wb/tools/clear").add_callback(ACTIVATE, self._on_clear)

    def join(self, peer_instance_id: str) -> None:
        """Couple this canvas with a peer's (dynamic late joining).

        The transitive closure extends the whole group automatically, so
        joining via any one member joins everyone.
        """
        self.instance.couple(
            self.canvas, (peer_instance_id, self.CANVAS_PATH)
        )
        # Late joiner pulls the current drawing (synchronization by state
        # precedes synchronization by action, §3.1/§3.2).
        self.instance.copy_from(
            self.canvas, (peer_instance_id, self.CANVAS_PATH)
        )

    def leave(self) -> None:
        """Leave the drawing group: remove every link touching this canvas
        (a member who joined transitively is coupled to several peers).
        The drawing survives locally — "these will not cease to exist when
        being decoupled" (§2.2)."""
        self.instance.decouple_object(self.canvas)

    def pick_color(self, color: str) -> None:
        self.color_menu.select(color, user=self.instance.user)

    def draw(self, points: List[Tuple[float, float]], width: int = 1) -> None:
        """Commit one stroke in the user's current color."""
        self.canvas.draw_stroke(
            points,
            color=self.color_menu.selection or "black",
            width=width,
            user=self.instance.user,
        )

    def clear(self) -> None:
        self.ui.find("/wb/tools/clear").press(user=self.instance.user)

    def _on_clear(self, _widget: UIObject, _event: Any) -> None:
        # The clear button is private; the canvas wipe must reach the
        # group, so it goes through the (coupled) canvas's event path.
        self.canvas.clear(user=self.instance.user)

    @property
    def strokes(self) -> List[Dict[str, Any]]:
        return self.canvas.strokes

    @property
    def stroke_count(self) -> int:
        return self.canvas.stroke_count
