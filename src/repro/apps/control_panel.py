"""The interactive coupling control panel (§4).

"For initiating a joint session, we provide an interactive interface for a
procedure that essentially consists of (1) selecting a student (or group
of students) with which the teacher's environment is to be coupled from a
graphical menu that shows the classroom situation in stylized form, and
(2) selecting the UI objects to be coupled from a (potentially simplified)
graphical representation of the student's environment. ... Dynamic
coupling and decoupling is based on the remote operations
RemoteCouple/RemoteDecouple since it is initiated from outside the
respective applications."

:class:`CouplingControlPanel` is that interface, built from the same
toolkit it controls: a participant list (fed from the server roster), an
object list (fed by fetching the selected participant's widget structure),
and couple/decouple buttons that issue the remote operations.  It is
generic — "it can be used for a variety of COSOFT applications" — because
it operates purely on rosters, structures and global object ids.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.instance import ApplicationInstance
from repro.server.couples import GlobalId
from repro.toolkit.builder import build
from repro.toolkit.events import ACTIVATE, SELECTION_CHANGED
from repro.toolkit.widget import UIObject

#: Pre-declared correspondences: (panel owner's local path per remote
#: path), see §4 "application-specific correspondences ... have to be
#: declared on beforehand".
CorrespondenceMap = Mapping[str, str]


def panel_spec() -> Dict[str, Any]:
    return {
        "type": "shell",
        "name": "panel",
        "state": {"title": "Coupling control"},
        "children": [
            {
                "type": "form",
                "name": "participants",
                "state": {"title": "Classroom"},
                "children": [
                    {"type": "label", "name": "caption",
                     "state": {"text": "Participants", "x": 0, "y": 0}},
                    {"type": "listbox", "name": "roster",
                     "state": {"width": 30, "x": 0, "y": 1}},
                    {"type": "pushbutton", "name": "refresh",
                     "state": {"label": "Refresh", "x": 0, "y": 8}},
                ],
            },
            {
                "type": "form",
                "name": "objects",
                "state": {"title": "Their environment"},
                "children": [
                    {"type": "label", "name": "caption",
                     "state": {"text": "Couplable objects", "x": 34, "y": 0}},
                    {"type": "listbox", "name": "tree",
                     "state": {"width": 40, "x": 34, "y": 1,
                               "selection_policy": "multiple"}},
                    {"type": "pushbutton", "name": "couple",
                     "state": {"label": "Couple", "x": 34, "y": 10}},
                    {"type": "pushbutton", "name": "decouple",
                     "state": {"label": "Decouple", "x": 44, "y": 10}},
                ],
            },
            {"type": "label", "name": "status",
             "state": {"text": "select a participant", "x": 0, "y": 12,
                       "width": 70}},
        ],
    }


class CouplingControlPanel:
    """An interactive front end for dynamic coupling/decoupling.

    Parameters
    ----------
    instance:
        The controlling instance (the teacher's).  It issues the
        RemoteCouple/RemoteDecouple requests, so it may couple objects of
        *any* two instances — including its own environment and a
        student's.
    correspondences:
        remote-path -> local-path mapping: when the operator couples a
        student object that has a declared counterpart in the controller's
        own environment, the counterpart is used as the other endpoint.
        Paths without a declaration are coupled to themselves in the
        controller's environment (homogeneous layouts).
    """

    def __init__(
        self,
        instance: ApplicationInstance,
        *,
        correspondences: Optional[CorrespondenceMap] = None,
        root_name: str = "panel",
    ):
        self.instance = instance
        self.correspondences: Dict[str, str] = dict(correspondences or {})
        spec = panel_spec()
        spec["name"] = root_name
        self.ui: UIObject = instance.add_root(build(spec))
        self._root_name = root_name
        self._participants: List[str] = []
        self._object_paths: List[str] = []
        self._selected_participant: Optional[str] = None
        #: (remote gid, local gid) pairs currently coupled via this panel.
        self.active_links: List[Tuple[GlobalId, GlobalId]] = []
        self._wire()
        self.refresh_roster()

    # ------------------------------------------------------------------
    # Widget accessors
    # ------------------------------------------------------------------

    def _w(self, rel: str) -> UIObject:
        return self.ui.find(rel)

    @property
    def roster_list(self) -> UIObject:
        return self._w("participants/roster")

    @property
    def tree_list(self) -> UIObject:
        return self._w("objects/tree")

    @property
    def status_text(self) -> str:
        return str(self._w("status").get("text"))

    def _set_status(self, text: str) -> None:
        self._w("status").set("text", text)

    # ------------------------------------------------------------------
    # Step 1: participants ("the classroom situation in stylized form")
    # ------------------------------------------------------------------

    def refresh_roster(self) -> List[str]:
        """Re-read the registered instances from the local roster copy."""
        self._participants = sorted(
            iid
            for iid in self.instance.roster
            if iid != self.instance.instance_id
        )
        rows = [
            f"{iid}  ({self.instance.roster[iid].user}, "
            f"{self.instance.roster[iid].app_type or 'app'})"
            for iid in self._participants
        ]
        self.roster_list.set("items", rows)
        self.roster_list.set("selected", [])
        return self._participants

    def select_participant(self, instance_id: str) -> List[str]:
        """Pick a participant; loads their couplable object list."""
        if instance_id not in self._participants:
            raise ValueError(f"unknown participant {instance_id!r}")
        index = self._participants.index(instance_id)
        self.roster_list.select_indices([index])
        return self._load_objects(instance_id)

    # ------------------------------------------------------------------
    # Step 2: objects ("a simplified graphical representation")
    # ------------------------------------------------------------------

    def _load_objects(self, instance_id: str) -> List[str]:
        self._selected_participant = instance_id
        roots = self._discover_roots(instance_id)
        paths: List[str] = []
        rows: List[str] = []
        for root_path in roots:
            payload = self.instance.fetch_state((instance_id, root_path))
            structure = payload.get("structure")
            if structure is None:
                continue
            for rel, type_name, depth in _walk_spec(structure):
                path = root_path if not rel else f"{root_path}/{rel}"
                paths.append(path)
                rows.append("  " * depth + f"{path.rsplit('/', 1)[-1]} "
                            f"<{type_name}>")
        self._object_paths = paths
        self.tree_list.set("items", rows)
        self.tree_list.set("selected", [])
        self._set_status(
            f"{instance_id}: {len(paths)} couplable objects"
        )
        return paths

    def _discover_roots(self, instance_id: str) -> List[str]:
        """Ask the participant for its root widget names (a tiny
        application-independent command both sides understand)."""
        try:
            roots = self.instance.send_command(
                "__list_roots__", None, targets=[instance_id], want_reply=True
            )
            return [str(r) for r in roots or []]
        except Exception:
            return []

    def select_objects(self, paths: List[str]) -> None:
        indices = [self._object_paths.index(p) for p in paths]
        self.tree_list.select_indices(indices)

    # ------------------------------------------------------------------
    # Couple / decouple
    # ------------------------------------------------------------------

    def _selected_gids(self) -> List[GlobalId]:
        if self._selected_participant is None:
            return []
        return [
            (self._selected_participant, self._object_paths[i])
            for i in self.tree_list.get("selected")
            if 0 <= i < len(self._object_paths)
        ]

    def local_counterpart(self, remote_path: str) -> str:
        """The controller-side path a remote object couples to."""
        return self.correspondences.get(remote_path, remote_path)

    def couple_selected(self) -> int:
        """RemoteCouple every selected object to its local counterpart."""
        count = 0
        for remote in self._selected_gids():
            local = (self.instance.instance_id,
                     self.local_counterpart(remote[1]))
            if self.instance.find_widget(local[1]) is None:
                continue  # no counterpart in the controller's environment
            self.instance.remote_couple(remote, local)
            self.active_links.append((remote, local))
            count += 1
        self._set_status(f"coupled {count} object(s)")
        return count

    def decouple_selected(self) -> int:
        count = 0
        for remote in self._selected_gids():
            for link in [l for l in self.active_links if l[0] == remote]:
                self.instance.remote_decouple(link[0], link[1])
                self.active_links.remove(link)
                count += 1
        self._set_status(f"decoupled {count} object(s)")
        return count

    def end_all_sessions(self) -> int:
        """Decouple everything this panel ever coupled."""
        count = len(self.active_links)
        for remote, local in list(self.active_links):
            self.instance.remote_decouple(remote, local)
        self.active_links.clear()
        self._set_status("all sessions ended")
        return count

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def _wire(self) -> None:
        self._w("participants/refresh").add_callback(
            ACTIVATE, lambda w, e: self.refresh_roster()
        )
        self._w("objects/couple").add_callback(
            ACTIVATE, lambda w, e: self.couple_selected()
        )
        self._w("objects/decouple").add_callback(
            ACTIVATE, lambda w, e: self.decouple_selected()
        )

        def on_pick(widget: UIObject, _event: Any) -> None:
            selected = widget.get("selected")
            if selected and 0 <= selected[0] < len(self._participants):
                self._load_objects(self._participants[selected[0]])

        self.roster_list.add_callback(SELECTION_CHANGED, on_pick)


def enable_panel_introspection(instance: ApplicationInstance) -> None:
    """Install the tiny command handler the panel's object discovery uses.

    Any application that wants to appear in control panels calls this once
    (the panel-side counterpart of the paper's "register the application
    with the server").
    """
    instance.on_command(
        "__list_roots__",
        lambda _data, _sender: [root.pathname for root in instance.roots()],
    )


def _walk_spec(spec: Mapping[str, Any], prefix: str = "", depth: int = 0):
    yield prefix, spec["type"], depth
    for child in spec.get("children", []):
        child_prefix = (
            f"{prefix}/{child['name']}" if prefix else child["name"]
        )
        yield from _walk_spec(child, child_prefix, depth + 1)
