"""The paper's applications, rebuilt on the coupling layer:

* :mod:`~repro.apps.classroom` — COSOFT face-to-face teaching (§4);
* :mod:`~repro.apps.tori` — cooperative TORI database retrieval (§4);
* :mod:`~repro.apps.minidb` — the in-memory relational substrate;
* :mod:`~repro.apps.drawing` — a GroupDesign-style shared whiteboard.
"""

from repro.apps.classroom import (
    IntelligentDemon,
    SHARED_OBJECTS,
    STUDENT_APP_TYPE,
    TEACHER_APP_TYPE,
    StudentEnvironment,
    TeacherEnvironment,
    couple_simulation_directly,
)
from repro.apps.control_panel import (
    CouplingControlPanel,
    enable_panel_introspection,
)
from repro.apps.drawing import Whiteboard, whiteboard_spec
from repro.apps.minidb import (
    Condition,
    Database,
    OPERATORS,
    QueryError,
    QueryResult,
    Table,
    sample_publications,
)
from repro.apps.tori import QUERY_ATTRIBUTES, VIEWS, ToriApplication, tori_spec

__all__ = [
    "Condition",
    "CouplingControlPanel",
    "IntelligentDemon",
    "Database",
    "enable_panel_introspection",
    "OPERATORS",
    "QUERY_ATTRIBUTES",
    "QueryError",
    "QueryResult",
    "SHARED_OBJECTS",
    "STUDENT_APP_TYPE",
    "StudentEnvironment",
    "TEACHER_APP_TYPE",
    "Table",
    "TeacherEnvironment",
    "ToriApplication",
    "VIEWS",
    "Whiteboard",
    "couple_simulation_directly",
    "sample_publications",
    "tori_spec",
    "whiteboard_spec",
]
