"""COSOFT: computer support for face-to-face teaching (§4).

The paper's primary application: "the teacher's presentation environment
that runs on the electronic blackboard; and the local student environments
that typically offer exercises and ... local context-sensitive help".
Materials are "closely related to each other, even partially identical
(e.g. they may use the same simulation windows or function displays)".

Reproduced here:

* :class:`TeacherEnvironment` — presentation board (canvas), parameter
  scales, a shared simulation display, a notes area, and the buffered
  help-request queue ("these messages are buffered and can be inspected by
  the teacher");
* :class:`StudentEnvironment` — a *structurally different* exercise
  environment that shares the simulation window and parameter fields
  (heterogeneous coupling);
* :meth:`TeacherEnvironment.join_session` — the interactive joint-session
  procedure: pick a student, pick the objects, RemoteCouple them (§4:
  "dynamic coupling and decoupling is based on the remote operations
  RemoteCouple/RemoteDecouple since it is initiated from outside the
  respective applications");
* **indirect coupling** (§4): the simulation display is *generated* from
  the parameter scales, so coupling the two small scales synchronizes the
  big display for free.  :func:`couple_simulation_directly` is the costly
  alternative (couple the canvas itself) that experiment E9 compares.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.instance import ApplicationInstance
from repro.toolkit.builder import build
from repro.toolkit.events import VALUE_CHANGED
from repro.toolkit.widget import UIObject

TEACHER_APP_TYPE = "cosoft-teacher"
STUDENT_APP_TYPE = "cosoft-student"

#: Objects shared between the (heterogeneous) teacher and student
#: environments, as (teacher path, student path) correspondences — the
#: paper: "Application-specific correspondences between elements of the
#: student's and teacher's environments have to be declared on beforehand."
SHARED_OBJECTS: Tuple[Tuple[str, str], ...] = (
    ("/teacher/params/amplitude", "/student/exercise/amplitude"),
    ("/teacher/params/frequency", "/student/exercise/frequency"),
    ("/teacher/simulation", "/student/exercise/simulation"),
    ("/teacher/notes", "/student/exercise/answer"),
)

#: Resolution of the simulation plot (points per curve); the cost of
#: regenerating or shipping the display scales with it (experiment E9).
SIM_POINTS = 64


def teacher_spec() -> Dict[str, Any]:
    return {
        "type": "shell",
        "name": "teacher",
        "state": {"title": "COSOFT — Liveboard"},
        "children": [
            {
                "type": "canvas",
                "name": "board",
                "state": {"width": 60, "height": 16},
            },
            {
                "type": "form",
                "name": "params",
                "children": [
                    {
                        "type": "scale",
                        "name": "amplitude",
                        "state": {"label": "A", "maximum": 10, "value": 1},
                    },
                    {
                        "type": "scale",
                        "name": "frequency",
                        "state": {"label": "f", "maximum": 8, "value": 1},
                    },
                ],
            },
            {
                "type": "canvas",
                "name": "simulation",
                "state": {"width": 40, "height": 10},
            },
            {"type": "textarea", "name": "notes", "state": {"width": 40}},
        ],
    }


def student_spec() -> Dict[str, Any]:
    """The student environment: same components inside a different
    structure, plus exercise-only widgets the teacher does not have."""
    return {
        "type": "shell",
        "name": "student",
        "state": {"title": "COSOFT — Exercise"},
        "children": [
            {
                "type": "form",
                "name": "exercise",
                "state": {"title": "Wave exercise"},
                "children": [
                    {
                        "type": "label",
                        "name": "task",
                        "state": {
                            "text": "Set A and f to match the target wave",
                            "x": 1, "y": 0, "width": 40,
                        },
                    },
                    {
                        "type": "scale",
                        "name": "amplitude",
                        "state": {"label": "A", "maximum": 10, "value": 1,
                                  "x": 1, "y": 1, "width": 20},
                    },
                    {
                        "type": "scale",
                        "name": "frequency",
                        "state": {"label": "f", "maximum": 8, "value": 1,
                                  "x": 24, "y": 1, "width": 16},
                    },
                    {
                        "type": "canvas",
                        "name": "simulation",
                        "state": {"width": 40, "height": 10, "x": 1, "y": 2},
                    },
                    {"type": "textarea", "name": "answer",
                     "state": {"width": 40, "x": 1, "y": 13}},
                    {
                        "type": "pushbutton",
                        "name": "help",
                        "state": {"label": "Ask for help", "x": 1, "y": 15},
                    },
                ],
            },
        ],
    }


def _wave_strokes(
    amplitude: float, frequency: float, points: Optional[int] = None
) -> List[Dict[str, Any]]:
    """Compute the simulation display content from the two parameters.

    A piecewise-linear sine-like wave; pure function of (A, f), which is
    exactly why indirect coupling works: any replica can regenerate it
    locally from the coupled parameter fields.  *points* defaults to the
    module-level :data:`SIM_POINTS` (read at call time so experiments can
    sweep the display resolution).
    """
    import math

    if points is None:
        points = SIM_POINTS
    step = 2 * math.pi * max(frequency, 0.1) / max(points - 1, 1)
    pts = [
        [round(i * (38.0 / max(points - 1, 1)), 2),
         round(4.5 - amplitude * 0.4 * math.sin(i * step), 2)]
        for i in range(points)
    ]
    return [{"points": pts, "color": "blue", "width": 1}]


class _Environment:
    """Shared machinery of teacher and student environments."""

    def __init__(self, instance: ApplicationInstance, spec: Dict[str, Any]):
        self.instance = instance
        self.ui: UIObject = instance.add_root(build(spec))
        self.simulation_regenerations = 0

    def _install_simulation(self, amp_path: str, freq_path: str, sim_path: str) -> None:
        """Wire the indirect-coupling pattern: parameter changes regenerate
        the simulation display locally."""
        amp = self.ui.find(amp_path)
        freq = self.ui.find(freq_path)
        sim = self.ui.find(sim_path)

        def regenerate(_widget: UIObject, _event: Any) -> None:
            # Fired, not set: if the display itself is coupled (the costly
            # direct mode of E9) each regeneration broadcasts the whole
            # stroke list; when only the parameters are coupled (indirect
            # mode) this event stays local and free.
            sim.fire(VALUE_CHANGED, strokes=_wave_strokes(amp.value, freq.value))
            self.simulation_regenerations += 1

        amp.add_callback(VALUE_CHANGED, regenerate)
        freq.add_callback(VALUE_CHANGED, regenerate)
        regenerate(amp, None)  # initial display

    def set_parameters(self, amplitude: float, frequency: float) -> None:
        """Adjust the wave parameters through the event path."""
        self._amp.set_value(amplitude, user=self.instance.user)
        self._freq.set_value(frequency, user=self.instance.user)

    @property
    def simulation_strokes(self) -> List[Dict[str, Any]]:
        return self._sim.strokes

    # Set by subclasses:
    _amp: UIObject
    _freq: UIObject
    _sim: UIObject


class TeacherEnvironment(_Environment):
    """The presentation environment on the electronic blackboard."""

    def __init__(self, instance: ApplicationInstance):
        if instance.app_type != TEACHER_APP_TYPE:
            instance.app_type = TEACHER_APP_TYPE
        super().__init__(instance, teacher_spec())
        self._amp = self.ui.find("/teacher/params/amplitude")
        self._freq = self.ui.find("/teacher/params/frequency")
        self._sim = self.ui.find("/teacher/simulation")
        self._install_simulation(
            "/teacher/params/amplitude",
            "/teacher/params/frequency",
            "/teacher/simulation",
        )
        #: Buffered student messages: "these messages are buffered and can
        #: be inspected by the teacher".
        self.help_requests: List[Dict[str, Any]] = []
        #: Object pairs currently coupled per student id.
        self.active_sessions: Dict[str, List[Tuple[str, str]]] = {}
        instance.on_command("request_help", self._on_help_request)

    def _on_help_request(self, data: Any, sender: str) -> Any:
        self.help_requests.append({"student": sender, "data": data})
        return {"queued": len(self.help_requests)}

    def pending_help(self) -> List[Dict[str, Any]]:
        return list(self.help_requests)

    def join_session(
        self,
        student_id: str,
        pairs: Optional[List[Tuple[str, str]]] = None,
        *,
        indirect: bool = True,
    ) -> List[Tuple[str, str]]:
        """Couple the teacher's environment with one student's (§4).

        The two-step interactive procedure — select the student, select the
        UI objects — collapses here to choosing *pairs* (defaults to the
        pre-declared :data:`SHARED_OBJECTS`).  With *indirect=True* (the
        efficient default) the simulation display itself is NOT coupled:
        the parameter scales are, and each side regenerates the display.
        """
        if pairs is None:
            pairs = list(SHARED_OBJECTS)
            if indirect:
                pairs = [
                    (t, s) for (t, s) in pairs if not t.endswith("/simulation")
                ]
        coupled: List[Tuple[str, str]] = []
        for teacher_path, student_path in pairs:
            self.instance.remote_couple(
                (self.instance.instance_id, teacher_path),
                (student_id, student_path),
            )
            coupled.append((teacher_path, student_path))
        self.active_sessions[student_id] = coupled
        return coupled

    def leave_session(self, student_id: str) -> int:
        """Decouple everything shared with one student."""
        pairs = self.active_sessions.pop(student_id, [])
        for teacher_path, student_path in pairs:
            self.instance.remote_decouple(
                (self.instance.instance_id, teacher_path),
                (student_id, student_path),
            )
        return len(pairs)

    def inspect_student_work(self, student_id: str, student_path: str,
                             teacher_path: str) -> None:
        """Pull a student's object onto the board (CopyFrom — monitoring
        "another person's activities")."""
        self.instance.copy_from(
            self.instance.widget(teacher_path),
            (student_id, student_path),
            mode="flexible",
        )

    def write_note(self, text: str) -> None:
        self.ui.find("/teacher/notes").commit(text, user=self.instance.user)


class StudentEnvironment(_Environment):
    """A local student workstation's exercise environment."""

    def __init__(self, instance: ApplicationInstance):
        if instance.app_type != STUDENT_APP_TYPE:
            instance.app_type = STUDENT_APP_TYPE
        super().__init__(instance, student_spec())
        self._amp = self.ui.find("/student/exercise/amplitude")
        self._freq = self.ui.find("/student/exercise/frequency")
        self._sim = self.ui.find("/student/exercise/simulation")
        self._install_simulation(
            "/student/exercise/amplitude",
            "/student/exercise/frequency",
            "/student/exercise/simulation",
        )
        self.help_acks: List[Any] = []

    def request_help(self, message: str, teacher_id: str) -> Any:
        """Send a (buffered) help request to the teacher (CoSendCommand)."""
        ack = self.instance.send_command(
            "request_help",
            {"message": message, "exercise": "wave"},
            targets=[teacher_id],
            want_reply=True,
        )
        self.help_acks.append(ack)
        return ack

    def write_answer(self, text: str) -> None:
        self.ui.find("/student/exercise/answer").commit(
            text, user=self.instance.user
        )

    @property
    def answer_text(self) -> str:
        return self.ui.find("/student/exercise/answer").text


class IntelligentDemon:
    """The §4 "intelligent demon": auto-generated help requests.

    "This is typically initiated either by a direct request sent by a
    student or by an automatic message generated by an intelligent demon."

    The demon watches a student environment and fires a (buffered) help
    request at the teacher when the student looks stuck: many parameter
    changes without ever writing an answer — thrashing the scales is the
    classic signature of not knowing what to do.
    """

    def __init__(
        self,
        student: StudentEnvironment,
        teacher_id: str,
        *,
        fiddle_threshold: int = 8,
    ):
        if fiddle_threshold <= 0:
            raise ValueError("fiddle_threshold must be positive")
        self.student = student
        self.teacher_id = teacher_id
        self.fiddle_threshold = fiddle_threshold
        self.fiddle_count = 0
        self.alerts_sent = 0
        self._armed = True
        for widget in (student._amp, student._freq):
            widget.add_callback(VALUE_CHANGED, self._on_param_change)
        student.ui.find("/student/exercise/answer").add_callback(
            VALUE_CHANGED, self._on_answer
        )

    def _on_param_change(self, _widget: UIObject, event: Any) -> None:
        # Only the student's own fiddling counts, not a coupled teacher's.
        if event.user and event.user != self.student.instance.user:
            return
        if not self._armed:
            return
        self.fiddle_count += 1
        if self.fiddle_count >= self.fiddle_threshold:
            self._alert()

    def _on_answer(self, _widget: UIObject, event: Any) -> None:
        if event.user and event.user != self.student.instance.user:
            return
        # Progress: the student wrote something — reset and re-arm.
        self.fiddle_count = 0
        self._armed = True

    def _alert(self) -> None:
        self._armed = False
        self.fiddle_count = 0
        self.alerts_sent += 1
        self.student.instance.send_command(
            "request_help",
            {
                "message": "automatic: student appears stuck "
                           "(parameter thrashing, no answer)",
                "exercise": "wave",
                "demon": True,
            },
            targets=[self.teacher_id],
        )


def couple_simulation_directly(
    teacher: TeacherEnvironment, student_id: str
) -> None:
    """The costly alternative to indirect coupling (E9): couple the big
    simulation canvases themselves, shipping every regenerated display."""
    teacher.instance.remote_couple(
        (teacher.instance.instance_id, "/teacher/simulation"),
        (student_id, "/student/exercise/simulation"),
    )
