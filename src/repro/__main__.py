"""``python -m repro`` — a short self-contained demonstration.

Runs the three scripted collaboration scenarios (classroom lesson, joint
TORI retrieval, whiteboard design meeting) on the deterministic simulator
and prints their observations, ending with the library's version and a
pointer to the examples and benchmarks.
"""

from __future__ import annotations

import sys

from repro import __version__
from repro.workloads.scenarios import (
    classroom_lesson,
    design_meeting,
    joint_retrieval,
)


def main(argv: list) -> int:
    print(f"repro {__version__} — Zhao & Hoppe (ICDCS 1994) reproduction")
    print("Running the three scripted collaboration scenarios...\n")

    for factory in (classroom_lesson, joint_retrieval, design_meeting):
        report = factory()
        print(f"== {report.name} ==")
        print(f"  phases   : {len(report.phases)} "
              f"({', '.join(report.phases[:4])}, ...)")
        for key, value in report.observations.items():
            print(f"  {key:28s}: {value}")
        print(f"  traffic  : {report.messages} messages, "
              f"{report.bytes} bytes, {report.duration:.3f}s simulated\n")

    print("More: examples/*.py for walkthroughs, "
          "`pytest benchmarks/ --benchmark-only` for the paper's tables.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
