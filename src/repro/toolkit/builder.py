"""Declarative UI builder.

The CENTER toolbox "provides an interactive builder for users who are not
experienced programmers" (§1).  We reproduce the builder's *output side*: a
declarative specification format from which whole widget trees are
instantiated, plus the inverse operation (a tree describes itself back into
a spec).  RemoteCopy and destructive merging (§3.3) use the same format to
materialize complex UI objects in a receiving application instance.

A spec is a plain dict::

    {
        "type": "form",
        "name": "query",
        "state": {"title": "Query"},          # optional attribute overrides
        "children": [ {...}, ... ],            # optional
    }
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from repro.errors import BuilderError
from repro.toolkit.widget import UIObject
from repro.toolkit.widgets.registry import widget_class

_ALLOWED_KEYS = {"type", "name", "state", "children"}


def validate_spec(spec: Mapping[str, Any], *, _path: str = "") -> None:
    """Raise :class:`BuilderError` if *spec* is malformed.

    Checks key names, types, widget-type existence and sibling-name
    uniqueness for the whole nested spec.
    """
    where = _path or "<root>"
    if not isinstance(spec, Mapping):
        raise BuilderError(f"{where}: spec must be a mapping, got {type(spec).__name__}")
    unknown = set(spec) - _ALLOWED_KEYS
    if unknown:
        raise BuilderError(f"{where}: unknown spec keys {sorted(unknown)}")
    for key in ("type", "name"):
        if key not in spec:
            raise BuilderError(f"{where}: spec is missing required key {key!r}")
        if not isinstance(spec[key], str) or not spec[key]:
            raise BuilderError(f"{where}: {key!r} must be a non-empty string")
    widget_class(spec["type"])  # raises BuilderError on unknown type
    state = spec.get("state", {})
    if not isinstance(state, Mapping):
        raise BuilderError(f"{where}: 'state' must be a mapping")
    children = spec.get("children", [])
    if not isinstance(children, (list, tuple)):
        raise BuilderError(f"{where}: 'children' must be a list")
    seen: set = set()
    for child in children:
        if not isinstance(child, Mapping) or "name" not in child:
            raise BuilderError(f"{where}: malformed child spec")
        if child["name"] in seen:
            raise BuilderError(
                f"{where}: duplicate child name {child['name']!r}"
            )
        seen.add(child["name"])
        validate_spec(child, _path=f"{where}/{child['name']}")


def build(spec: Mapping[str, Any], parent: Optional[UIObject] = None) -> UIObject:
    """Instantiate the widget tree described by *spec*.

    The spec is validated first; the returned widget is attached to
    *parent* when given.
    """
    validate_spec(spec)
    return _build_unchecked(spec, parent)


def _build_unchecked(spec: Mapping[str, Any], parent: Optional[UIObject]) -> UIObject:
    cls = widget_class(spec["type"])
    widget = cls(spec["name"], parent=parent)
    state = spec.get("state", {})
    if state:
        widget.set_state(state)
    for child_spec in spec.get("children", []):
        _build_unchecked(child_spec, widget)
    return widget


def to_spec(widget: UIObject, *, full_state: bool = False) -> Dict[str, Any]:
    """Describe *widget*'s subtree as a builder spec (inverse of :func:`build`).

    With the default *full_state=False* only attributes differing from the
    type defaults are included, producing compact round-trippable specs.
    """
    cls = type(widget)
    if full_state:
        state = widget.state()
    else:
        defaults = cls.ATTRIBUTES.defaults()
        state = {
            name: value
            for name, value in widget.state().items()
            if defaults.get(name) != value
        }
    spec: Dict[str, Any] = {"type": cls.TYPE_NAME, "name": widget.name}
    if state:
        spec["state"] = state
    children: List[Dict[str, Any]] = [
        to_spec(child, full_state=full_state) for child in widget.children
    ]
    if children:
        spec["children"] = children
    return spec


def clone(widget: UIObject, name: Optional[str] = None,
          parent: Optional[UIObject] = None) -> UIObject:
    """Deep-copy a widget subtree (full state), optionally renaming the root."""
    spec = to_spec(widget, full_state=True)
    if name is not None:
        spec["name"] = name
    return build(spec, parent)
