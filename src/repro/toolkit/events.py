"""Event and callback machinery of the CENTER-like toolkit.

The paper's synchronization unit is the *high-level callback event*: "A
primitive UI object ... encapsulates low-level events and provides high-level
interactive techniques" (§3), and "most events are high-level callback events
of UI objects" (§3.2).

An :class:`Event` is a small serializable record:  event type (``activate``,
``value-changed``, …), the source object's pathname, a parameter dict, the
user who produced it, and a sequence number.  Events are exactly what the
central server broadcasts to coupled objects for multiple execution.

:class:`CallbackRegistry` maps event types to ordered lists of callables on
one widget.  Callbacks receive ``(widget, event)``.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.toolkit.attributes import json_safe

# Well-known event types; widgets may define more.
ACTIVATE = "activate"                  # button press, menu entry chosen
VALUE_CHANGED = "value_changed"        # text committed, scale moved, ...
SELECTION_CHANGED = "selection_changed"
ATTRIBUTE_CHANGED = "attribute_changed"  # any attribute set (syntactic)
FOCUS_IN = "focus_in"
FOCUS_OUT = "focus_out"
KEY_PRESS = "key_press"                # fine-grained (used by experiments)
POINTER_MOTION = "pointer_motion"      # fine-grained (used by experiments)
DRAW = "draw"                          # canvas stroke committed
DESTROYED = "destroyed"
CHILD_ADDED = "child_added"
CHILD_REMOVED = "child_removed"

#: Event types the toolkit considers *fine-grained*: they fire at input-device
#: rate.  The paper notes floor-control locking "might become costly if the
#: events were fine-grained, such as cursor movements or the typing of single
#: characters" — experiment E5 quantifies this.
FINE_GRAINED_EVENTS = frozenset({KEY_PRESS, POINTER_MOTION})

_event_counter = itertools.count(1)


def _next_event_seq() -> int:
    return next(_event_counter)


@dataclass(frozen=True)
class Event:
    """One high-level (or, for experiments, fine-grained) UI event.

    Events are immutable and JSON-serializable so they can be packed,
    shipped to the server, broadcast, and re-executed remotely (§3.2).
    """

    type: str
    source_path: str
    params: Mapping[str, Any] = field(default_factory=dict)
    user: str = ""
    instance_id: str = ""
    seq: int = field(default_factory=_next_event_seq)

    def __post_init__(self) -> None:
        if not json_safe(dict(self.params)):
            raise ValueError(
                f"event params must be JSON-serializable, got {self.params!r}"
            )

    @property
    def is_fine_grained(self) -> bool:
        return self.type in FINE_GRAINED_EVENTS

    @property
    def global_source(self) -> Tuple[str, str]:
        """The paper's global object id: ``<instance-id, pathname>``."""
        return (self.instance_id, self.source_path)

    def to_wire(self) -> Dict[str, Any]:
        """Serialize for transmission ("this event packed with some
        parameters is sent to the server", §3.2)."""
        return {
            "type": self.type,
            "source_path": self.source_path,
            "params": dict(self.params),
            "user": self.user,
            "instance_id": self.instance_id,
            "seq": self.seq,
        }

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "Event":
        """Deserialize an event received from the server."""
        return cls(
            type=payload["type"],
            source_path=payload["source_path"],
            params=dict(payload.get("params", {})),
            user=payload.get("user", ""),
            instance_id=payload.get("instance_id", ""),
            seq=payload.get("seq", 0),
        )

    def retargeted(self, source_path: str, instance_id: str) -> "Event":
        """A copy of this event as if it occurred on another object.

        Used during multiple execution: the server broadcasts the original
        event and each receiving instance re-executes it on its own coupled
        object, whose pathname generally differs.
        """
        return Event(
            type=self.type,
            source_path=source_path,
            params=dict(self.params),
            user=self.user,
            instance_id=instance_id,
            seq=self.seq,
        )


Callback = Callable[["object", Event], None]
"""A widget callback; receives (widget, event)."""


class CallbackRegistry:
    """Ordered callback lists per event type for one widget.

    Matches Motif's ``XtAddCallback`` model: multiple callbacks per reason,
    executed in registration order.
    """

    def __init__(self) -> None:
        self._callbacks: Dict[str, List[Callback]] = {}

    def add(self, event_type: str, callback: Callback) -> None:
        """Register *callback* for *event_type* (appended, may repeat)."""
        self._callbacks.setdefault(event_type, []).append(callback)

    def remove(self, event_type: str, callback: Callback) -> bool:
        """Remove one registration of *callback*; return whether found."""
        callbacks = self._callbacks.get(event_type)
        if not callbacks:
            return False
        try:
            callbacks.remove(callback)
        except ValueError:
            return False
        if not callbacks:
            del self._callbacks[event_type]
        return True

    def clear(self, event_type: Optional[str] = None) -> None:
        """Drop all callbacks, or all callbacks for one event type."""
        if event_type is None:
            self._callbacks.clear()
        else:
            self._callbacks.pop(event_type, None)

    def get(self, event_type: str) -> Tuple[Callback, ...]:
        return tuple(self._callbacks.get(event_type, ()))

    def event_types(self) -> Tuple[str, ...]:
        return tuple(self._callbacks)

    def invoke(self, widget: object, event: Event) -> int:
        """Execute all callbacks registered for the event's type.

        Returns the number of callbacks executed.  Callback exceptions
        propagate: the toolkit treats a raising callback as an application
        bug, consistent with Motif.
        """
        count = 0
        for callback in tuple(self._callbacks.get(event.type, ())):
            callback(widget, event)
            count += 1
        return count

    def __len__(self) -> int:
        return sum(len(cbs) for cbs in self._callbacks.values())


class EventTrace:
    """A bounded in-memory log of events, used by tests and experiments.

    Application instances keep a trace of executed events so experiments can
    assert ordering and measure replay cost (E6).  The ring buffer holds
    the most recent *capacity* events (``maxlen`` is an accepted alias,
    matching :class:`collections.deque`); older entries are evicted and
    counted in :attr:`dropped`, so long-running instances never grow the
    trace without bound.
    """

    def __init__(
        self, capacity: Optional[int] = None, *, maxlen: Optional[int] = None
    ):
        if capacity is not None and maxlen is not None:
            raise ValueError("pass capacity or maxlen, not both")
        if capacity is None:
            capacity = maxlen if maxlen is not None else 100_000
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._events: Deque[Event] = deque(maxlen=capacity)
        self._dropped = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def record(self, event: Event) -> None:
        if len(self._events) == self._capacity:
            self._dropped += 1
        self._events.append(event)

    def events(self, event_type: Optional[str] = None) -> List[Event]:
        if event_type is None:
            return list(self._events)
        return [e for e in self._events if e.type == event_type]

    @property
    def dropped(self) -> int:
        """Number of events discarded due to the capacity bound."""
        return self._dropped

    def stats(self) -> Dict[str, int]:
        """Occupancy summary for ``Session.trace_stats()``."""
        return {
            "events": len(self._events),
            "capacity": self._capacity,
            "dropped": self._dropped,
        }

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterable[Event]:
        return iter(list(self._events))
