"""Widget-tree utilities: path algebra, subtree state, structure signatures.

The coupling layer manipulates whole *complex UI objects* (subtrees): it
copies their state (§3.1), compares their structure (§3.3) and rebuilds
them remotely (RemoteCopy, destructive merging).  The helpers here give
those operations a single vocabulary:

* **relative paths** — a component's position inside its complex object,
  e.g. ``"fields/name"`` inside ``/app/query`` for ``/app/query/fields/name``;
* **subtree state** — a mapping of relative path -> relevant attribute dict;
* **structure signature** — a hashable shape summary used by the flexible
  matching heuristics.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.errors import PathError
from repro.toolkit.widget import PATH_SEPARATOR, UIObject


def join_path(*parts: str) -> str:
    """Join path components, collapsing empty parts and extra separators."""
    pieces: List[str] = []
    absolute = bool(parts) and parts[0].startswith(PATH_SEPARATOR)
    for part in parts:
        pieces.extend(p for p in part.split(PATH_SEPARATOR) if p)
    joined = PATH_SEPARATOR.join(pieces)
    return (PATH_SEPARATOR + joined) if absolute else joined


def split_path(pathname: str) -> Tuple[str, ...]:
    """Path components of *pathname*, ignoring leading/trailing separators."""
    return tuple(p for p in pathname.split(PATH_SEPARATOR) if p)


def is_ancestor_path(ancestor: str, descendant: str) -> bool:
    """True if *ancestor* is a (non-strict) prefix path of *descendant*."""
    a, d = split_path(ancestor), split_path(descendant)
    return len(a) <= len(d) and d[: len(a)] == a


def relative_path(root: UIObject, widget: UIObject) -> str:
    """The path of *widget* relative to *root* ("" when identical)."""
    parts: List[str] = []
    node: Optional[UIObject] = widget
    while node is not None and node is not root:
        parts.append(node.name)
        node = node.parent
    if node is None:
        raise PathError(
            f"{widget.pathname} is not inside {root.pathname}"
        )
    return PATH_SEPARATOR.join(reversed(parts))


def subtree_widgets(root: UIObject) -> Iterator[Tuple[str, UIObject]]:
    """Yield ``(relative_path, widget)`` for the whole subtree, pre-order.

    The root itself is yielded with relative path ``""``.
    """
    for widget in root.walk():
        yield relative_path(root, widget), widget


def subtree_state(root: UIObject, *, relevant_only: bool = True) -> Dict[str, Dict[str, Any]]:
    """Relative-path -> attribute-dict mapping for a complex UI object.

    With *relevant_only* (the default) only coupling-relevant attributes are
    included — this is exactly the payload of CopyFrom/CopyTo (§3.1).
    """
    result: Dict[str, Dict[str, Any]] = {}
    for rel, widget in subtree_widgets(root):
        result[rel] = (
            widget.relevant_state() if relevant_only else widget.state()
        )
    return result


def subtree_state_since(
    root: UIObject, baseline: int, *, relevant_only: bool = True
) -> Dict[str, Dict[str, Any]]:
    """The delta counterpart of :func:`subtree_state`.

    Includes only attributes written after global state clock *baseline*
    (see :func:`repro.toolkit.widget.state_clock`); widgets with no such
    writes are omitted entirely, so an idle subtree yields ``{}``.
    """
    result: Dict[str, Dict[str, Any]] = {}
    for rel, widget in subtree_widgets(root):
        changed = widget.changed_since(baseline)
        if relevant_only and changed:
            relevant = type(widget).ATTRIBUTES.relevant_names()
            changed = {
                name: value
                for name, value in changed.items()
                if name in relevant
            }
        if changed:
            result[rel] = changed
    return result


def apply_subtree_state(
    root: UIObject,
    state: Mapping[str, Mapping[str, Any]],
    *,
    strict: bool = False,
) -> List[str]:
    """Apply a :func:`subtree_state` mapping onto *root*'s subtree.

    Returns the relative paths that were applied.  Paths missing from the
    tree are skipped unless *strict*, in which case :class:`PathError` is
    raised — destructive merging handles structural differences instead.
    """
    applied: List[str] = []
    for rel, values in state.items():
        try:
            widget = root.find(rel) if rel else root
        except PathError:
            if strict:
                raise
            continue
        widget.set_state(values)
        applied.append(rel)
    return applied


def structure_signature(root: UIObject) -> Tuple:
    """A hashable summary of a subtree's shape: (type, child signatures).

    Two subtrees with equal signatures are structurally identical up to
    widget *names* (names deliberately excluded: s-compatibility is about a
    one-to-one mapping of components, not equal naming).
    """
    return (
        root.TYPE_NAME,
        tuple(structure_signature(child) for child in root.children),
    )


def tree_size(root: UIObject) -> int:
    """Number of widgets in the subtree."""
    return sum(1 for _ in root.walk())


def tree_depth(root: UIObject) -> int:
    """Depth of the subtree (a leaf has depth 1)."""
    if not root.children:
        return 1
    return 1 + max(tree_depth(child) for child in root.children)


def format_tree(root: UIObject, *, show_state: bool = False, indent: str = "  ") -> str:
    """Human-readable rendering of a widget tree, for debugging and docs."""
    lines: List[str] = []

    def emit(node: UIObject, depth: int) -> None:
        suffix = ""
        if show_state:
            relevant = node.relevant_state()
            if relevant:
                suffix = "  " + repr(relevant)
        lines.append(f"{indent * depth}{node.name} <{node.TYPE_NAME}>{suffix}")
        for child in node.children:
            emit(child, depth + 1)

    emit(root, 0)
    return "\n".join(lines)
