"""Container widgets: forms, row-columns, frames, paned windows.

Containers are the toolkit's *complex UI objects* (§3): hierarchically
structured collections of primitive objects.  They have few attributes of
their own; their identity for coupling purposes lies in their structure,
which is what structural compatibility (§3.3) compares.
"""

from __future__ import annotations

from repro.toolkit.attributes import Attribute, of_type, one_of, positive
from repro.toolkit.widget import BASE_ATTRIBUTES, UIObject
from repro.toolkit.widgets.registry import register_widget


@register_widget
class Form(UIObject):
    """A free-layout container (Motif XmForm).

    The canonical complex UI object: the paper's TORI application couples
    whole *query forms* and *result forms*.
    """

    TYPE_NAME = "form"
    ATTRIBUTES = BASE_ATTRIBUTES.extended(
        [
            Attribute(
                "title",
                "",
                relevant=True,
                validator=of_type(str),
                doc="form caption, shared when forms are coupled",
            ),
            Attribute(
                "border", "etched", validator=one_of("none", "etched", "raised")
            ),
        ]
    )


@register_widget
class RowColumn(UIObject):
    """A container laying children out in rows or columns (XmRowColumn)."""

    TYPE_NAME = "rowcolumn"
    ATTRIBUTES = BASE_ATTRIBUTES.extended(
        [
            Attribute(
                "orientation",
                "vertical",
                validator=one_of("vertical", "horizontal"),
                doc="packing direction; cosmetic, hence not relevant",
            ),
            Attribute("spacing", 1, validator=of_type(int)),
        ]
    )


@register_widget
class Frame(UIObject):
    """A decorated single-child container (XmFrame)."""

    TYPE_NAME = "frame"
    ATTRIBUTES = BASE_ATTRIBUTES.extended(
        [
            Attribute(
                "label",
                "",
                relevant=True,
                validator=of_type(str),
                doc="frame caption, shared when coupled",
            ),
        ]
    )


@register_widget
class PanedWindow(UIObject):
    """A container with user-adjustable sashes (XmPanedWindow)."""

    TYPE_NAME = "panedwindow"
    ATTRIBUTES = BASE_ATTRIBUTES.extended(
        [
            Attribute(
                "sash_positions",
                [],
                validator=of_type(list),
                doc="per-user pane sizing; never shared",
            ),
            Attribute("min_pane_size", 1, validator=positive),
        ]
    )


@register_widget
class Shell(UIObject):
    """A top-level window (the root of an application's widget tree)."""

    TYPE_NAME = "shell"
    ATTRIBUTES = BASE_ATTRIBUTES.extended(
        [
            Attribute(
                "title",
                "",
                relevant=True,
                validator=of_type(str),
                doc="window title",
            ),
            Attribute("iconified", False, validator=of_type(bool)),
        ]
    )
