"""Scale (slider) widget.

A scale demonstrates a numeric coupled value and is used by the classroom
application as a *parameter field*: experiment E9 couples small scales
instead of the expensive simulation display they drive ("indirect
coupling", §4).
"""

from __future__ import annotations

from typing import Tuple

from repro.toolkit.attributes import Attribute, of_type
from repro.toolkit.events import POINTER_MOTION, VALUE_CHANGED, Event
from repro.toolkit.widget import BASE_ATTRIBUTES, UIObject
from repro.toolkit.widgets.registry import register_widget


@register_widget
class Scale(UIObject):
    """A bounded numeric slider (XmScale).

    ``value_changed`` is the high-level commit (drag released);
    ``pointer_motion`` is the fine-grained drag event used by the lock
    granularity experiment.
    """

    TYPE_NAME = "scale"
    ATTRIBUTES = BASE_ATTRIBUTES.extended(
        [
            Attribute("label", "", relevant=True, validator=of_type(str)),
            Attribute(
                "value",
                0,
                relevant=True,
                validator=of_type(int, float),
                doc="current position, shared when coupled",
            ),
            Attribute("minimum", 0, validator=of_type(int, float)),
            Attribute("maximum", 100, validator=of_type(int, float)),
        ]
    )
    EMITS = (VALUE_CHANGED, POINTER_MOTION)

    def _feedback_attributes(self, event: Event) -> Tuple[str, ...]:
        if event.type in (VALUE_CHANGED, POINTER_MOTION):
            return ("value",)
        return ()

    def _builtin_feedback(self, event: Event) -> None:
        if "value" in event.params:
            value = event.params["value"]
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                self._state["value"] = self._clamp(value)

    def _clamp(self, value: float) -> float:
        return max(self._state["minimum"], min(self._state["maximum"], value))

    def drag_to(self, value: float, user: str = "") -> Event:
        """Fine-grained drag motion to *value* (not yet committed)."""
        return self.fire(POINTER_MOTION, user=user, value=value)

    def set_value(self, value: float, user: str = "") -> Event:
        """Commit *value* (the high-level event)."""
        return self.fire(VALUE_CHANGED, user=user, value=value)

    @property
    def value(self) -> float:
        return self._state["value"]
