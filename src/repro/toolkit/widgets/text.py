"""Text widgets: labels, single-line fields and multi-line areas.

Text fields are the paper's running example for relevant attributes: "two
text input fields may have different size and fonts, but just share the same
content" (§3.1).  They also expose *fine-grained* per-keystroke events
(:data:`~repro.toolkit.events.KEY_PRESS`) next to the high-level
``value_changed`` commit event, which experiment E5 contrasts.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.toolkit.attributes import Attribute, of_type, non_negative
from repro.toolkit.events import (
    FOCUS_IN,
    FOCUS_OUT,
    KEY_PRESS,
    VALUE_CHANGED,
    Event,
)
from repro.toolkit.widget import BASE_ATTRIBUTES, UIObject
from repro.toolkit.widgets.registry import register_widget


@register_widget
class Label(UIObject):
    """A static text label (XmLabel)."""

    TYPE_NAME = "label"
    ATTRIBUTES = BASE_ATTRIBUTES.extended(
        [
            Attribute(
                "text",
                "",
                relevant=True,
                validator=of_type(str),
                doc="displayed text, shared when coupled",
            ),
            Attribute("alignment", "left", validator=of_type(str)),
        ]
    )

    @property
    def text(self) -> str:
        return str(self._state["text"])


@register_widget
class TextField(UIObject):
    """A single-line text input (XmTextField).

    High-level event: ``value_changed`` when the user commits (Return or
    focus-out).  Fine-grained event: ``key_press`` per keystroke, whose
    built-in feedback edits the buffer; coupling per-keystroke is possible
    but costly (§3.2), which experiment E5 measures.
    """

    TYPE_NAME = "textfield"
    ATTRIBUTES = BASE_ATTRIBUTES.extended(
        [
            Attribute(
                "value",
                "",
                relevant=True,
                validator=of_type(str),
                doc="the field's content, shared when coupled",
            ),
            Attribute("cursor", 0, validator=non_negative, doc="caret column"),
            Attribute("max_length", 0, validator=non_negative, doc="0 = unlimited"),
            Attribute("editable", True, validator=of_type(bool)),
        ]
    )
    EMITS = (VALUE_CHANGED, KEY_PRESS, FOCUS_IN, FOCUS_OUT)

    def _feedback_attributes(self, event: Event) -> Tuple[str, ...]:
        if event.type in (VALUE_CHANGED, KEY_PRESS):
            return ("value", "cursor")
        return ()

    def _builtin_feedback(self, event: Event) -> None:
        if event.type == VALUE_CHANGED:
            if "value" in event.params:
                self._state["value"] = str(event.params["value"])
                self._state["cursor"] = len(self._state["value"])
        elif event.type == KEY_PRESS:
            self._apply_keystroke(event.params.get("key", ""))

    def _apply_keystroke(self, key: str) -> None:
        value: str = self._state["value"]
        cursor: int = min(self._state["cursor"], len(value))
        if key == "BackSpace":
            if cursor > 0:
                self._state["value"] = value[: cursor - 1] + value[cursor:]
                self._state["cursor"] = cursor - 1
        elif key == "Delete":
            self._state["value"] = value[:cursor] + value[cursor + 1 :]
        elif key == "Home":
            self._state["cursor"] = 0
        elif key == "End":
            self._state["cursor"] = len(value)
        elif key == "Left":
            self._state["cursor"] = max(0, cursor - 1)
        elif key == "Right":
            self._state["cursor"] = min(len(value), cursor + 1)
        elif len(key) == 1:
            limit = self._state["max_length"]
            if limit and len(value) >= limit:
                return
            self._state["value"] = value[:cursor] + key + value[cursor:]
            self._state["cursor"] = cursor + 1

    # Convenience interaction API ---------------------------------------

    @property
    def value(self) -> str:
        return str(self._state["value"])

    def commit(self, value: str, user: str = "") -> Event:
        """Commit a whole new value (the high-level event)."""
        return self.fire(VALUE_CHANGED, user=user, value=value)

    def type_key(self, key: str, user: str = "") -> Event:
        """Press one key (the fine-grained event)."""
        return self.fire(KEY_PRESS, user=user, key=key)

    def type_text(self, text: str, user: str = "") -> List[Event]:
        """Type *text* one keystroke at a time (fine-grained)."""
        return [self.type_key(char, user=user) for char in text]


@register_widget
class TextArea(UIObject):
    """A multi-line text editor (XmText in multi-line mode).

    The value is a list of lines; ``value_changed`` commits the whole
    buffer, ``key_press`` performs line-local editing.
    """

    TYPE_NAME = "textarea"
    ATTRIBUTES = BASE_ATTRIBUTES.extended(
        [
            Attribute(
                "lines",
                [""],
                relevant=True,
                validator=of_type(list),
                doc="buffer content as a list of lines, shared when coupled",
            ),
            Attribute("row", 0, validator=non_negative),
            Attribute("column", 0, validator=non_negative),
            Attribute("editable", True, validator=of_type(bool)),
        ]
    )
    EMITS = (VALUE_CHANGED, KEY_PRESS)

    def _feedback_attributes(self, event: Event) -> Tuple[str, ...]:
        if event.type in (VALUE_CHANGED, KEY_PRESS):
            return ("lines", "row", "column")
        return ()

    def _builtin_feedback(self, event: Event) -> None:
        if event.type == VALUE_CHANGED and "lines" in event.params:
            lines = [str(line) for line in event.params["lines"]]
            self._state["lines"] = lines or [""]
            self._state["row"] = len(self._state["lines"]) - 1
            self._state["column"] = len(self._state["lines"][-1])
        elif event.type == KEY_PRESS:
            self._apply_keystroke(event.params.get("key", ""))

    def _apply_keystroke(self, key: str) -> None:
        lines: List[str] = list(self._state["lines"])
        row = min(self._state["row"], len(lines) - 1)
        col = min(self._state["column"], len(lines[row]))
        if key == "Return":
            lines[row : row + 1] = [lines[row][:col], lines[row][col:]]
            row, col = row + 1, 0
        elif key == "BackSpace":
            if col > 0:
                lines[row] = lines[row][: col - 1] + lines[row][col:]
                col -= 1
            elif row > 0:
                col = len(lines[row - 1])
                lines[row - 1 : row + 1] = [lines[row - 1] + lines[row]]
                row -= 1
        elif len(key) == 1:
            lines[row] = lines[row][:col] + key + lines[row][col:]
            col += 1
        self._state["lines"] = lines
        self._state["row"] = row
        self._state["column"] = col

    @property
    def text(self) -> str:
        return "\n".join(self._state["lines"])

    def commit(self, text: str, user: str = "") -> Event:
        """Commit a whole new buffer (the high-level event)."""
        return self.fire(VALUE_CHANGED, user=user, lines=text.split("\n"))
