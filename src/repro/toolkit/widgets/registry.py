"""Registry of widget types by symbolic type name.

Destructive merging (§3.3) and :func:`RemoteCopy` must *create* widgets of a
given type in a receiving application instance, and the declarative builder
instantiates widgets from type names; both resolve classes here.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple, Type

from repro.errors import BuilderError
from repro.toolkit.widget import UIObject

_REGISTRY: Dict[str, Type[UIObject]] = {}


def register_widget(cls: Type[UIObject]) -> Type[UIObject]:
    """Class decorator adding *cls* to the type registry under its
    :attr:`~repro.toolkit.widget.UIObject.TYPE_NAME`."""
    type_name = cls.TYPE_NAME
    existing = _REGISTRY.get(type_name)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"widget type name {type_name!r} already registered by "
            f"{existing.__name__}"
        )
    _REGISTRY[type_name] = cls
    return cls


def widget_class(type_name: str) -> Type[UIObject]:
    """Return the widget class registered under *type_name*."""
    try:
        return _REGISTRY[type_name]
    except KeyError:
        raise BuilderError(f"unknown widget type {type_name!r}") from None


def known_types() -> Tuple[str, ...]:
    """All registered type names, sorted."""
    return tuple(sorted(_REGISTRY))


def iter_types() -> Iterator[Tuple[str, Type[UIObject]]]:
    return iter(sorted(_REGISTRY.items()))
