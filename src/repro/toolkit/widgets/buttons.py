"""Button widgets: push buttons and toggles.

The paper names "pressing of push button object" as a canonical action of
the application-independent protocol (§3.4); the toggle demonstrates
built-in feedback that must be undoable on lock failure (§3.2).
"""

from __future__ import annotations

from typing import Tuple

from repro.toolkit.attributes import Attribute, of_type
from repro.toolkit.events import ACTIVATE, VALUE_CHANGED, Event
from repro.toolkit.widget import BASE_ATTRIBUTES, UIObject
from repro.toolkit.widgets.registry import register_widget


@register_widget
class PushButton(UIObject):
    """A momentary push button (XmPushButton).

    ``activate`` has no persistent built-in feedback; all its semantics live
    in application callbacks, which is what multiple execution re-runs
    remotely.
    """

    TYPE_NAME = "pushbutton"
    ATTRIBUTES = BASE_ATTRIBUTES.extended(
        [
            Attribute(
                "label",
                "",
                relevant=True,
                validator=of_type(str),
                doc="button text, shared when coupled",
            ),
            Attribute(
                "armed",
                False,
                validator=of_type(bool),
                doc="transient pressed-look; cosmetic",
            ),
        ]
    )
    EMITS = (ACTIVATE,)

    def press(self, user: str = "") -> Event:
        """Simulate a user pressing the button."""
        return self.fire(ACTIVATE, user=user)


@register_widget
class ToggleButton(UIObject):
    """A two-state toggle (XmToggleButton).

    The built-in feedback of ``activate`` flips the ``set`` attribute; it is
    exactly the kind of "syntactic built-in feedback" the multiple-execution
    algorithm must undo when the couple-group lock cannot be acquired.
    """

    TYPE_NAME = "togglebutton"
    ATTRIBUTES = BASE_ATTRIBUTES.extended(
        [
            Attribute("label", "", relevant=True, validator=of_type(str)),
            Attribute(
                "set",
                False,
                relevant=True,
                validator=of_type(bool),
                doc="toggle state, shared when coupled",
            ),
        ]
    )
    EMITS = (ACTIVATE, VALUE_CHANGED)

    def _feedback_attributes(self, event: Event) -> Tuple[str, ...]:
        if event.type in (ACTIVATE, VALUE_CHANGED):
            return ("set",)
        return ()

    def _builtin_feedback(self, event: Event) -> None:
        if event.type == ACTIVATE:
            self._state["set"] = not self._state["set"]
        elif event.type == VALUE_CHANGED and "value" in event.params:
            self._state["set"] = bool(event.params["value"])

    def toggle(self, user: str = "") -> Event:
        """Simulate the user clicking the toggle."""
        return self.fire(ACTIVATE, user=user)

    def set_value(self, value: bool, user: str = "") -> Event:
        """Set the toggle to an explicit state through the event path."""
        return self.fire(VALUE_CHANGED, user=user, value=bool(value))

    @property
    def value(self) -> bool:
        return bool(self._state["set"])
