"""Canvas widget: a drawing surface holding committed strokes.

Models the electronic-blackboard surface of the COSOFT classroom (the Xerox
Liveboard) and the group drawing baseline (GroupDesign-style editors the
paper compares against).  A *stroke* is the high-level unit: the paper's
synchronization-by-action operates on committed strokes, not on pointer
motion, although ``pointer_motion`` is available for the fine-grained
experiments.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.toolkit.attributes import Attribute, of_type
from repro.toolkit.events import DRAW, POINTER_MOTION, VALUE_CHANGED, Event
from repro.toolkit.widget import BASE_ATTRIBUTES, UIObject
from repro.toolkit.widgets.registry import register_widget


class _StrokeUndo:
    """Undo record for one appended stroke.

    A snapshot-based rollback is wrong for append semantics: if a remote
    stroke lands between this widget's optimistic feedback and a floor
    denial, restoring the snapshot would also erase the remote stroke, and
    the compare-and-swap variant would keep the denied stroke.  The
    correct inverse of "append stroke S" is "remove one occurrence of S".
    """

    __slots__ = ("widget", "stroke", "written")

    def __init__(self, widget: "Canvas", stroke: Dict[str, Any]):
        self.widget = widget
        self.stroke = stroke
        self.written: Dict[str, Any] = {}

    @property
    def saved(self) -> Dict[str, Any]:  # UndoRecord-compatible surface
        return {"strokes": None}

    def rollback(self) -> None:
        strokes = list(self.widget._state["strokes"])
        for index in range(len(strokes) - 1, -1, -1):
            if strokes[index] == self.stroke:
                del strokes[index]
                break
        self.widget._state["strokes"] = strokes


def _stroke_list(value: object):
    if not isinstance(value, (list, tuple)):
        return f"expected a list of strokes, got {type(value).__name__}"
    for stroke in value:
        if not isinstance(stroke, dict):
            return "each stroke must be a dict"
        if "points" not in stroke:
            return "each stroke needs a 'points' key"
    return None


@register_widget
class Canvas(UIObject):
    """A 2-D drawing surface whose content is a list of strokes.

    Each stroke is ``{"points": [[x, y], ...], "color": str, "width": n}``.
    ``draw`` appends a stroke (built-in feedback); ``value_changed``
    replaces the whole drawing (used by clear/undo operations).
    """

    TYPE_NAME = "canvas"
    ATTRIBUTES = BASE_ATTRIBUTES.extended(
        [
            Attribute(
                "strokes",
                [],
                relevant=True,
                validator=_stroke_list,
                doc="committed strokes, shared when coupled",
            ),
            Attribute("grid", False, validator=of_type(bool)),
            Attribute("zoom", 1.0, validator=of_type(int, float)),
        ]
    )
    EMITS = (DRAW, VALUE_CHANGED, POINTER_MOTION)

    def _feedback_attributes(self, event: Event) -> Tuple[str, ...]:
        if event.type in (DRAW, VALUE_CHANGED):
            return ("strokes",)
        return ()

    def apply_feedback(self, event: Event):
        if event.type == DRAW and "stroke" in event.params:
            stroke = dict(event.params["stroke"])
            self._builtin_feedback(event)
            return _StrokeUndo(self, stroke)
        return super().apply_feedback(event)

    def _builtin_feedback(self, event: Event) -> None:
        if event.type == DRAW and "stroke" in event.params:
            strokes = list(self._state["strokes"])
            strokes.append(dict(event.params["stroke"]))
            self._state["strokes"] = strokes
        elif event.type == VALUE_CHANGED and "strokes" in event.params:
            self._state["strokes"] = [dict(s) for s in event.params["strokes"]]

    # Convenience interaction API ---------------------------------------

    def draw_stroke(
        self,
        points: List[Tuple[float, float]],
        color: str = "black",
        width: int = 1,
        user: str = "",
    ) -> Event:
        """Commit one stroke (the high-level event)."""
        stroke: Dict[str, Any] = {
            "points": [[float(x), float(y)] for x, y in points],
            "color": color,
            "width": int(width),
        }
        return self.fire(DRAW, user=user, stroke=stroke)

    def clear(self, user: str = "") -> Event:
        """Erase the whole drawing."""
        return self.fire(VALUE_CHANGED, user=user, strokes=[])

    @property
    def strokes(self) -> List[Dict[str, Any]]:
        return [dict(s) for s in self._state["strokes"]]

    @property
    def stroke_count(self) -> int:
        return len(self._state["strokes"])
