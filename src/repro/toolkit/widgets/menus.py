"""Menu widgets: pulldown menus and option menus.

TORI's cooperative version synchronizes "menus for selecting comparison
operators" and "menus for selecting a certain view" (§4); the
:class:`OptionMenu` models exactly that: a list of entries with one current
selection, where the selection is the coupling-relevant attribute.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.toolkit.attributes import Attribute, of_type, string_list
from repro.toolkit.events import ACTIVATE, SELECTION_CHANGED, Event
from repro.toolkit.widget import BASE_ATTRIBUTES, UIObject
from repro.toolkit.widgets.registry import register_widget


@register_widget
class Menu(UIObject):
    """A pulldown menu: a container of :class:`MenuEntry` children."""

    TYPE_NAME = "menu"
    ATTRIBUTES = BASE_ATTRIBUTES.extended(
        [
            Attribute("label", "", relevant=True, validator=of_type(str)),
            Attribute("popped_up", False, validator=of_type(bool)),
        ]
    )

    def entry(self, name: str) -> "MenuEntry":
        child = self.child(name)
        if not isinstance(child, MenuEntry):
            raise TypeError(f"{child.pathname!r} is not a MenuEntry")
        return child


@register_widget
class MenuEntry(UIObject):
    """One selectable entry inside a :class:`Menu`."""

    TYPE_NAME = "menuentry"
    ATTRIBUTES = BASE_ATTRIBUTES.extended(
        [
            Attribute("label", "", relevant=True, validator=of_type(str)),
            Attribute(
                "accelerator", "", validator=of_type(str), doc="keyboard shortcut"
            ),
        ]
    )
    EMITS = (ACTIVATE,)

    def choose(self, user: str = "") -> Event:
        """Simulate the user selecting this entry."""
        return self.fire(ACTIVATE, user=user)


@register_widget
class OptionMenu(UIObject):
    """A menu with one current choice (XmOptionMenu / combo box).

    ``selection`` is relevant (shared when coupled); the entry list itself
    is relevant too, so heterogeneous instances can be checked for having
    comparable choices.
    """

    TYPE_NAME = "optionmenu"
    ATTRIBUTES = BASE_ATTRIBUTES.extended(
        [
            Attribute("label", "", relevant=True, validator=of_type(str)),
            Attribute(
                "entries",
                [],
                relevant=True,
                validator=string_list,
                doc="available choices",
            ),
            Attribute(
                "selection",
                "",
                relevant=True,
                validator=of_type(str),
                doc="current choice, shared when coupled",
            ),
        ]
    )
    EMITS = (SELECTION_CHANGED,)

    def _feedback_attributes(self, event: Event) -> Tuple[str, ...]:
        if event.type == SELECTION_CHANGED:
            return ("selection",)
        return ()

    def _builtin_feedback(self, event: Event) -> None:
        if event.type == SELECTION_CHANGED and "selection" in event.params:
            self._state["selection"] = str(event.params["selection"])

    def select(self, choice: str, user: str = "") -> Event:
        """Simulate the user picking *choice* from the menu."""
        return self.fire(SELECTION_CHANGED, user=user, selection=choice)

    @property
    def selection(self) -> str:
        return str(self._state["selection"])

    @property
    def entries(self) -> List[str]:
        return list(self._state["entries"])
