"""List widget: a scrollable list with single or multiple selection."""

from __future__ import annotations

from typing import List, Tuple

from repro.toolkit.attributes import Attribute, of_type, one_of, string_list
from repro.toolkit.events import SELECTION_CHANGED, VALUE_CHANGED, Event
from repro.toolkit.widget import BASE_ATTRIBUTES, UIObject
from repro.toolkit.widgets.registry import register_widget


def _int_list(value: object):
    if not isinstance(value, (list, tuple)):
        return f"expected a list of ints, got {type(value).__name__}"
    for item in value:
        if not isinstance(item, int) or isinstance(item, bool):
            return f"expected a list of ints, found {type(item).__name__}"
    return None


@register_widget
class ListBox(UIObject):
    """A scrollable list of string items (XmList).

    Both ``items`` and ``selected`` (indices) are relevant: coupling two
    list boxes shares the visible data and the selection, which is how the
    paper's TORI result forms share retrieved rows.
    """

    TYPE_NAME = "listbox"
    ATTRIBUTES = BASE_ATTRIBUTES.extended(
        [
            Attribute(
                "items",
                [],
                relevant=True,
                validator=string_list,
                doc="displayed rows, shared when coupled",
            ),
            Attribute(
                "selected",
                [],
                relevant=True,
                validator=_int_list,
                doc="selected row indices, shared when coupled",
            ),
            Attribute(
                "selection_policy",
                "single",
                validator=one_of("single", "multiple"),
            ),
            Attribute("top_item", 0, validator=of_type(int), doc="scroll position"),
        ]
    )
    EMITS = (SELECTION_CHANGED, VALUE_CHANGED)

    def _feedback_attributes(self, event: Event) -> Tuple[str, ...]:
        if event.type == SELECTION_CHANGED:
            return ("selected",)
        if event.type == VALUE_CHANGED:
            return ("items", "selected")
        return ()

    def _builtin_feedback(self, event: Event) -> None:
        if event.type == SELECTION_CHANGED and "indices" in event.params:
            indices = [int(i) for i in event.params["indices"]]
            upper = len(self._state["items"])
            indices = [i for i in indices if 0 <= i < upper]
            if self._state["selection_policy"] == "single":
                indices = indices[:1]
            self._state["selected"] = indices
        elif event.type == VALUE_CHANGED and "items" in event.params:
            self._state["items"] = [str(i) for i in event.params["items"]]
            self._state["selected"] = []

    # Convenience interaction API ---------------------------------------

    def select_indices(self, indices: List[int], user: str = "") -> Event:
        """Simulate the user selecting rows by index."""
        return self.fire(SELECTION_CHANGED, user=user, indices=list(indices))

    def replace_items(self, items: List[str], user: str = "") -> Event:
        """Replace the whole item list through the event path."""
        return self.fire(VALUE_CHANGED, user=user, items=list(items))

    @property
    def items(self) -> List[str]:
        return list(self._state["items"])

    @property
    def selected_items(self) -> List[str]:
        items = self._state["items"]
        return [items[i] for i in self._state["selected"] if 0 <= i < len(items)]
