"""Concrete widget types of the CENTER-like toolkit.

Importing this package registers every built-in widget type with the
type registry, so :func:`~repro.toolkit.widgets.registry.widget_class`
resolves them by name.
"""

from repro.toolkit.widgets.registry import (
    iter_types,
    known_types,
    register_widget,
    widget_class,
)
from repro.toolkit.widgets.containers import (
    Form,
    Frame,
    PanedWindow,
    RowColumn,
    Shell,
)
from repro.toolkit.widgets.buttons import PushButton, ToggleButton
from repro.toolkit.widgets.text import Label, TextArea, TextField
from repro.toolkit.widgets.menus import Menu, MenuEntry, OptionMenu
from repro.toolkit.widgets.lists import ListBox
from repro.toolkit.widgets.radio import RadioButton, RadioGroup
from repro.toolkit.widgets.scale import Scale
from repro.toolkit.widgets.canvas import Canvas

__all__ = [
    "Canvas",
    "Form",
    "Frame",
    "Label",
    "ListBox",
    "Menu",
    "MenuEntry",
    "OptionMenu",
    "PanedWindow",
    "PushButton",
    "RadioButton",
    "RadioGroup",
    "RowColumn",
    "Scale",
    "Shell",
    "TextArea",
    "TextField",
    "ToggleButton",
    "iter_types",
    "known_types",
    "register_widget",
    "widget_class",
]
