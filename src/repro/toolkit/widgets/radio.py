"""Radio group: mutually exclusive choices with container-level feedback.

A :class:`RadioGroup` holds :class:`RadioButton` children; selecting one
deselects the others.  The interesting part for the coupling layer is that
the *built-in feedback spans the container*: the high-level event occurs
on the group (one ``selection_changed`` with the chosen child's name)
rather than as N per-button events — the same granularity argument as
§3.2's keystrokes-vs-commits, applied to structure.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.toolkit.attributes import Attribute, of_type
from repro.toolkit.events import SELECTION_CHANGED, Event
from repro.toolkit.widget import BASE_ATTRIBUTES, UIObject
from repro.toolkit.widgets.registry import register_widget


@register_widget
class RadioButton(UIObject):
    """One choice inside a :class:`RadioGroup` (XmToggleButton in a
    radio-behaviour row-column)."""

    TYPE_NAME = "radiobutton"
    ATTRIBUTES = BASE_ATTRIBUTES.extended(
        [
            Attribute("label", "", relevant=True, validator=of_type(str)),
            Attribute(
                "set",
                False,
                validator=of_type(bool),
                doc="whether this is the chosen entry; derived from the "
                    "group's selection, hence not independently relevant",
            ),
        ]
    )

    def choose(self, user: str = "") -> Optional[Event]:
        """Select this button (fires on the *group*, see class docs)."""
        group = self.parent
        if isinstance(group, RadioGroup):
            return group.select(self.name, user=user)
        # Orphan radio button: degrade to a local toggle.
        self.set("set", True)
        return None


@register_widget
class RadioGroup(UIObject):
    """A container enforcing one-of-N selection among its radio children."""

    TYPE_NAME = "radiogroup"
    ATTRIBUTES = BASE_ATTRIBUTES.extended(
        [
            Attribute("label", "", relevant=True, validator=of_type(str)),
            Attribute(
                "selection",
                "",
                relevant=True,
                validator=of_type(str),
                doc="name of the chosen child; shared when coupled",
            ),
        ]
    )
    EMITS = (SELECTION_CHANGED,)

    def _feedback_attributes(self, event: Event) -> Tuple[str, ...]:
        if event.type == SELECTION_CHANGED:
            return ("selection",)
        return ()

    def _builtin_feedback(self, event: Event) -> None:
        if event.type != SELECTION_CHANGED or "selection" not in event.params:
            return
        choice = str(event.params["selection"])
        self._state["selection"] = choice
        self._sync_children(choice)

    def _sync_children(self, choice: str) -> None:
        for child in self.children:
            if isinstance(child, RadioButton):
                child.set("set", child.name == choice, quiet=True)

    def apply_feedback(self, event: Event):
        """Extend the base undo with the children's derived flags.

        Rolling back the group's ``selection`` must also restore the
        children, so the returned record re-syncs them on rollback.
        """
        record = super().apply_feedback(event)
        return _RadioUndo(record, self)

    # Convenience interaction API ---------------------------------------

    def select(self, choice: str, user: str = "") -> Event:
        """Choose the child named *choice* through the event path."""
        if choice not in self.child_names:
            raise ValueError(
                f"radio group {self.name!r} has no entry {choice!r}"
            )
        return self.fire(SELECTION_CHANGED, user=user, selection=choice)

    @property
    def selection(self) -> str:
        return str(self._state["selection"])

    @property
    def chosen(self) -> Optional[RadioButton]:
        name = self.selection
        if name and name in self.child_names:
            child = self.child(name)
            if isinstance(child, RadioButton):
                return child
        return None

    def entries(self) -> List[str]:
        return [
            child.name
            for child in self.children
            if isinstance(child, RadioButton)
        ]


class _RadioUndo:
    """UndoRecord wrapper that re-derives the children after a rollback."""

    __slots__ = ("inner", "group")

    def __init__(self, inner, group: RadioGroup):
        self.inner = inner
        self.group = group

    @property
    def saved(self):
        return self.inner.saved

    @property
    def written(self):
        return self.inner.written

    def rollback(self) -> None:
        self.inner.rollback()
        self.group._sync_children(str(self.group._state.get("selection", "")))
