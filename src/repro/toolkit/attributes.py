"""Attribute model of the CENTER-like toolkit.

The paper (§3) defines the *state* of a UI object as "the set of
attribute-value pairs of this object", where "the set of attributes of an
object only depends on the object type".  Synchronization shares only the
*relevant* attributes: "Relevant attributes are those that have to be shared
(i.e. made identical) when instances of these types are coupled."

This module provides:

* :class:`Attribute` — the declaration of one attribute of a widget type
  (name, default, relevance for coupling, optional validator).
* :class:`AttributeSet` — an ordered, immutable collection of attribute
  declarations belonging to a widget type, supporting inheritance merging.
* Small reusable validators (:func:`of_type`, :func:`one_of`,
  :func:`non_negative`, …).

Attribute *values* must be JSON-serializable (str, int, float, bool, None,
and lists/dicts thereof) because UI state travels over the wire when objects
are copied or coupled.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, Iterable, Iterator, Mapping, Optional, Tuple

from repro.errors import AttributeValidationError, UnknownAttributeError

Validator = Callable[[Any], Optional[str]]
"""A validator returns ``None`` when the value is acceptable, or a string
describing why it is not."""

_JSON_SCALARS = (str, int, float, bool, type(None))


def json_safe(value: Any) -> bool:
    """Return True if *value* is composed only of JSON-serializable parts."""
    if isinstance(value, _JSON_SCALARS):
        return True
    if isinstance(value, (list, tuple)):
        return all(json_safe(item) for item in value)
    if isinstance(value, dict):
        return all(
            isinstance(key, str) and json_safe(item) for key, item in value.items()
        )
    return False


# ---------------------------------------------------------------------------
# Reusable validators
# ---------------------------------------------------------------------------

def of_type(*types: type) -> Validator:
    """Accept values that are instances of any of *types*."""

    def check(value: Any) -> Optional[str]:
        if isinstance(value, tuple(types)):
            return None
        names = ", ".join(t.__name__ for t in types)
        return f"expected {names}, got {type(value).__name__}"

    return check


def one_of(*choices: Any) -> Validator:
    """Accept only values from the given finite set of *choices*."""

    allowed = tuple(choices)

    def check(value: Any) -> Optional[str]:
        if value in allowed:
            return None
        return f"expected one of {allowed!r}"

    return check


def non_negative(value: Any) -> Optional[str]:
    """Accept ints/floats >= 0."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return f"expected a number, got {type(value).__name__}"
    if value < 0:
        return "expected a non-negative number"
    return None


def positive(value: Any) -> Optional[str]:
    """Accept ints/floats > 0."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return f"expected a number, got {type(value).__name__}"
    if value <= 0:
        return "expected a positive number"
    return None


def string_list(value: Any) -> Optional[str]:
    """Accept a list (or tuple) of strings."""
    if not isinstance(value, (list, tuple)):
        return f"expected a list of strings, got {type(value).__name__}"
    for item in value:
        if not isinstance(item, str):
            return f"expected a list of strings, found {type(item).__name__}"
    return None


def any_value(_value: Any) -> Optional[str]:
    """Accept anything JSON-safe (the JSON check happens separately)."""
    return None


# ---------------------------------------------------------------------------
# Attribute declaration
# ---------------------------------------------------------------------------

class Attribute:
    """Declaration of a single widget attribute.

    Parameters
    ----------
    name:
        The attribute name (an identifier, unique within the widget type).
    default:
        The value a fresh widget starts with.  Mutable defaults are deep
        copied per widget instance.
    relevant:
        Whether this attribute participates in coupling/copying (paper §3.1:
        "a set of relevant attributes is predefined for any type of couplable
        UI objects").  Geometry attributes such as width or font are
        typically *not* relevant — "two text input fields may have different
        size and fonts, but just share the same content".
    validator:
        Optional value check applied on every set.
    doc:
        Human-readable description.
    """

    __slots__ = ("name", "default", "relevant", "validator", "doc")

    def __init__(
        self,
        name: str,
        default: Any = None,
        *,
        relevant: bool = False,
        validator: Optional[Validator] = None,
        doc: str = "",
    ):
        if not name.isidentifier():
            raise ValueError(f"attribute name must be an identifier: {name!r}")
        if not json_safe(default):
            raise ValueError(
                f"default for attribute {name!r} is not JSON-serializable"
            )
        self.name = name
        self.default = default
        self.relevant = relevant
        self.validator = validator
        self.doc = doc

    def fresh_default(self) -> Any:
        """Return a per-instance copy of the default value."""
        if isinstance(self.default, (list, dict)):
            return copy.deepcopy(self.default)
        return self.default

    def validate(self, value: Any) -> None:
        """Raise :class:`AttributeValidationError` if *value* is unacceptable."""
        if not json_safe(value):
            raise AttributeValidationError(
                self.name, value, "value is not JSON-serializable"
            )
        if self.validator is not None:
            reason = self.validator(value)
            if reason is not None:
                raise AttributeValidationError(self.name, value, reason)

    def __repr__(self) -> str:
        flag = "relevant" if self.relevant else "irrelevant"
        return f"Attribute({self.name!r}, default={self.default!r}, {flag})"


class AttributeSet:
    """Ordered, immutable set of :class:`Attribute` declarations.

    Widget classes build one ``AttributeSet`` per type; subclasses extend the
    parent type's set with :meth:`extended`.
    """

    def __init__(self, attributes: Iterable[Attribute] = ()):
        self._by_name: Dict[str, Attribute] = {}
        for attribute in attributes:
            if attribute.name in self._by_name:
                raise ValueError(f"duplicate attribute {attribute.name!r}")
            self._by_name[attribute.name] = attribute

    def extended(self, attributes: Iterable[Attribute]) -> "AttributeSet":
        """Return a new set with *attributes* added (overriding same names)."""
        merged = dict(self._by_name)
        for attribute in attributes:
            merged[attribute.name] = attribute
        return AttributeSet(merged.values())

    def names(self) -> Tuple[str, ...]:
        return tuple(self._by_name)

    def relevant_names(self) -> Tuple[str, ...]:
        """Names of the attributes shared when objects are coupled."""
        return tuple(a.name for a in self._by_name.values() if a.relevant)

    def get(self, name: str, widget_type: str = "<unknown>") -> Attribute:
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownAttributeError(widget_type, name) from None

    def defaults(self) -> Dict[str, Any]:
        """A fresh name -> default-value mapping for a new widget."""
        return {name: attr.fresh_default() for name, attr in self._by_name.items()}

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)

    def __repr__(self) -> str:
        return f"AttributeSet({list(self._by_name)})"


def diff_states(old: Mapping[str, Any], new: Mapping[str, Any]) -> Dict[str, Any]:
    """Return the attributes of *new* that differ from *old*.

    Used to ship minimal state updates over the wire.
    """
    return {
        name: value
        for name, value in new.items()
        if name not in old or old[name] != value
    }
