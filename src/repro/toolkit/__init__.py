"""CENTER-like UI toolkit: the substrate the coupling mechanism extends.

The paper implements its communication mechanism "as a set of primitives
that extend an OSF/Motif-based UI toolbox library" called CENTER.  This
package is the reproduction's stand-in: a headless widget toolkit with the
same architecture — typed widgets with attribute sets, hierarchical
pathnames, and an event/callback mechanism — which is all the coupling
layer needs.
"""

from repro.toolkit.attributes import Attribute, AttributeSet, diff_states
from repro.toolkit.builder import build, clone, to_spec, validate_spec
from repro.toolkit.events import (
    ACTIVATE,
    ATTRIBUTE_CHANGED,
    DESTROYED,
    DRAW,
    FINE_GRAINED_EVENTS,
    KEY_PRESS,
    POINTER_MOTION,
    SELECTION_CHANGED,
    VALUE_CHANGED,
    Callback,
    CallbackRegistry,
    Event,
    EventTrace,
)
from repro.toolkit.tree import (
    apply_subtree_state,
    format_tree,
    join_path,
    relative_path,
    split_path,
    structure_signature,
    subtree_state,
    subtree_widgets,
    tree_depth,
    tree_size,
)
from repro.toolkit.widget import UIObject, UndoRecord
from repro.toolkit.widgets import (
    Canvas,
    Form,
    Frame,
    Label,
    ListBox,
    Menu,
    MenuEntry,
    OptionMenu,
    PanedWindow,
    PushButton,
    RowColumn,
    Scale,
    Shell,
    TextArea,
    TextField,
    ToggleButton,
    known_types,
    widget_class,
)
from repro.toolkit.render import FrameBuffer, render

__all__ = [
    "ACTIVATE",
    "ATTRIBUTE_CHANGED",
    "Attribute",
    "AttributeSet",
    "Callback",
    "CallbackRegistry",
    "Canvas",
    "DESTROYED",
    "DRAW",
    "Event",
    "EventTrace",
    "FINE_GRAINED_EVENTS",
    "Form",
    "Frame",
    "FrameBuffer",
    "KEY_PRESS",
    "Label",
    "ListBox",
    "Menu",
    "MenuEntry",
    "OptionMenu",
    "POINTER_MOTION",
    "PanedWindow",
    "PushButton",
    "RowColumn",
    "SELECTION_CHANGED",
    "Scale",
    "Shell",
    "TextArea",
    "TextField",
    "ToggleButton",
    "UIObject",
    "UndoRecord",
    "VALUE_CHANGED",
    "apply_subtree_state",
    "build",
    "clone",
    "diff_states",
    "format_tree",
    "join_path",
    "known_types",
    "relative_path",
    "render",
    "split_path",
    "structure_signature",
    "subtree_state",
    "subtree_widgets",
    "to_spec",
    "tree_depth",
    "tree_size",
    "validate_spec",
    "widget_class",
]
