"""Base widget (primitive UI object) of the CENTER-like toolkit.

Terminology follows the paper (§3):

* A **primitive UI object** is an instance of a pre-defined UI object type
  (form, button, menu, …).  "It encapsulates low-level events and provides
  high-level interactive techniques.  A set of attributes is defined for
  each type of UI objects."
* UI objects "are organized as a tree along the parent/child relationship".
  The hierarchical name of an object is its **pathname**; globally an object
  is the pair ``<instance-id, pathname>``.
* A **complex UI object** is a hierarchically structured collection of
  primitive UI objects — in this toolkit simply a widget with children.
* The **state** of a UI object is the set of attribute-value pairs.

Every widget owns a :class:`~repro.toolkit.events.CallbackRegistry`.  When a
high-level event fires on a widget that belongs to an
:class:`~repro.core.instance.ApplicationInstance`, the event is routed
through the instance runtime, which performs the paper's multiple-execution
algorithm (lock the couple group, broadcast, re-execute).  Widgets outside
any instance execute events purely locally, which is exactly how a
single-user application behaves — the paper's point that multi-user
interfaces are developed "in very much the same way as single-user
applications".
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.errors import (
    DestroyedWidgetError,
    DuplicateChildError,
    PathError,
)
from repro.toolkit.attributes import Attribute, AttributeSet, of_type
from repro.toolkit.events import (
    ATTRIBUTE_CHANGED,
    CHILD_ADDED,
    CHILD_REMOVED,
    DESTROYED,
    Callback,
    CallbackRegistry,
    Event,
)

PATH_SEPARATOR = "/"

#: Global monotonic attribute-write counter.  Every attribute write on any
#: widget advances it; delta state sync (docs/PERF.md) remembers the clock
#: value of the last acknowledged transfer and later ships only attributes
#: written after that baseline.
_STATE_CLOCK = 0


def state_clock() -> int:
    """The current value of the global attribute-write counter."""
    return _STATE_CLOCK


def _tick() -> int:
    global _STATE_CLOCK
    _STATE_CLOCK += 1
    return _STATE_CLOCK


class _VersionedState(dict):
    """A widget's state dict, stamping a clock version on every write.

    All write paths funnel through ``__setitem__`` — :meth:`UIObject.set`,
    bulk ``set_state``, widget types' built-in feedback assigning
    ``self._state[...]`` directly, and :meth:`UndoRecord.rollback` — so
    dirty tracking cannot miss a mutation.
    """

    __slots__ = ("versions",)

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        stamp = _tick()
        #: attribute name -> clock value of its last write.
        self.versions: Dict[str, int] = {name: stamp for name in self}

    def __setitem__(self, key: str, value: Any) -> None:
        super().__setitem__(key, value)
        self.versions[key] = _tick()

    def __delitem__(self, key: str) -> None:
        super().__delitem__(key)
        self.versions.pop(key, None)

    def update(self, *args: Any, **kwargs: Any) -> None:  # type: ignore[override]
        for key, value in dict(*args, **kwargs).items():
            self[key] = value

    def setdefault(self, key: str, default: Any = None) -> Any:
        if key not in self:
            self[key] = default
        return self[key]

    def pop(self, key: str, *default: Any) -> Any:
        self.versions.pop(key, None)
        return super().pop(key, *default)

    def clear(self) -> None:
        super().clear()
        self.versions.clear()

#: Attributes shared by every widget type.  Geometry and cosmetics are not
#: relevant for coupling (§3.1: objects may differ in size and fonts yet
#: "share the same content").
BASE_ATTRIBUTES = AttributeSet(
    [
        Attribute("x", 0, validator=of_type(int, float), doc="left edge"),
        Attribute("y", 0, validator=of_type(int, float), doc="top edge"),
        Attribute("width", 10, validator=of_type(int, float), doc="widget width"),
        Attribute("height", 1, validator=of_type(int, float), doc="widget height"),
        Attribute("visible", True, validator=of_type(bool), doc="mapped on screen"),
        Attribute(
            "sensitive",
            True,
            validator=of_type(bool),
            doc="accepts user input (Motif XmNsensitive)",
        ),
        Attribute("foreground", "black", validator=of_type(str)),
        Attribute("background", "white", validator=of_type(str)),
        Attribute("font", "fixed", validator=of_type(str)),
        Attribute("tooltip", "", validator=of_type(str)),
    ]
)


class UndoRecord:
    """Snapshot of attribute values overwritten by one event application.

    The multiple-execution algorithm needs to "undo syntactic built-in
    feedback of the event" when lock acquisition fails (§3.2); applying an
    event therefore returns an :class:`UndoRecord` that can roll the widget
    back.

    Rollback is *conditional* per attribute: between applying the optimistic
    feedback and learning that the floor was denied, a remote event may have
    legitimately overwritten the attribute — the undo must not clobber that.
    An attribute is restored only while it still holds the value the
    feedback wrote (compare-and-swap semantics).
    """

    __slots__ = ("widget", "saved", "written")

    def __init__(self, widget: "UIObject", saved: Dict[str, Any]):
        self.widget = widget
        self.saved = saved
        #: Values the feedback wrote; filled in by ``apply_feedback``.
        self.written: Dict[str, Any] = {}

    def capture_written(self) -> None:
        """Record the post-feedback values of the saved attributes."""
        self.written = {
            name: self.widget._state.get(name) for name in self.saved
        }

    def rollback(self) -> None:
        """Undo the feedback (bypassing event dispatch).

        Attributes that no longer hold the value the feedback wrote were
        overwritten by a newer (remote) event and are left alone.
        """
        for name, value in self.saved.items():
            if name in self.written and (
                self.widget._state.get(name) != self.written[name]
            ):
                continue
            self.widget._state[name] = value

    def __repr__(self) -> str:
        return f"UndoRecord({self.widget.pathname!r}, {sorted(self.saved)})"


class UIObject:
    """A primitive UI object; containers make it a complex one.

    Parameters
    ----------
    name:
        The widget's name, unique among its siblings.  Must not contain
        ``/`` (the pathname separator).
    parent:
        Optional parent container; the widget is appended to its children.
    attrs:
        Initial attribute values overriding the type defaults.
    """

    #: Symbolic type name; the compatibility machinery (§3.3) keys on it.
    TYPE_NAME = "uiobject"

    #: The attribute declarations of this widget type.  Subclasses extend.
    ATTRIBUTES: AttributeSet = BASE_ATTRIBUTES

    #: Event types this widget can emit from user interaction; used by the
    #: builder and by workload generators to produce realistic events.
    EMITS: Tuple[str, ...] = ()

    def __init__(
        self,
        name: str,
        parent: Optional["UIObject"] = None,
        **attrs: Any,
    ):
        if not name or PATH_SEPARATOR in name:
            raise ValueError(
                f"widget name must be non-empty and contain no '/': {name!r}"
            )
        self.name = name
        self._state: _VersionedState = _VersionedState(
            type(self).ATTRIBUTES.defaults()
        )
        self._parent: Optional[UIObject] = None
        self._children: Dict[str, UIObject] = {}
        self._callbacks = CallbackRegistry()
        self._destroyed = False
        #: Set by the floor-control lock protocol; independent of the
        #: application-level ``sensitive`` attribute.
        self._floor_locked = False
        #: Back-pointer to the owning ApplicationInstance runtime (if any).
        self._runtime: Optional[Any] = None

        for attr_name, value in attrs.items():
            self.set(attr_name, value, quiet=True)
        if parent is not None:
            parent.add_child(self)

    # ------------------------------------------------------------------
    # Identity and tree structure
    # ------------------------------------------------------------------

    @property
    def parent(self) -> Optional["UIObject"]:
        return self._parent

    @property
    def children(self) -> Tuple["UIObject", ...]:
        """Children in insertion order."""
        return tuple(self._children.values())

    @property
    def child_names(self) -> Tuple[str, ...]:
        return tuple(self._children)

    @property
    def destroyed(self) -> bool:
        return self._destroyed

    @property
    def pathname(self) -> str:
        """Hierarchical name from the root, e.g. ``/app/form/ok``."""
        parts: List[str] = []
        node: Optional[UIObject] = self
        while node is not None:
            parts.append(node.name)
            node = node._parent
        return PATH_SEPARATOR + PATH_SEPARATOR.join(reversed(parts))

    @property
    def root(self) -> "UIObject":
        node = self
        while node._parent is not None:
            node = node._parent
        return node

    @property
    def runtime(self) -> Optional[Any]:
        """The owning ApplicationInstance runtime, inherited from the root."""
        return self.root._runtime

    def attach_runtime(self, runtime: Any) -> None:
        """Bind this (root) widget tree to an application-instance runtime."""
        if self._parent is not None:
            raise ValueError("only a root widget can be attached to a runtime")
        self._runtime = runtime

    def _check_alive(self) -> None:
        if self._destroyed:
            raise DestroyedWidgetError(
                f"widget {self.name!r} has been destroyed"
            )

    def add_child(self, child: "UIObject") -> "UIObject":
        """Append *child* to this container."""
        self._check_alive()
        child._check_alive()
        if child._parent is not None:
            raise ValueError(
                f"widget {child.name!r} already has parent {child._parent.name!r}"
            )
        if child.name in self._children:
            raise DuplicateChildError(
                f"{self.pathname!r} already has a child named {child.name!r}"
            )
        self._children[child.name] = child
        child._parent = self
        self._local_event(CHILD_ADDED, child=child.name)
        return child

    def remove_child(self, child: "UIObject") -> None:
        """Detach *child* (without destroying it)."""
        if self._children.get(child.name) is not child:
            raise PathError(child.name)
        del self._children[child.name]
        child._parent = None
        self._local_event(CHILD_REMOVED, child=child.name)

    def child(self, name: str) -> "UIObject":
        """Return the direct child called *name*."""
        try:
            return self._children[name]
        except KeyError:
            raise PathError(f"{self.pathname}{PATH_SEPARATOR}{name}") from None

    def find(self, pathname: str) -> "UIObject":
        """Resolve *pathname* relative to this widget.

        Absolute paths (starting with ``/``) are resolved from this widget's
        root; the first component must then match the root's name.
        """
        if pathname.startswith(PATH_SEPARATOR):
            node = self.root
            parts = [p for p in pathname.split(PATH_SEPARATOR) if p]
            if not parts or parts[0] != node.name:
                raise PathError(pathname)
            parts = parts[1:]
        else:
            node = self
            parts = [p for p in pathname.split(PATH_SEPARATOR) if p]
        for part in parts:
            try:
                node = node._children[part]
            except KeyError:
                raise PathError(pathname) from None
        return node

    def walk(self) -> Iterator["UIObject"]:
        """Pre-order traversal of this widget's subtree (self included)."""
        stack: List[UIObject] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def destroy(self) -> None:
        """Destroy this widget and its whole subtree.

        Fires :data:`DESTROYED` on every destroyed widget (bottom-up) so the
        coupling runtime can apply "the decoupling algorithm ... when a UI
        object is destroyed" (§3.2).
        """
        if self._destroyed:
            return
        for child in self.children:
            child.destroy()
        # Fire DESTROYED while still attached, so the pathname is intact and
        # the runtime (reached through the root) can run decoupling.
        self._local_event(DESTROYED)
        if self._parent is not None:
            self._parent.remove_child(self)
        self._destroyed = True
        self._callbacks.clear()

    # ------------------------------------------------------------------
    # Attribute state
    # ------------------------------------------------------------------

    def get(self, name: str) -> Any:
        """Return the current value of attribute *name*."""
        type(self).ATTRIBUTES.get(name, self.TYPE_NAME)
        return self._state[name]

    def set(self, name: str, value: Any, *, quiet: bool = False) -> None:
        """Set attribute *name* to *value*.

        Unless *quiet*, an :data:`ATTRIBUTE_CHANGED` event is dispatched
        locally (never through the coupling layer: coupled attribute changes
        travel as state sync or as the high-level event that caused them).
        """
        self._check_alive()
        attribute = type(self).ATTRIBUTES.get(name, self.TYPE_NAME)
        attribute.validate(value)
        old = self._state.get(name)
        if old == value:
            return
        self._state[name] = value
        if not quiet:
            self._local_event(ATTRIBUTE_CHANGED, attribute=name, value=value)

    def state(self) -> Dict[str, Any]:
        """The full attribute-value mapping (a copy)."""
        return dict(self._state)

    def relevant_state(self) -> Dict[str, Any]:
        """Only the coupling-relevant attribute-value pairs (§3.1)."""
        relevant = type(self).ATTRIBUTES.relevant_names()
        return {name: self._state[name] for name in relevant}

    def set_state(self, values: Mapping[str, Any], *, quiet: bool = True) -> None:
        """Bulk-apply attribute values (used by synchronization by state)."""
        for name, value in values.items():
            self.set(name, value, quiet=quiet)

    def attribute_version(self, name: str) -> int:
        """The global clock value of *name*'s last write (0 if never)."""
        return self._state.versions.get(name, 0)

    def changed_since(self, baseline: int) -> Dict[str, Any]:
        """Attribute values written after global clock *baseline*.

        The delta sync protocol calls this with the clock value of the
        last acknowledged transfer; an unchanged widget returns ``{}``.
        """
        versions = self._state.versions
        return {
            name: self._state[name]
            for name, version in versions.items()
            if version > baseline
        }

    @property
    def is_interactive(self) -> bool:
        """Whether the widget currently accepts user input.

        False while the floor-control protocol has the widget locked
        ("Actions on locked objects are disabled", §3.2) or when the
        application made it insensitive.
        """
        return (
            not self._destroyed
            and not self._floor_locked
            and bool(self._state.get("sensitive", True))
        )

    def floor_lock(self) -> None:
        """Disable the widget for the duration of a remote event (§3.2)."""
        self._floor_locked = True

    def floor_unlock(self) -> None:
        """Re-enable the widget after the remote event completed."""
        self._floor_locked = False

    @property
    def floor_locked(self) -> bool:
        return self._floor_locked

    # ------------------------------------------------------------------
    # Events and callbacks
    # ------------------------------------------------------------------

    def add_callback(self, event_type: str, callback: Callback) -> None:
        """Register *callback* for *event_type* (Motif ``XtAddCallback``)."""
        self._callbacks.add(event_type, callback)

    def remove_callback(self, event_type: str, callback: Callback) -> bool:
        return self._callbacks.remove(event_type, callback)

    def callbacks(self, event_type: str) -> Tuple[Callback, ...]:
        return self._callbacks.get(event_type)

    def fire(self, event_type: str, user: str = "", **params: Any) -> Event:
        """Emit a user-level event on this widget.

        If the widget tree belongs to an application instance, the event is
        routed through the coupling runtime (multiple execution over the
        couple group).  Otherwise it is executed locally, single-user style.

        Returns the event object (whose execution may have been vetoed by a
        failed lock; see :meth:`ApplicationInstance.process_local_event`).
        """
        self._check_alive()
        runtime = self.runtime
        event = Event(
            type=event_type,
            source_path=self.pathname,
            params=params,
            user=user,
            instance_id=getattr(runtime, "instance_id", ""),
        )
        if runtime is not None:
            runtime.process_local_event(self, event)
        else:
            self.deliver(event)
        return event

    def deliver(self, event: Event) -> UndoRecord:
        """Apply *event* to this widget: built-in feedback, then callbacks.

        Returns the :class:`UndoRecord` for the built-in feedback so the
        caller (the multiple-execution algorithm) can undo it on lock
        failure.
        """
        self._check_alive()
        undo = self.apply_feedback(event)
        self._callbacks.invoke(self, event)
        return undo

    def run_callbacks(self, event: Event) -> int:
        """Invoke the application callbacks of *event* without re-applying
        built-in feedback; returns the number of callbacks run.  Used by
        the multiple-execution algorithm, which manages feedback itself."""
        self._check_alive()
        return self._callbacks.invoke(self, event)

    def apply_feedback(self, event: Event) -> UndoRecord:
        """Apply only the *syntactic built-in feedback* of *event*.

        The base implementation delegates to :meth:`_builtin_feedback`,
        snapshotting every attribute the widget type declares it may touch
        for this event type, so the change can be rolled back.
        """
        touched = self._feedback_attributes(event)
        saved = {name: self._state[name] for name in touched if name in self._state}
        record = UndoRecord(self, saved)
        self._builtin_feedback(event)
        record.capture_written()
        return record

    # Subclass hooks -----------------------------------------------------

    def _feedback_attributes(self, event: Event) -> Tuple[str, ...]:
        """Attribute names the built-in feedback for *event* may modify."""
        return ()

    def _builtin_feedback(self, event: Event) -> None:
        """Widget-type-specific built-in semantics of *event*.

        E.g. a text field's ``value_changed`` event sets its ``value``
        attribute; a toggle's ``activate`` flips ``set``.
        """

    # Internal ------------------------------------------------------------

    def _local_event(self, event_type: str, **params: Any) -> None:
        """Dispatch a purely local (syntactic) event to callbacks only."""
        if self._destroyed:
            return
        event = Event(
            type=event_type,
            source_path=self.pathname,
            params=params,
            instance_id=getattr(self.runtime, "instance_id", ""),
        )
        self._callbacks.invoke(self, event)
        runtime = self.runtime
        if runtime is not None and event_type == DESTROYED:
            runtime.on_widget_destroyed(self)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def describe(self) -> Dict[str, Any]:
        """A structural description of this widget's subtree.

        Used by the compatibility machinery, the builder (round-tripping)
        and remote copying of complex objects.
        """
        return {
            "type": self.TYPE_NAME,
            "name": self.name,
            "state": self.state(),
            "children": [child.describe() for child in self.children],
        }

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.pathname!r}>"
