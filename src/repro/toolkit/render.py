"""Virtual renderer: paints a widget tree into a character framebuffer.

The coupling layer never depends on rendering — the paper's mechanism works
on attributes and events — but the examples want to *show* two coupled
environments converging, and tests want an end-to-end observable display.
This module provides a minimal headless "display server": each widget is
painted into a 2-D character grid at its (x, y) geometry.

The renderer intentionally resembles what a text-mode X server would show:
buttons as ``[label]``, toggles as ``(x) label``, text fields as
``|content_|`` and so on.  Invisible widgets and widgets with zero area are
skipped.
"""

from __future__ import annotations

from typing import List

from repro.toolkit.widget import UIObject
from repro.toolkit.widgets.buttons import PushButton, ToggleButton
from repro.toolkit.widgets.canvas import Canvas
from repro.toolkit.widgets.lists import ListBox
from repro.toolkit.widgets.menus import MenuEntry, OptionMenu
from repro.toolkit.widgets.scale import Scale
from repro.toolkit.widgets.text import Label, TextArea, TextField


class FrameBuffer:
    """A fixed-size character grid with clipped drawing primitives."""

    def __init__(self, width: int, height: int, fill: str = " "):
        if width <= 0 or height <= 0:
            raise ValueError("framebuffer dimensions must be positive")
        self.width = width
        self.height = height
        self._rows: List[List[str]] = [
            [fill] * width for _ in range(height)
        ]

    def put(self, x: int, y: int, char: str) -> None:
        """Write one character, silently clipping out-of-bounds writes."""
        if 0 <= x < self.width and 0 <= y < self.height and char:
            self._rows[y][x] = char[0]

    def text(self, x: int, y: int, text: str, max_width: int = 0) -> None:
        """Write a string left-to-right from (x, y), clipped."""
        if max_width:
            text = text[:max_width]
        for offset, char in enumerate(text):
            self.put(x + offset, y, char)

    def hline(self, x: int, y: int, length: int, char: str = "-") -> None:
        for offset in range(max(0, length)):
            self.put(x + offset, y, char)

    def vline(self, x: int, y: int, length: int, char: str = "|") -> None:
        for offset in range(max(0, length)):
            self.put(x, y + offset, char)

    def box(self, x: int, y: int, width: int, height: int) -> None:
        """Draw a rectangle outline with + corners."""
        if width < 2 or height < 2:
            return
        self.hline(x + 1, y, width - 2)
        self.hline(x + 1, y + height - 1, width - 2)
        self.vline(x, y + 1, height - 2)
        self.vline(x + width - 1, y + 1, height - 2)
        for corner_x, corner_y in (
            (x, y),
            (x + width - 1, y),
            (x, y + height - 1),
            (x + width - 1, y + height - 1),
        ):
            self.put(corner_x, corner_y, "+")

    def to_string(self) -> str:
        return "\n".join("".join(row).rstrip() for row in self._rows)

    def __str__(self) -> str:  # pragma: no cover - convenience alias
        return self.to_string()


def render(root: UIObject, width: int = 80, height: int = 24) -> str:
    """Render *root*'s widget tree into a string framebuffer."""
    fb = FrameBuffer(width, height)
    _paint(root, fb, 0, 0)
    return fb.to_string()


def _paint(widget: UIObject, fb: FrameBuffer, origin_x: int, origin_y: int) -> None:
    if widget.destroyed or not widget.get("visible"):
        return
    x = origin_x + int(widget.get("x"))
    y = origin_y + int(widget.get("y"))
    _paint_one(widget, fb, x, y)
    for child in widget.children:
        _paint(child, fb, x, y)


def _paint_one(widget: UIObject, fb: FrameBuffer, x: int, y: int) -> None:
    width = int(widget.get("width"))
    if isinstance(widget, Label):
        fb.text(x, y, widget.text, max_width=width or 0)
    elif isinstance(widget, PushButton):
        fb.text(x, y, f"[{widget.get('label')}]")
    elif isinstance(widget, ToggleButton):
        mark = "x" if widget.value else " "
        fb.text(x, y, f"({mark}) {widget.get('label')}")
    elif isinstance(widget, TextField):
        content = widget.value
        usable = max(4, width) - 2
        fb.text(x, y, "|" + content[:usable].ljust(usable, "_") + "|")
    elif isinstance(widget, TextArea):
        for row, line in enumerate(widget.get("lines")):
            fb.text(x, y + row, line, max_width=width or 0)
    elif isinstance(widget, OptionMenu):
        fb.text(x, y, f"{widget.get('label')} <{widget.selection}>")
    elif isinstance(widget, MenuEntry):
        fb.text(x, y, f"- {widget.get('label')}")
    elif isinstance(widget, ListBox):
        selected = set(widget.get("selected"))
        for row, item in enumerate(widget.items):
            marker = ">" if row in selected else " "
            fb.text(x, y + row, f"{marker}{item}", max_width=width or 0)
    elif isinstance(widget, Scale):
        span = max(1, int(widget.get("maximum")) - int(widget.get("minimum")))
        usable = max(6, width) - 2
        knob = int(
            (float(widget.value) - widget.get("minimum")) / span * (usable - 1)
        )
        bar = "".join("#" if i == knob else "-" for i in range(usable))
        fb.text(x, y, "[" + bar + "]")
    elif isinstance(widget, Canvas):
        height = int(widget.get("height")) or 8
        fb.box(x, y, max(2, width), max(2, height))
        for stroke in widget.strokes:
            for px, py in stroke.get("points", []):
                fb.put(x + 1 + int(px), y + 1 + int(py), "*")
    else:
        # Generic container: draw nothing; children paint themselves.
        pass
