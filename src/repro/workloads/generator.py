"""Synthetic user workloads.

The paper's evaluation is experiential; to measure its claims we need
reproducible load.  A workload is a time-ordered list of
:class:`UserAction` records — "user u fires event e with params p on widget
w at time t" — produced by seeded generators that model think time, typing
and tool switching.  The same workload can be replayed against any of the
three architecture harnesses (Table 1) or against the COSOFT runtime
directly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.toolkit import events as toolkit_events


@dataclass(frozen=True)
class UserAction:
    """One scripted user interaction."""

    at: float                 # simulated issue time (seconds)
    user: int                 # user index (0-based)
    path: str                 # widget pathname the event occurs on
    event_type: str           # toolkit event type
    params: Dict[str, Any] = field(default_factory=dict)
    action_id: int = 0        # unique id; harnesses track it through the net

    def with_id(self, action_id: int) -> "UserAction":
        return UserAction(
            at=self.at,
            user=self.user,
            path=self.path,
            event_type=self.event_type,
            params=dict(self.params),
            action_id=action_id,
        )


def assign_ids(actions: Sequence[UserAction]) -> List[UserAction]:
    """Stamp consecutive action ids in time order."""
    ordered = sorted(actions, key=lambda a: (a.at, a.user))
    return [action.with_id(i) for i, action in enumerate(ordered)]


@dataclass
class WorkloadConfig:
    """Parameters of the synthetic editing session."""

    n_users: int = 4
    actions_per_user: int = 25
    mean_think_time: float = 2.0       # seconds between a user's actions
    text_commit_ratio: float = 0.6     # fraction of text commits
    menu_ratio: float = 0.2            # fraction of menu selections
    # remainder: button activations
    words: Tuple[str, ...] = (
        "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"
    )
    menu_choices: Tuple[str, ...] = ("eq", "like", "substring", "one-of")
    seed: int = 42

    def __post_init__(self) -> None:
        if self.n_users <= 0 or self.actions_per_user <= 0:
            raise ValueError("n_users and actions_per_user must be positive")
        if not 0 <= self.text_commit_ratio + self.menu_ratio <= 1:
            raise ValueError("event-ratio mix must fit into [0, 1]")


#: Widget paths of the standard benchmark form (see ``standard_form_spec``).
TEXT_PATH = "/app/form/text"
MENU_PATH = "/app/form/menu"
BUTTON_PATH = "/app/form/button"
SCALE_PATH = "/app/form/scale"
CANVAS_PATH = "/app/board/canvas"


def standard_form_spec() -> Dict[str, Any]:
    """The widget tree every workload user interacts with.

    A small but heterogeneous form: text input, option menu, push button,
    scale and a drawing canvas — one widget per event family the paper
    discusses.
    """
    return {
        "type": "shell",
        "name": "app",
        "state": {"title": "workload"},
        "children": [
            {
                "type": "form",
                "name": "form",
                "children": [
                    {"type": "textfield", "name": "text", "state": {"width": 24}},
                    {
                        "type": "optionmenu",
                        "name": "menu",
                        "state": {"entries": ["eq", "like", "substring", "one-of"]},
                    },
                    {"type": "pushbutton", "name": "button", "state": {"label": "Go"}},
                    {"type": "scale", "name": "scale", "state": {"maximum": 100}},
                ],
            },
            {
                "type": "form",
                "name": "board",
                "children": [
                    {"type": "canvas", "name": "canvas", "state": {"width": 40, "height": 12}},
                ],
            },
        ],
    }


def editing_session(config: WorkloadConfig) -> List[UserAction]:
    """A mixed editing session over the standard form.

    Each user performs ``actions_per_user`` actions with exponential think
    times; the mix of event types follows the configured ratios.
    """
    rng = random.Random(config.seed)
    actions: List[UserAction] = []
    for user in range(config.n_users):
        now = rng.expovariate(1.0 / config.mean_think_time)
        for _ in range(config.actions_per_user):
            roll = rng.random()
            if roll < config.text_commit_ratio:
                value = " ".join(
                    rng.choice(config.words)
                    for _ in range(rng.randint(1, 4))
                )
                actions.append(
                    UserAction(
                        at=now,
                        user=user,
                        path=TEXT_PATH,
                        event_type=toolkit_events.VALUE_CHANGED,
                        params={"value": value},
                    )
                )
            elif roll < config.text_commit_ratio + config.menu_ratio:
                actions.append(
                    UserAction(
                        at=now,
                        user=user,
                        path=MENU_PATH,
                        event_type=toolkit_events.SELECTION_CHANGED,
                        params={"selection": rng.choice(config.menu_choices)},
                    )
                )
            else:
                actions.append(
                    UserAction(
                        at=now,
                        user=user,
                        path=BUTTON_PATH,
                        event_type=toolkit_events.ACTIVATE,
                        params={},
                    )
                )
            now += rng.expovariate(1.0 / config.mean_think_time)
    return assign_ids(actions)


def typing_burst(
    *,
    user: int = 0,
    text: str = "the quick brown fox",
    start: float = 0.0,
    keystroke_interval: float = 0.08,
    path: str = TEXT_PATH,
    fine_grained: bool = True,
) -> List[UserAction]:
    """One user typing *text*.

    With *fine_grained* each keystroke is its own event (the costly case of
    §3.2); otherwise a single high-level commit carries the whole text —
    the two sides of experiment E5.
    """
    if not fine_grained:
        return assign_ids(
            [
                UserAction(
                    at=start,
                    user=user,
                    path=path,
                    event_type=toolkit_events.VALUE_CHANGED,
                    params={"value": text},
                )
            ]
        )
    actions = [
        UserAction(
            at=start + i * keystroke_interval,
            user=user,
            path=path,
            event_type=toolkit_events.KEY_PRESS,
            params={"key": char},
        )
        for i, char in enumerate(text)
    ]
    return assign_ids(actions)


def drawing_session(
    *,
    n_users: int = 2,
    strokes_per_user: int = 20,
    mean_think_time: float = 1.5,
    points_per_stroke: int = 8,
    canvas_size: Tuple[int, int] = (38, 10),
    seed: int = 7,
) -> List[UserAction]:
    """A shared-whiteboard session: each user commits freehand strokes."""
    rng = random.Random(seed)
    actions: List[UserAction] = []
    colors = ("black", "red", "blue", "green")
    for user in range(n_users):
        now = rng.expovariate(1.0 / mean_think_time)
        for _ in range(strokes_per_user):
            x0 = rng.uniform(0, canvas_size[0] - 1)
            y0 = rng.uniform(0, canvas_size[1] - 1)
            points = [[x0, y0]]
            for _ in range(points_per_stroke - 1):
                x0 = min(max(x0 + rng.uniform(-2, 2), 0), canvas_size[0] - 1)
                y0 = min(max(y0 + rng.uniform(-1, 1), 0), canvas_size[1] - 1)
                points.append([round(x0, 1), round(y0, 1)])
            actions.append(
                UserAction(
                    at=now,
                    user=user,
                    path=CANVAS_PATH,
                    event_type=toolkit_events.DRAW,
                    params={
                        "stroke": {
                            "points": points,
                            "color": colors[user % len(colors)],
                            "width": 1,
                        }
                    },
                )
            )
            now += rng.expovariate(1.0 / mean_think_time)
    return assign_ids(actions)


def contention_burst(
    *,
    n_users: int = 4,
    rounds: int = 10,
    spacing: float = 0.0005,
    round_gap: float = 0.5,
    path: str = SCALE_PATH,
    seed: int = 3,
) -> List[UserAction]:
    """Users racing on the *same* coupled object (experiment E10).

    Each round, every user tries to set the shared scale almost
    simultaneously (within *spacing* of each other); the floor-control
    protocol must let exactly one win per overlap window.
    """
    rng = random.Random(seed)
    actions: List[UserAction] = []
    now = round_gap
    for _ in range(rounds):
        order = list(range(n_users))
        rng.shuffle(order)
        for slot, user in enumerate(order):
            actions.append(
                UserAction(
                    at=now + slot * spacing,
                    user=user,
                    path=path,
                    event_type=toolkit_events.VALUE_CHANGED,
                    params={"value": rng.randint(0, 100)},
                )
            )
        now += round_gap
    return assign_ids(actions)
