"""Synthetic workloads: seeded user-session generators and composite
collaboration scenarios."""

from repro.workloads.scenarios import (
    ScenarioReport,
    classroom_lesson,
    design_meeting,
    joint_retrieval,
)
from repro.workloads.generator import (
    BUTTON_PATH,
    CANVAS_PATH,
    MENU_PATH,
    SCALE_PATH,
    TEXT_PATH,
    UserAction,
    WorkloadConfig,
    assign_ids,
    contention_burst,
    drawing_session,
    editing_session,
    standard_form_spec,
    typing_burst,
)

__all__ = [
    "BUTTON_PATH",
    "CANVAS_PATH",
    "MENU_PATH",
    "SCALE_PATH",
    "ScenarioReport",
    "TEXT_PATH",
    "UserAction",
    "WorkloadConfig",
    "classroom_lesson",
    "design_meeting",
    "joint_retrieval",
    "assign_ids",
    "contention_burst",
    "drawing_session",
    "editing_session",
    "standard_form_spec",
    "typing_burst",
]
