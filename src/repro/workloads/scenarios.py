"""Composite workload scenarios: scripted multi-phase sessions.

Where :mod:`repro.workloads.generator` produces homogeneous event streams,
this module scripts the *shapes of collaboration* the paper describes —
lesson flow in a classroom, a joint retrieval session, a design meeting on
a whiteboard — as reusable scenario objects that drive real application
instances and return structured observations.  Tests assert on the
observations; benchmarks time them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.apps.classroom import StudentEnvironment, TeacherEnvironment
from repro.apps.drawing import Whiteboard
from repro.apps.minidb import sample_publications
from repro.apps.tori import ToriApplication
from repro.session import Session


@dataclass
class ScenarioReport:
    """What a scenario run observed."""

    name: str
    phases: List[str] = field(default_factory=list)
    observations: Dict[str, Any] = field(default_factory=dict)
    messages: int = 0
    bytes: int = 0
    duration: float = 0.0

    def note(self, key: str, value: Any) -> None:
        self.observations[key] = value


def classroom_lesson(
    *,
    n_students: int = 3,
    exercises: int = 2,
    seed: int = 5,
) -> ScenarioReport:
    """A full lesson: individual work, help requests, joint sessions.

    Phases:
      1. every student works alone (uncoupled — zero network traffic for
         their parameter fiddling);
      2. some students request help (buffered commands);
      3. the teacher serves each request: inspects the answer, opens a
         joint session, demonstrates, decouples;
      4. final broadcast: the teacher pushes a reference answer to all
         students (CopyTo fan-out).
    """
    rng = random.Random(seed)
    report = ScenarioReport(name="classroom_lesson")
    session = Session(seed=seed)
    teacher = TeacherEnvironment(
        session.create_instance("liveboard", user="teacher",
                                app_type="cosoft-teacher")
    )
    students = [
        StudentEnvironment(
            session.create_instance(f"ws-{i}", user=f"student-{i}",
                                    app_type="cosoft-student")
        )
        for i in range(n_students)
    ]
    session.pump()

    for exercise in range(exercises):
        # Phase 1: individual work, fully local.
        report.phases.append(f"exercise-{exercise}:individual")
        before = session.traffic()["messages"]
        for student in students:
            student.set_parameters(rng.randint(1, 10), rng.randint(1, 8))
            student.write_answer(f"attempt {exercise} by {student.instance.user}")
        solo_messages = session.traffic()["messages"] - before
        report.note(f"exercise{exercise}_solo_messages", solo_messages)

        # Phase 2: a random subset asks for help.
        report.phases.append(f"exercise-{exercise}:help")
        helpers = rng.sample(range(n_students), k=max(1, n_students // 2))
        for index in helpers:
            students[index].request_help(
                f"stuck on exercise {exercise}", "liveboard"
            )
        report.note(f"exercise{exercise}_help_queue",
                    len(teacher.pending_help()))

        # Phase 3: the teacher serves each buffered request.
        report.phases.append(f"exercise-{exercise}:joint-sessions")
        for request in teacher.pending_help():
            student_id = request["student"]
            teacher.inspect_student_work(
                student_id, "/student/exercise/answer", "/teacher/notes"
            )
            teacher.join_session(student_id)
            session.pump()
            teacher.set_parameters(rng.randint(1, 10), rng.randint(1, 8))
            session.pump()
            teacher.leave_session(student_id)
            session.pump()
        teacher.help_requests.clear()

    # Phase 4: push the reference answer everywhere.
    report.phases.append("broadcast-reference")
    teacher.write_note("Reference: A=5, f=3 — watch the crossing points")
    session.pump()
    for student in students:
        teacher.instance.copy_to(
            teacher.ui.find("/teacher/notes"),
            (student.instance.instance_id, "/student/exercise/answer"),
        )
    session.pump()
    report.note(
        "reference_reached_all",
        all(
            "Reference:" in s.answer_text
            for s in students
        ),
    )
    traffic = session.traffic()
    report.messages = traffic["messages"]
    report.bytes = traffic["bytes"]
    report.duration = session.now
    session.close()
    return report


def joint_retrieval(
    *,
    n_participants: int = 3,
    queries: int = 4,
    db_rows: int = 400,
    seed: int = 11,
) -> ScenarioReport:
    """A TORI working session: coupled query forms, alternating drivers."""
    rng = random.Random(seed)
    report = ScenarioReport(name="joint_retrieval")
    session = Session(seed=seed)
    apps = [
        ToriApplication(
            session.create_instance(f"tori-{i}", user=f"analyst-{i}",
                                    app_type="tori"),
            sample_publications(db_rows, seed=seed + i),
        )
        for i in range(n_participants)
    ]
    for i in range(1, n_participants):
        apps[0].make_cooperative(f"tori-{i}")
    session.pump()
    report.phases.append("coupled")

    authors = ("Zhao", "Hoppe", "Ellis", "Stefik", "Greenberg")
    for round_no in range(queries):
        driver = apps[round_no % n_participants]
        driver.set_condition("author", "eq", rng.choice(authors))
        session.pump()
        driver.run_query()
        session.pump()
        report.phases.append(f"query-{round_no}:driver-{driver.instance.user}")
    report.note("queries_per_app", [app.queries_run for app in apps])
    report.note(
        "total_rows_scanned",
        sum(app.database.total_rows_scanned for app in apps),
    )
    report.note(
        "forms_converged",
        len({app.field_value("author").value for app in apps}) == 1,
    )
    traffic = session.traffic()
    report.messages = traffic["messages"]
    report.bytes = traffic["bytes"]
    report.duration = session.now
    session.close()
    return report


def design_meeting(
    *,
    n_participants: int = 4,
    strokes_per_phase: int = 6,
    seed: int = 23,
) -> ScenarioReport:
    """A whiteboard meeting with churn: join, sketch, leave, re-join."""
    rng = random.Random(seed)
    report = ScenarioReport(name="design_meeting")
    session = Session(seed=seed)
    boards = [
        Whiteboard(session.create_instance(f"wb-{i}", user=f"designer-{i}"))
        for i in range(n_participants)
    ]
    session.pump()

    def sketch(board: Whiteboard) -> None:
        x = rng.uniform(0, 40)
        y = rng.uniform(0, 10)
        board.draw([(x, y), (x + rng.uniform(1, 5), y + rng.uniform(0, 2))])
        session.pump()

    # Phase 1: the first two participants start.
    boards[1].join("wb-0")
    session.pump()
    report.phases.append("kickoff(2)")
    for _ in range(strokes_per_phase):
        sketch(rng.choice(boards[:2]))

    # Phase 2: everyone else joins late (state pull, then live).
    for board in boards[2:]:
        board.join("wb-0")
        session.pump()
    report.phases.append(f"full-attendance({n_participants})")
    for _ in range(strokes_per_phase):
        sketch(rng.choice(boards))

    # Phase 3: one participant leaves mid-meeting and keeps a snapshot.
    leaver = boards[1]
    leaver.leave()
    session.pump()
    snapshot = leaver.stroke_count
    report.phases.append("one-leaves")
    for _ in range(strokes_per_phase):
        sketch(rng.choice([b for b in boards if b is not leaver]))

    # Phase 4: they re-join and catch up by state.
    leaver.join("wb-0")
    session.pump()
    report.phases.append("re-join")

    counts = {b.instance.instance_id: b.stroke_count for b in boards}
    report.note("stroke_counts", counts)
    report.note("converged", len(set(counts.values())) == 1)
    report.note("snapshot_while_away", snapshot)
    traffic = session.traffic()
    report.messages = traffic["messages"]
    report.bytes = traffic["bytes"]
    report.duration = session.now
    session.close()
    return report
