"""Clock abstraction: simulated (deterministic) and wall-clock time.

All timing in the library flows through a :class:`Clock` so experiments run
on a discrete-event :class:`SimClock` and are reproducible bit-for-bit,
while the TCP transport uses :class:`WallClock`.
"""

from __future__ import annotations

import time
from typing import Protocol


class Clock(Protocol):
    """Minimal clock interface used throughout the library."""

    def now(self) -> float:
        """Current time in seconds."""
        ...


class SimClock:
    """A manually-advanced simulation clock.

    The in-memory network advances this clock to each message's delivery
    time, so "latency" is modeled without sleeping.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Move time forward by *dt* seconds (dt >= 0); returns the new now."""
        if dt < 0:
            raise ValueError(f"cannot advance clock backwards (dt={dt})")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Move time forward to absolute time *t* (never backwards)."""
        if t < self._now:
            raise ValueError(
                f"cannot advance clock backwards (now={self._now}, t={t})"
            )
        self._now = float(t)
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"


class WallClock:
    """Real time, for the TCP transport and interactive use."""

    def now(self) -> float:
        return time.monotonic()

    def __repr__(self) -> str:
        return "WallClock()"
