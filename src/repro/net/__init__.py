"""Network substrate: wire messages, codecs, clocks and transports.

The server and application instances are sans-I/O; this package moves
their messages — deterministically in memory for experiments, or over
real TCP sockets — and defines the pluggable pieces around them: the
:class:`~repro.net.codec.Codec` protocol with its registry
(``json``/``binary``, docs/PROTOCOL.md) and the communicator registry
third-party transports plug into (:mod:`repro.net.registry`,
docs/COMMUNICATORS.md).

``__all__`` below is the supported public surface of this package;
anything else is internal and may change without notice.
"""

from repro.net.clock import Clock, SimClock, WallClock
from repro.net.codec import (
    HEADER_SIZE,
    MAX_FRAME_SIZE,
    Codec,
    JsonCodec,
    StreamDecoder,
    codec_names,
    decode,
    decode_batch,
    default_codec,
    default_codec_name,
    encode,
    encode_batch,
    get_codec,
    register_codec,
    wire_size,
)
from repro.net.memory import MemoryNetwork, MemoryTransport
from repro.net.message import Message
from repro.net import message as kinds
from repro.net.registry import (
    BACKENDS,
    communicator_names,
    get_communicator,
    register_communicator,
)
from repro.net.tcp import TcpClientTransport, TcpHostTransport
from repro.net.transport import (
    ROUTER_ID,
    SERVER_ID,
    TrafficStats,
    Transport,
    resolve_destination,
)

__all__ = [
    "BACKENDS",
    "Clock",
    "Codec",
    "HEADER_SIZE",
    "JsonCodec",
    "MAX_FRAME_SIZE",
    "MemoryNetwork",
    "MemoryTransport",
    "Message",
    "ROUTER_ID",
    "SERVER_ID",
    "SimClock",
    "StreamDecoder",
    "TcpClientTransport",
    "TcpHostTransport",
    "TrafficStats",
    "Transport",
    "WallClock",
    "codec_names",
    "communicator_names",
    "decode",
    "decode_batch",
    "default_codec",
    "default_codec_name",
    "encode",
    "encode_batch",
    "get_codec",
    "get_communicator",
    "kinds",
    "register_codec",
    "register_communicator",
    "resolve_destination",
    "wire_size",
]
