"""Network substrate: wire messages, codec, clocks and transports.

The server and application instances are sans-I/O; this package moves their
messages — deterministically in memory for experiments, or over real TCP
sockets.
"""

from repro.net.clock import Clock, SimClock, WallClock
from repro.net.codec import (
    HEADER_SIZE,
    MAX_FRAME_SIZE,
    StreamDecoder,
    decode,
    encode,
    wire_size,
)
from repro.net.memory import MemoryNetwork, MemoryTransport
from repro.net.message import Message
from repro.net import message as kinds
from repro.net.tcp import TcpClientTransport, TcpHostTransport
from repro.net.transport import (
    ROUTER_ID,
    SERVER_ID,
    TrafficStats,
    Transport,
    resolve_destination,
)

__all__ = [
    "Clock",
    "HEADER_SIZE",
    "MAX_FRAME_SIZE",
    "MemoryNetwork",
    "MemoryTransport",
    "Message",
    "ROUTER_ID",
    "SERVER_ID",
    "SimClock",
    "StreamDecoder",
    "TcpClientTransport",
    "TcpHostTransport",
    "TrafficStats",
    "Transport",
    "WallClock",
    "decode",
    "encode",
    "kinds",
    "resolve_destination",
    "wire_size",
]
