"""Deterministic in-memory network: a discrete-event message simulator.

This is the default substrate for tests and benchmarks.  It models the
paper's LAN of X workstations:

* each directed delivery takes ``base_latency`` seconds plus
  ``per_byte_latency * size`` (serialization) plus seeded jitter;
* messages between the same (sender, receiver) pair are FIFO — like a TCP
  connection — which the protocol relies on;
* optional seeded message loss for failure-injection tests;
* a single :class:`~repro.net.clock.SimClock` advances to each delivery
  time, so experiments measure latency without sleeping.

The network is *pumped*: :meth:`MemoryNetwork.pump` pops the earliest
scheduled delivery, advances the clock, and hands the message to the
receiving endpoint's handler, which may send further messages.  Pumping
until quiescence executes a whole distributed interaction deterministically
on one thread.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import DeliveryError, TransportClosedError
from repro.net.clock import SimClock
from repro.net.codec import HEADER_SIZE, Codec, get_codec
from repro.net.message import Message
from repro.net.transport import (
    DROP_DETACHED,
    DROP_LOSS,
    DROP_PARTITION,
    MessageHandler,
    TrafficStats,
    Transport,
    resolve_destination,
)


class MemoryNetwork:
    """A simulated network connecting named endpoints.

    Parameters
    ----------
    clock:
        The simulation clock (a fresh one is created if omitted).
    base_latency:
        Fixed one-way delay per message, seconds.
    per_byte_latency:
        Additional delay per encoded byte (bandwidth model).
    jitter:
        Uniform random extra delay in ``[0, jitter]`` drawn from *seed*.
    loss_rate:
        Probability of silently dropping a message (0 disables loss; FIFO
        order among surviving messages is preserved).
    duplicate_rate:
        Probability of delivering a message twice (at-least-once delivery
        injection; the duplicate follows the original on the same link).
    seed:
        Seed for the jitter/loss/duplication random stream.
    codec:
        The wire codec (name or instance) the simulation accounts bytes
        with.  No frames cross a real wire here, but byte counts and the
        ``per_byte_latency`` model honour the codec's frame sizes, so a
        ``codec="binary"`` deployment simulates its real wire cost.
    wire_batching:
        When true, bytes are priced as if every message travelled inside
        a batch envelope (docs/PROTOCOL.md): each message costs its
        frame *body* plus the envelope's per-member varint length
        prefix, and the 4-byte frame header plus the 3-byte envelope
        head — shared across a whole flush — amortize to zero.  This
        mirrors what the socket transports put on the wire with
        ``wire_batching=True``, so simulated byte accounting matches.
    """

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        *,
        base_latency: float = 0.001,
        per_byte_latency: float = 0.0,
        jitter: float = 0.0,
        loss_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        seed: int = 0,
        codec: object = "json",
        wire_batching: bool = False,
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if not 0.0 <= duplicate_rate < 1.0:
            raise ValueError("duplicate_rate must be in [0, 1)")
        if base_latency < 0 or per_byte_latency < 0 or jitter < 0:
            raise ValueError("latencies must be non-negative")
        self.clock = clock if clock is not None else SimClock()
        self.codec: Codec = get_codec(codec)
        self.wire_batching = bool(wire_batching)
        self.base_latency = base_latency
        self.per_byte_latency = per_byte_latency
        self.jitter = jitter
        self.loss_rate = loss_rate
        self.duplicate_rate = duplicate_rate
        self.stats = TrafficStats()
        self._rng = random.Random(seed)
        self._transports: Dict[str, "MemoryTransport"] = {}
        self._queue: List[Tuple[float, int, str, Message]] = []
        self._tiebreak = itertools.count()
        #: Per-link FIFO watermark: earliest time the next message on a link
        #: may be delivered, so jitter cannot reorder a link's messages.
        self._link_clock: Dict[Tuple[str, str], float] = {}
        #: Endpoints cut off by a simulated partition.
        self._partitioned: set = set()
        #: Per-endpoint serial-processing model: an endpoint that called
        #: :meth:`occupy` receives no further deliveries until the busy
        #: period elapses (messages are deferred, preserving order).
        self._busy_until: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def attach(self, endpoint_id: str, handler: MessageHandler) -> "MemoryTransport":
        """Register an endpoint and return its transport handle."""
        if endpoint_id in self._transports:
            raise ValueError(f"endpoint {endpoint_id!r} already attached")
        transport = MemoryTransport(self, endpoint_id, handler)
        self._transports[endpoint_id] = transport
        return transport

    def detach(self, endpoint_id: str) -> None:
        """Remove an endpoint; queued messages to it are dropped on pump."""
        self._transports.pop(endpoint_id, None)
        self._partitioned.discard(endpoint_id)

    def endpoints(self) -> Tuple[str, ...]:
        return tuple(self._transports)

    def partition(self, endpoint_id: str) -> None:
        """Simulate a network partition: drop traffic to/from the endpoint."""
        self._partitioned.add(endpoint_id)

    def heal(self, endpoint_id: str) -> None:
        """End a simulated partition."""
        self._partitioned.discard(endpoint_id)

    # ------------------------------------------------------------------
    # Sending and pumping
    # ------------------------------------------------------------------

    def _priced_size(self, message: Message) -> int:
        """Bytes *message* costs under the active wire pricing model.

        Per-message frames cost their full frame; with wire batching on,
        a message costs its marginal share of an envelope: the frame
        body plus the member's varint length prefix (the shared frame
        header and envelope head amortize to zero across a flush).
        """
        size = self.codec.wire_size(message)
        if not self.wire_batching:
            return size
        body = size - HEADER_SIZE
        prefix = 1
        n = body >> 7
        while n:
            prefix += 1
            n >>= 7
        return body + prefix

    def submit(self, message: Message) -> None:
        """Schedule *message* for delivery (called by transport handles)."""
        receiver = resolve_destination(message)
        size = self._priced_size(message)
        if message.sender in self._partitioned or receiver in self._partitioned:
            self.stats.record_drop(message, size, reason=DROP_PARTITION)
            return
        if self.loss_rate and self._rng.random() < self.loss_rate:
            self.stats.record_drop(message, size, reason=DROP_LOSS)
            return
        delay = self.base_latency + self.per_byte_latency * size
        if self.jitter:
            delay += self._rng.random() * self.jitter
        deliver_at = self.clock.now() + delay
        link = (message.sender, receiver)
        # FIFO per link: never deliver before the link's previous message.
        deliver_at = max(deliver_at, self._link_clock.get(link, 0.0))
        self._link_clock[link] = deliver_at
        self.stats.record(message, size, receiver)
        heapq.heappush(
            self._queue, (deliver_at, next(self._tiebreak), receiver, message)
        )
        if self.duplicate_rate and self._rng.random() < self.duplicate_rate:
            # At-least-once injection: a second copy right behind the
            # first on the same (FIFO-ordered) link.
            dup_at = max(deliver_at, self._link_clock.get(link, 0.0))
            self._link_clock[link] = dup_at
            heapq.heappush(
                self._queue, (dup_at, next(self._tiebreak), receiver, message)
            )

    def pending(self) -> int:
        """Number of scheduled, undelivered messages."""
        return len(self._queue)

    def occupy(self, endpoint_id: str, duration: float) -> float:
        """Model *endpoint_id* doing *duration* seconds of serial work.

        Called from a message handler (or before injecting load), it
        defers all subsequent deliveries to that endpoint until the work
        completes — this is how the architecture baselines model a
        time-consuming semantic operation blocking a centralized component
        (paper §2.1).  Returns the time the endpoint becomes free.
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        start = max(self.clock.now(), self._busy_until.get(endpoint_id, 0.0))
        self._busy_until[endpoint_id] = start + duration
        return self._busy_until[endpoint_id]

    def busy_until(self, endpoint_id: str) -> float:
        """When *endpoint_id* finishes its modeled work (0.0 if idle)."""
        return self._busy_until.get(endpoint_id, 0.0)

    def step(self) -> bool:
        """Deliver the earliest scheduled message; False if queue is empty."""
        while self._queue:
            deliver_at, _, receiver, message = heapq.heappop(self._queue)
            busy = self._busy_until.get(receiver, 0.0)
            if busy > deliver_at:
                # Receiver is mid-work: defer the delivery, keeping FIFO
                # order via the monotonically increasing tiebreak counter.
                heapq.heappush(
                    self._queue, (busy, next(self._tiebreak), receiver, message)
                )
                continue
            self.clock.advance_to(max(self.clock.now(), deliver_at))
            if receiver in self._partitioned:
                self.stats.record_drop(
                    message, self._priced_size(message), reason=DROP_PARTITION
                )
                continue
            transport = self._transports.get(receiver)
            if transport is None:
                # Receiver detached (instance terminated): drop silently,
                # like a closed socket.
                self.stats.record_drop(
                    message, self._priced_size(message), reason=DROP_DETACHED
                )
                continue
            transport.recv(message)
            return True
        return False

    def pump(self, max_steps: int = 1_000_000) -> int:
        """Deliver messages until the network is quiescent.

        Returns the number of deliveries.  *max_steps* guards against a
        protocol bug producing an infinite message loop.
        """
        steps = 0
        while self._queue and steps < max_steps:
            if not self.step():
                break
            steps += 1
        if self._queue and steps >= max_steps:
            raise DeliveryError(
                f"network did not quiesce within {max_steps} deliveries"
            )
        return steps

    def pump_until_time(self, t: float, max_steps: int = 1_000_000) -> int:
        """Deliver everything scheduled up to simulated time *t*, then
        advance the clock to exactly *t*.  Used by workload drivers to
        inject user actions at their scripted times."""
        steps = 0
        while self._queue and steps < max_steps:
            deliver_at, _, receiver, message = self._queue[0]
            if deliver_at > t:
                break
            busy = self._busy_until.get(receiver, 0.0)
            if busy > deliver_at:
                # Defer past the busy period (possibly beyond *t*).
                heapq.heapreplace(
                    self._queue, (busy, next(self._tiebreak), receiver, message)
                )
                continue
            heapq.heappop(self._queue)
            self.clock.advance_to(max(self.clock.now(), deliver_at))
            transport = self._transports.get(receiver)
            if transport is None or receiver in self._partitioned:
                reason = (
                    DROP_PARTITION if receiver in self._partitioned else DROP_DETACHED
                )
                self.stats.record_drop(
                    message, self._priced_size(message), reason=reason
                )
                continue
            transport.recv(message)
            steps += 1
        if steps >= max_steps:
            raise DeliveryError(
                f"network did not quiesce within {max_steps} deliveries"
            )
        if self.clock.now() < t:
            self.clock.advance_to(t)
        return steps

    def pump_until(
        self,
        predicate: Callable[[], bool],
        *,
        timeout: float = 5.0,
        max_steps: int = 1_000_000,
    ) -> bool:
        """Pump until *predicate* is true; False on quiescence or timeout.

        *timeout* is simulated seconds measured from the current clock.
        """
        deadline = self.clock.now() + timeout
        for _ in range(max_steps):
            if predicate():
                return True
            if not self._queue:
                return predicate()
            next_delivery = self._queue[0][0]
            if next_delivery > deadline:
                return predicate()
            self.step()
        raise DeliveryError(
            f"predicate not reached within {max_steps} deliveries"
        )


class MemoryTransport(Transport):
    """One endpoint's handle onto a :class:`MemoryNetwork`."""

    def __init__(
        self, network: MemoryNetwork, endpoint_id: str, handler: MessageHandler
    ):
        self._network = network
        self._endpoint_id = endpoint_id
        self._handler = handler
        self._closed = False

    @property
    def local_id(self) -> str:
        return self._endpoint_id

    @property
    def network(self) -> MemoryNetwork:
        return self._network

    @property
    def stats(self) -> TrafficStats:
        """The network-wide accounting (shared by all memory endpoints)."""
        return self._network.stats

    def send(self, message: Message) -> None:
        if self._closed:
            raise TransportClosedError(
                f"transport for {self._endpoint_id!r} is closed"
            )
        self._network.submit(message)

    def recv(self, message: Message) -> None:
        """Deliver one inbound message (called by the network's pump)."""
        if not self._closed:
            self._handler(message)

    def drive(self, predicate: Callable[[], bool], timeout: float = 5.0) -> bool:
        return self._network.pump_until(predicate, timeout=timeout)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._network.detach(self._endpoint_id)

    @property
    def closed(self) -> bool:
        return self._closed
